"""Struct-of-arrays event storage: the numpy fast path's hot core.

The pure-Python kernel keeps every pending event as a boxed
:class:`~repro.kernel.event.Event` inside a per-object ``heapq`` of
``(EventKey, Event)`` tuples.  That is simple and exactly ordered, but the
three hottest scans of a Time Warp run — the GVT local-minimum sweep, the
anti-message annihilation match and tombstone compaction — then walk
Python objects one attribute lookup at a time.

This module provides the optional ``fastpath="numpy"`` alternative:

* :class:`EventArena` — one per LP — stores the scalar envelope of every
  live future event in typed columns (the same struct-of-arrays field
  layout the shm wire packs into frames, :data:`SOA_LAYOUT`), so those
  scans become single vectorized numpy operations over contiguous memory.
* :class:`ArrayInputQueue` is a drop-in :class:`~repro.kernel.queues.InputQueue`
  whose future side indexes into the arena: heap entries are
  ``(EventKey, slot)`` pairs and the boxed :class:`Event` becomes a
  lightweight handle materialized from the columns on demand
  (:meth:`EventArena.handle`).

Because heap entries still carry the full :class:`EventKey` — and keys are
unique per event — the pop order of the array queue is *identical* to the
pure-Python heap, tie-breaks included; differential and property tests
pin this.

Selection and degradation mirror the PR 8 ``wire`` axis: ``fastpath=None``
auto-selects ``"numpy"`` when numpy imports and ``"python"`` otherwise,
and an explicit ``"numpy"`` silently degrades to ``"python"`` on
interpreters without numpy (:func:`resolve_fastpath`), so the same
configuration runs — and commits byte-identical results — everywhere.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Sequence

from .errors import ConfigurationError, TimeWarpError
from .event import Event, EventId, EventKey, VirtualTime
from .queues import InputQueue

try:  # pragma: no cover - exercised both ways across CI environments
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

HAVE_NUMPY = _np is not None

#: The shared struct-of-arrays field layout: ``(attr, struct fmt, numpy
#: dtype, byte width)`` per scalar Event field.  The shm wire packs frame
#: blocks in exactly this order and these dtypes (see
#: :mod:`repro.parallel.wire`), so a decoded frame's columns can land in
#: an :class:`EventArena` without re-boxing each row into an Event first.
SOA_LAYOUT = (
    ("sender", "I", "<u4", 4),
    ("receiver", "I", "<u4", 4),
    ("serial", "Q", "<u8", 8),
    ("sign", "b", "<i1", 1),
    ("send_time", "d", "<f8", 8),
    ("recv_time", "d", "<f8", 8),
)

#: Recognized ``SimulationConfig.fastpath`` values (``None`` = auto).
FASTPATHS = ("python", "numpy")

_MIN_CAPACITY = 64
#: Dead slots tolerated before a compaction is considered (amortizes the
#: rebuild; compaction also requires dead > live so steady state is O(1)).
_COMPACT_MIN_DEAD = 256


def resolve_fastpath(spec: str | None) -> str:
    """Resolve a ``fastpath`` spec to the path this interpreter will run.

    ``None`` auto-selects: ``"numpy"`` when numpy is importable, else
    ``"python"``.  An explicit ``"numpy"`` silently degrades to
    ``"python"`` when numpy is absent — the same degradation contract as
    the parallel wire ("shm" -> "queue") — because both paths commit
    byte-identical results, so degrading is safe and keeps one scenario
    file runnable on every interpreter.
    """
    if spec is None:
        return "numpy" if HAVE_NUMPY else "python"
    if spec not in FASTPATHS:
        raise ConfigurationError(
            f"unknown fastpath {spec!r} (known: 'python', 'numpy')"
        )
    if spec == "numpy" and not HAVE_NUMPY:
        return "python"
    return spec


class EventArena:
    """Per-LP struct-of-arrays store of live (unprocessed) future events.

    Slots are append-only between compactions: an event occupies one row
    of every column, ``alive`` is its tombstone bit, and popping or
    annihilating an event clears the bit without moving memory.  When
    dead rows outnumber live ones the arena compacts — one vectorized
    boolean take per column — and hands each registered queue a remap so
    heap entries follow their rows.
    """

    __slots__ = (
        "_cap", "_n", "_live", "_dead",
        "senders", "receivers", "serials", "signs",
        "send_times", "recv_times", "alive",
        "events", "payloads", "_queues", "_staged", "_killed",
    )

    def __init__(self, capacity: int = _MIN_CAPACITY) -> None:
        if _np is None:  # pragma: no cover - import-gated by callers
            raise ConfigurationError(
                "EventArena requires numpy; use resolve_fastpath() to "
                "degrade to the python path"
            )
        cap = max(int(capacity), _MIN_CAPACITY)
        self._cap = cap
        self._n = 0       # high-water row count (dead rows included)
        self._live = 0
        self._dead = 0
        self.senders = _np.zeros(cap, dtype="<u4")
        self.receivers = _np.zeros(cap, dtype="<u4")
        self.serials = _np.zeros(cap, dtype="<u8")
        self.signs = _np.zeros(cap, dtype="<i1")
        self.send_times = _np.zeros(cap, dtype="<f8")
        self.recv_times = _np.zeros(cap, dtype="<f8")
        self.alive = _np.zeros(cap, dtype=bool)
        #: boxed handle per row; ``None`` until materialized (or dead)
        self.events: list[Event | None] = [None] * cap
        #: application payload per row (only for rows inserted as columns)
        self.payloads: list = [None] * cap
        self._queues: list[ArrayInputQueue] = []
        #: rows whose column writes are deferred (see :meth:`insert`);
        #: flushed in one fancy-indexed fill before any vectorized scan
        self._staged: list[int] = []
        #: rows killed since the last flush, their ``alive`` bit still
        #: set; membership answers "is this row dead" without a numpy
        #: scalar read, and the flush clears the bits in one fill
        self._killed: set[int] = set()

    # ------------------------------------------------------------------ #
    # registration and sizing
    # ------------------------------------------------------------------ #
    def register(self, queue: "ArrayInputQueue") -> None:
        self._queues.append(queue)

    def unregister(self, queue: "ArrayInputQueue") -> None:
        self._queues.remove(queue)

    def live_count(self) -> int:
        return self._live

    def _ensure(self, need: int) -> None:
        """Make room for ``need`` more rows.

        Compaction happens here — when the arena is full and mostly dead
        — rather than on every kill: a kill is on the pop hot path, and
        compacting there made draining a large queue quadratic-ish (a
        cascade of compactions as the live side shrank).  Folding it into
        the grow decision amortizes the cost to O(1) per insert and
        bounds the capacity at roughly twice the live peak.
        """
        if self._n + need <= self._cap:
            return
        if self._dead >= _COMPACT_MIN_DEAD and self._dead > self._live:
            self.compact()
        if self._n + need > self._cap:
            self._grow(self._n + need)

    def _grow(self, need: int) -> None:
        cap = self._cap
        while cap < need:
            cap *= 2
        for name in ("senders", "receivers", "serials", "signs",
                     "send_times", "recv_times", "alive"):
            old = getattr(self, name)
            new = _np.zeros(cap, dtype=old.dtype)
            new[: self._n] = old[: self._n]
            setattr(self, name, new)
        self.events.extend([None] * (cap - self._cap))
        self.payloads.extend([None] * (cap - self._cap))
        self._cap = cap

    # ------------------------------------------------------------------ #
    # insertion
    # ------------------------------------------------------------------ #
    def insert(self, event: Event) -> int:
        """Append one boxed event; returns its row (slot).

        The row's numpy writes — six column stores plus the tombstone bit
        — are *deferred*: per-event numpy scalar stores would cost more
        than the boxed heap path they replace, so a single insert only
        boxes the handle and parks the row on ``_staged``.
        :meth:`_flush_staged` lands every surviving staged row with one
        fancy-indexed fill per column right before a vectorized scan
        needs the values — and a row inserted and popped between two
        scans (the common Time Warp fate) never touches numpy at all.
        """
        self._ensure(1)
        n = self._n
        self.events[n] = event
        self._staged.append(n)
        self._n = n + 1
        self._live += 1
        return n

    def flush(self) -> None:
        """Apply deferred numpy writes so raw column reads are coherent.

        The vectorized entry points (:meth:`min_alive_time`,
        :meth:`match_antis`, :meth:`compact`) flush on their own; call
        this before reading ``alive`` or the columns directly.
        """
        self._flush_staged()

    def _flush_staged(self) -> None:
        """Apply the deferred numpy writes: staged column rows and their
        ``alive`` bits, then the ``alive`` bits of deferred kills."""
        staged = self._staged
        killed = self._killed
        if staged:
            self._staged = []
            events = self.events
            # a staged row killed before the flush has events[slot] = None;
            # the zeros it leaves in the columns are never read, because
            # every scan masks on ``alive``
            rows = [(s, events[s]) for s in staged if events[s] is not None]
            if rows:
                idx = _np.array([s for s, _ in rows], dtype="<i8")
                self.senders[idx] = [e.sender for _, e in rows]
                self.receivers[idx] = [e.receiver for _, e in rows]
                self.serials[idx] = [e.serial for _, e in rows]
                self.signs[idx] = [e.sign for _, e in rows]
                self.send_times[idx] = [e.send_time for _, e in rows]
                self.recv_times[idx] = [e.recv_time for _, e in rows]
                self.alive[idx] = True
        if killed:
            # after the staged pass: a row staged then killed is absent
            # from the staged fill (its handle is gone) but present here
            self.alive[_np.fromiter(killed, dtype="<i8", count=len(killed))] = False
            killed.clear()

    def insert_batch(self, events: Sequence[Event]) -> range:
        """Append a batch of boxed events with one column fill each."""
        m = len(events)
        if m == 0:
            return range(0, 0)
        self._ensure(m)
        n = self._n
        sl = slice(n, n + m)
        self.senders[sl] = [e.sender for e in events]
        self.receivers[sl] = [e.receiver for e in events]
        self.serials[sl] = [e.serial for e in events]
        self.signs[sl] = [e.sign for e in events]
        self.send_times[sl] = [e.send_time for e in events]
        self.recv_times[sl] = [e.recv_time for e in events]
        self.alive[sl] = True
        self.events[n:n + m] = list(events)
        self._n = n + m
        self._live += m
        return range(n, n + m)

    def insert_columns(
        self,
        senders, receivers, serials, signs, send_times, recv_times,
        payloads: Sequence,
    ) -> range:
        """Land decoded wire columns directly: one block copy per field.

        The arrays use the :data:`SOA_LAYOUT` dtypes, exactly as
        :func:`repro.parallel.wire.decode_batch` unpacks them, so no Event
        is boxed here — handles materialize lazily on first access, and an
        event annihilated before it is ever scheduled is never boxed at
        all.
        """
        m = len(payloads)
        if m == 0:
            return range(0, 0)
        self._ensure(m)
        n = self._n
        sl = slice(n, n + m)
        self.senders[sl] = senders
        self.receivers[sl] = receivers
        self.serials[sl] = serials
        self.signs[sl] = signs
        self.send_times[sl] = send_times
        self.recv_times[sl] = recv_times
        self.alive[sl] = True
        self.payloads[n:n + m] = list(payloads)
        self._n = n + m
        self._live += m
        return range(n, n + m)

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #
    def handle(self, slot: int) -> Event:
        """The boxed :class:`Event` for a live row (materialized lazily)."""
        event = self.events[slot]
        if event is None:
            event = Event(
                sender=int(self.senders[slot]),
                receiver=int(self.receivers[slot]),
                send_time=float(self.send_times[slot]),
                recv_time=float(self.recv_times[slot]),
                payload=self.payloads[slot],
                serial=int(self.serials[slot]),
                sign=int(self.signs[slot]),
            )
            self.events[slot] = event
        return event

    def key_of(self, slot: int) -> EventKey:
        """Total-order key of a row (boxed handle first: staged rows have
        no column values yet, and the boxed path is cheaper anyway)."""
        event = self.events[slot]
        if event is not None:
            return event.key()
        return EventKey(
            float(self.recv_times[slot]),
            int(self.receivers[slot]),
            int(self.senders[slot]),
            float(self.send_times[slot]),
            int(self.serials[slot]),
        )

    # ------------------------------------------------------------------ #
    # removal and compaction
    # ------------------------------------------------------------------ #
    def kill(self, slot: int) -> None:
        """Mark a row dead and drop its payload references.

        The ``alive`` bit is cleared lazily (``_killed`` holds the slot
        until the next flush): a numpy scalar store per kill is exactly
        the per-event tax the fast path exists to avoid.  Staleness
        checks consult ``_killed`` and the handle list instead.
        """
        self.events[slot] = None
        self.payloads[slot] = None
        self._killed.add(slot)
        self._live -= 1
        self._dead += 1

    def compact(self) -> None:
        """Drop dead rows: one boolean take per column, then remap heaps."""
        self._flush_staged()
        n = self._n
        keep = self.alive[:n].copy()  # the alive writes below must not alias
        new_n = int(keep.sum())
        remap = _np.full(n, -1, dtype="<i8")
        remap[keep] = _np.arange(new_n, dtype="<i8")
        for name in ("senders", "receivers", "serials", "signs",
                     "send_times", "recv_times"):
            col = getattr(self, name)
            col[:new_n] = col[:n][keep]
        self.alive[:new_n] = True
        self.alive[new_n:n] = False
        # move the handle/payload lists in place (new <= old throughout,
        # so a forward pass is safe): compaction cost must scale with the
        # occupied rows, not the capacity high-water mark
        events, payloads = self.events, self.payloads
        for new, old in enumerate(_np.nonzero(keep)[0].tolist()):
            events[new] = events[old]
            payloads[new] = payloads[old]
        if new_n < n:
            events[new_n:n] = [None] * (n - new_n)
            payloads[new_n:n] = [None] * (n - new_n)
        self._n = new_n
        self._dead = 0
        for queue in self._queues:
            queue._remap_slots(remap)

    # ------------------------------------------------------------------ #
    # vectorized scans
    # ------------------------------------------------------------------ #
    def min_alive_time(self) -> VirtualTime | None:
        """Smallest receive time over every live row: the LP's input-queue
        contribution to the GVT local minimum, in one vectorized scan."""
        if self._live == 0:
            return None
        self._flush_staged()
        n = self._n
        return float(_np.min(
            self.recv_times[:n], initial=_np.inf, where=self.alive[:n]
        ))

    def match_antis(
        self, senders: Sequence[int], serials: Sequence[int]
    ) -> list[int]:
        """Rows whose ``(sender, serial)`` identity matches any given anti.

        The candidate filter is vectorized over the identity columns
        (``isin`` on each, which admits cross pairs); candidates are then
        verified exactly, so the result holds precisely the annihilable
        rows.  Identities are simulation-wide unique, hence at most one
        row per anti.
        """
        n = self._n
        if n == 0 or not len(serials):
            return []
        self._flush_staged()
        candidates = (
            self.alive[:n]
            & _np.isin(self.serials[:n], _np.asarray(serials, dtype="<u8"))
            & _np.isin(self.senders[:n], _np.asarray(senders, dtype="<u4"))
        )
        pairs = set(zip(map(int, senders), map(int, serials)))
        return [
            slot for slot in _np.nonzero(candidates)[0].tolist()
            if (int(self.senders[slot]), int(self.serials[slot])) in pairs
        ]


class ArrayInputQueue(InputQueue):
    """Array-backed :class:`InputQueue`: same contract, same pop order.

    The future side becomes a heap of ``(EventKey, slot)`` pairs indexing
    into a shared :class:`EventArena`; the processed side (rollback
    slicing, fossil collection, anti-vs-processed resolution) is inherited
    unchanged.  Keys are unique per event, so heap pops — and therefore
    execution order, rollback points and committed digests — are
    bit-identical to the pure-Python queue; the ``tests/properties``
    differential suite holds the two implementations against each other.
    """

    __slots__ = ("_arena", "_stale", "_events", "_top")

    def __init__(self, arena: EventArena) -> None:
        super().__init__()
        self._arena = arena
        #: count of heap entries whose arena row was annihilated (the
        #: python path's tombstone set, as a counter)
        self._stale = 0
        #: cached reference to the arena's boxed-handle list, so the peek
        #: hot path skips two attribute hops; compaction replaces the
        #: list, and :meth:`_remap_slots` re-reads it
        self._events = arena.events
        #: memoized ``(key, event)`` of the heap top — the scheduler
        #: re-peeks every member each step, and only one member mutates
        #: between steps; every mutator resets this to ``None``
        self._top: tuple[EventKey, Event] | None = None
        arena.register(self)

    # ------------------------------------------------------------------ #
    # insertion and annihilation
    # ------------------------------------------------------------------ #
    def insert_positive(self, event: Event) -> bool:
        self._top = None
        eid = event.event_id()
        if eid in self._pending_antis:
            del self._pending_antis[eid]
            return False
        slot = self._arena.insert(event)
        heapq.heappush(self._future, (event.key(), slot))
        self._future_ids[eid] = slot
        self._live_future += 1
        return True

    def insert_batch(self, events: Sequence[Event]) -> int:
        """Bulk insert: one column fill per field plus a single heapify.

        Returns the number of events actually enqueued (arrivals consumed
        by stashed anti-messages annihilate on the spot, exactly as in
        :meth:`insert_positive`).
        """
        self._top = None
        pending = self._pending_antis
        if pending:
            live = []
            for event in events:
                eid = event.event_id()
                if eid in pending:
                    del pending[eid]
                else:
                    live.append(event)
            events = live
        else:
            events = list(events)
        if not events:
            return 0
        slots = self._arena.insert_batch(events)
        future = self._future
        ids = self._future_ids
        for event, slot in zip(events, slots):
            future.append((event.key(), slot))
            ids[event.event_id()] = slot
        heapq.heapify(future)  # keys are unique: pop order is unchanged
        self._live_future += len(events)
        return len(events)

    def insert_anti(self, anti: Event) -> Event | None:
        self._top = None
        eid = anti.event_id()
        slot = self._future_ids.pop(eid, None)
        if slot is not None:
            self._live_future -= 1
            self._stale += 1
            self._arena.kill(slot)  # may compact, which resets _stale
            return None
        processed = self._processed_ids.get(eid)
        if processed is not None:
            return processed
        self._pending_antis[eid] = anti
        return None

    def annihilate_batch(self, antis: Sequence[Event]) -> list[Event]:
        """Annihilate a batch of antis against the future side at once.

        The (serial, sender) identity match runs vectorized over the
        arena columns (:meth:`EventArena.match_antis`); antis that did not
        match an unprocessed positive are returned for the caller to
        resolve one at a time through :meth:`insert_anti` (processed hits
        trigger rollback there, unmatched antis are stashed).
        """
        if not antis:
            return []
        self._top = None
        arena = self._arena
        matched = arena.match_antis(
            [a.sender for a in antis], [a.serial for a in antis]
        )
        matched_eids = {
            EventId(int(arena.senders[s]), int(arena.serials[s]))
            for s in matched
        }
        leftovers: list[Event] = []
        for anti in antis:
            eid = anti.event_id()
            # re-read the dict each round: a kill can compact the arena,
            # which rebuilds it with remapped slots
            ids = self._future_ids
            if eid in matched_eids and eid in ids:
                self._live_future -= 1
                self._stale += 1
                arena.kill(ids.pop(eid))
            else:
                leftovers.append(anti)
        return leftovers

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #
    def _skip_stale(self) -> None:
        # A row is dead iff its kill is pending (``_killed``) or already
        # flushed (handle dropped and ``alive`` cleared).  A live boxed
        # row short-circuits on its handle, so the numpy bit is only read
        # for never-boxed wire rows.
        future = self._future
        arena = self._arena
        events = self._events
        killed = arena._killed
        alive = arena.alive
        stale = self._stale
        while future:
            slot = future[0][1]
            if slot in killed or (events[slot] is None and not alive[slot]):
                heapq.heappop(future)
                stale -= 1
            else:
                break
        self._stale = stale

    def peek_next(self) -> Event | None:
        entry = self._top or self.peek_next_entry()
        return entry[1] if entry is not None else None

    def peek_next_entry(self) -> tuple[EventKey, Event] | None:
        top = self._top
        if top is not None:
            return top
        if self._stale:
            self._skip_stale()
        future = self._future
        if not future:
            return None
        key, slot = future[0]
        event = self._events[slot]
        if event is None:
            event = self._arena.handle(slot)
        top = (key, event)
        self._top = top
        return top

    def pop_next(self) -> Event:
        self._top = None
        if self._stale:
            self._skip_stale()
        if not self._future:
            raise TimeWarpError("pop_next on an empty input queue")
        _, slot = heapq.heappop(self._future)
        event = self._events[slot]
        arena = self._arena
        if event is None:
            event = arena.handle(slot)
        arena.kill(slot)
        eid = event.event_id()
        del self._future_ids[eid]
        self._live_future -= 1
        self.processed.append(event)
        self._processed_ids[eid] = event
        return event

    def has_future(self) -> bool:
        if self._stale:
            self._skip_stale()
        return bool(self._future)

    def min_unprocessed_time(self) -> VirtualTime | None:
        if self._stale:
            self._skip_stale()
        future = self._future
        return future[0][0].recv_time if future else None

    def iter_future(self) -> Iterable[Event]:
        arena = self._arena
        for slot in self._future_ids.values():
            yield arena.handle(slot)

    # ------------------------------------------------------------------ #
    # rollback
    # ------------------------------------------------------------------ #
    def rollback(self, key: EventKey) -> list[Event]:
        self._top = None
        split = len(self.processed)
        while split > 0 and self.processed[split - 1].key() >= key:
            split -= 1
        rolled = self.processed[split:]
        del self.processed[split:]
        processed_ids = self._processed_ids
        arena = self._arena
        future = self._future
        ids = self._future_ids
        for event in rolled:
            eid = event.event_id()
            del processed_ids[eid]
            slot = arena.insert(event)
            heapq.heappush(future, (event.key(), slot))
            ids[eid] = slot
        self._live_future += len(rolled)
        return rolled

    def detach(self) -> None:
        """Release this queue's arena rows and stop tracking compactions.

        Live migration detaches an object from its LP; its unprocessed
        events leave with the checkpoint, so their rows must die here or
        the arena's local-min scan would keep seeing a departed member.
        """
        self._top = None
        arena = self._arena
        ids = self._future_ids
        while ids:
            _eid, slot = ids.popitem()
            arena.kill(slot)
            # a kill can compact the arena, which rebuilds this queue's
            # dict (with remapped slots): re-read it each round
            ids = self._future_ids
        self._future = []
        self._live_future = 0
        self._stale = 0
        arena.unregister(self)

    # ------------------------------------------------------------------ #
    # compaction support
    # ------------------------------------------------------------------ #
    def _remap_slots(self, remap) -> None:
        """Follow an arena compaction: dead heap entries drop, live ones
        take their row's new index.  Keys are untouched, so order holds."""
        future = [
            (key, int(remap[slot]))
            for key, slot in self._future
            if remap[slot] >= 0
        ]
        heapq.heapify(future)
        # mutate in place: callers mid-loop (rollback, batch insert) hold
        # references to these containers across arena inserts, and an
        # insert may compact
        self._future[:] = future
        new_ids = {
            eid: int(remap[slot]) for eid, slot in self._future_ids.items()
        }
        self._future_ids.clear()
        self._future_ids.update(new_ids)
        self._stale = 0
        self._top = None
        self._events = self._arena.events  # compaction rebuilt the list
