"""Logical processes: scheduling, rollback, coast-forward and cancellation.

An LP groups simulation objects that share an address space (one modelled
workstation).  It schedules its members lowest-timestamp-first, detects
stragglers and anti-messages on delivery, performs rollback with periodic
check-pointing and coast-forward, dispatches undone sends to the active
cancellation strategy, and runs the per-object feedback controllers at
their configured periods.  All CPU work is charged to the LP's wall clock
(``self.clock``); the cluster executive orders LPs by that clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from ..cluster.costmodel import CostModel
from ..oracle.invariants import NULL_ORACLE
from ..stats.counters import LPStats, ObjectStats
from ..trace.tracer import NULL_TRACER
from .arena import ArrayInputQueue, EventArena, resolve_fastpath
from .cancellation import CancellationPolicy, ComparisonBuffer, Mode
from .checkpointing import MAX_INTERVAL, CheckpointPolicy, CheckpointWindow
from .errors import (
    ApplicationError,
    CausalityViolationError,
    SchedulingError,
    TimeWarpError,
)
from .event import Event, EventKey, SentRecord, VirtualTime
from .queues import InputQueue, OutputQueue, StateQueue
from .simobject import SimulationObject
from .state import COPY_SNAPSHOT, SavedState, SnapshotStrategy

if TYPE_CHECKING:  # pragma: no cover
    from ..comm.transport import CommModule

#: Synthetic cause key for sends made during ``initialize`` — smaller than
#: every real event key, so initial sends are never rolled back.
INITIAL_KEY = EventKey(float("-inf"), -1, -1, float("-inf"), -1)


@dataclass(slots=True)
class ObjectContext:
    """Kernel-side runtime record of one simulation object."""

    obj: SimulationObject
    oid: int
    iq: InputQueue = field(default_factory=InputQueue)
    oq: OutputQueue = field(default_factory=OutputQueue)
    sq: StateQueue = field(default_factory=StateQueue)
    lvt: VirtualTime = 0.0
    event_count: int = 0
    events_since_save: int = 0
    send_serial: int = 0
    coasting: bool = False
    current_cause_key: EventKey = INITIAL_KEY
    mode: Mode = Mode.AGGRESSIVE
    cmp_buffer: ComparisonBuffer = field(default_factory=ComparisonBuffer)
    cancel_policy: CancellationPolicy = None  # type: ignore[assignment]
    ckpt_policy: CheckpointPolicy = None  # type: ignore[assignment]
    chi: int = 1
    ckpt_window: CheckpointWindow = field(default_factory=CheckpointWindow)
    comparisons_since_control: int = 0
    events_since_ckpt_control: int = 0
    stats: ObjectStats = field(default_factory=ObjectStats)

    @property
    def state(self):
        return self.obj.state

    @state.setter
    def state(self, value) -> None:
        self.obj.state = value


class _ObjectServices:
    """The :class:`KernelServices` adapter handed to application objects."""

    __slots__ = ("_lp", "_ctx")

    def __init__(self, lp: "LogicalProcess", ctx: ObjectContext) -> None:
        self._lp = lp
        self._ctx = ctx

    @property
    def now(self) -> VirtualTime:
        return self._ctx.lvt

    def send(self, dest: str, delay: VirtualTime, payload: Any) -> None:
        self._lp.send_from(self._ctx, dest, delay, payload)


class LogicalProcess:
    """One Time Warp logical process pinned to one modelled workstation."""

    def __init__(
        self,
        lp_id: int,
        costs: CostModel,
        *,
        resolve_name: Callable[[str], int],
        lp_of: Callable[[int], int],
        end_time: VirtualTime = float("inf"),
        fastpath: str | None = "python",
    ) -> None:
        self.lp_id = lp_id
        self.costs = costs
        #: resolved hot-loop implementation ("python" or "numpy"); the
        #: arena is the LP-wide struct-of-arrays future-event store backing
        #: every member's :class:`ArrayInputQueue` on the numpy path
        self.fastpath = resolve_fastpath(fastpath)
        self.arena: EventArena | None = (
            EventArena() if self.fastpath == "numpy" else None
        )
        self.clock: float = 0.0
        self.end_time = end_time
        self._resolve_name = resolve_name
        self._lp_of = lp_of
        self.members: dict[int, ObjectContext] = {}
        self._member_list: list[ObjectContext] = []
        self.comm: "CommModule" = None  # type: ignore[assignment]
        #: absolute virtual-time optimism bound (GVT + window), set by the
        #: executive when a time-window policy is active
        self.optimism_bound: VirtualTime = float("inf")
        self.stats = LPStats()
        #: structured observability tracer (repro.trace); NULL_TRACER when
        #: tracing is off, so emission sites cost one attribute check
        self.tracer = NULL_TRACER
        #: runtime invariant oracle (repro.oracle); NULL_ORACLE when off,
        #: same zero-cost guard discipline as the tracer
        self.oracle = NULL_ORACLE
        #: optional committed-event trace recorder (tests / debugging)
        self.trace_sink: Callable[[Event], None] | None = None
        #: rescue hook for events addressed to an object this LP no longer
        #: hosts (live migration re-homes objects mid-run; stale aggregate
        #: buffers and in-flight messages may still carry the old address)
        self.forward: Callable[[Event], None] | None = None
        #: set by the executive so arrivals can wake an idle LP
        self.idle: bool = False
        #: how checkpoint saves and rollback restores copy state
        #: (``SimulationConfig.snapshot``; see repro.kernel.state)
        self.snapshot_strategy: SnapshotStrategy = COPY_SNAPSHOT

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def attach(
        self,
        obj: SimulationObject,
        oid: int,
        cancel_policy: CancellationPolicy,
        ckpt_policy: CheckpointPolicy,
    ) -> ObjectContext:
        ctx = ObjectContext(obj=obj, oid=oid)
        if self.arena is not None:
            ctx.iq = ArrayInputQueue(self.arena)
        ctx.cancel_policy = cancel_policy
        ctx.ckpt_policy = ckpt_policy
        ctx.mode = cancel_policy.initial_mode()
        ctx.chi = max(1, min(MAX_INTERVAL, ckpt_policy.initial_interval()))
        obj.bind(_ObjectServices(self, ctx))
        self.members[oid] = ctx
        self._member_list.append(ctx)
        return ctx

    def initialize(self) -> None:
        """Create initial states, run app initializers, take snapshot zero.

        The snapshot is taken *after* ``initialize()`` on purpose: sends
        made during initialization are tagged :data:`INITIAL_KEY` and are
        never rolled back, so the recovery point for a rollback to the
        beginning of time must include any state mutations that produced
        them — otherwise a deep rollback would replay a different history
        than the one whose messages are already in the system.
        """
        for ctx in self._member_list:
            ctx.state = ctx.obj.initial_state()
        for ctx in self._member_list:
            ctx.current_cause_key = INITIAL_KEY
            ctx.obj.initialize()
            saved = SavedState(
                last_key=None,
                lvt=0.0,
                event_count=0,
                state=self.snapshot_strategy.snapshot(ctx.state),
            )
            ctx.sq.save(saved)
            oracle = self.oracle
            if oracle.enabled:
                oracle.on_state_save(self.clock, self.lp_id, ctx.obj.name, saved)

    # ------------------------------------------------------------------ #
    # wall clock
    # ------------------------------------------------------------------ #
    def charge(self, cost: float) -> None:
        self.clock += cost
        self.stats.busy_time += cost

    def advance_clock_to(self, wallclock: float) -> None:
        if wallclock > self.clock:
            self.stats.idle_time += wallclock - self.clock
            self.clock = wallclock

    def schedule_flush(self, dst_lp: int, at: float, generation: int) -> None:
        """Installed by the executive (transport host hook)."""
        raise SchedulingError("LP is not attached to an executive")

    def note_physical_sent(self) -> None:
        self.stats.physical_messages_sent += 1

    # ------------------------------------------------------------------ #
    # delivery path
    # ------------------------------------------------------------------ #
    def receive_physical(self, size_bytes: int, events: tuple[Event, ...]) -> None:
        """Receive one arrived physical message and deliver its events."""
        self.stats.physical_messages_received += 1
        self.stats.remote_events_received += len(events)
        self.charge(self.costs.physical_recv(size_bytes))
        for event in events:
            self.charge(self.costs.event_handle_cost)
            self.deliver_event(event)

    def deliver_event(self, event: Event) -> None:
        ctx = self.members.get(event.receiver)
        if ctx is None:
            if self.forward is not None:
                self.forward(event)
                return
            raise SchedulingError(
                f"event for object {event.receiver} delivered to LP {self.lp_id}"
            )
        if event.is_anti:
            self._handle_anti(ctx, event)
        else:
            self._handle_positive(ctx, event)

    def _handle_positive(self, ctx: ObjectContext, event: Event) -> None:
        last = ctx.iq.last_processed_key()
        if last is not None and event.key() < last:
            self._rollback(ctx, event.key(), primary=True)
        ctx.iq.insert_positive(event)

    def _handle_anti(self, ctx: ObjectContext, anti: Event) -> None:
        processed = ctx.iq.insert_anti(anti)
        if processed is not None:
            # The positive was already executed: roll back to just before
            # it, then annihilate the (now unprocessed) pair.
            self._rollback(ctx, processed.key(), primary=False)
            leftover = ctx.iq.insert_anti(anti)
            if leftover is not None:  # pragma: no cover - invariant
                raise CausalityViolationError(
                    "anti-message did not annihilate after rollback"
                )

    # ------------------------------------------------------------------ #
    # rollback machinery
    # ------------------------------------------------------------------ #
    def _rollback(self, ctx: ObjectContext, key: EventKey, *, primary: bool) -> None:
        stats = ctx.stats
        stats.rollbacks += 1
        if primary:
            stats.primary_rollbacks += 1
        else:
            stats.secondary_rollbacks += 1
        ctx.ckpt_window.rollbacks += 1

        rolled = ctx.iq.rollback(key)
        stats.events_rolled_back += len(rolled)

        snapshot = ctx.sq.restore_for(key)
        size = snapshot.state.size_bytes()
        self.charge(self.costs.rollback_base + self.costs.state_restore(size))
        stats.state_restores += 1
        ctx.state = self.snapshot_strategy.snapshot(snapshot.state)
        ctx.lvt = snapshot.lvt
        ctx.event_count = snapshot.event_count
        ctx.events_since_save = 0

        oracle = self.oracle
        if oracle.enabled:
            oracle.on_rollback(self.clock, self.lp_id, ctx.obj.name, key.recv_time)
            oracle.on_state_restore(
                self.clock, self.lp_id, ctx.obj.name, snapshot, ctx.state
            )

        # Undo sends caused at or after the rollback point, according to
        # the strategy currently in force at this object.
        undone = ctx.oq.rollback(key)
        if undone:
            if ctx.mode is Mode.AGGRESSIVE:
                monitoring = ctx.cancel_policy.monitoring
                for record in undone:
                    self._emit_anti(ctx, record)
                    if monitoring:
                        ctx.cmp_buffer.park(record, lazy=False)
            else:
                for record in undone:
                    ctx.cmp_buffer.park(record, lazy=True)

        # Coast forward: re-execute the surviving processed events that
        # came after the restored snapshot, with sends suppressed.
        coast_events_before = stats.coast_forward_events
        coast_cost_before = ctx.ckpt_window.coast_cost
        self._coast_forward(ctx, snapshot)

        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(
                "rollback", self.clock,
                lp=self.lp_id, obj=ctx.obj.name,
                cause="primary" if primary else "secondary",
                to=key.recv_time, restored_lvt=snapshot.lvt,
                depth=len(rolled), undone_sends=len(undone),
                coast_events=stats.coast_forward_events - coast_events_before,
                coast_cost=ctx.ckpt_window.coast_cost - coast_cost_before,
            )

    def _coast_forward(self, ctx: ObjectContext, snapshot: SavedState) -> None:
        processed = ctx.iq.processed
        start = len(processed)
        if snapshot.last_key is None:
            start = 0
        else:
            while start > 0 and processed[start - 1].key() > snapshot.last_key:
                start -= 1
        to_replay = processed[start:]
        if not to_replay:
            return
        ctx.coasting = True
        try:
            grain = ctx.obj.grain_factor
            for event in to_replay:
                ctx.lvt = event.recv_time
                try:
                    ctx.obj.execute_process(event.payload)
                except TimeWarpError:
                    raise
                except Exception as exc:
                    raise ApplicationError(
                        ctx.obj.name, event.recv_time, event.payload,
                        coasting=True,
                    ) from exc
                cost = self.costs.coast_forward_event(grain)
                self.charge(cost)
                ctx.ckpt_window.coast_events += 1
                ctx.ckpt_window.coast_cost += cost
                ctx.stats.coast_forward_events += 1
                ctx.event_count += 1
                ctx.events_since_save += 1
        finally:
            ctx.coasting = False

    def _emit_anti(self, ctx: ObjectContext, record: SentRecord) -> None:
        anti = record.event.anti_message()
        self.charge(self.costs.anti_send_cost)
        ctx.stats.antis_sent += 1
        self._route(anti)

    # ------------------------------------------------------------------ #
    # send path
    # ------------------------------------------------------------------ #
    def send_from(
        self, ctx: ObjectContext, dest: str, delay: VirtualTime, payload: Any
    ) -> None:
        if ctx.coasting:
            return  # previously sent messages are still correct
        receiver = self._resolve_name(dest)
        event = Event(
            sender=ctx.oid,
            receiver=receiver,
            send_time=ctx.lvt,
            recv_time=ctx.lvt + delay,
            payload=payload,
            serial=ctx.send_serial,
        )
        ctx.send_serial += 1
        ctx.stats.sends += 1

        if ctx.cmp_buffer.pending():
            self.charge(self.costs.lazy_compare_cost)
            entry = ctx.cmp_buffer.match(event)
            if entry is not None:
                self._resolve_comparison(ctx, hit=True, lazy_entry=entry.lazy)
                if entry.lazy:
                    # Lazy hit: the original message stands; re-own it under
                    # the regenerating event so a future rollback can still
                    # cancel it.  Nothing goes on the wire.
                    ctx.stats.sends_suppressed += 1
                    ctx.oq.record_send(entry.record.event, ctx.current_cause_key)
                    return
                # Lazy-aggressive hit: the original was already cancelled,
                # so the regenerated message must be sent normally.

        ctx.oq.record_send(event, ctx.current_cause_key)
        self._route(event)

    def _route(self, event: Event) -> None:
        dst_lp = self._lp_of(event.receiver)
        if dst_lp == self.lp_id:
            self.charge(self.costs.intra_send_cost)
            self.stats.intra_lp_events += 1
            self.deliver_event(event)
        else:
            self.stats.remote_events_sent += 1
            self.comm.enqueue(event)

    # ------------------------------------------------------------------ #
    # comparison resolution and controllers
    # ------------------------------------------------------------------ #
    def _resolve_comparison(self, ctx: ObjectContext, *, hit: bool, lazy_entry: bool) -> None:
        stats = ctx.stats
        stats.comparisons += 1
        if lazy_entry:
            if hit:
                stats.lazy_hits += 1
            else:
                stats.lazy_misses += 1
        else:
            if hit:
                stats.lazy_aggressive_hits += 1
            else:
                stats.lazy_aggressive_misses += 1
        ctx.cancel_policy.record(hit)
        ctx.comparisons_since_control += 1
        period = ctx.cancel_policy.period
        if period is not None and ctx.comparisons_since_control >= period:
            ctx.comparisons_since_control = 0
            self.charge(self.costs.control_invocation_cost)
            stats.control_invocations += 1
            old_mode = ctx.mode
            new_mode = ctx.cancel_policy.control()
            switched = new_mode is not old_mode
            if switched:
                ctx.mode = new_mode
                stats.mode_switches += 1
            tracer = self.tracer
            if tracer.enabled:
                policy = ctx.cancel_policy
                tracer.emit(
                    "ctrl.cancellation", self.clock,
                    lp=self.lp_id, obj=ctx.obj.name,
                    o=getattr(policy, "hit_ratio", 0.0),
                    old=old_mode.name.lower(), new=new_mode.name.lower(),
                    verdict=getattr(policy, "last_verdict", ""),
                    switched=switched,
                )

    def _expire_comparisons(self, ctx: ObjectContext, key: EventKey | None) -> None:
        expired = (
            ctx.cmp_buffer.expire_through(key)
            if key is not None
            else ctx.cmp_buffer.expire_all()
        )
        for entry in expired:
            self.charge(self.costs.lazy_compare_cost)
            if entry.lazy:
                self._emit_anti(ctx, entry.record)
            self._resolve_comparison(ctx, hit=False, lazy_entry=entry.lazy)

    def _run_checkpoint_control(self, ctx: ObjectContext) -> None:
        period = ctx.ckpt_policy.period
        if period is None:
            return
        ctx.events_since_ckpt_control += 1
        if ctx.events_since_ckpt_control < period:
            return
        ctx.events_since_ckpt_control = 0
        self.charge(self.costs.control_invocation_cost)
        ctx.stats.control_invocations += 1
        window = ctx.ckpt_window
        old_chi = ctx.chi
        new_interval = ctx.ckpt_policy.control(window.snapshot())
        ctx.chi = max(1, min(MAX_INTERVAL, int(new_interval)))
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(
                "ctrl.checkpoint", self.clock,
                lp=self.lp_id, obj=ctx.obj.name,
                o=window.ec / max(1, window.events),
                old=old_chi, new=ctx.chi,
                verdict=getattr(ctx.ckpt_policy, "last_verdict", "static"),
                events=window.events, saves=window.saves,
                save_cost=window.save_cost,
                coast_events=window.coast_events, coast_cost=window.coast_cost,
                rollbacks=window.rollbacks,
            )
        window.reset()

    # ------------------------------------------------------------------ #
    # forward execution
    # ------------------------------------------------------------------ #
    def next_work(self) -> tuple[ObjectContext, Event] | None:
        """Member with the lowest-key unprocessed event within the
        virtual-time horizon and the optimism window."""
        best_ctx: ObjectContext | None = None
        best_key: EventKey | None = None
        best_event: Event | None = None
        end_time = self.end_time
        if self.optimism_bound < end_time:
            end_time = self.optimism_bound
        for ctx in self._member_list:
            entry = ctx.iq.peek_next_entry()
            if entry is None:
                continue
            key, event = entry
            if event.recv_time > end_time:
                continue
            if best_key is None or key < best_key:
                best_ctx, best_key, best_event = ctx, key, event
        if best_ctx is None:
            return None
        return best_ctx, best_event  # type: ignore[return-value]

    def execute_one(self) -> bool:
        """Execute the LP's next event; False if the LP has no work."""
        work = self.next_work()
        if work is None:
            return False
        ctx, _ = work
        event = ctx.iq.pop_next()
        ctx.lvt = event.recv_time
        ctx.current_cause_key = event.key()
        try:
            ctx.obj.execute_process(event.payload)
        except TimeWarpError:
            raise
        except Exception as exc:
            raise ApplicationError(
                ctx.obj.name, event.recv_time, event.payload
            ) from exc
        self.charge(self.costs.event_execution(ctx.obj.grain_factor))
        ctx.event_count += 1
        ctx.events_since_save += 1
        ctx.stats.events_executed += 1
        ctx.ckpt_window.events += 1

        if ctx.events_since_save >= ctx.chi:
            self._save_state(ctx, event.key())

        # Pending comparisons caused at or before this event can no longer
        # be regenerated: resolve them as misses.
        if ctx.cmp_buffer.pending():
            self._expire_comparisons(ctx, event.key())

        self._run_checkpoint_control(ctx)
        return True

    def _save_state(self, ctx: ObjectContext, last_key: EventKey) -> None:
        size = ctx.state.size_bytes()
        cost = self.costs.state_save(size)
        self.charge(cost)
        saved = SavedState(
            last_key=last_key,
            lvt=ctx.lvt,
            event_count=ctx.event_count,
            state=self.snapshot_strategy.snapshot(ctx.state),
            save_cost=cost,
        )
        ctx.sq.save(saved)
        oracle = self.oracle
        if oracle.enabled:
            oracle.on_state_save(self.clock, self.lp_id, ctx.obj.name, saved)
        ctx.events_since_save = 0
        ctx.stats.state_saves += 1
        ctx.ckpt_window.saves += 1
        ctx.ckpt_window.save_cost += cost

    def on_idle(self) -> None:
        """Called by the executive when the LP runs out of work: flush
        aggregates and resolve dangling comparisons so the system drains."""
        for ctx in self._member_list:
            if not ctx.cmp_buffer.pending():
                continue
            event = ctx.iq.peek_next()
            if event is None or event.recv_time > self.end_time:
                self._expire_comparisons(ctx, None)
        if self.comm is not None:
            flushed = self.comm.flush_all()
            self.stats.aggregates_flushed_idle += flushed

    # ------------------------------------------------------------------ #
    # GVT support and fossil collection
    # ------------------------------------------------------------------ #
    def local_min(self) -> VirtualTime:
        """Lower bound on any virtual time this LP can still affect."""
        best = float("inf")
        arena = self.arena
        if arena is not None:
            # One vectorized scan of the arena's time column covers every
            # member's unprocessed events at once (the per-member heap
            # peeks below would each skip tombstones in Python).
            t = arena.min_alive_time()
            if t is not None:
                best = t
            for ctx in self._member_list:
                t = ctx.cmp_buffer.min_live_time()
                if t is not None and t < best:
                    best = t
            if self.comm is not None:
                t = self.comm.min_buffered_time()
                if t is not None and t < best:
                    best = t
            return best
        for ctx in self._member_list:
            t = ctx.iq.min_unprocessed_time()
            if t is not None and t < best:
                best = t
            t = ctx.cmp_buffer.min_live_time()
            if t is not None and t < best:
                best = t
        if self.comm is not None:
            t = self.comm.min_buffered_time()
            if t is not None and t < best:
                best = t
        return best

    def fossil_collect(self, gvt: VirtualTime, *, final: bool = False) -> int:
        """Commit history below ``gvt``; returns committed event count.

        The state queue is collected first so the input queue keeps every
        event newer than the oldest *retained* snapshot — those events may
        still be replayed by a coast-forward.  The ``final`` pass (at
        termination) commits everything unconditionally.
        """
        committed_total = 0
        items = 0
        self._sample_memory()
        for ctx in self._member_list:
            if final:
                committed = ctx.iq.fossil_collect(gvt, None)
            else:
                items += ctx.sq.fossil_collect(gvt)
                base = ctx.sq.entries[0] if ctx.sq.entries else None
                if base is None or base.last_key is None:
                    committed = []
                else:
                    committed = ctx.iq.fossil_collect(gvt, base.last_key)
            if committed:
                ctx.stats.events_committed += len(committed)
                committed_total += len(committed)
                items += len(committed)
                if self.trace_sink is not None:
                    for event in committed:
                        self.trace_sink(event)
            items += ctx.oq.fossil_collect(gvt)
        if items:
            self.charge(self.costs.fossil_item_cost * items)
        self.stats.fossil_collections += 1
        self.stats.fossil_items += items
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(
                "fossil.collect", self.clock,
                lp=self.lp_id, gvt=gvt, committed=committed_total,
                items=items, final=final,
            )
        return committed_total

    def _sample_memory(self) -> None:
        """High-water marks of the history queues, sampled pre-collection
        (their natural maximum within each GVT interval)."""
        state_entries = 0
        state_bytes = 0
        history_events = 0
        for ctx in self._member_list:
            entries = ctx.sq.entries
            state_entries += len(entries)
            state_bytes += sum(e.state.size_bytes() for e in entries)
            history_events += len(ctx.iq.processed) + ctx.iq.future_count()
            history_events += len(ctx.oq)
        stats = self.stats
        if state_entries > stats.peak_state_entries:
            stats.peak_state_entries = state_entries
        if state_bytes > stats.peak_state_bytes:
            stats.peak_state_bytes = state_bytes
        if history_events > stats.peak_history_events:
            stats.peak_history_events = history_events

    def finalize(self) -> None:
        for ctx in self._member_list:
            ctx.obj.finalize()

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def has_work(self, *, ignore_window: bool = False) -> bool:
        """Whether the LP has executable events.

        ``ignore_window=True`` asks whether *any* event below the horizon
        remains, even if the optimism window currently blocks it —
        termination detection must not confuse "throttled" with "done".
        """
        if not ignore_window:
            return self.next_work() is not None
        for ctx in self._member_list:
            event = ctx.iq.peek_next()
            if event is not None and event.recv_time <= self.end_time:
                return True
        return False

    def object_stats(self) -> dict[str, ObjectStats]:
        return {ctx.obj.name: ctx.stats for ctx in self._member_list}
