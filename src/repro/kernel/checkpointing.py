"""Periodic check-pointing: policies and the cost window they observe.

The kernel saves an object's state every ``interval`` processed events
(periodic check-pointing).  A rollback then restores the newest snapshot
preceding the straggler and *coasts forward*, re-executing the intermediate
events with sends suppressed.  The interval trades state-saving cost
against coast-forward cost; the paper's dynamic controller
(:mod:`repro.core.checkpoint_controller`) minimizes their sum ``Ec``.

This module holds the kernel-facing pieces: the policy protocol, the
per-object accounting window handed to the policy at each control
invocation, and the static policy (the paper's baseline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from .errors import ConfigurationError

#: Upper bound on checkpoint intervals; prevents runaway growth when a
#: model never rolls back (coast cost 0 would push the interval forever).
MAX_INTERVAL = 256


@dataclass(slots=True)
class CheckpointWindow:
    """What one object observed since the previous control invocation.

    ``save_cost`` and ``coast_cost`` are modelled CPU microseconds; their
    sum is the paper's check-pointing cost index ``Ec``.
    """

    events: int = 0
    saves: int = 0
    save_cost: float = 0.0
    coast_events: int = 0
    coast_cost: float = 0.0
    rollbacks: int = 0

    @property
    def ec(self) -> float:
        """The paper's cost index: state saving plus coasting forward."""
        return self.save_cost + self.coast_cost

    def reset(self) -> None:
        self.events = 0
        self.saves = 0
        self.save_cost = 0.0
        self.coast_events = 0
        self.coast_cost = 0.0
        self.rollbacks = 0

    def snapshot(self) -> "CheckpointWindow":
        return CheckpointWindow(
            events=self.events,
            saves=self.saves,
            save_cost=self.save_cost,
            coast_events=self.coast_events,
            coast_cost=self.coast_cost,
            rollbacks=self.rollbacks,
        )


class CheckpointPolicy(Protocol):
    """Per-object checkpoint-interval selector.

    The kernel invokes :meth:`control` every :attr:`period` processed
    events (charging control cost); between invocations it checkpoints
    every :meth:`interval` events.
    """

    #: control invocation period in processed events; ``None`` = static
    period: int | None

    def initial_interval(self) -> int: ...

    def control(self, window: CheckpointWindow) -> int:
        """Observe the window, return the interval for the next window."""
        ...


@dataclass
class StaticCheckpoint:
    """Fixed checkpoint interval — the paper's "Periodic Checkpointing"."""

    interval: int = 1
    period: int | None = None

    def __post_init__(self) -> None:
        if not 1 <= self.interval <= MAX_INTERVAL:
            raise ConfigurationError(
                f"checkpoint interval must be in [1, {MAX_INTERVAL}], got {self.interval}"
            )

    def initial_interval(self) -> int:
        return self.interval

    def control(self, window: CheckpointWindow) -> int:  # pragma: no cover
        return self.interval


def every_event() -> StaticCheckpoint:
    """Save state after every event (WARPED's default, chi = 1)."""
    return StaticCheckpoint(1)
