"""Cancellation strategies: aggressive, lazy, and the comparison machinery.

Aggressive cancellation sends anti-messages the moment a rollback undoes a
send.  Lazy cancellation parks undone sends and lets forward execution
demonstrate, by comparing regenerated output with the parked originals,
whether the originals were actually wrong — equal output is a *lazy hit*
(nothing is sent at all), while an original that is never regenerated is
cancelled once execution passes the point that produced it.

The same comparison machinery runs **passively** under aggressive
cancellation when the dynamic-cancellation controller needs the Hit Ratio:
the anti-messages have already gone out, but the kernel still checks
whether regenerated output equals the cancelled output (a *lazy-aggressive
hit* in the paper's terms).  This passive comparison has a small CPU cost,
which is exactly what the paper's PS/PA variants save by locking a strategy
in and switching the monitor off.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass
from typing import Any, Iterator, Protocol

from .event import Event, EventKey, SentRecord, VirtualTime


class Mode(enum.Enum):
    """The two cancellation strategies of the paper."""

    AGGRESSIVE = "aggressive"
    LAZY = "lazy"


@dataclass(slots=True)
class Comparison:
    """A parked output message awaiting comparison with regenerated output.

    ``lazy`` records the strategy in force when the send was undone:
    lazy entries are *live* messages (the original was never cancelled, so
    a miss must emit its anti-message); aggressive entries are monitor-only
    (the anti-message is already on the wire).

    ``signature`` is the :meth:`Event.content` tuple, computed once at
    park time: every index update, match and expiry keys on it, and
    rebuilding the tuple per lookup showed up in the profile.
    """

    record: SentRecord
    lazy: bool
    seq: int
    signature: tuple[int, VirtualTime, VirtualTime, Any] = None  # type: ignore[assignment]
    resolved: bool = False

    def content(self) -> tuple[int, VirtualTime, VirtualTime, Any]:
        return self.signature


class ComparisonBuffer:
    """Parked sends of one simulation object, indexed for O(1) matching.

    Matching is by :meth:`Event.content` equality; expiry is by the
    total-order key of the event that originally produced the send — once
    forward execution passes that key, the original can no longer be
    regenerated and the comparison resolves as a miss.
    """

    __slots__ = ("_by_content", "_by_key", "_seq", "_live_lazy")

    def __init__(self) -> None:
        self._by_content: dict[Any, list[Comparison]] = {}
        self._by_key: list[tuple[EventKey, int, Comparison]] = []
        self._seq = 0
        #: unresolved *lazy* entries (anti-messages possibly still owed);
        #: lets the GVT bound skip the heap scan in the common empty case
        self._live_lazy = 0

    def park(self, record: SentRecord, lazy: bool) -> Comparison:
        entry = Comparison(
            record=record, lazy=lazy, seq=self._seq,
            signature=record.event.content(),
        )
        self._seq += 1
        self._by_content.setdefault(entry.signature, []).append(entry)
        heapq.heappush(self._by_key, (record.cause_key, entry.seq, entry))
        if lazy:
            self._live_lazy += 1
        return entry

    def match(self, event: Event) -> Comparison | None:
        """Resolve and return the oldest parked entry equal to ``event``."""
        signature = event.content()
        bucket = self._by_content.get(signature)
        if not bucket:
            return None
        entry = bucket.pop(0)
        if not bucket:
            del self._by_content[signature]
        entry.resolved = True
        if entry.lazy:
            self._live_lazy -= 1
        return entry

    def _pop_expired(self, limit: EventKey | None) -> Iterator[Comparison]:
        while self._by_key:
            cause_key, _, entry = self._by_key[0]
            if limit is not None and cause_key > limit:
                break
            heapq.heappop(self._by_key)
            if entry.resolved:
                continue
            entry.resolved = True
            if entry.lazy:
                self._live_lazy -= 1
            bucket = self._by_content.get(entry.signature)
            if bucket is not None:
                bucket.remove(entry)
                if not bucket:
                    del self._by_content[entry.signature]
            yield entry

    def expire_through(self, key: EventKey) -> list[Comparison]:
        """Unresolved entries caused at or before ``key`` (now misses)."""
        return list(self._pop_expired(key))

    def expire_all(self) -> list[Comparison]:
        """Flush every unresolved entry (object went idle)."""
        return list(self._pop_expired(None))

    def min_live_time(self) -> VirtualTime | None:
        """Smallest receive time among unresolved *lazy* entries.

        GVT must not advance past this: a miss on such an entry emits an
        anti-message with that receive time.
        """
        if not self._live_lazy:  # common case: nothing owed, skip the scan
            return None
        best: VirtualTime | None = None
        remaining = self._live_lazy  # stop once every live entry is seen:
        # resolved tombstones can dominate the heap between expiry sweeps
        for _, _, entry in self._by_key:
            if not entry.resolved and entry.lazy:
                t = entry.record.event.recv_time
                if best is None or t < best:
                    best = t
                remaining -= 1
                if not remaining:
                    break
        return best

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._by_content.values())

    def pending(self) -> bool:
        return bool(self._by_content)


class CancellationPolicy(Protocol):
    """Per-object strategy selector (static or feedback-controlled).

    The kernel calls :meth:`record` once per resolved comparison (cheap
    sample collection) and :meth:`control` every :attr:`period` resolved
    comparisons — the control invocation is what the cost model charges.
    """

    #: control invocation period in comparisons; ``None`` disables control
    period: int | None

    def initial_mode(self) -> Mode: ...

    @property
    def monitoring(self) -> bool:
        """Whether passive comparison runs under aggressive cancellation."""
        ...

    def record(self, hit: bool) -> None: ...

    def control(self) -> Mode: ...


@dataclass
class StaticCancellation:
    """Fixed-strategy policy: the classic compile-time switch.

    ``monitor`` is normally False (no passive-comparison cost); tests turn
    it on to observe hit ratios without affecting behaviour.
    """

    mode: Mode = Mode.AGGRESSIVE
    monitor: bool = False
    period: int | None = None
    hits: int = 0
    misses: int = 0

    def initial_mode(self) -> Mode:
        return self.mode

    @property
    def monitoring(self) -> bool:
        return self.monitor

    def record(self, hit: bool) -> None:
        if hit:
            self.hits += 1
        else:
            self.misses += 1

    def control(self) -> Mode:  # pragma: no cover - never invoked (period None)
        return self.mode


def aggressive() -> StaticCancellation:
    """Factory for plain aggressive cancellation (paper's ``AC``)."""
    return StaticCancellation(Mode.AGGRESSIVE)


def lazy() -> StaticCancellation:
    """Factory for plain lazy cancellation (paper's ``LC``)."""
    return StaticCancellation(Mode.LAZY)
