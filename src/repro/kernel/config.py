"""Simulation configuration: the paper's notion of *configuration* as data.

A :class:`SimulationConfig` bundles the sub-algorithm selections and
parameter settings of the simulator — cancellation strategy, checkpoint
policy, aggregation policy, GVT algorithm and period — together with the
modelled platform (cost model, network, per-LP speed factors).  The bench
harness sweeps these objects to regenerate the paper's figures.

Policy fields are *factories* (one policy instance is created per object,
or per LP for aggregation) and receive the thing they will govern, so an
application can, for example, give disks and forks different controllers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from ..cluster.costmodel import DEFAULT_COSTS, DEFAULT_NETWORK, CostModel, NetworkModel
from .arena import FASTPATHS
from .cancellation import CancellationPolicy, StaticCancellation, Mode
from .checkpointing import CheckpointPolicy, StaticCheckpoint
from .errors import ConfigurationError
from .simobject import SimulationObject
from .state import SnapshotStrategy, resolve_snapshot_strategy

if TYPE_CHECKING:  # pragma: no cover - avoids a kernel <-> comm import cycle
    from ..comm.aggregation import AggregationPolicy
    from ..control.meta import MetaController
    from ..core.window_controller import TimeWindowPolicy
    from ..faults.plan import FaultPlan
    from ..oracle.invariants import InvariantOracle
    from ..trace.tracer import Tracer

CancellationFactory = Callable[[SimulationObject], CancellationPolicy]
CheckpointFactory = Callable[[SimulationObject], CheckpointPolicy]
AggregationFactory = Callable[[int], "AggregationPolicy"]
TimeWindowFactory = Callable[[], "TimeWindowPolicy"]
MetaControlFactory = Callable[[], "MetaController"]


def default_cancellation(_obj: SimulationObject) -> CancellationPolicy:
    """WARPED's default: aggressive cancellation, no monitoring."""
    return StaticCancellation(Mode.AGGRESSIVE)


def default_checkpoint(_obj: SimulationObject) -> CheckpointPolicy:
    """WARPED's default: save state after every event."""
    return StaticCheckpoint(1)


def default_aggregation(_lp_id: int) -> "AggregationPolicy":
    """No aggregation: one physical message per remote event."""
    from ..comm.aggregation import NoAggregation

    return NoAggregation()


_CHURN_KINDS = ("migrate", "join", "leave")


def validate_churn_plan(plan: dict) -> None:
    """Structurally validate a churn plan (see :attr:`SimulationConfig.churn`).

    Raises :class:`ConfigurationError` on malformed plans; semantic
    impossibilities (e.g. a ``leave`` when one worker remains) are legal
    here and skipped at run time.
    """
    if not isinstance(plan, dict):
        raise ConfigurationError("churn must be a dict")
    unknown = set(plan) - {"seed", "steps"}
    if unknown:
        raise ConfigurationError(
            f"unknown churn key(s): {sorted(unknown)}"
        )
    seed = plan.get("seed", 0)
    if not isinstance(seed, int):
        raise ConfigurationError("churn seed must be an int")
    steps = plan.get("steps", [])
    if not isinstance(steps, (list, tuple)):
        raise ConfigurationError("churn steps must be a list")
    for i, step in enumerate(steps):
        if not isinstance(step, dict):
            raise ConfigurationError(f"churn step {i} must be a dict")
        extra = set(step) - {"at", "kind", "count"}
        if extra:
            raise ConfigurationError(
                f"churn step {i}: unknown key(s) {sorted(extra)}"
            )
        at = step.get("at")
        if not isinstance(at, int) or at < 1:
            raise ConfigurationError(
                f"churn step {i}: 'at' must be a GVT-commit index >= 1"
            )
        kind = step.get("kind")
        if kind not in _CHURN_KINDS:
            raise ConfigurationError(
                f"churn step {i}: unknown kind {kind!r} "
                f"(known: {', '.join(_CHURN_KINDS)})"
            )
        count = step.get("count", 1)
        if not isinstance(count, int) or count < 1:
            raise ConfigurationError(
                f"churn step {i}: 'count' must be an int >= 1"
            )


@dataclass
class SimulationConfig:
    """Everything that parameterizes one Time Warp run."""

    cancellation: CancellationFactory = default_cancellation
    checkpoint: CheckpointFactory = default_checkpoint
    aggregation: AggregationFactory = default_aggregation

    #: execution backend: "modelled" runs every LP in this process on the
    #: deterministic modelled cluster; "parallel" shards LPs across
    #: ``workers`` OS processes with batched IPC and distributed GVT
    #: (docs/parallel.md).  Parallel runs are validated differentially,
    #: not tick-for-tick.
    backend: str = "modelled"
    #: worker-process count for the parallel backend (ignored otherwise)
    workers: int = 1

    #: inter-shard data wire for the parallel backend: "shm" (the
    #: default) carries packed binary frames through shared-memory SPSC
    #: rings with the queues demoted to a control/doorbell channel;
    #: "queue" is the pure-Python fallback that pickles every DataBatch
    #: over mp.Queue (docs/parallel.md, "Wire formats").  Runs on either
    #: wire commit byte-identical results; "shm" degrades to "queue" at
    #: run time if shared memory cannot be allocated.
    wire: str = "shm"

    #: hot-loop implementation for the Time Warp kernel: "numpy" backs
    #: each LP's input queues with a struct-of-arrays
    #: :class:`repro.kernel.arena.EventArena` (vectorized annihilation,
    #: GVT local-min scans and tombstone compaction); "python" keeps the
    #: pure ``heapq`` structures; ``None`` (the default) auto-selects
    #: "numpy" when numpy is importable.  Both paths commit
    #: byte-identical results, and "numpy" silently degrades to "python"
    #: on interpreters without numpy — the same contract as ``wire``.
    fastpath: "str | None" = None

    #: pin each parallel worker to one CPU core via os.sched_setaffinity
    #: (ROOT-Sim style).  Off by default: binding helps when cores >=
    #: workers and hurts when the fleet is oversubscribed.  Ignored on
    #: platforms without sched_setaffinity and by the modelled backend.
    pin_cores: bool = False

    #: how the kernel copies states for checkpoints and restores: a
    #: registry name ("copy", "pickle", "deepcopy") or a
    #: :class:`repro.kernel.state.SnapshotStrategy` instance.  "copy" is
    #: the measured default (see docs/benchmarking.md, ``snapshot.*``
    #: micro-benchmarks); "pickle" wins for large container-heavy states.
    snapshot: "str | SnapshotStrategy" = "copy"

    #: "omniscient" (exact, centrally computed) or "mattern" (distributed)
    gvt_algorithm: str = "omniscient"
    #: wall-clock µs between GVT round initiations
    gvt_period: float = 50_000.0

    #: optional optimism throttling (extension): a factory for the
    #: bounded-time-window policy, e.g.
    #: ``lambda: AdaptiveTimeWindow()``.  ``None`` = pure Time Warp.
    time_window: TimeWindowFactory | None = None

    #: optional unified control plane (docs/control.md): a factory for a
    #: :class:`repro.control.MetaController` driving the meta-managed
    #: global knobs (GVT period, snapshot strategy) at GVT rounds, e.g.
    #: ``lambda: MetaController()``.  ``None`` = those knobs stay static.
    meta_control: MetaControlFactory | None = None

    #: external runtime adjustments (paper reference [26]): a list of
    #: ``(wallclock_us, adjustment)`` pairs; see :mod:`repro.core.external`
    external_script: list = field(default_factory=list)

    #: optional :class:`repro.stats.timeline.Timeline` that receives one
    #: snapshot per GVT round (controller trajectories over the run)
    timeline: object | None = None

    #: optional :class:`repro.trace.Tracer` receiving structured records
    #: for every controller decision, rollback, GVT round, fossil
    #: collection and transport flush (docs/observability.md).  ``None``
    #: (the default) costs one attribute check per potential emission.
    tracer: "Tracer | None" = None

    #: events an LP executes per executive turn (arrival polling interval)
    events_per_turn: int = 1

    #: virtual-time horizon; events beyond it are never executed
    end_time: float = float("inf")

    costs: CostModel = DEFAULT_COSTS
    network: NetworkModel = DEFAULT_NETWORK

    #: per-LP CPU speed factor (>1 = slower workstation); keyed by LP id.
    #: LPs not listed run at factor 1.0.  Heterogeneity is one source of
    #: the LVT skew that produces rollbacks on a real NOW.
    lp_speed_factors: dict[int, float] = field(default_factory=dict)

    #: safety valve for tests: abort after this many executed events
    max_executed_events: int | None = None

    #: record committed (object, time, payload) triples for equivalence tests
    record_trace: bool = False

    #: optional :class:`repro.faults.FaultPlan`: replace the perfect wire
    #: with a fault-injecting one (docs/robustness.md).  ``None`` (the
    #: default) keeps the zero-overhead perfect wire.
    faults: "FaultPlan | None" = None

    #: optional :class:`repro.oracle.InvariantOracle` checking Time Warp
    #: invariants during the run (docs/robustness.md).  ``None`` (the
    #: default) costs one attribute check per potential hook.
    oracle: "InvariantOracle | None" = None

    #: object placement over LPs/workers: "static" pins the initial
    #: partition for the whole run; "dynamic" puts placement under
    #: on-line control — the MetaController's PlacementController on the
    #: modelled backend, the coordinator-side load balancer (live LP
    #: migration) on the parallel backend (docs/control.md, the
    #: ``placement`` knob).
    placement: str = "static"

    #: optional scripted churn plan for the parallel backend: seeded
    #: migration / worker-join / worker-leave steps executed at GVT
    #: commits, e.g. ``{"seed": 7, "steps": [{"at": 1, "kind": "migrate",
    #: "count": 2}, {"at": 2, "kind": "leave"}]}`` (docs/parallel.md).
    churn: "dict | None" = None

    def validate(self) -> None:
        if self.backend not in ("modelled", "parallel"):
            raise ConfigurationError(f"unknown backend {self.backend!r}")
        if self.workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if self.backend == "parallel":
            # Features whose semantics are tied to the single-process
            # modelled cluster; fail loudly instead of silently ignoring.
            unsupported = [
                ("faults", self.faults is not None),
                ("time_window", self.time_window is not None),
                ("meta_control", self.meta_control is not None),
                ("external_script", bool(self.external_script)),
                ("timeline", self.timeline is not None),
                ("record_trace", self.record_trace),
                ("tracer", self.tracer is not None),
            ]
            offending = [name for name, active in unsupported if active]
            if offending:
                raise ConfigurationError(
                    f"backend='parallel' does not support: "
                    f"{', '.join(offending)} (see docs/parallel.md; "
                    "per-shard tracing uses ParallelSimulation(trace_dir=...))"
                )
        if self.wire not in ("shm", "queue"):
            raise ConfigurationError(
                f"unknown wire {self.wire!r} (known: 'shm', 'queue')"
            )
        if self.fastpath is not None and self.fastpath not in FASTPATHS:
            raise ConfigurationError(
                f"unknown fastpath {self.fastpath!r} "
                "(known: 'python', 'numpy'; None = auto)"
            )
        if self.gvt_algorithm not in ("omniscient", "mattern"):
            raise ConfigurationError(
                f"unknown GVT algorithm {self.gvt_algorithm!r}"
            )
        if self.gvt_period <= 0:
            raise ConfigurationError("gvt_period must be positive")
        if self.events_per_turn < 1:
            raise ConfigurationError("events_per_turn must be >= 1")
        for lp_id, factor in self.lp_speed_factors.items():
            if factor <= 0:
                raise ConfigurationError(
                    f"speed factor for LP {lp_id} must be positive, got {factor}"
                )
        if self.faults is not None:
            self.faults.validate()
        if self.placement not in ("static", "dynamic"):
            raise ConfigurationError(
                f"unknown placement {self.placement!r} "
                "(known: 'static', 'dynamic')"
            )
        if self.churn is not None:
            if self.backend != "parallel":
                raise ConfigurationError(
                    "churn plans script live migration and worker "
                    "join/leave, which only the parallel backend executes "
                    "(docs/parallel.md)"
                )
            validate_churn_plan(self.churn)
        resolve_snapshot_strategy(self.snapshot)  # raises on a bad spec

    def costs_for_lp(self, lp_id: int) -> CostModel:
        factor = self.lp_speed_factors.get(lp_id, 1.0)
        return self.costs if factor == 1.0 else self.costs.scaled(factor)
