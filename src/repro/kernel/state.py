"""Application state protocol, snapshot strategies and saved-state records.

Time Warp objects must expose copyable state so the kernel can checkpoint
and restore it.  The contract mirrors WARPED's ``BasicState``:

* ``copy()`` returns a deep, independent snapshot;
* ``size_bytes()`` reports the modelled size, which the cost model charges
  per checkpoint (large states make frequent checkpointing expensive —
  the whole reason dynamic checkpoint intervals matter);
* equality is *value* equality, used by tests to verify that rollback +
  coast-forward reproduces the exact pre-straggler state.

:class:`RecordState` gives applications a dataclass-friendly base: any
dataclass whose fields are immutables, lists/dicts of immutables, or nested
``RecordState`` values inherits a correct ``copy``/``size_bytes``/``__eq__``.

*How* the kernel takes a snapshot is pluggable (the checkpoint hot path is
one of the costs the paper's controllers reason about, so it should be a
measured choice, not a hard-coded one): a :class:`SnapshotStrategy` turns a
live state into an independent snapshot.  ``repro-bench perf`` measures the
strategies against each other (``snapshot.*`` micro-benchmarks); the
default is selected per run via ``SimulationConfig.snapshot``.
"""

from __future__ import annotations

import copy as _copy
import dataclasses
import pickle
from dataclasses import dataclass
from typing import Any, Protocol, runtime_checkable

from .errors import ConfigurationError
from .event import EventKey, VirtualTime, payload_size_bytes

try:  # optional fast path for array-valued state fields
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on bare installs
    _np = None


@runtime_checkable
class AppState(Protocol):
    """Structural protocol every simulation-object state must satisfy."""

    def copy(self) -> "AppState":
        """Return an independent snapshot of this state."""
        ...

    def size_bytes(self) -> int:
        """Modelled size of the state in bytes (drives checkpoint cost)."""
        ...


def _copy_value(value: Any) -> Any:
    """Deep-copy a state field without the generality (and cost) of
    :func:`copy.deepcopy`.

    Supports the field types :class:`RecordState` documents.  Unknown
    mutable objects must themselves expose ``copy()``.  Exact-type checks
    come first: the overwhelming majority of state fields are plain ints,
    floats, strings, lists and dicts, and ``type(x) is T`` beats an
    ``isinstance`` chain on this path (run per field per checkpoint).
    """
    kind = type(value)
    if kind is int or kind is float or kind is str or value is None or kind is bool:
        return value
    if kind is list:
        return [_copy_value(item) for item in value]
    if kind is dict:
        return {key: _copy_value(item) for key, item in value.items()}
    if _np is not None and kind is _np.ndarray:
        # struct-of-arrays states: one C memcpy instead of a field walk
        return value.copy()
    if isinstance(value, (int, float, str, bytes, bool, tuple, frozenset)):
        # tuples may contain mutables in theory; the documented contract is
        # that tuple fields hold immutables, so sharing is safe.
        return value
    if isinstance(value, list):
        return [_copy_value(item) for item in value]
    if isinstance(value, dict):
        return {key: _copy_value(item) for key, item in value.items()}
    if isinstance(value, set):
        return set(value)
    if hasattr(value, "copy"):
        return value.copy()
    raise TypeError(
        f"state field of type {type(value).__name__} is not copyable; "
        "use immutables, list/dict/set containers, or objects with copy()"
    )


def _value_size(value: Any) -> int:
    """Modelled byte size of a state field (same spirit as payload sizes)."""
    if _np is not None and type(value) is _np.ndarray:
        return 8 + value.nbytes
    if isinstance(value, list):
        return 8 + sum(_value_size(item) for item in value)
    if isinstance(value, dict):
        return 8 + sum(_value_size(k) + _value_size(v) for k, v in value.items())
    if isinstance(value, (set, frozenset)):
        return 8 + sum(_value_size(item) for item in value)
    if hasattr(value, "size_bytes") and not isinstance(value, (int, float)):
        return int(value.size_bytes())
    return payload_size_bytes(value)


#: Per-class cache of dataclass field names.  ``dataclasses.fields()``
#: rebuilds a tuple of Field objects on every call, and the field walk
#: runs on every checkpoint save, rollback restore and state comparison —
#: the kernel's single hottest allocation site before this cache.
_FIELD_NAMES: dict[type, tuple[str, ...]] = {}


def _field_names(cls: type) -> tuple[str, ...]:
    names = _FIELD_NAMES.get(cls)
    if names is None:
        names = tuple(f.name for f in dataclasses.fields(cls))
        _FIELD_NAMES[cls] = names
    return names


@dataclass
class RecordState:
    """Base class turning any dataclass into a valid :class:`AppState`.

    Subclasses should be declared with ``@dataclass`` and fields drawn from
    the supported types (immutables, lists/dicts/sets thereof, or nested
    states).  ``copy`` walks the fields, so it stays correct as models
    evolve without per-class boilerplate.
    """

    def copy(self):
        cls = type(self)
        clone = cls.__new__(cls)
        for name in _field_names(cls):
            setattr(clone, name, _copy_value(getattr(self, name)))
        return clone

    def size_bytes(self) -> int:
        return sum(
            _value_size(getattr(self, name)) for name in _field_names(type(self))
        )

    def __eq__(self, other: object) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return all(
            getattr(self, name) == getattr(other, name)
            for name in _field_names(type(self))
        )

    __hash__ = None  # type: ignore[assignment]  # states are mutable


# --------------------------------------------------------------------- #
# snapshot strategies
# --------------------------------------------------------------------- #
class SnapshotStrategy(Protocol):
    """Turns a live application state into an independent snapshot."""

    #: short identifier (used by config specs and benchmark names)
    name: str

    def snapshot(self, state: AppState) -> AppState:
        """Return a deep, independent copy of ``state``."""
        ...


class CopySnapshot:
    """Delegate to the state's own ``copy()`` (the WARPED contract).

    This is the default: application ``copy()`` implementations (or the
    :class:`RecordState` field walk) know their own structure and beat the
    generic serializers on the small, flat states PDES models carry.
    """

    name = "copy"

    def snapshot(self, state: AppState) -> AppState:
        return state.copy()


class PickleSnapshot:
    """Pickle round-trip: ``loads(dumps(state))``.

    Runs the copy loop in C and honours ``__getstate__``/``__setstate__``,
    so states that define a reduced pickled form (dropping caches or
    derived fields) get that fast path automatically.  Wins over
    :class:`CopySnapshot` once states grow large container fields.
    """

    name = "pickle"

    def snapshot(self, state: AppState) -> AppState:
        return pickle.loads(pickle.dumps(state, pickle.HIGHEST_PROTOCOL))


class DeepcopySnapshot:
    """:func:`copy.deepcopy` — the generality fallback.

    Handles arbitrary object graphs (cycles, shared sub-objects) that the
    structured strategies reject; pays for it on every call.  Exists so an
    application with exotic state can still run, and so the benchmark
    suite can show what the generality costs.
    """

    name = "deepcopy"

    def snapshot(self, state: AppState) -> AppState:
        return _copy.deepcopy(state)


class ArraySnapshot:
    """Block-copy snapshot for array-heavy states (the numpy fast path).

    Walks :class:`RecordState` fields once and copies each ``ndarray``
    field with ``ndarray.copy()`` — a single C memcpy per array, no
    per-element dispatch — including lists of arrays (struct-of-arrays
    states).  Non-array fields, and states that are not ``RecordState``
    dataclasses, fall back to the :class:`CopySnapshot` semantics, and the
    whole strategy degrades to ``copy`` when numpy is absent, so it is
    always safe to select.
    """

    name = "array"

    def snapshot(self, state: AppState) -> AppState:
        if _np is None or not isinstance(state, RecordState):
            return state.copy()
        ndarray = _np.ndarray
        cls = type(state)
        clone = cls.__new__(cls)
        for name in _field_names(cls):
            value = getattr(state, name)
            kind = type(value)
            if kind is ndarray:
                setattr(clone, name, value.copy())
            elif (
                kind is list
                and value
                and all(type(item) is ndarray for item in value)
            ):
                setattr(clone, name, [item.copy() for item in value])
            else:
                setattr(clone, name, _copy_value(value))
        return clone


#: Registry of named strategies (``SimulationConfig.snapshot`` specs).
SNAPSHOT_STRATEGIES: dict[str, type] = {
    "copy": CopySnapshot,
    "pickle": PickleSnapshot,
    "deepcopy": DeepcopySnapshot,
    "array": ArraySnapshot,
}

#: Shared default instance (strategies are stateless).
COPY_SNAPSHOT = CopySnapshot()


def resolve_snapshot_strategy(spec: "str | SnapshotStrategy") -> SnapshotStrategy:
    """Resolve a config spec — a registry name or a strategy instance."""
    if isinstance(spec, str):
        try:
            return SNAPSHOT_STRATEGIES[spec]()
        except KeyError:
            raise ConfigurationError(
                f"unknown snapshot strategy {spec!r}; "
                f"choose from {sorted(SNAPSHOT_STRATEGIES)}"
            ) from None
    if not hasattr(spec, "snapshot"):
        raise ConfigurationError(
            f"snapshot strategy {spec!r} does not implement snapshot()"
        )
    return spec


@dataclass(slots=True)
class SavedState:
    """One entry in an object's state queue.

    Attributes:
        last_key: total-order key of the last event executed before the
            snapshot was taken (``None`` for the initial pre-simulation
            snapshot).  Rollback selects the newest snapshot whose
            ``last_key`` precedes the straggler.
        lvt: the object's LVT at snapshot time.
        event_count: number of events the object had executed in total —
            used to restore the periodic-checkpoint phase counter.
        state: the snapshot itself (an independent copy).
        save_cost: modelled CPU cost charged when the snapshot was taken
            (recorded so the checkpoint controller's cost index can be
            audited per entry).
    """

    last_key: EventKey | None
    lvt: VirtualTime
    event_count: int
    state: AppState
    save_cost: float = 0.0

    def precedes(self, key: EventKey) -> bool:
        """True if this snapshot was taken strictly before ``key``."""
        return self.last_key is None or self.last_key < key
