"""Application state protocol and saved-state records.

Time Warp objects must expose copyable state so the kernel can checkpoint
and restore it.  The contract mirrors WARPED's ``BasicState``:

* ``copy()`` returns a deep, independent snapshot;
* ``size_bytes()`` reports the modelled size, which the cost model charges
  per checkpoint (large states make frequent checkpointing expensive —
  the whole reason dynamic checkpoint intervals matter);
* equality is *value* equality, used by tests to verify that rollback +
  coast-forward reproduces the exact pre-straggler state.

:class:`RecordState` gives applications a dataclass-friendly base: any
dataclass whose fields are immutables, lists/dicts of immutables, or nested
``RecordState`` values inherits a correct ``copy``/``size_bytes``/``__eq__``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Protocol, runtime_checkable

from .event import EventKey, VirtualTime, payload_size_bytes


@runtime_checkable
class AppState(Protocol):
    """Structural protocol every simulation-object state must satisfy."""

    def copy(self) -> "AppState":
        """Return an independent snapshot of this state."""
        ...

    def size_bytes(self) -> int:
        """Modelled size of the state in bytes (drives checkpoint cost)."""
        ...


def _copy_value(value: Any) -> Any:
    """Deep-copy a state field without the generality (and cost) of
    :func:`copy.deepcopy`.

    Supports the field types :class:`RecordState` documents.  Unknown
    mutable objects must themselves expose ``copy()``.
    """
    if value is None or isinstance(value, (int, float, str, bytes, bool, tuple, frozenset)):
        # tuples may contain mutables in theory; the documented contract is
        # that tuple fields hold immutables, so sharing is safe.
        return value
    if isinstance(value, list):
        return [_copy_value(item) for item in value]
    if isinstance(value, dict):
        return {key: _copy_value(item) for key, item in value.items()}
    if isinstance(value, set):
        return set(value)
    if hasattr(value, "copy"):
        return value.copy()
    raise TypeError(
        f"state field of type {type(value).__name__} is not copyable; "
        "use immutables, list/dict/set containers, or objects with copy()"
    )


def _value_size(value: Any) -> int:
    """Modelled byte size of a state field (same spirit as payload sizes)."""
    if isinstance(value, list):
        return 8 + sum(_value_size(item) for item in value)
    if isinstance(value, dict):
        return 8 + sum(_value_size(k) + _value_size(v) for k, v in value.items())
    if isinstance(value, (set, frozenset)):
        return 8 + sum(_value_size(item) for item in value)
    if hasattr(value, "size_bytes") and not isinstance(value, (int, float)):
        return int(value.size_bytes())
    return payload_size_bytes(value)


@dataclass
class RecordState:
    """Base class turning any dataclass into a valid :class:`AppState`.

    Subclasses should be declared with ``@dataclass`` and fields drawn from
    the supported types (immutables, lists/dicts/sets thereof, or nested
    states).  ``copy`` walks the fields, so it stays correct as models
    evolve without per-class boilerplate.
    """

    def copy(self):
        cls = type(self)
        clone = cls.__new__(cls)
        for f in dataclasses.fields(self):
            setattr(clone, f.name, _copy_value(getattr(self, f.name)))
        return clone

    def size_bytes(self) -> int:
        return sum(_value_size(getattr(self, f.name)) for f in dataclasses.fields(self))

    def __eq__(self, other: object) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return all(
            getattr(self, f.name) == getattr(other, f.name)
            for f in dataclasses.fields(self)
        )

    __hash__ = None  # type: ignore[assignment]  # states are mutable


@dataclass(slots=True)
class SavedState:
    """One entry in an object's state queue.

    Attributes:
        last_key: total-order key of the last event executed before the
            snapshot was taken (``None`` for the initial pre-simulation
            snapshot).  Rollback selects the newest snapshot whose
            ``last_key`` precedes the straggler.
        lvt: the object's LVT at snapshot time.
        event_count: number of events the object had executed in total —
            used to restore the periodic-checkpoint phase counter.
        state: the snapshot itself (an independent copy).
        save_cost: modelled CPU cost charged when the snapshot was taken
            (recorded so the checkpoint controller's cost index can be
            audited per entry).
    """

    last_key: EventKey | None
    lvt: VirtualTime
    event_count: int
    state: AppState
    save_cost: float = 0.0

    def precedes(self, key: EventKey) -> bool:
        """True if this snapshot was taken strictly before ``key``."""
        return self.last_key is None or self.last_key < key
