"""The WARPED-style application programming interface.

Applications model a system as a set of :class:`SimulationObject` subclasses
exchanging time-stamped events.  All Time Warp machinery — state saving,
rollback, cancellation, aggregation — is performed by the kernel without
intervention from the application, exactly as in the WARPED kernel the
paper modified.  The same objects run unchanged under the sequential
reference kernel (:mod:`repro.sequential`), which is how the test-suite
checks Time Warp executions for equivalence.

Determinism contract (required by coast-forward and lazy cancellation):
``execute_process`` must be a pure function of ``(self.state, event)`` —
any randomness must be derived from event payloads or state counters (see
:func:`repro.apps.base.token_hash`), never from global RNGs or wall time.
"""

from __future__ import annotations

from typing import Any, Protocol

from .errors import ConfigurationError
from .event import VirtualTime
from .state import AppState


class KernelServices(Protocol):
    """What a kernel must provide to a simulation object while it runs."""

    @property
    def now(self) -> VirtualTime:
        """The object's current LVT."""
        ...

    def send(self, dest: str, delay: VirtualTime, payload: Any) -> None:
        """Schedule ``payload`` at object ``dest``, ``delay`` in the future."""
        ...


class SimulationObject:
    """Base class for application simulation objects.

    Subclasses override :meth:`initial_state`, :meth:`initialize`,
    :meth:`execute_process` and optionally :meth:`finalize` and
    :attr:`grain_factor`.
    """

    #: Relative CPU weight of executing one event at this object (the cost
    #: model multiplies its ``event_cost`` by this).  Lets an application
    #: express that e.g. a disk model does more work per event than a
    #: request source.
    grain_factor: float = 1.0

    def __init__(self, name: str) -> None:
        if not name:
            raise ConfigurationError("simulation objects need a non-empty name")
        self.name = name
        self._services: KernelServices | None = None
        #: the object's mutable state; managed (saved/restored) by the kernel
        self.state: AppState = None  # type: ignore[assignment]

    # ------------------------------------------------------------------ #
    # application-facing services
    # ------------------------------------------------------------------ #
    @property
    def now(self) -> VirtualTime:
        """Local virtual time (receive time of the event being executed)."""
        return self._bound_services().now

    def send_event(self, dest: str, delay: VirtualTime, payload: Any) -> None:
        """Send an event to the object named ``dest``.

        ``delay`` must be strictly positive: zero-delay messages would
        allow an unbounded number of events at one virtual time, which the
        models in this reproduction never need and which would complicate
        termination.
        """
        if delay <= 0:
            raise ConfigurationError(
                f"{self.name}: send_event delay must be > 0, got {delay!r}"
            )
        self._bound_services().send(dest, delay, payload)

    # ------------------------------------------------------------------ #
    # application-overridable behaviour
    # ------------------------------------------------------------------ #
    def initial_state(self) -> AppState:
        """Create this object's state; called once before the simulation."""
        raise NotImplementedError

    def initialize(self) -> None:
        """Hook run at virtual time 0; may send the first events."""

    def execute_process(self, event_payload: Any) -> None:
        """Process one event.  Must be deterministic in (state, payload)."""
        raise NotImplementedError

    def finalize(self) -> None:
        """Hook run after the simulation terminates (post-commit)."""

    # ------------------------------------------------------------------ #
    # kernel-facing plumbing
    # ------------------------------------------------------------------ #
    def bind(self, services: KernelServices) -> None:
        """Attach kernel services (called by whichever kernel runs us)."""
        self._services = services

    def _bound_services(self) -> KernelServices:
        if self._services is None:
            raise ConfigurationError(
                f"{self.name} is not attached to a kernel; "
                "send_event/now are only valid inside initialize/execute_process"
            )
        return self._services

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
