"""The top-level Time Warp simulation facade.

Wires application objects, LPs, transport, network, GVT and controllers
into a runnable simulation and assembles the run statistics.  This is the
main entry point of the library:

    from repro import TimeWarpSimulation, SimulationConfig
    sim = TimeWarpSimulation(partition, config)
    stats = sim.run()
"""

from __future__ import annotations

from typing import Any, Sequence

from ..comm.transport import CommModule
from ..cluster.executive import Executive
from ..gvt.manager import OmniscientGVT
from ..gvt.mattern import MatternGVT
from ..oracle.invariants import NULL_ORACLE
from ..stats.counters import RunStats
from ..trace.tracer import NULL_TRACER
from .arena import resolve_fastpath
from .config import SimulationConfig
from .errors import ConfigurationError
from .event import Event
from .lp import LogicalProcess
from .simobject import SimulationObject
from .state import resolve_snapshot_strategy

#: A partition maps LP index -> the simulation objects it hosts.
Partition = Sequence[Sequence[SimulationObject]]


class TimeWarpSimulation:
    """One configured Time Warp run over a partitioned object graph."""

    def __init__(self, partition: Partition, config: SimulationConfig | None = None):
        self.config = config or SimulationConfig()
        self.config.validate()
        if not partition or not any(partition):
            raise ConfigurationError("partition must contain at least one object")

        # --- directory -------------------------------------------------
        self._objects: list[SimulationObject] = []
        self._name_to_oid: dict[str, int] = {}
        self._oid_to_lp: dict[int, int] = {}
        for lp_index, group in enumerate(partition):
            for obj in group:
                if obj.name in self._name_to_oid:
                    raise ConfigurationError(f"duplicate object name {obj.name!r}")
                oid = len(self._objects)
                self._objects.append(obj)
                self._name_to_oid[obj.name] = oid
                self._oid_to_lp[oid] = lp_index

        # --- logical processes ------------------------------------------
        fastpath = resolve_fastpath(self.config.fastpath)
        self.lps: list[LogicalProcess] = []
        for lp_index in range(len(partition)):
            lp = LogicalProcess(
                lp_index,
                self.config.costs_for_lp(lp_index),
                resolve_name=self._resolve,
                lp_of=self._oid_to_lp.__getitem__,
                end_time=self.config.end_time,
                fastpath=fastpath,
            )
            self.lps.append(lp)
        for oid, obj in enumerate(self._objects):
            lp = self.lps[self._oid_to_lp[oid]]
            lp.attach(
                obj,
                oid,
                cancel_policy=self.config.cancellation(obj),
                ckpt_policy=self.config.checkpoint(obj),
            )

        # --- executive, transport, GVT -----------------------------------
        tracer = self.config.tracer if self.config.tracer is not None else NULL_TRACER
        self.tracer = tracer
        oracle = self.config.oracle if self.config.oracle is not None else NULL_ORACLE
        if oracle.enabled and oracle.tracer is NULL_TRACER:
            oracle.tracer = tracer
        self.oracle = oracle
        self.executive = Executive(self.lps, self.config)
        self.executive.tracer = tracer
        self.executive.oracle = oracle
        self.executive.network.tracer = tracer
        snapshot_strategy = resolve_snapshot_strategy(self.config.snapshot)
        for lp in self.lps:
            lp.tracer = tracer
            lp.oracle = oracle
            lp.snapshot_strategy = snapshot_strategy
            comm = CommModule(
                host=lp,
                network=self.executive.network,
                costs=lp.costs,
                policy=self.config.aggregation(lp.lp_id),
                tracer=tracer,
            )
            comm.set_routing(self._oid_to_lp)
            lp.comm = comm
            # Live migration can leave a delivery in flight toward an
            # object's old host; re-route it through the (shared, already
            # rewritten) routing map instead of crashing the LP.
            lp.forward = self._make_forward(lp)
        self.executive.routing = self._oid_to_lp
        if self.config.gvt_algorithm == "mattern":
            gvt = MatternGVT(self.executive)
            self.executive.network.on_data_send = gvt.observe_send
        else:
            gvt = OmniscientGVT(self.executive)
        self.executive.gvt_algorithm = gvt

        # --- optional unified control plane (docs/control.md) -------------
        self.meta = None
        if self.config.meta_control is not None:
            self.meta = self.config.meta_control()
            self.meta.attach(self.executive, self.config.snapshot)
        elif self.config.placement == "dynamic":
            # placement="dynamic" without an explicit meta_control factory
            # still means on-line placement: attach a placement-only loop
            from ..control.meta import MetaController

            self.meta = MetaController(knobs=("placement",))
            self.meta.attach(self.executive, self.config.snapshot)

        # --- optional committed-event trace ------------------------------
        self.trace: list[tuple[float, str, str, float, Any]] | None = None
        if self.config.record_trace:
            self.trace = []
            for lp in self.lps:
                lp.trace_sink = self._record_trace

        self._ran = False
        self._finished = False
        self._horizon: float | None = None

    # ------------------------------------------------------------------ #
    def _resolve(self, name: str) -> int:
        try:
            return self._name_to_oid[name]
        except KeyError:
            raise ConfigurationError(f"unknown simulation object {name!r}") from None

    @staticmethod
    def _make_forward(lp: LogicalProcess):
        def forward(event: Event) -> None:
            lp.stats.remote_events_sent += 1
            lp.comm.enqueue(event)

        return forward

    def _record_trace(self, event: Event) -> None:
        assert self.trace is not None
        self.trace.append(
            (
                event.recv_time,
                self._objects[event.receiver].name,
                self._objects[event.sender].name,
                event.send_time,
                event.payload,
            )
        )

    def object_named(self, name: str) -> SimulationObject:
        return self._objects[self._resolve(name)]

    # ------------------------------------------------------------------ #
    def run(self) -> RunStats:
        """Execute to quiescence and return the run statistics."""
        if self._ran:
            raise ConfigurationError("a TimeWarpSimulation can only run once")
        self._start()
        self.executive.run()
        return self._finish()

    # ------------------------------------------------------------------ #
    # phased execution (warped's simulateUntil)
    # ------------------------------------------------------------------ #
    def advance_to(self, virtual_time: float) -> None:
        """Run until everything at or below ``virtual_time`` is processed.

        May be called repeatedly with increasing horizons; between calls
        the simulation is quiescent and the committed prefix can be
        inspected (e.g. probe states, statistics).  Speculative state
        beyond GVT is *not* final until :meth:`finish`.
        """
        if self._finished:
            raise ConfigurationError("simulation already finished")
        if virtual_time > self.config.end_time:
            raise ConfigurationError(
                f"cannot advance past the configured end time "
                f"({virtual_time} > {self.config.end_time})"
            )
        if self._horizon is not None and virtual_time < self._horizon:
            raise ConfigurationError("horizons must be non-decreasing")
        self._horizon = virtual_time
        if not self._ran:
            self._start(horizon=virtual_time)
        else:
            for lp in self.lps:
                lp.end_time = virtual_time
            self.executive.resume()
        self.executive.run()

    def finish(self) -> RunStats:
        """Lift the horizon to the configured end time and finalize."""
        if self._finished:
            raise ConfigurationError("simulation already finished")
        if not self._ran:
            return self.run()
        self._horizon = self.config.end_time
        for lp in self.lps:
            lp.end_time = self.config.end_time
        self.executive.resume()
        self.executive.run()
        return self._finish()

    def _start(self, horizon: float | None = None) -> None:
        self._ran = True
        if horizon is not None:
            for lp in self.lps:
                lp.end_time = horizon
        self.executive.start()

    def _finish(self) -> RunStats:
        self._finished = True
        oracle = self.oracle
        if oracle.enabled:
            oracle.on_run_end(self.executive)
        # Final commit: quiescence means nothing below the horizon can
        # change any more, so everything processed is committed.
        for lp in self.lps:
            lp.fossil_collect(float("inf"), final=True)
        for lp in self.lps:
            lp.finalize()
        return self._assemble_stats()

    def _assemble_stats(self) -> RunStats:
        stats = RunStats()
        stats.execution_time = self.executive.execution_time
        stats.final_gvt = self.executive.gvt
        network = self.executive.network
        stats.physical_messages = network.messages_sent
        stats.events_on_wire = network.events_carried
        stats.bytes_on_wire = network.bytes_sent
        for lp in self.lps:
            stats.per_lp[lp.lp_id] = lp.stats
            stats.gvt_rounds += lp.stats.gvt_rounds
            stats.peak_state_entries = max(
                stats.peak_state_entries, lp.stats.peak_state_entries
            )
            stats.peak_state_bytes = max(
                stats.peak_state_bytes, lp.stats.peak_state_bytes
            )
            stats.peak_history_events = max(
                stats.peak_history_events, lp.stats.peak_history_events
            )
            for name, ostats in lp.object_stats().items():
                stats.per_object[name] = ostats
                stats.committed_events += ostats.events_committed
                stats.executed_events += ostats.events_executed
                stats.rolled_back_events += ostats.events_rolled_back
                stats.rollbacks += ostats.rollbacks
                stats.state_saves += ostats.state_saves
                stats.coast_forward_events += ostats.coast_forward_events
                stats.antis_sent += ostats.antis_sent
                stats.lazy_hits += ostats.lazy_hits
                stats.lazy_misses += ostats.lazy_misses
        return stats

    def sorted_trace(self) -> list[tuple[float, str, str, float, Any]]:
        """Committed-event trace in total order (for equivalence checks)."""
        if self.trace is None:
            raise ConfigurationError("run with record_trace=True to collect a trace")
        return sorted(self.trace, key=lambda t: (t[0], t[1], t[2], t[3], repr(t[4])))


def make_simulation(partition: Partition, config: SimulationConfig | None = None):
    """Build the simulation selected by ``config.backend``.

    ``"modelled"`` (the default) returns a :class:`TimeWarpSimulation`
    running every LP in this process on the deterministic modelled
    cluster; ``"parallel"`` returns a
    :class:`repro.parallel.ParallelSimulation` sharding the LPs across
    ``config.workers`` OS processes (docs/parallel.md).  Both expose
    ``run() -> RunStats``.
    """
    config = config or SimulationConfig()
    config.validate()
    if config.backend == "parallel":
        from ..parallel.backend import ParallelSimulation

        return ParallelSimulation(partition, config)
    return TimeWarpSimulation(partition, config)
