"""Time Warp kernel substrate: events, queues, objects, LPs, rollback."""

from .cancellation import Mode, StaticCancellation, aggressive, lazy
from .checkpointing import CheckpointWindow, StaticCheckpoint, every_event
from .config import SimulationConfig
from .errors import (
    CausalityViolationError,
    ConfigurationError,
    SchedulingError,
    StateHistoryError,
    TerminationError,
    TimeWarpError,
)
from .event import Event, EventId, EventKey, VirtualTime
from .kernel import Partition, TimeWarpSimulation, make_simulation
from .simobject import SimulationObject
from .state import RecordState, SavedState

__all__ = [
    "CausalityViolationError",
    "CheckpointWindow",
    "ConfigurationError",
    "Event",
    "EventId",
    "EventKey",
    "Mode",
    "Partition",
    "RecordState",
    "SavedState",
    "SchedulingError",
    "SimulationConfig",
    "SimulationObject",
    "StateHistoryError",
    "StaticCancellation",
    "StaticCheckpoint",
    "TerminationError",
    "TimeWarpError",
    "TimeWarpSimulation",
    "VirtualTime",
    "aggressive",
    "every_event",
    "lazy",
    "make_simulation",
]
