"""The three WARPED history queues: input, output and state queues.

Each simulation object owns one of each (see Figure 1 of the paper).  The
queues are pure data structures — rollback *policy* lives in the LP — but
they encapsulate the fiddly parts: annihilation of anti-messages against
positive messages in any arrival order, lazy deletion from the future heap,
and fossil collection below GVT.
"""

from __future__ import annotations

import heapq
from typing import Iterable

from .errors import StateHistoryError, TimeWarpError
from .event import Event, EventId, EventKey, SentRecord, VirtualTime
from .state import SavedState

#: Tombstones tolerated before the future heap is compacted.  Lazy
#: deletion only discards dead entries when they surface at the heap top;
#: under a rollback storm that annihilates deep in the future the heap
#: would otherwise grow without bound (dead entries below the top are
#: never popped), so once tombstones outnumber live entries — and there
#: are enough of them to amortize the O(n) rebuild — the heap is filtered
#: and re-heapified in place.
_COMPACT_MIN_TOMBSTONES = 64


class InputQueue:
    """Pending and processed events of one simulation object.

    The unprocessed side is a binary heap ordered by :class:`EventKey`;
    annihilation removes events lazily (a tombstone set) so that cancelling
    a message costs O(1) amortized.  The processed side is a list in
    execution order, which rollback slices by key.
    """

    __slots__ = (
        "_future",
        "_tombstones",
        "_future_ids",
        "processed",
        "_processed_ids",
        "_pending_antis",
        "_live_future",
    )

    def __init__(self) -> None:
        self._future: list[tuple[EventKey, Event]] = []
        self._tombstones: set[EventId] = set()
        self._future_ids: dict[EventId, Event] = {}
        self.processed: list[Event] = []
        #: identity index over ``processed`` (anti-messages against
        #: already-executed positives resolve in O(1) instead of a scan)
        self._processed_ids: dict[EventId, Event] = {}
        self._pending_antis: dict[EventId, Event] = {}
        self._live_future = 0

    # ------------------------------------------------------------------ #
    # insertion and annihilation
    # ------------------------------------------------------------------ #
    def insert_positive(self, event: Event) -> bool:
        """Insert a positive message.

        Contract: if the event is a straggler (its key precedes
        :meth:`last_processed_key`), the caller must roll the object back
        *first* — the LP's delivery path does — so that the processed
        list stays in key order.

        Returns ``True`` if the event was enqueued, ``False`` if it was
        annihilated on arrival by a previously received anti-message (the
        network may deliver the pair in either order).
        """
        eid = event.event_id()
        if eid in self._pending_antis:
            del self._pending_antis[eid]
            return False
        heapq.heappush(self._future, (event.key(), event))
        self._future_ids[eid] = event
        self._live_future += 1
        return True

    def find_processed(self, eid: EventId) -> Event | None:
        """Return the processed positive message with identity ``eid``."""
        return self._processed_ids.get(eid)

    def insert_anti(self, anti: Event) -> Event | None:
        """Handle an arriving anti-message.

        Returns ``None`` if the anti-message was resolved locally (it
        annihilated an unprocessed positive, or was stashed because the
        positive has not arrived yet).  Returns the *processed* positive
        event if the LP must first roll the object back to just before that
        event; the caller then re-invokes :meth:`insert_anti` after the
        rollback, at which point the positive is unprocessed and the pair
        annihilates.
        """
        eid = anti.event_id()
        if eid in self._future_ids:
            del self._future_ids[eid]
            self._tombstones.add(eid)
            self._live_future -= 1
            if (
                len(self._tombstones) >= _COMPACT_MIN_TOMBSTONES
                and len(self._tombstones) > self._live_future
            ):
                self._compact()
            return None
        processed = self.find_processed(eid)
        if processed is not None:
            return processed
        self._pending_antis[eid] = anti
        return None

    def _compact(self) -> None:
        """Drop dead heap entries everywhere, not just at the top.

        Keeps exactly the entries :meth:`_skip_tombstones` would ever
        yield (the ``eid in _future_ids`` guard protects a live event
        re-inserted after an earlier copy was annihilated), then
        re-heapifies.  Keys are unique per event, so the pop order is
        unchanged.  Tombstones whose entries were dropped are discarded,
        mirroring the incremental discard at the heap top.
        """
        tombstones = self._tombstones
        future_ids = self._future_ids
        keep: list[tuple[EventKey, Event]] = []
        for entry in self._future:
            eid = entry[1].event_id()
            if eid in tombstones and eid not in future_ids:
                continue
            keep.append(entry)
        heapq.heapify(keep)
        self._future = keep
        tombstones.intersection_update(
            {entry[1].event_id() for entry in keep}
        )

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #
    def _skip_tombstones(self) -> None:
        if not self._tombstones:  # fast path: no stale entries anywhere
            return
        while self._future:
            key, event = self._future[0]
            eid = event.event_id()
            if eid in self._tombstones and eid not in self._future_ids:
                heapq.heappop(self._future)
                self._tombstones.discard(eid)
            else:
                break

    def peek_next(self) -> Event | None:
        """Smallest-key unprocessed event, or ``None``."""
        if self._tombstones:
            self._skip_tombstones()
        future = self._future
        return future[0][1] if future else None

    def peek_next_entry(self) -> tuple[EventKey, Event] | None:
        """Smallest (key, event) pair without reconstructing the key —
        the LP scheduler scans every member per event, so this is hot
        (the tombstone check is inlined to skip a call frame per scan)."""
        if self._tombstones:
            self._skip_tombstones()
        future = self._future
        return future[0] if future else None

    def pop_next(self) -> Event:
        """Remove and return the smallest unprocessed event, marking it
        processed."""
        if self._tombstones:
            self._skip_tombstones()
        if not self._future:
            raise TimeWarpError("pop_next on an empty input queue")
        _, event = heapq.heappop(self._future)
        eid = event.event_id()
        del self._future_ids[eid]
        self._live_future -= 1
        self.processed.append(event)
        self._processed_ids[eid] = event
        return event

    def last_processed_key(self) -> EventKey | None:
        return self.processed[-1].key() if self.processed else None

    def has_future(self) -> bool:
        if self._tombstones:  # same inlined fast path as peek_next
            self._skip_tombstones()
        return bool(self._future)

    def future_count(self) -> int:
        return self._live_future

    def iter_future(self) -> Iterable[Event]:
        """All live unprocessed events (unordered; for GVT accounting)."""
        for _, event in self._future:
            eid = event.event_id()
            if eid in self._future_ids:
                yield event

    # ------------------------------------------------------------------ #
    # rollback and fossil collection
    # ------------------------------------------------------------------ #
    def rollback(self, key: EventKey) -> list[Event]:
        """Un-process every event with key ``>= key``.

        The un-processed events are re-inserted into the future heap and
        returned in their original execution order.
        """
        split = len(self.processed)
        while split > 0 and self.processed[split - 1].key() >= key:
            split -= 1
        rolled = self.processed[split:]
        del self.processed[split:]
        processed_ids = self._processed_ids
        for event in rolled:
            eid = event.event_id()
            del processed_ids[eid]
            heapq.heappush(self._future, (event.key(), event))
            self._future_ids[eid] = event
            self._live_future += 1
        return rolled

    def fossil_collect(
        self, gvt: VirtualTime, limit_key: EventKey | None = None
    ) -> list[Event]:
        """Commit and drop processed events with ``recv_time < gvt``.

        ``limit_key`` (the oldest retained state snapshot's last event)
        additionally bounds collection: events *after* that snapshot must
        be retained even when below GVT, because a rollback to a time in
        ``[snapshot, gvt)``-adjacent territory coasts forward through them.
        Pass ``None`` for unbounded collection (final commit).
        """
        split = 0
        processed = self.processed
        while split < len(processed) and processed[split].recv_time < gvt:
            if limit_key is not None and processed[split].key() > limit_key:
                break
            split += 1
        committed = processed[:split]
        if split:
            self.processed = processed[split:]
            processed_ids = self._processed_ids
            for event in committed:
                del processed_ids[event.event_id()]
        return committed

    def min_unprocessed_time(self) -> VirtualTime | None:
        event = self.peek_next()
        return event.recv_time if event is not None else None

    def pending_anti_count(self) -> int:
        return len(self._pending_antis)


class OutputQueue:
    """Record of positive messages sent by one object, in send order.

    Rollback slices the records whose *causing event* is being undone; the
    cancellation strategy then decides whether each becomes an immediate
    anti-message (aggressive) or a pending-lazy entry.
    """

    __slots__ = ("records",)

    def __init__(self) -> None:
        self.records: list[SentRecord] = []

    def record_send(self, event: Event, cause_key: EventKey) -> None:
        self.records.append(SentRecord(event=event, cause_key=cause_key))

    def rollback(self, key: EventKey) -> list[SentRecord]:
        """Remove and return records caused by events with key ``>= key``."""
        split = len(self.records)
        while split > 0 and self.records[split - 1].cause_key >= key:
            split -= 1
        undone = self.records[split:]
        del self.records[split:]
        return undone

    def fossil_collect(self, gvt: VirtualTime) -> int:
        """Drop records whose causing event has been committed."""
        split = 0
        records = self.records
        while split < len(records) and records[split].cause_key.recv_time < gvt:
            split += 1
        del records[:split]
        return split

    def __len__(self) -> int:
        return len(self.records)


class StateQueue:
    """Checkpointed state snapshots of one object, oldest first."""

    __slots__ = ("entries",)

    def __init__(self) -> None:
        self.entries: list[SavedState] = []

    def save(self, entry: SavedState) -> None:
        if self.entries and entry.last_key is not None:
            prev = self.entries[-1].last_key
            if prev is not None and entry.last_key <= prev:
                raise TimeWarpError("state snapshots must be saved in key order")
        self.entries.append(entry)

    def restore_for(self, key: EventKey) -> SavedState:
        """Discard snapshots taken at or after ``key``; return the newest
        surviving snapshot (the rollback restore point)."""
        entries = self.entries
        split = len(entries)
        while split > 0 and not entries[split - 1].precedes(key):
            split -= 1
        del entries[split:]
        if not entries:
            raise StateHistoryError(
                f"no snapshot precedes straggler key {key!r}; "
                "fossil collection was unsafe or the initial state is missing"
            )
        return entries[-1]

    def fossil_collect(self, gvt: VirtualTime) -> int:
        """Drop every snapshot older than the newest one strictly below GVT.

        A straggler can only carry ``recv_time >= gvt``, so the newest
        snapshot with ``lvt < gvt`` (strictly) is a safe restore point for
        any future rollback; everything older is fossil.
        """
        entries = self.entries
        keep_from = 0
        for index, entry in enumerate(entries):
            if entry.lvt < gvt:
                keep_from = index
            else:
                break
        del entries[:keep_from]
        return keep_from

    def latest(self) -> SavedState | None:
        return self.entries[-1] if self.entries else None

    def __len__(self) -> int:
        return len(self.entries)
