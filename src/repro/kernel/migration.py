"""Checkpoint-based migration of simulation objects between LPs.

An :class:`ObjectCheckpoint` is a *canonical*, self-contained serial form
of one simulation object's entire Time Warp context: application object
and state, the three WARPED history queues, parked lazy-cancellation
comparisons, pending anti-messages, and every kernel scalar (LVT, send
serial, cancellation mode, checkpoint interval chi, controller phase).
"Canonical" means two checkpoints of equivalent contexts pickle to the
same bytes:

* events are flattened to plain field tuples — a live :class:`Event`
  memoizes its key/id/size on first use (``init=False`` slots), so two
  equal events can pickle differently depending on access history;
* unordered collections are serialized in a deterministic order (the
  future heap by key, pending anti-messages by event id, comparisons by
  park sequence) and rebuilt on restore;
* the application object is embedded as a pickle blob taken with its
  kernel services unbound, so a checkpoint never drags an LP (and with
  it the whole process) into the pickle graph.

The three free functions are the whole protocol: ``checkpoint_object``
captures, ``detach_object`` captures *and* removes the object from its
LP, ``restore_object`` rebuilds the context inside another LP (in the
same or a different OS process).  The caller is responsible for
quiescence: the object must not be mid-execution, and any in-flight
messages addressed to it must be drained or forwarded
(:attr:`~repro.kernel.lp.LogicalProcess.forward`) around the move.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any

from .arena import ArrayInputQueue
from .cancellation import Mode
from .checkpointing import CheckpointWindow
from .errors import SchedulingError
from .event import Event, EventKey, SentRecord, VirtualTime
from .lp import INITIAL_KEY, LogicalProcess, ObjectContext, _ObjectServices
from .state import SavedState
from ..stats.counters import ObjectStats

#: pinned pickle protocol so checkpoint bytes are stable across runs
PICKLE_PROTOCOL = 4

#: (sender, receiver, send_time, recv_time, payload, serial, sign)
EventTuple = tuple[int, int, VirtualTime, VirtualTime, Any, int, int]


def _event_tuple(event: Event) -> EventTuple:
    return (
        event.sender, event.receiver, event.send_time, event.recv_time,
        event.payload, event.serial, event.sign,
    )


def _event_from(fields: EventTuple) -> Event:
    sender, receiver, send_time, recv_time, payload, serial, sign = fields
    return Event(
        sender=sender, receiver=receiver, send_time=send_time,
        recv_time=recv_time, payload=payload, serial=serial, sign=sign,
    )


@dataclass(frozen=True, slots=True)
class ObjectCheckpoint:
    """Canonical serialized form of one object's Time Warp context."""

    oid: int
    name: str
    #: the application object, pickled with services unbound
    obj_blob: bytes

    # kernel scalars
    lvt: VirtualTime
    event_count: int
    events_since_save: int
    send_serial: int
    mode: Mode
    chi: int
    comparisons_since_control: int
    events_since_ckpt_control: int

    # policies and controller state (plain objects; deterministic pickles)
    cancel_policy: Any
    ckpt_policy: Any
    ckpt_window: CheckpointWindow
    stats: ObjectStats

    #: live unprocessed events, sorted by :class:`EventKey`
    future: tuple[EventTuple, ...]
    #: processed events, in execution order
    processed: tuple[EventTuple, ...]
    #: anti-messages whose positives have not arrived, sorted by event id
    pending_antis: tuple[EventTuple, ...]
    #: output-queue records in send order: (event, cause_key)
    sent: tuple[tuple[EventTuple, EventKey], ...]
    #: state snapshots oldest-first: (last_key, lvt, event_count, state,
    #: save_cost)
    states: tuple[tuple[EventKey | None, VirtualTime, int, Any, float], ...]
    #: unresolved comparison-buffer entries in park order:
    #: (event, cause_key, lazy)
    comparisons: tuple[tuple[EventTuple, EventKey, bool], ...]

    def to_bytes(self) -> bytes:
        """The canonical wire form (stable bytes for equal contexts)."""
        return pickle.dumps(self, protocol=PICKLE_PROTOCOL)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "ObjectCheckpoint":
        ckpt = pickle.loads(blob)
        if not isinstance(ckpt, cls):
            raise SchedulingError(
                f"checkpoint blob decoded to {type(ckpt).__name__}"
            )
        return ckpt


# --------------------------------------------------------------------- #
# capture
# --------------------------------------------------------------------- #
def checkpoint_object(ctx: ObjectContext) -> ObjectCheckpoint:
    """Capture ``ctx`` as a canonical checkpoint (non-destructive).

    The context must be quiescent: not coasting, not mid-event.  The
    checkpoint shares the live state/policy objects with the context, so
    a caller that keeps executing the source afterwards must serialize
    (``to_bytes``) first; migration always does, crossing the process
    boundary.
    """
    if ctx.coasting:
        raise SchedulingError(
            f"cannot checkpoint {ctx.obj.name!r} during coast-forward"
        )
    obj = ctx.obj
    services = obj._services
    obj._services = None
    try:
        obj_blob = pickle.dumps(obj, protocol=PICKLE_PROTOCOL)
    finally:
        obj._services = services

    iq = ctx.iq
    future = tuple(
        _event_tuple(event)
        for event in sorted(iq.iter_future(), key=Event.key)
    )
    processed = tuple(_event_tuple(event) for event in iq.processed)
    pending_antis = tuple(
        _event_tuple(anti)
        for anti in sorted(iq._pending_antis.values(), key=Event.event_id)
    )
    sent = tuple(
        (_event_tuple(record.event), record.cause_key)
        for record in ctx.oq.records
    )
    states = tuple(
        (entry.last_key, entry.lvt, entry.event_count, entry.state,
         entry.save_cost)
        for entry in ctx.sq.entries
    )
    unresolved = sorted(
        (entry for _, _, entry in ctx.cmp_buffer._by_key if not entry.resolved),
        key=lambda entry: entry.seq,
    )
    comparisons = tuple(
        (_event_tuple(entry.record.event), entry.record.cause_key, entry.lazy)
        for entry in unresolved
    )
    return ObjectCheckpoint(
        oid=ctx.oid,
        name=obj.name,
        obj_blob=obj_blob,
        lvt=ctx.lvt,
        event_count=ctx.event_count,
        events_since_save=ctx.events_since_save,
        send_serial=ctx.send_serial,
        mode=ctx.mode,
        chi=ctx.chi,
        comparisons_since_control=ctx.comparisons_since_control,
        events_since_ckpt_control=ctx.events_since_ckpt_control,
        cancel_policy=ctx.cancel_policy,
        ckpt_policy=ctx.ckpt_policy,
        ckpt_window=ctx.ckpt_window,
        stats=ctx.stats,
        future=future,
        processed=processed,
        pending_antis=pending_antis,
        sent=sent,
        states=states,
        comparisons=comparisons,
    )


def detach_object(lp: LogicalProcess, oid: int) -> ObjectCheckpoint:
    """Checkpoint object ``oid`` and remove it from ``lp``.

    After this returns the LP no longer hosts the object; events routed
    to it must be re-routed (update the shared routing map first) or
    rescued through :attr:`LogicalProcess.forward`.
    """
    ctx = lp.members.get(oid)
    if ctx is None:
        raise SchedulingError(f"LP {lp.lp_id} does not host object {oid}")
    ckpt = checkpoint_object(ctx)
    del lp.members[oid]
    lp._member_list.remove(ctx)
    if isinstance(ctx.iq, ArrayInputQueue):
        # the member's unprocessed events leave with the checkpoint; their
        # arena rows must die or the LP's local-min scan keeps seeing them
        ctx.iq.detach()
    ctx.obj._services = None  # sever the stale kernel binding
    return ckpt


# --------------------------------------------------------------------- #
# restore
# --------------------------------------------------------------------- #
def restore_object(lp: LogicalProcess, ckpt: ObjectCheckpoint) -> ObjectContext:
    """Rebuild a checkpointed object inside ``lp`` and return its context.

    The caller must have updated the routing map so ``ckpt.oid`` now
    resolves to ``lp`` — otherwise the first send to the object would
    bounce.  The restored context is bit-equivalent to the captured one:
    a fresh :func:`checkpoint_object` of it yields identical bytes.
    """
    if ckpt.oid in lp.members:
        raise SchedulingError(
            f"LP {lp.lp_id} already hosts object {ckpt.oid}"
        )
    obj = pickle.loads(ckpt.obj_blob)
    ctx = ObjectContext(obj=obj, oid=ckpt.oid)
    ctx.lvt = ckpt.lvt
    ctx.event_count = ckpt.event_count
    ctx.events_since_save = ckpt.events_since_save
    ctx.send_serial = ckpt.send_serial
    ctx.mode = ckpt.mode
    ctx.chi = ckpt.chi
    ctx.comparisons_since_control = ckpt.comparisons_since_control
    ctx.events_since_ckpt_control = ckpt.events_since_ckpt_control
    ctx.cancel_policy = ckpt.cancel_policy
    ctx.ckpt_policy = ckpt.ckpt_policy
    ctx.ckpt_window = ckpt.ckpt_window
    ctx.stats = ckpt.stats
    ctx.current_cause_key = INITIAL_KEY
    ctx.coasting = False

    if lp.arena is not None:
        ctx.iq = ArrayInputQueue(lp.arena)
    iq = ctx.iq
    for fields in ckpt.processed:
        event = _event_from(fields)
        iq.processed.append(event)
        iq._processed_ids[event.event_id()] = event
    if lp.arena is not None:
        iq.insert_batch([_event_from(fields) for fields in ckpt.future])
    else:
        # key-sorted list == valid binary heap
        for fields in ckpt.future:
            event = _event_from(fields)
            iq._future.append((event.key(), event))
            iq._future_ids[event.event_id()] = event
        iq._live_future = len(ckpt.future)
    for fields in ckpt.pending_antis:
        anti = _event_from(fields)
        iq._pending_antis[anti.event_id()] = anti

    for fields, cause_key in ckpt.sent:
        ctx.oq.records.append(
            SentRecord(event=_event_from(fields), cause_key=cause_key)
        )
    for last_key, lvt, event_count, state, save_cost in ckpt.states:
        ctx.sq.entries.append(SavedState(
            last_key=last_key, lvt=lvt, event_count=event_count,
            state=state, save_cost=save_cost,
        ))
    # re-park in original order: fresh seqs, same relative expiry order
    for fields, cause_key, is_lazy in ckpt.comparisons:
        record = SentRecord(event=_event_from(fields), cause_key=cause_key)
        ctx.cmp_buffer.park(record, lazy=is_lazy)

    obj.bind(_ObjectServices(lp, ctx))
    lp.members[ckpt.oid] = ctx
    lp._member_list.append(ctx)
    lp._member_list.sort(key=lambda member: member.oid)
    return ctx
