"""Exception hierarchy for the Time Warp kernel.

All kernel-raised errors derive from :class:`TimeWarpError` so applications
and the test-suite can catch kernel failures without masking unrelated bugs.
"""

from __future__ import annotations


class TimeWarpError(Exception):
    """Base class for all errors raised by the Time Warp kernel."""


class CausalityViolationError(TimeWarpError):
    """An event was executed out of order and could not be recovered.

    This indicates a kernel bug: rollback should always be able to recover
    from a straggler.  It is raised by internal sanity checks, never during
    normal operation.
    """


class StateHistoryError(TimeWarpError):
    """No saved state old enough to recover from a straggler was found.

    Raised when fossil collection discarded a state that was still needed,
    i.e. the GVT estimate was unsafe, or when an application mutated history.
    """


class SchedulingError(TimeWarpError):
    """An event was routed to an unknown simulation object or LP."""


class ConfigurationError(TimeWarpError):
    """An invalid kernel, controller or application configuration."""


class TerminationError(TimeWarpError):
    """The executive could not reach quiescence (e.g. leaked messages)."""


class TransportFailureError(TimeWarpError):
    """The reliable transport gave up on a message.

    Raised when a physical message exhausted its retransmission budget
    under fault injection — the modelled channel is effectively severed.
    """


class InvariantViolationError(TimeWarpError):
    """A Time Warp runtime invariant was violated (strict oracle mode).

    The non-strict oracle records violations for post-run inspection
    instead of raising; see :mod:`repro.oracle`.
    """


class ApplicationError(TimeWarpError):
    """An application's ``execute_process`` raised.

    Wraps the original exception (available as ``__cause__``) with the
    simulation context a model author needs to reproduce the failure:
    which object, at which virtual time, processing which payload, and
    whether it happened during normal execution or a coast-forward replay.
    """

    def __init__(self, obj_name: str, virtual_time: float, payload: object,
                 *, coasting: bool = False) -> None:
        phase = "coast-forward replay" if coasting else "event execution"
        super().__init__(
            f"{obj_name} failed during {phase} at t={virtual_time!r} "
            f"processing {payload!r}"
        )
        self.obj_name = obj_name
        self.virtual_time = virtual_time
        self.payload = payload
        self.coasting = coasting
