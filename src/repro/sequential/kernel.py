"""Sequential reference kernel.

Runs the *same* application objects as the Time Warp kernel, one event at
a time in global total order, with no rollback machinery.  It serves two
purposes:

* the golden reference for correctness — a Time Warp execution must commit
  exactly the events the sequential kernel executes (tests/properties);
* the sequential baseline a WARPED user could always fall back to (the
  kernel "can operate as a sequential kernel", Section 7 of the paper).

Execution time is modelled as the sum of per-event costs on a single
workstation — no communication, no state saving.
"""

from __future__ import annotations

import heapq
from typing import Any, Sequence

from ..cluster.costmodel import DEFAULT_COSTS, CostModel
from ..kernel.errors import (
    ApplicationError,
    ConfigurationError,
    SchedulingError,
    TimeWarpError,
)
from ..kernel.event import Event, EventKey, VirtualTime
from ..kernel.simobject import SimulationObject


class _SequentialServices:
    """KernelServices adapter for sequential execution."""

    __slots__ = ("_kernel", "_oid")

    def __init__(self, kernel: "SequentialSimulation", oid: int) -> None:
        self._kernel = kernel
        self._oid = oid

    @property
    def now(self) -> VirtualTime:
        return self._kernel._lvt[self._oid]

    def send(self, dest: str, delay: VirtualTime, payload: Any) -> None:
        self._kernel._send(self._oid, dest, delay, payload)


class SequentialSimulation:
    """Discrete event simulation of a flat object list, in total order."""

    def __init__(
        self,
        objects: Sequence[SimulationObject],
        *,
        end_time: VirtualTime = float("inf"),
        costs: CostModel = DEFAULT_COSTS,
        record_trace: bool = False,
        max_events: int | None = None,
    ) -> None:
        if not objects:
            raise ConfigurationError("need at least one simulation object")
        self.objects = list(objects)
        self.end_time = end_time
        self.costs = costs
        self.max_events = max_events
        self._name_to_oid: dict[str, int] = {}
        for oid, obj in enumerate(self.objects):
            if obj.name in self._name_to_oid:
                raise ConfigurationError(f"duplicate object name {obj.name!r}")
            self._name_to_oid[obj.name] = oid
        self._lvt = [0.0] * len(self.objects)
        self._serials = [0] * len(self.objects)
        self._heap: list[tuple[EventKey, Event]] = []
        self.events_executed = 0
        self.execution_time = 0.0
        self.trace: list[tuple[float, str, str, float, Any]] | None = (
            [] if record_trace else None
        )
        self._ran = False

    # ------------------------------------------------------------------ #
    def _send(self, sender: int, dest: str, delay: VirtualTime, payload: Any) -> None:
        try:
            receiver = self._name_to_oid[dest]
        except KeyError:
            raise SchedulingError(f"unknown simulation object {dest!r}") from None
        event = Event(
            sender=sender,
            receiver=receiver,
            send_time=self._lvt[sender],
            recv_time=self._lvt[sender] + delay,
            payload=payload,
            serial=self._serials[sender],
        )
        self._serials[sender] += 1
        heapq.heappush(self._heap, (event.key(), event))

    def run(self) -> "SequentialSimulation":
        if self._ran:
            raise ConfigurationError("a SequentialSimulation can only run once")
        self._ran = True
        for oid, obj in enumerate(self.objects):
            obj.state = obj.initial_state()
            obj.bind(_SequentialServices(self, oid))
        for obj in self.objects:
            obj.initialize()

        heap = self._heap
        while heap:
            _, event = heapq.heappop(heap)
            if event.recv_time > self.end_time:
                continue  # beyond the horizon; drop (matches Time Warp)
            oid = event.receiver
            obj = self.objects[oid]
            self._lvt[oid] = event.recv_time
            try:
                obj.execute_process(event.payload)
            except TimeWarpError:
                raise
            except Exception as exc:
                raise ApplicationError(
                    obj.name, event.recv_time, event.payload
                ) from exc
            self.events_executed += 1
            self.execution_time += self.costs.event_execution(obj.grain_factor)
            if self.trace is not None:
                self.trace.append(
                    (
                        event.recv_time,
                        obj.name,
                        self.objects[event.sender].name,
                        event.send_time,
                        event.payload,
                    )
                )
            if self.max_events is not None and self.events_executed > self.max_events:
                raise SchedulingError(
                    f"executed more than {self.max_events} events; runaway model?"
                )
        for obj in self.objects:
            obj.finalize()
        return self

    def sorted_trace(self) -> list[tuple[float, str, str, float, Any]]:
        if self.trace is None:
            raise ConfigurationError("construct with record_trace=True")
        return sorted(self.trace, key=lambda t: (t[0], t[1], t[2], t[3], repr(t[4])))
