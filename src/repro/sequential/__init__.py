"""Sequential reference kernel (golden model for equivalence tests)."""

from .kernel import SequentialSimulation

__all__ = ["SequentialSimulation"]
