"""Experiment harness: profiles, replicated runs, result records.

The paper's measurement protocol: five sets of measurements taken at two
different times of day on a non-dedicated NOW, averaged.  Here a
*replicate* is a run with a different network-jitter seed (the modelled
"background load"); everything else is deterministic, so error bars are
honest consequences of load variation rather than measurement noise.

An :class:`ExperimentProfile` fixes the modelled cluster for one
experiment — workstation speed spread and network jitter — mirroring how
each of the paper's figures is one measurement campaign on one cluster
state.  The profiles used per figure are documented in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

from ..cluster.costmodel import NetworkModel
from ..kernel.config import SimulationConfig
from ..kernel.kernel import TimeWarpSimulation
from ..kernel.simobject import SimulationObject
from ..stats.counters import RunStats
from ..trace.tracer import Tracer

Builder = Callable[[], Sequence[Sequence[SimulationObject]]]

#: When set (``repro-bench --trace DIR`` or :func:`set_trace_dir`), every
#: :func:`run_cell` replicate dumps its controller-decision trace here as
#: ``<label>_x<x>_s<seed>.jsonl`` alongside the figure's results.
_trace_dir: Path | None = None


def set_trace_dir(path: str | Path | None) -> None:
    """Dump a JSONL trace per benchmark replicate into ``path`` (None = off)."""
    global _trace_dir
    _trace_dir = Path(path) if path is not None else None


def _trace_path(directory: Path, label: str, x: float, seed: int) -> Path:
    slug = re.sub(r"[^A-Za-z0-9._-]+", "_", label).strip("_")
    return directory / f"{slug}_x{x:g}_s{seed}.jsonl"


@dataclass(frozen=True)
class ExperimentProfile:
    """The modelled cluster one experiment runs on."""

    name: str
    #: per-LP CPU slowdown factors (SPARC 4/5 mix + background load)
    speed_factors: dict[int, float]
    #: network background-load jitter amplitude
    jitter: float = 0.4
    #: GVT period in wall-clock µs
    gvt_period: float = 50_000.0

    def config(self, *, seed: int = 0, **overrides: Any) -> SimulationConfig:
        base: dict[str, Any] = dict(
            lp_speed_factors=dict(self.speed_factors),
            network=NetworkModel(jitter=self.jitter, seed=seed),
            gvt_period=self.gvt_period,
        )
        base.update(overrides)
        return SimulationConfig(**base)


#: SMMP campaigns ran while the NOW was busiest (wide SPARC-4/5 spread):
#: this is the regime where cancellation strategy matters most for a
#: fully lazy-friendly model.
SMMP_PROFILE = ExperimentProfile(
    "smmp-now", speed_factors={1: 1.2, 2: 1.4, 3: 1.7}, jitter=0.4
)

#: RAID campaigns ran on a lightly loaded NOW (mild spread): forks roll
#: back rarely, disks dominate, and the per-object strategy split shows.
RAID_PROFILE = ExperimentProfile(
    "raid-now", speed_factors={1: 1.05, 2: 1.1, 3: 1.15}, jitter=0.4
)


@dataclass
class RunResult:
    """One measured cell of a figure: averaged replicates of one config."""

    label: str
    x: float
    execution_time_us: float
    stddev_us: float
    replicates: int
    committed_events: int
    committed_per_second: float
    rollbacks: float
    physical_messages: float
    wall_seconds: float
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def execution_time_s(self) -> float:
        return self.execution_time_us / 1e6


def run_cell(
    label: str,
    x: float,
    build: Builder,
    profile: ExperimentProfile,
    *,
    replicates: int = 3,
    stat_hook: Callable[[TimeWarpSimulation, RunStats], dict] | None = None,
    trace_dir: str | Path | None = None,
    **config_overrides: Any,
) -> RunResult:
    """Run ``replicates`` seeded runs of one configuration and average.

    ``trace_dir`` (or a global default installed with :func:`set_trace_dir`)
    makes every replicate dump its controller-decision trace as JSONL next
    to the figure's results."""
    times: list[float] = []
    committed = rollbacks = messages = 0.0
    events = 0
    extra: dict[str, Any] = {}
    traces = Path(trace_dir) if trace_dir is not None else _trace_dir
    if traces is not None:
        traces.mkdir(parents=True, exist_ok=True)
    wall_start = time.perf_counter()
    for seed in range(replicates):
        config = profile.config(seed=seed, **config_overrides)
        tracer = None
        if traces is not None:
            tracer = Tracer.to_path(_trace_path(traces, label, x, seed))
            config.tracer = tracer
        sim = TimeWarpSimulation(build(), config)
        try:
            stats = sim.run()
        finally:
            if tracer is not None:
                tracer.close()
        times.append(stats.execution_time)
        committed += stats.committed_events
        rollbacks += stats.rollbacks
        messages += stats.physical_messages
        events = stats.committed_events
        if stat_hook is not None:
            extra.update(stat_hook(sim, stats))
    mean = sum(times) / len(times)
    variance = sum((t - mean) ** 2 for t in times) / len(times)
    return RunResult(
        label=label,
        x=x,
        execution_time_us=mean,
        stddev_us=math.sqrt(variance),
        replicates=replicates,
        committed_events=events,
        committed_per_second=committed / (sum(times) / 1e6),
        rollbacks=rollbacks / replicates,
        physical_messages=messages / replicates,
        wall_seconds=time.perf_counter() - wall_start,
        extra=extra,
    )


def scaled(value: int, scale: float, minimum: int = 1) -> int:
    """Scale a paper-sized workload parameter down for quick runs."""
    return max(minimum, int(round(value * scale)))
