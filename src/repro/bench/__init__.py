"""Benchmark harness: regenerate every table and figure of the paper.

Use the CLI (``repro-bench --fig 5``) or call the functions in
:mod:`repro.bench.figures` directly; pytest entry points live in the
repository's ``benchmarks/`` directory.
"""

from .harness import (
    RAID_PROFILE,
    SMMP_PROFILE,
    ExperimentProfile,
    RunResult,
    run_cell,
    scaled,
)
from .figures import FIGURES, fig5, fig6, fig7, fig8, fig9, baseline_rates

__all__ = [
    "ExperimentProfile",
    "FIGURES",
    "RAID_PROFILE",
    "RunResult",
    "SMMP_PROFILE",
    "baseline_rates",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "run_cell",
    "scaled",
]
