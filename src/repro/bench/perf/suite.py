"""The benchmark suite: registered micro- and macro-benchmarks.

Micro-benchmarks isolate one kernel hot path (event-queue ops, checkpoint
save/restore, rollback/coast-forward, GVT estimation) with synthetic
drivers; macro-benchmarks run the three real workloads (PHOLD, SMMP,
RAID) end to end and report committed events per wall-clock second — the
headline number the ROADMAP's "fast as the hardware allows" goal is
judged by.

Every workload is seeded and deterministic: its ``(ops, counters)``
return is identical across repetitions, runs and machines (only the
timings vary), which is what makes ``BENCH_3.json`` files comparable and
lets a drift in counters be flagged separately from a wall-clock
regression.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ...kernel.state import RecordState
from .timing import Measurement, Workload, measure

#: quick-mode scale knobs live with each benchmark below; quick runs keep
#: the whole suite under ~1 minute on a laptop for the CI smoke gate.


@dataclass(frozen=True)
class Benchmark:
    """One registered benchmark."""

    name: str
    kind: str  # "micro" | "macro"
    unit: str  # what ``ops`` counts ("events", "ops", ...)
    #: builds the workload; ``quick`` selects the reduced CI-sized load
    make: Callable[[bool], Workload] = field(repr=False)
    #: execution backend the workload drives ("modelled" for the
    #: deterministic in-process cluster, "parallel" for OS processes)
    backend: str = "modelled"
    #: worker process count (always 1 for the modelled backend)
    workers: int = 1
    #: inter-shard data wire for parallel benchmarks ("shm"/"queue");
    #: ``None`` for modelled benchmarks, which have no wire
    wire: str | None = None
    #: hot-core selection the workload pins ("python"/"numpy"); ``None``
    #: for workloads that trust the config default
    fastpath: str | None = None

    def run(self, *, quick: bool = False, reps: int = 3, warmup: int = 1) -> Measurement:
        return measure(self.make(quick), reps=reps, warmup=warmup)


REGISTRY: dict[str, Benchmark] = {}


def benchmark(name: str, kind: str, unit: str, *, backend: str = "modelled",
              workers: int = 1, wire: str | None = None,
              fastpath: str | None = None):
    """Register ``fn(quick) -> Workload`` under ``name``."""

    def register(fn: Callable[[bool], Workload]):
        if name in REGISTRY:
            raise ValueError(f"duplicate benchmark name {name!r}")
        REGISTRY[name] = Benchmark(
            name=name, kind=kind, unit=unit, make=fn,
            backend=backend, workers=workers, wire=wire, fastpath=fastpath,
        )
        return fn

    return register


# --------------------------------------------------------------------- #
# micro: event-queue operations
# --------------------------------------------------------------------- #
def _make_events(n: int) -> list:
    from ...kernel.event import Event

    return [
        Event(
            sender=99,
            receiver=0,
            send_time=float((i * 7919) % 997),
            recv_time=float((i * 7919) % 997) + 1.0,
            payload=i,
            serial=i,
        )
        for i in range(n)
    ]


@benchmark("queue.insert_pop", "micro", "ops")
def _queue_insert_pop(quick: bool) -> Workload:
    """Heap insert + ordered pop throughput of the input queue."""
    from ...kernel.queues import InputQueue

    n = 2_000 if quick else 10_000
    events = _make_events(n)

    def run() -> tuple[int, dict[str, Any]]:
        q = InputQueue()
        for e in events:
            q.insert_positive(e)
        popped = 0
        while q.has_future():
            q.pop_next()
            popped += 1
        return 2 * n, {"events": n, "popped": popped}

    return run


@benchmark("queue.annihilate", "micro", "ops")
def _queue_annihilate(quick: bool) -> Workload:
    """Anti-message annihilation: tombstoning unprocessed positives and
    locating processed ones (the two insert_anti paths)."""
    from ...kernel.queues import InputQueue

    n = 1_000 if quick else 4_000
    events = _make_events(n)
    antis = [e.anti_message() for e in events]

    def run() -> tuple[int, dict[str, Any]]:
        q = InputQueue()
        for e in events:
            q.insert_positive(e)
        # process half, leave half in the future heap
        for _ in range(n // 2):
            q.pop_next()
        hits_processed = 0
        for anti in antis:
            if q.insert_anti(anti) is not None:
                hits_processed += 1
        return n, {"events": n, "processed_hits": hits_processed}

    return run


# --------------------------------------------------------------------- #
# micro: checkpoint save / restore (snapshot strategies)
# --------------------------------------------------------------------- #
@dataclass
class _BenchState(RecordState):
    """Representative model state: counters plus container fields.

    Module-level on purpose: the pickle snapshot strategy needs an
    importable class.
    """

    counter: int = 0
    clock: float = 0.0
    table: list = field(default_factory=list)
    index: dict = field(default_factory=dict)


def _snapshot_workload(strategy_name: str, quick: bool) -> Workload:
    from ...kernel.state import resolve_snapshot_strategy

    state = _BenchState(
        counter=7,
        clock=123.5,
        table=list(range(200)),
        index={i: float(i) for i in range(50)},
    )
    strategy = resolve_snapshot_strategy(strategy_name)
    iterations = 200 if quick else 1_000

    def run() -> tuple[int, dict[str, Any]]:
        restored = state
        for _ in range(iterations):
            snap = strategy.snapshot(state)  # checkpoint save
            restored = strategy.snapshot(snap)  # rollback restore
        ok = restored == state
        return 2 * iterations, {"equal_roundtrip": ok, "table_len": len(state.table)}

    return run


@benchmark("snapshot.copy", "micro", "ops")
def _snapshot_copy(quick: bool) -> Workload:
    return _snapshot_workload("copy", quick)


@benchmark("snapshot.pickle", "micro", "ops")
def _snapshot_pickle(quick: bool) -> Workload:
    return _snapshot_workload("pickle", quick)


@dataclass
class _ArrayBenchState(RecordState):
    """Ndarray-backed model state for the block-copy snapshot strategy.

    Falls back to plain lists when numpy is absent so the benchmark still
    runs (measuring the strategy's python fallback, honestly labelled by
    the ``have_numpy`` counter).
    """

    counter: int = 0
    table: Any = None
    shards: Any = None


@benchmark("snapshot.array", "micro", "ops")
def _snapshot_array(quick: bool) -> Workload:
    """The 'array' strategy on ndarray-heavy state: block ndarray.copy()
    instead of element-wise container walks."""
    from ...kernel.arena import HAVE_NUMPY
    from ...kernel.state import resolve_snapshot_strategy

    if HAVE_NUMPY:
        import numpy as np

        table = np.arange(4_096, dtype="<f8")
        shards = [np.zeros(512, dtype="<i8") for _ in range(4)]
    else:  # degraded: the strategy falls back to RecordState.copy()
        table = list(range(4_096))
        shards = [[0] * 512 for _ in range(4)]
    state = _ArrayBenchState(counter=7, table=table, shards=shards)
    strategy = resolve_snapshot_strategy("array")
    iterations = 200 if quick else 1_000

    def run() -> tuple[int, dict[str, Any]]:
        restored = state
        for _ in range(iterations):
            snap = strategy.snapshot(state)
            restored = strategy.snapshot(snap)
        ok = restored.counter == state.counter
        return 2 * iterations, {
            "equal_roundtrip": ok, "have_numpy": HAVE_NUMPY,
        }

    return run


# --------------------------------------------------------------------- #
# micro: rollback + coast-forward
# --------------------------------------------------------------------- #
@benchmark("rollback.storm", "micro", "events")
def _rollback_storm(quick: bool) -> Workload:
    """Repeated deep stragglers against one object: rollback, state
    restore, anti-message emission and coast-forward, end to end."""
    from dataclasses import dataclass as dc, field as dcfield

    from ...cluster.costmodel import CostModel
    from ...kernel.cancellation import Mode, StaticCancellation
    from ...kernel.checkpointing import StaticCheckpoint
    from ...kernel.event import Event
    from ...kernel.lp import LogicalProcess
    from ...kernel.simobject import SimulationObject
    from ...kernel.state import RecordState

    @dc
    class _LogState(RecordState):
        log: list = dcfield(default_factory=list)

    class _Recorder(SimulationObject):
        def initial_state(self):
            return _LogState()

        def execute_process(self, payload):
            self.state.log.append(payload)

    waves = 8 if quick else 20
    per_wave = 40

    def run() -> tuple[int, dict[str, Any]]:
        lp = LogicalProcess(
            0, CostModel(), resolve_name=lambda n: 0, lp_of=lambda o: 0
        )
        lp.attach(
            _Recorder("o"),
            0,
            cancel_policy=StaticCancellation(Mode.AGGRESSIVE),
            ckpt_policy=StaticCheckpoint(4),
        )
        lp.initialize()
        serial = 0
        base_time = 100.0 * waves
        for wave in range(waves):
            base = base_time - wave * 100.0  # each wave is a deep straggler
            for i in range(per_wave):
                lp.deliver_event(
                    Event(
                        sender=99,
                        receiver=0,
                        send_time=base + i,
                        recv_time=base + i + 1,
                        payload=i,
                        serial=serial,
                    )
                )
                serial += 1
            while lp.execute_one():
                pass
        stats = lp.members[0].stats
        return stats.events_executed + stats.coast_forward_events, {
            "rollbacks": stats.rollbacks,
            "executed": stats.events_executed,
            "coast_forward": stats.coast_forward_events,
            "state_saves": stats.state_saves,
        }

    return run


# --------------------------------------------------------------------- #
# micro: GVT estimation
# --------------------------------------------------------------------- #
@benchmark("gvt.local_min", "micro", "ops")
def _gvt_local_min(quick: bool) -> Workload:
    """The per-round GVT work: scanning every member's input queue and
    comparison buffer for the local lower bound."""
    from ...cluster.costmodel import CostModel
    from ...kernel.cancellation import Mode, StaticCancellation
    from ...kernel.checkpointing import StaticCheckpoint
    from ...kernel.event import Event
    from ...kernel.lp import LogicalProcess
    from ...kernel.simobject import SimulationObject
    from ...kernel.state import RecordState

    from dataclasses import dataclass as dc

    @dc
    class _NullState(RecordState):
        ticks: int = 0

    class _Sink(SimulationObject):
        def initial_state(self):
            return _NullState()

        def execute_process(self, payload):
            self.state.ticks += 1

    members = 16
    pending_per_member = 50
    iterations = 2_000 if quick else 10_000

    lp = LogicalProcess(
        0, CostModel(), resolve_name=lambda n: 0, lp_of=lambda o: 0
    )
    for oid in range(members):
        lp.attach(
            _Sink(f"s{oid}"),
            oid,
            cancel_policy=StaticCancellation(Mode.AGGRESSIVE),
            ckpt_policy=StaticCheckpoint(8),
        )
    lp.initialize()
    serial = 0
    for oid in range(members):
        for i in range(pending_per_member):
            lp.deliver_event(
                Event(
                    sender=99,
                    receiver=oid,
                    send_time=float(i),
                    recv_time=float(i) + 1.0 + oid,
                    payload=None,
                    serial=serial,
                )
            )
            serial += 1

    def run() -> tuple[int, dict[str, Any]]:
        best = 0.0
        for _ in range(iterations):
            best = lp.local_min()
        return iterations, {"local_min": best, "members": members}

    return run


# --------------------------------------------------------------------- #
# macro: the three workloads, end to end
# --------------------------------------------------------------------- #
def _macro_counters(stats) -> dict[str, Any]:
    return {
        "committed_events": stats.committed_events,
        "executed_events": stats.executed_events,
        "rollbacks": stats.rollbacks,
        "state_saves": stats.state_saves,
        "antis_sent": stats.antis_sent,
        "model_time_us": round(stats.execution_time, 3),
    }


def _macro_phold_workload(quick: bool, fastpath: str) -> Workload:
    from ...apps.phold import PHOLDParams, build_phold
    from ...kernel.config import SimulationConfig
    from ...kernel.kernel import TimeWarpSimulation

    params = PHOLDParams(n_objects=16, n_lps=4, jobs_per_object=2)
    end_time = 2_500.0 if quick else 10_000.0

    def run() -> tuple[int, dict[str, Any]]:
        config = SimulationConfig(
            end_time=end_time, lp_speed_factors={1: 1.3, 2: 1.6, 3: 2.0},
            fastpath=fastpath,
        )
        stats = TimeWarpSimulation(build_phold(params), config).run()
        return stats.committed_events, _macro_counters(stats)

    return run


def _macro_smmp_workload(quick: bool, fastpath: str) -> Workload:
    from ...apps.smmp import SMMPParams, build_smmp
    from ...bench.harness import SMMP_PROFILE
    from ...kernel.kernel import TimeWarpSimulation

    params = SMMPParams(requests_per_processor=40 if quick else 160)

    def run() -> tuple[int, dict[str, Any]]:
        config = SMMP_PROFILE.config(seed=0, fastpath=fastpath)
        stats = TimeWarpSimulation(build_smmp(params), config).run()
        return stats.committed_events, _macro_counters(stats)

    return run


def _macro_raid_workload(quick: bool, fastpath: str) -> Workload:
    from ...apps.raid import RAIDParams, build_raid
    from ...bench.harness import RAID_PROFILE
    from ...kernel.kernel import TimeWarpSimulation

    params = RAIDParams(requests_per_source=25 if quick else 100)

    def run() -> tuple[int, dict[str, Any]]:
        config = RAID_PROFILE.config(seed=0, fastpath=fastpath)
        stats = TimeWarpSimulation(build_raid(params), config).run()
        return stats.committed_events, _macro_counters(stats)

    return run


# The macro mains pin fastpath="numpy" (silently degrading to python on
# interpreters without numpy); the ``.python`` twins pin the boxed-heap
# path so the SoA hot core's speedup is measured in-document on the same
# machine (report.fastpath_gate, the CI floor — same pattern as the
# parallel ``.queue`` wire twins).

@benchmark("macro.phold", "macro", "events", fastpath="numpy")
def _macro_phold(quick: bool) -> Workload:
    """PHOLD under LVT skew: the rollback-heavy reference macro load."""
    return _macro_phold_workload(quick, "numpy")


@benchmark("macro.phold.python", "macro", "events", fastpath="python")
def _macro_phold_python(quick: bool) -> Workload:
    """Boxed-heap twin of macro.phold: the SoA fast-path denominator."""
    return _macro_phold_workload(quick, "python")


@benchmark("macro.smmp", "macro", "events", fastpath="numpy")
def _macro_smmp(quick: bool) -> Workload:
    """SMMP: communication-heavy, lazy-cancellation-friendly."""
    return _macro_smmp_workload(quick, "numpy")


@benchmark("macro.smmp.python", "macro", "events", fastpath="python")
def _macro_smmp_python(quick: bool) -> Workload:
    """Boxed-heap twin of macro.smmp: the SoA fast-path denominator."""
    return _macro_smmp_workload(quick, "python")


@benchmark("macro.raid", "macro", "events", fastpath="numpy")
def _macro_raid(quick: bool) -> Workload:
    """RAID: heterogeneous grains (sources, forks, disks)."""
    return _macro_raid_workload(quick, "numpy")


@benchmark("macro.raid.python", "macro", "events", fastpath="python")
def _macro_raid_python(quick: bool) -> Workload:
    """Boxed-heap twin of macro.raid: the SoA fast-path denominator."""
    return _macro_raid_workload(quick, "python")


# --------------------------------------------------------------------- #
# macro: process-sharded parallel backend (wall-clock speedup)
# --------------------------------------------------------------------- #
def _parallel_phold_model(quick: bool):
    from ...apps.phold import PHOLDParams, build_phold

    # High-locality PHOLD: kernighan_lin recovers the blocks, so most
    # traffic stays shard-local and the 2-worker run has parallelism to
    # harvest instead of a rollback storm.
    params = PHOLDParams(
        n_objects=16, n_lps=2, jobs_per_object=3, locality=0.9, seed=5,
    )
    end_time = 4_000.0 if quick else 12_000.0
    return (lambda: build_phold(params)), end_time


def _parallel_smmp_model(quick: bool):
    from ...apps.smmp import SMMPParams, build_smmp

    params = SMMPParams(
        n_processors=8, n_lps=2, n_banks=8,
        requests_per_processor=60 if quick else 200,
    )
    return (lambda: build_smmp(params)), float("inf")


_PARALLEL_MODELS = {"phold": _parallel_phold_model, "smmp": _parallel_smmp_model}


def _parallel_workload(
    app: str, workers: int, quick: bool, wire: str = "shm"
) -> Workload:
    """Differentially-validated parallel run of ``app``.

    Golden result and shard assignment are computed once at make() time,
    outside the timed region, so run() measures execution only.  The
    committed counters are checked against the sequential golden every
    repetition — a mismatch raises, which both fails the benchmark and
    keeps the reported counters deterministic (timing.measure flags any
    cross-repetition counter drift as corruption).  ``wire`` selects the
    inter-shard data path; the ``.queue`` twins exist so the shm
    fast-path speedup is measured in-document on the same machine
    (report.wire_gate, the CI floor).
    """
    from collections import Counter

    from ...kernel.config import SimulationConfig
    from ...parallel.backend import ParallelSimulation, resolve_strategy
    from ...partition.graph import profile_model
    from ...sequential import SequentialSimulation

    builder, end_time = _PARALLEL_MODELS[app](quick)
    seq = SequentialSimulation(
        [obj for group in builder() for obj in group],
        record_trace=True, end_time=end_time,
    )
    seq.run()
    expected_total = seq.events_executed
    expected_counts = Counter(entry[1] for entry in seq.trace)
    expected_states = {obj.name: obj.state for obj in seq.objects}

    graph = profile_model(
        [obj for group in builder() for obj in group],
        end_time=end_time, max_events=200_000,
    )
    assignment = resolve_strategy("kernighan_lin")(graph, workers)

    def run() -> tuple[int, dict[str, Any]]:
        from ...comm.aggregation import FixedWindow

        config = SimulationConfig(
            backend="parallel", workers=workers, end_time=end_time,
            max_executed_events=2_000_000, wire=wire,
            # a modest FAW window so the IPC path runs batched, as a
            # deployment would (docs/parallel.md)
            aggregation=lambda _lp: FixedWindow(50.0),
        )
        sim = ParallelSimulation(builder(), config, shard_map=assignment)
        stats = sim.run()
        if sim.violations:
            raise RuntimeError(
                f"parallel.{app}: {len(sim.violations)} invariant "
                f"violation(s): {sim.violations[:3]}"
            )
        if stats.committed_events != expected_total:
            raise RuntimeError(
                f"parallel.{app}: committed {stats.committed_events} != "
                f"sequential golden {expected_total}"
            )
        for name, want in expected_counts.items():
            got = stats.per_object[name].events_committed
            if got != want:
                raise RuntimeError(
                    f"parallel.{app}: {name} committed {got} != {want}"
                )
        for name, state in expected_states.items():
            if sim.final_states[name] != state:
                raise RuntimeError(
                    f"parallel.{app}: final state of {name} diverged"
                )
        return stats.committed_events, {
            "committed_events": stats.committed_events,
            "matches_sequential": True,
            "workers": workers,
            # (commit_index, active_workers) steps; report.make_document
            # lifts this into entry provenance so elastic runs compare by
            # trajectory, not a single misleading worker count
            "worker_timeline": [list(step) for step in sim.worker_timeline],
        }

    return run


@benchmark("parallel.phold", "macro", "events", backend="parallel", workers=2,
           wire="shm")
def _parallel_phold(quick: bool) -> Workload:
    """PHOLD across 2 worker processes, validated against sequential."""
    return _parallel_workload("phold", 2, quick)


@benchmark("parallel.phold.1w", "macro", "events", backend="parallel",
           workers=1, wire=None)  # one worker: no inter-shard wire at all
def _parallel_phold_1w(quick: bool) -> Workload:
    """Single-worker baseline for the parallel.phold speedup ratio."""
    return _parallel_workload("phold", 1, quick)


@benchmark("parallel.smmp", "macro", "events", backend="parallel", workers=2,
           wire="shm")
def _parallel_smmp(quick: bool) -> Workload:
    """SMMP across 2 worker processes, validated against sequential."""
    return _parallel_workload("smmp", 2, quick)


@benchmark("parallel.smmp.1w", "macro", "events", backend="parallel",
           workers=1, wire=None)  # one worker: no inter-shard wire at all
def _parallel_smmp_1w(quick: bool) -> Workload:
    """Single-worker baseline for the parallel.smmp speedup ratio."""
    return _parallel_workload("smmp", 1, quick)


@benchmark("parallel.phold.queue", "macro", "events", backend="parallel",
           workers=2, wire="queue")
def _parallel_phold_queue(quick: bool) -> Workload:
    """Queue-wire twin of parallel.phold: the shm fast-path denominator."""
    return _parallel_workload("phold", 2, quick, wire="queue")


@benchmark("parallel.smmp.queue", "macro", "events", backend="parallel",
           workers=2, wire="queue")
def _parallel_smmp_queue(quick: bool) -> Workload:
    """Queue-wire twin of parallel.smmp: the shm fast-path denominator."""
    return _parallel_workload("smmp", 2, quick, wire="queue")


# --------------------------------------------------------------------- #
# suite runner
# --------------------------------------------------------------------- #
def run_suite(
    *,
    quick: bool = False,
    reps: int = 3,
    warmup: int = 1,
    only: str | None = None,
    progress: Callable[[str], None] | None = None,
) -> dict[str, tuple[Benchmark, Measurement]]:
    """Run every registered benchmark (or those matching ``only``).

    Returns ``{name: (benchmark, measurement)}`` in registration order.
    """
    selected = {
        name: bench
        for name, bench in REGISTRY.items()
        if only is None or only in name
    }
    if not selected:
        raise ValueError(
            f"no benchmark matches {only!r}; available: {sorted(REGISTRY)}"
        )
    results: dict[str, tuple[Benchmark, Measurement]] = {}
    for name, bench in selected.items():
        if progress is not None:
            progress(name)
        results[name] = (bench, bench.run(quick=quick, reps=reps, warmup=warmup))
    return results
