"""Steady-state timing loops.

The measurement protocol is the standard one for wall-clock
micro-benchmarks: run the workload a few times untimed (warmup — imports,
allocator pools, branch caches), then time ``reps`` repetitions and report
the distribution.  The *minimum* is the headline number: wall-clock noise
on a shared machine is strictly additive, so the minimum is the best
estimate of the true cost, while median/stddev expose how noisy the run
was (CI gates use a generous threshold for exactly this reason).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Any, Callable

#: A workload returns ``(ops, counters)``: how many operations one
#: repetition performed (the rate denominator) and a dict of deterministic
#: model counters (identical across repetitions and across machines).
Workload = Callable[[], tuple[int, dict[str, Any]]]


@dataclass(frozen=True)
class TimingStats:
    """Distribution of one benchmark's repetition times, in seconds."""

    reps: int
    warmup: int
    min_s: float
    median_s: float
    mean_s: float
    stddev_s: float

    @staticmethod
    def from_times(times: list[float], warmup: int) -> "TimingStats":
        if not times:
            raise ValueError("at least one timed repetition is required")
        ordered = sorted(times)
        n = len(ordered)
        mid = n // 2
        median = ordered[mid] if n % 2 else (ordered[mid - 1] + ordered[mid]) / 2.0
        mean = sum(ordered) / n
        variance = sum((t - mean) ** 2 for t in ordered) / n
        return TimingStats(
            reps=n,
            warmup=warmup,
            min_s=ordered[0],
            median_s=median,
            mean_s=mean,
            stddev_s=math.sqrt(variance),
        )


@dataclass(frozen=True)
class Measurement:
    """One benchmark's timings plus its deterministic side of the story."""

    timing: TimingStats
    ops: int
    counters: dict[str, Any]

    @property
    def rate_per_s(self) -> float:
        """Operations per second at the best observed repetition."""
        if self.timing.min_s <= 0.0:
            return float("inf")
        return self.ops / self.timing.min_s


def measure(workload: Workload, *, reps: int = 3, warmup: int = 1) -> Measurement:
    """Time ``reps`` steady-state repetitions of ``workload``.

    The workload's ``(ops, counters)`` return must be identical on every
    repetition — benchmarks here are deterministic simulations, so any
    drift between repetitions is a bug and raises immediately rather than
    silently polluting the baseline.
    """
    if reps < 1:
        raise ValueError("reps must be >= 1")
    if warmup < 0:
        raise ValueError("warmup must be >= 0")
    for _ in range(warmup):
        workload()
    times: list[float] = []
    reference: tuple[int, dict[str, Any]] | None = None
    for rep in range(reps):
        start = time.perf_counter()
        result = workload()
        times.append(time.perf_counter() - start)
        if reference is None:
            reference = result
        elif result != reference:
            raise RuntimeError(
                f"non-deterministic benchmark: repetition {rep} returned "
                f"{result!r}, expected {reference!r}"
            )
    assert reference is not None
    ops, counters = reference
    return Measurement(
        timing=TimingStats.from_times(times, warmup),
        ops=ops,
        counters=dict(counters),
    )
