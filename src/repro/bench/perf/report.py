"""``BENCH_<N>.json`` documents: emit, render, diff, gate.

One document captures one run of the perf suite, with enough provenance
(schema version, commit hash, python version, platform) for two documents
to be compared honestly.  The schema is documented in
``docs/benchmarking.md``; a drift-guard test keeps the table there and
the emitter here in lockstep.

Comparison semantics (the CI gate):

* a benchmark **regresses** when its ``rate_per_s`` falls more than the
  threshold below the baseline's — wall-clock rates are hardware-noisy,
  so the committed CI threshold is generous (25 %);
* **counter drift** (deterministic model counters differ) is reported
  separately: it means the two runs did different *work*, so their rates
  are not comparable and the baseline needs a refresh — that is a
  failure too, with its own message;
* benchmarks present on only one side, or measured under a different
  backend/worker configuration, are **incomparable**: reported with a
  reason, excluded from deltas, and never fail the gate (suites are
  allowed to grow and reconfigure).
"""

from __future__ import annotations

import json
import platform
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from .suite import Benchmark
from .timing import Measurement

#: Version of the document schema; the output file is ``BENCH_<N>.json``.
SCHEMA_VERSION = 3

#: Default output path at the repository root.
DEFAULT_OUTPUT = f"BENCH_{SCHEMA_VERSION}.json"


def _git_commit() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except OSError:
        return None
    commit = out.stdout.strip()
    return commit if out.returncode == 0 and commit else None


def make_document(
    results: dict[str, tuple[Benchmark, Measurement]],
    *,
    quick: bool,
    reps: int,
    warmup: int,
) -> dict[str, Any]:
    """Assemble the versioned document for one suite run."""
    benchmarks: dict[str, Any] = {}
    for name, (bench, measurement) in results.items():
        timing = measurement.timing
        # the worker *timeline* is provenance, not a perf counter: lift it
        # out so elastic runs (worker join/leave mid-run) are compared by
        # trajectory instead of a single misleading worker count
        counters = dict(measurement.counters)
        timeline = counters.pop("worker_timeline", None)
        if not timeline:
            timeline = [[0, bench.workers]]
        benchmarks[name] = {
            "kind": bench.kind,
            "unit": bench.unit,
            "backend": bench.backend,
            "workers": bench.workers,
            # the inter-shard data path; null for modelled benchmarks,
            # which have no wire at all
            "wire": bench.wire,
            # the hot core the workload pins ("python"/"numpy"); null
            # for workloads that trust the config default
            "fastpath": bench.fastpath,
            "worker_timeline": [[int(at), int(n)] for at, n in timeline],
            "ops": measurement.ops,
            "rate_per_s": round(measurement.rate_per_s, 3),
            "wall_min_s": timing.min_s,
            "wall_median_s": timing.median_s,
            "wall_mean_s": timing.mean_s,
            "wall_stddev_s": timing.stddev_s,
            "counters": counters,
        }
    return {
        "schema_version": SCHEMA_VERSION,
        "created_unix": int(time.time()),
        "commit": _git_commit(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "quick": quick,
        "reps": reps,
        "warmup": warmup,
        "benchmarks": benchmarks,
    }


def write_document(document: dict[str, Any], path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(document, indent=2, sort_keys=False) + "\n")
    return path


def load_document(path: str | Path) -> dict[str, Any]:
    document = json.loads(Path(path).read_text())
    version = document.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema_version {version!r} is not the supported "
            f"{SCHEMA_VERSION} (regenerate with `repro-bench perf`)"
        )
    return document


def render_document(document: dict[str, Any]) -> str:
    """Human-readable table of one document."""
    rows = [
        f"perf suite — schema v{document['schema_version']}, "
        f"python {document['python']}, "
        f"commit {(document.get('commit') or 'unknown')[:12]}, "
        f"{'quick' if document.get('quick') else 'full'} scale",
        "",
        f"{'benchmark':<22} {'kind':<6} {'rate':>14} {'min':>10} "
        f"{'median':>10} {'stddev':>10}",
    ]
    for name, entry in document["benchmarks"].items():
        rows.append(
            f"{name:<22} {entry['kind']:<6} "
            f"{entry['rate_per_s']:>10,.0f} {entry['unit']}/s"
            f" {entry['wall_min_s'] * 1e3:>8.2f}ms"
            f" {entry['wall_median_s'] * 1e3:>8.2f}ms"
            f" {entry['wall_stddev_s'] * 1e3:>8.2f}ms"
        )
    speedups = _speedup_lines(document["benchmarks"])
    if speedups:
        rows.append("")
        rows.extend(speedups)
    return "\n".join(rows)


def _speedup_lines(benchmarks: dict[str, Any]) -> list[str]:
    """Parallel speedup summary: each N-worker entry vs its ``.1w`` twin."""
    lines = []
    for name, entry in benchmarks.items():
        if entry.get("backend") != "parallel" or entry.get("workers", 1) < 2:
            continue
        single = benchmarks.get(f"{name}.1w")
        if single is None or not single["rate_per_s"]:
            continue
        ratio = entry["rate_per_s"] / single["rate_per_s"]
        lines.append(
            f"{name}: {ratio:.2f}x speedup over 1 worker "
            f"({entry['workers']} workers, "
            f"{entry['rate_per_s']:,.0f} vs {single['rate_per_s']:,.0f} "
            f"{entry['unit']}/s)"
        )
    return lines


# --------------------------------------------------------------------- #
# comparison
# --------------------------------------------------------------------- #
@dataclass
class BenchmarkDelta:
    """One benchmark's baseline-to-current comparison."""

    name: str
    base_rate: float
    current_rate: float
    counter_drift: dict[str, tuple[Any, Any]] = field(default_factory=dict)

    @property
    def change_pct(self) -> float:
        if self.base_rate <= 0.0:
            return 0.0
        return (self.current_rate - self.base_rate) / self.base_rate * 100.0


@dataclass
class ComparisonReport:
    """Outcome of diffing a current document against a baseline."""

    threshold_pct: float | None
    deltas: list[BenchmarkDelta] = field(default_factory=list)
    only_in_base: list[str] = field(default_factory=list)
    only_in_current: list[str] = field(default_factory=list)
    #: benchmarks excluded from the comparison entirely, with the reason
    #: (present on one side only, or run with a different backend/worker
    #: configuration).  Informational: never fails the gate.
    incomparable: list[tuple[str, str]] = field(default_factory=list)

    @property
    def regressions(self) -> list[BenchmarkDelta]:
        if self.threshold_pct is None:
            return []
        return [d for d in self.deltas if d.change_pct < -self.threshold_pct]

    @property
    def drifted(self) -> list[BenchmarkDelta]:
        return [d for d in self.deltas if d.counter_drift]

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.drifted

    def render(self) -> str:
        rows = [
            f"{'benchmark':<22} {'baseline':>14} {'current':>14} {'change':>9}"
        ]
        for delta in self.deltas:
            marker = ""
            if self.threshold_pct is not None and delta in self.regressions:
                marker = "  << REGRESSION"
            elif delta.counter_drift:
                marker = "  << COUNTER DRIFT"
            rows.append(
                f"{delta.name:<22} {delta.base_rate:>14,.0f} "
                f"{delta.current_rate:>14,.0f} {delta.change_pct:>+8.1f}%{marker}"
            )
        for delta in self.drifted:
            for key, (base, current) in delta.counter_drift.items():
                rows.append(
                    f"  {delta.name}: counter {key!r} drifted "
                    f"{base!r} -> {current!r} (refresh the baseline: "
                    f"docs/benchmarking.md)"
                )
        for name, reason in self.incomparable:
            rows.append(f"incomparable: {name} ({reason})")
        if self.threshold_pct is not None:
            verdict = (
                "PASS"
                if self.ok
                else f"FAIL ({len(self.regressions)} regression(s), "
                f"{len(self.drifted)} drifted)"
            )
            rows.append(f"gate (fail-on-regress {self.threshold_pct:g}%): {verdict}")
        return "\n".join(rows)


def _worker_timeline(entry: dict[str, Any]) -> tuple[tuple[int, int], ...]:
    """``((commit_index, workers), ...)`` provenance, defaulting flat."""
    timeline = entry.get("worker_timeline")
    if timeline:
        return tuple((int(at), int(n)) for at, n in timeline)
    return ((0, int(entry.get("workers", 1))),)


def _render_cfg(
    backend: str,
    timeline: tuple[tuple[int, int], ...],
    wire: str | None = None,
    fastpath: str | None = None,
) -> str:
    prefix = backend if wire is None else f"{backend}({wire})"
    if fastpath is not None:
        prefix += f"+{fastpath}"
    if len(timeline) == 1:
        return f"{prefix}/{timeline[0][1]}w"
    return prefix + "/" + "->".join(f"{n}w@{at}" for at, n in timeline)


def compare_documents(
    base: dict[str, Any],
    current: dict[str, Any],
    *,
    fail_on_regress: float | None = None,
) -> ComparisonReport:
    """Diff two documents benchmark by benchmark.

    ``fail_on_regress`` is the allowed rate drop in percent; ``None``
    reports without gating.
    """
    report = ComparisonReport(threshold_pct=fail_on_regress)
    base_benchmarks = base["benchmarks"]
    current_benchmarks = current["benchmarks"]
    for name, base_entry in base_benchmarks.items():
        current_entry = current_benchmarks.get(name)
        if current_entry is None:
            report.only_in_base.append(name)
            report.incomparable.append((name, "only in baseline"))
            continue
        # Entries measured on different backends or worker trajectories
        # are different experiments — skip them rather than report a bogus
        # regression or drift.  Comparing the *timeline* rather than a
        # single worker count means two elastic runs with the same churn
        # trajectory stay comparable.  .get() defaults cover
        # pre-provenance documents (entries written before
        # backend/workers/worker_timeline were emitted).
        base_cfg = (base_entry.get("backend", "modelled"),
                    base_entry.get("wire"),
                    base_entry.get("fastpath"),
                    _worker_timeline(base_entry))
        current_cfg = (current_entry.get("backend", "modelled"),
                       current_entry.get("wire"),
                       current_entry.get("fastpath"),
                       _worker_timeline(current_entry))
        if base_cfg != current_cfg:
            report.incomparable.append((
                name,
                f"backend/wire/fastpath/workers changed: "
                f"{_render_cfg(base_cfg[0], base_cfg[3], base_cfg[1], base_cfg[2])}"
                f" -> "
                f"{_render_cfg(current_cfg[0], current_cfg[3], current_cfg[1], current_cfg[2])}",
            ))
            continue
        drift = {
            key: (base_value, current_entry["counters"].get(key))
            for key, base_value in base_entry["counters"].items()
            if current_entry["counters"].get(key) != base_value
        }
        report.deltas.append(
            BenchmarkDelta(
                name=name,
                base_rate=base_entry["rate_per_s"],
                current_rate=current_entry["rate_per_s"],
                counter_drift=drift,
            )
        )
    for name in current_benchmarks:
        if name not in base_benchmarks:
            report.only_in_current.append(name)
            report.incomparable.append((name, "only in current"))
    return report


# --------------------------------------------------------------------- #
# shm-vs-queue wire gate
# --------------------------------------------------------------------- #
@dataclass
class WirePair:
    """One shm benchmark paired with its ``.queue`` twin."""

    name: str
    shm_rate: float
    queue_rate: float

    @property
    def speedup(self) -> float:
        if self.queue_rate <= 0.0:
            return 0.0
        return self.shm_rate / self.queue_rate


@dataclass
class WireGateReport:
    """Outcome of the in-document shm-vs-queue fast-path gate.

    Unlike :func:`compare_documents`, both sides come from the *same*
    document — same machine, same run — so the ratio is an honest
    apples-to-apples measurement rather than a cross-hardware guess.
    The gate fails when any pair's speedup falls below ``min_speedup``,
    when a ``.queue`` twin has no shm counterpart, or when the document
    contains no pairs at all (a suite filter that excludes the twins
    must not silently pass the gate).
    """

    min_speedup: float
    pairs: list[WirePair] = field(default_factory=list)
    #: ``.queue`` twins whose shm counterpart is missing from the document
    unpaired: list[str] = field(default_factory=list)

    @property
    def failures(self) -> list[WirePair]:
        return [p for p in self.pairs if p.speedup < self.min_speedup]

    @property
    def ok(self) -> bool:
        return bool(self.pairs) and not self.failures and not self.unpaired

    def render(self) -> str:
        rows = [
            f"wire gate (shm >= {self.min_speedup:g}x queue, in-document):"
        ]
        for pair in self.pairs:
            marker = "" if pair.speedup >= self.min_speedup else "  << BELOW FLOOR"
            rows.append(
                f"  {pair.name}: {pair.speedup:.2f}x "
                f"({pair.shm_rate:,.0f} shm vs {pair.queue_rate:,.0f} queue "
                f"events/s){marker}"
            )
        for name in self.unpaired:
            rows.append(f"  {name}: queue twin without an shm counterpart")
        if not self.pairs:
            rows.append("  no shm/queue twin pairs in document")
        rows.append(f"wire gate: {'PASS' if self.ok else 'FAIL'}")
        return "\n".join(rows)


def wire_gate(document: dict[str, Any], *, min_speedup: float) -> WireGateReport:
    """Gate the shm wire's measured speedup over the queue wire.

    Pairs every ``<name>.queue`` entry (wire="queue") with its ``<name>``
    twin (wire="shm") in the same document and requires
    ``shm_rate / queue_rate >= min_speedup`` for each.
    """
    report = WireGateReport(min_speedup=min_speedup)
    benchmarks = document["benchmarks"]
    for name, entry in sorted(benchmarks.items()):
        if entry.get("wire") != "queue" or not name.endswith(".queue"):
            continue
        shm_name = name[: -len(".queue")]
        shm_entry = benchmarks.get(shm_name)
        if shm_entry is None or shm_entry.get("wire") != "shm":
            report.unpaired.append(name)
            continue
        report.pairs.append(WirePair(
            name=shm_name,
            shm_rate=shm_entry["rate_per_s"],
            queue_rate=entry["rate_per_s"],
        ))
    return report


# --------------------------------------------------------------------- #
# numpy-vs-python fastpath gate
# --------------------------------------------------------------------- #
@dataclass
class FastpathPair:
    """One numpy-fastpath benchmark paired with its ``.python`` twin."""

    name: str
    numpy_rate: float
    python_rate: float

    @property
    def speedup(self) -> float:
        if self.python_rate <= 0.0:
            return 0.0
        return self.numpy_rate / self.python_rate


@dataclass
class FastpathGateReport:
    """Outcome of the in-document numpy-vs-python fast-path gate.

    Same shape as :class:`WireGateReport`: both sides come from the same
    document — same machine, same run — so the ratio is an honest
    apples-to-apples measurement.  The gate fails when any pair's
    speedup falls below ``min_speedup``, when a ``.python`` twin has no
    numpy counterpart, or when the document contains no pairs at all.
    """

    min_speedup: float
    pairs: list[FastpathPair] = field(default_factory=list)
    #: ``.python`` twins whose numpy counterpart is missing
    unpaired: list[str] = field(default_factory=list)

    @property
    def failures(self) -> list[FastpathPair]:
        return [p for p in self.pairs if p.speedup < self.min_speedup]

    @property
    def ok(self) -> bool:
        return bool(self.pairs) and not self.failures and not self.unpaired

    def render(self) -> str:
        rows = [
            f"fastpath gate (numpy >= {self.min_speedup:g}x python, "
            f"in-document):"
        ]
        for pair in self.pairs:
            marker = "" if pair.speedup >= self.min_speedup else "  << BELOW FLOOR"
            rows.append(
                f"  {pair.name}: {pair.speedup:.2f}x "
                f"({pair.numpy_rate:,.0f} numpy vs {pair.python_rate:,.0f} "
                f"python events/s){marker}"
            )
        for name in self.unpaired:
            rows.append(f"  {name}: python twin without a numpy counterpart")
        if not self.pairs:
            rows.append("  no numpy/python twin pairs in document")
        rows.append(f"fastpath gate: {'PASS' if self.ok else 'FAIL'}")
        return "\n".join(rows)


def fastpath_gate(
    document: dict[str, Any], *, min_speedup: float
) -> FastpathGateReport:
    """Gate the numpy hot core's measured speedup over the python path.

    Pairs every ``<name>.python`` entry (fastpath="python") with its
    ``<name>`` twin (fastpath="numpy") in the same document and requires
    ``numpy_rate / python_rate >= min_speedup`` for each.
    """
    report = FastpathGateReport(min_speedup=min_speedup)
    benchmarks = document["benchmarks"]
    for name, entry in sorted(benchmarks.items()):
        if entry.get("fastpath") != "python" or not name.endswith(".python"):
            continue
        numpy_name = name[: -len(".python")]
        numpy_entry = benchmarks.get(numpy_name)
        if numpy_entry is None or numpy_entry.get("fastpath") != "numpy":
            report.unpaired.append(name)
            continue
        report.pairs.append(FastpathPair(
            name=numpy_name,
            numpy_rate=numpy_entry["rate_per_s"],
            python_rate=entry["rate_per_s"],
        ))
    return report
