"""Continuous performance benchmarking of the reproduction itself.

Where :mod:`repro.bench.figures` regenerates the *paper's* results in
modelled time, this package measures the *implementation's* wall-clock
performance: how many events per real second the kernel commits, how
expensive a checkpoint save/restore is, what a rollback storm costs.
Every benchmark pairs its timings with deterministic model counters
(committed events, rollbacks, operation counts) so runs are comparable
across machines and regressions are separable from model drift.

Entry points:

* ``repro-bench perf`` — run the suite, emit ``BENCH_3.json``;
* ``repro-bench perf --compare BASELINE.json --fail-on-regress PCT`` —
  diff two runs, exit non-zero on regression (the CI gate);
* :func:`repro.bench.perf.suite.run_suite` — the library API.

The JSON schema is documented in ``docs/benchmarking.md``; a drift-guard
test keeps the two in sync.
"""

from .report import SCHEMA_VERSION, compare_documents, make_document, write_document
from .suite import REGISTRY, run_suite
from .timing import TimingStats, measure

__all__ = [
    "SCHEMA_VERSION",
    "REGISTRY",
    "TimingStats",
    "compare_documents",
    "make_document",
    "measure",
    "run_suite",
    "write_document",
]
