"""ASCII rendering of experiment results (the "rows the paper reports")."""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

from .harness import RunResult


def render_results(results: Sequence[RunResult], title: str = "") -> str:
    """Generic result table: one row per (label, x) cell."""
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header = (
        f"{'config':<16} {'x':>8} {'time (s)':>10} {'+/-':>7} "
        f"{'ev/s':>10} {'rollbacks':>10} {'msgs':>8}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for r in results:
        lines.append(
            f"{r.label:<16} {r.x:>8g} {r.execution_time_s:>10.3f} "
            f"{r.stddev_us / 1e6:>7.3f} {r.committed_per_second:>10,.0f} "
            f"{r.rollbacks:>10.0f} {r.physical_messages:>8.0f}"
        )
    return "\n".join(lines)


def render_fig5(results: Sequence[RunResult]) -> str:
    """Figure 5 layout: normalized performance per app and configuration."""
    lines = [
        "Figure 5 — Dynamic Check-pointing (normalized performance,",
        "           1.0 = periodic chi=1 + aggressive cancellation)",
        "",
        f"{'app':<6} {'configuration':<10} {'normalized':>11} {'time (s)':>10} {'ev/s':>10}",
        "-" * 52,
    ]
    for r in results:
        app, name = r.label.split("/")
        lines.append(
            f"{app:<6} {name:<10} {r.extra['normalized']:>11.3f} "
            f"{r.execution_time_s:>10.3f} {r.committed_per_second:>10,.0f}"
        )
    return "\n".join(lines)


def render_series(results: Sequence[RunResult], xlabel: str,
                  title: str) -> str:
    """Figure 6/7/8/9 layout: series (one column per label) over x."""
    by_label: dict[str, dict[float, RunResult]] = defaultdict(dict)
    for r in results:
        by_label[r.label][r.x] = r

    lines = [title, "=" * len(title), ""]

    # Series measured at a single x are horizontals (e.g. "Unaggregated"):
    # print them as reference lines above the matrix.
    constants = {label: cells for label, cells in by_label.items()
                 if len(cells) == 1}
    swept = {label: cells for label, cells in by_label.items()
             if len(cells) > 1}
    for label, cells in constants.items():
        cell = next(iter(cells.values()))
        lines.append(f"{label}: {cell.execution_time_s:.3f} s (constant)")
    if constants:
        lines.append("")

    xs = sorted({x for cells in swept.values() for x in cells})
    labels = list(swept)
    head = f"{xlabel:>12} | " + " ".join(f"{label:>12}" for label in labels)
    lines.append(head)
    lines.append("-" * len(head))
    for x in xs:
        row = [f"{x:>12g} | "]
        for label in labels:
            cell = swept[label].get(x)
            row.append(f"{cell.execution_time_s:>12.3f}" if cell else " " * 12)
        lines.append(" ".join(row))
    lines.append("")
    lines.append("(cell values: modelled execution time in seconds)")
    return "\n".join(lines)
