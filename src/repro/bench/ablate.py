"""``repro-bench ablate``: static-best sweep vs on-line control, per knob.

The paper's headline claim — on-line configuration beats any static
choice — is demonstrated for three knobs (Sections 4-6).  This benchmark
generalizes the experiment to the whole registry (docs/control.md): for
every knob it sweeps the declared static settings, runs the same
workload with that knob under on-line control (the in-kernel dynamic
policy, or the MetaController for the meta-managed global knobs), and
compares committed-events-per-modelled-second against the *best* static
cell.  The dynamic run passes when it is at least as good as the best
static within a noise tolerance — the paper's claim, restated as an
executable check.

Everything measured here is modelled time, so a sweep is deterministic
for a given scale/replicates and the pass/fail verdict is CI-stable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from ..apps.phold import PHOLDParams, build_phold
from ..control.registry import KNOBS, dynamic_config_kwargs, get_knob
from .figures import LC, smmp_builder
from .harness import SMMP_PROFILE, ExperimentProfile, RunResult, run_cell, scaled

SCHEMA_ABLATE = "repro-ablate-1"

#: dynamic-vs-best-static tolerance on committed events/s ("within noise")
DEFAULT_TOLERANCE = 0.05

#: the skewed NOW of ablation A5: enough LVT skew that every controller
#: has rollbacks to feed on
PHOLD_ABLATE_PROFILE = ExperimentProfile(
    "phold-skewed", speed_factors={1: 1.4, 2: 1.8, 3: 2.4}, jitter=0.4,
    gvt_period=20_000.0,
)


@dataclass(frozen=True)
class AblateApp:
    """One workload the per-knob sweeps run on."""

    name: str
    profile: ExperimentProfile
    #: scale -> partition builder
    make_build: Callable[[float], Callable]
    #: scale -> extra config kwargs (e.g. a virtual-time horizon)
    make_kwargs: Callable[[float], dict]


def _phold_build(scale: float) -> Callable:
    params = PHOLDParams(n_objects=16, n_lps=4, jobs_per_object=4)
    return lambda: build_phold(params)


ABLATE_APPS: dict[str, AblateApp] = {
    "phold": AblateApp(
        name="phold",
        profile=PHOLD_ABLATE_PROFILE,
        make_build=_phold_build,
        make_kwargs=lambda scale: {"end_time": 6_000.0 * scale / 0.1},
    ),
    "smmp": AblateApp(
        name="smmp",
        profile=SMMP_PROFILE,
        make_build=lambda scale: smmp_builder(scaled(1000, scale)),
        make_kwargs=lambda scale: {},
    ),
}

#: per-knob base configuration shared by every cell of that knob's sweep
#: (A1 precedent: the checkpoint U-curve needs lazy cancellation so
#: coast-forward cost actually varies with chi)
KNOB_BASE_KWARGS: dict[str, dict[str, Any]] = {
    "checkpoint": {"cancellation": LC},
}

#: knob -> apps its sweep runs on; time_window widths are virtual-time
#: quantities sized for PHOLD (A5), so that sweep stays PHOLD-only
KNOB_APPS: dict[str, tuple[str, ...]] = {
    name: (("phold",) if name == "time_window" else ("phold", "smmp"))
    for name in KNOBS
}


# --------------------------------------------------------------------- #
@dataclass
class KnobAblation:
    """One knob x one app: the static sweep and the dynamic run."""

    knob: str
    app: str
    statics: list[RunResult]
    dynamic: RunResult
    tolerance: float

    @property
    def best_static(self) -> RunResult:
        return max(self.statics, key=lambda r: r.committed_per_second)

    @property
    def ok(self) -> bool:
        floor = self.best_static.committed_per_second * (1.0 - self.tolerance)
        return self.dynamic.committed_per_second >= floor

    def render(self) -> str:
        title = f"{self.knob} x {self.app}"
        header = (
            f"{'setting':<16} {'exec time (s)':>14} {'events/s':>12} "
            f"{'rollbacks':>10}"
        )
        lines = [title, "=" * len(title), header, "-" * len(header)]
        for result in [*self.statics, self.dynamic]:
            lines.append(
                f"{result.label:<16} {result.execution_time_s:>14.3f} "
                f"{result.committed_per_second:>12.0f} "
                f"{result.rollbacks:>10.1f}"
            )
        best = self.best_static
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(
            f"{verdict}: dynamic {self.dynamic.committed_per_second:.0f} ev/s "
            f"vs best static {best.committed_per_second:.0f} ev/s "
            f"({best.label}), tolerance {self.tolerance:.0%}"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        def cell(result: RunResult) -> dict:
            return {
                "label": result.label,
                "execution_time_us": result.execution_time_us,
                "committed_events": result.committed_events,
                "committed_per_second": result.committed_per_second,
                "rollbacks": result.rollbacks,
            }

        return {
            "knob": self.knob,
            "app": self.app,
            "statics": [cell(r) for r in self.statics],
            "dynamic": cell(self.dynamic),
            "best_static": self.best_static.label,
            "ok": self.ok,
        }


def ablate_knob(
    knob: str,
    app: str,
    *,
    scale: float = 0.05,
    replicates: int = 3,
    tolerance: float = DEFAULT_TOLERANCE,
) -> KnobAblation:
    """Sweep one knob's static settings vs its dynamic policy on one app."""
    spec = get_knob(knob)
    workload = ABLATE_APPS[app]
    build = workload.make_build(scale)
    base = dict(KNOB_BASE_KWARGS.get(knob, {}))
    base.update(workload.make_kwargs(scale))

    statics = []
    for index, (label, value) in enumerate(spec.static_values):
        kwargs = dict(base)
        config_value = spec.static_config_value(value)
        if config_value is not None:
            kwargs[spec.config_field] = config_value
        statics.append(
            run_cell(label, index, build, workload.profile,
                     replicates=replicates, **kwargs)
        )
    kwargs = dict(base)
    kwargs.update(dynamic_config_kwargs((knob,)))
    dynamic = run_cell("dynamic", len(statics), build, workload.profile,
                       replicates=replicates, **kwargs)
    return KnobAblation(
        knob=knob, app=app, statics=statics, dynamic=dynamic,
        tolerance=tolerance,
    )


def run_ablate(
    knobs: tuple[str, ...] | None = None,
    apps: tuple[str, ...] | None = None,
    *,
    scale: float = 0.05,
    replicates: int = 3,
    tolerance: float = DEFAULT_TOLERANCE,
    progress: Callable[[str], None] | None = None,
) -> list[KnobAblation]:
    """The full sweep: every requested knob on every requested app."""
    names = tuple(KNOBS) if knobs is None else knobs
    results = []
    for knob in names:
        get_knob(knob)  # raises on an unknown name
        targets = KNOB_APPS[knob] if apps is None else tuple(
            a for a in apps if a in KNOB_APPS[knob]
        )
        for app in targets:
            if progress is not None:
                progress(f"{knob} x {app}")
            results.append(
                ablate_knob(knob, app, scale=scale, replicates=replicates,
                            tolerance=tolerance)
            )
    return results


def render_ablate(results: list[KnobAblation]) -> str:
    parts = [result.render() for result in results]
    passed = sum(1 for r in results if r.ok)
    parts.append(
        f"dynamic >= best-static (within tolerance) on "
        f"{passed}/{len(results)} knob x app sweeps"
    )
    return "\n\n".join(parts)


def write_ablate_document(
    results: list[KnobAblation],
    path: str | Path,
    *,
    scale: float,
    replicates: int,
) -> Path:
    doc = {
        "schema": SCHEMA_ABLATE,
        "scale": scale,
        "replicates": replicates,
        "results": [r.to_dict() for r in results],
        "ok": all(r.ok for r in results),
    }
    path = Path(path)
    path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    return path
