"""Ablation studies (DESIGN.md A1-A5): design choices the paper discusses
but does not plot.

* **checkpoint** (A1) — the static checkpoint-interval U-curve that
  motivates dynamic adjustment, plus both dynamic transfer functions.
* **cancellation** (A2) — DC sensitivity to filter depth and thresholds
  (the anti-thrashing trio of Section 5).
* **control-period** (A3) — tuning overhead vs adaptivity: "control
  should not be adapted at a high frequency, or the overhead for tuning
  will outweigh the benefits" (Section 3).
* **gvt-period** (A4) — GVT frequency: memory reclamation vs overhead.
"""

from __future__ import annotations

from ..core.cancellation_controller import DynamicCancellation
from ..core.checkpoint_controller import DynamicCheckpoint, HillClimbCheckpoint
from ..kernel.cancellation import Mode, StaticCancellation
from ..kernel.checkpointing import StaticCheckpoint
from .figures import LC, raid_builder, smmp_builder
from .harness import RAID_PROFILE, SMMP_PROFILE, run_cell, scaled
from .tables import render_results


def ablation_checkpoint(scale: float = 0.1, replicates: int = 3) -> str:
    """A1: exec time across static chi (the U-curve) and dynamic policies."""
    build = smmp_builder(scaled(1000, scale))
    results = []
    for chi in (1, 2, 4, 8, 16, 32, 64, 128):
        results.append(
            run_cell(f"static chi={chi}", chi, build, SMMP_PROFILE,
                     replicates=replicates, cancellation=LC,
                     checkpoint=lambda o, c=chi: StaticCheckpoint(c))
        )
    for name, policy in (
        ("paper heuristic", lambda o: DynamicCheckpoint(period=16)),
        ("hill climb", lambda o: HillClimbCheckpoint(period=16)),
    ):
        results.append(
            run_cell(f"dynamic ({name})", 0, build, SMMP_PROFILE,
                     replicates=replicates, cancellation=LC, checkpoint=policy)
        )
    return render_results(
        results,
        "A1 — Checkpoint interval: static U-curve vs dynamic controllers (SMMP)",
    )


def ablation_cancellation(scale: float = 0.15, replicates: int = 3) -> str:
    """A2: DC parameter sensitivity on RAID."""
    build = raid_builder(scaled(1000, scale))
    results = [
        run_cell("AC", 0, build, RAID_PROFILE, replicates=replicates,
                 cancellation=lambda o: StaticCancellation(Mode.AGGRESSIVE)),
        run_cell("LC", 0, build, RAID_PROFILE, replicates=replicates,
                 cancellation=lambda o: StaticCancellation(Mode.LAZY)),
    ]
    for depth in (4, 16, 64):
        results.append(
            run_cell(f"DC fd={depth}", depth, build, RAID_PROFILE,
                     replicates=replicates,
                     cancellation=lambda o, d=depth: DynamicCancellation(
                         filter_depth=d, period=8))
        )
    for a2l, l2a in ((0.3, 0.1), (0.45, 0.2), (0.6, 0.4), (0.4, 0.4)):
        results.append(
            run_cell(f"DC {a2l}/{l2a}", a2l, build, RAID_PROFILE,
                     replicates=replicates,
                     cancellation=lambda o, a=a2l, l=l2a: DynamicCancellation(
                         filter_depth=16, a2l_threshold=a, l2a_threshold=l,
                         period=8))
        )
    return render_results(
        results, "A2 — Dynamic cancellation parameter sensitivity (RAID)"
    )


def ablation_control_period(scale: float = 0.1, replicates: int = 3) -> str:
    """A3: checkpoint-controller invocation period P."""
    build = smmp_builder(scaled(1000, scale))
    results = []
    for period in (2, 4, 8, 16, 32, 64, 128):
        results.append(
            run_cell(f"P={period}", period, build, SMMP_PROFILE,
                     replicates=replicates, cancellation=LC,
                     checkpoint=lambda o, p=period: DynamicCheckpoint(period=p))
        )
    return render_results(
        results,
        "A3 — Control invocation period: tuning overhead vs adaptivity (SMMP)",
    )


def ablation_gvt_period(scale: float = 0.15, replicates: int = 3) -> str:
    """A4: GVT period; also contrasts the two GVT algorithms."""
    build = raid_builder(scaled(1000, scale))
    results = []
    for period in (5_000.0, 20_000.0, 50_000.0, 200_000.0):
        for algorithm in ("omniscient", "mattern"):
            profile = RAID_PROFILE
            results.append(
                run_cell(f"{algorithm}", period, build,
                         profile, replicates=replicates,
                         gvt_algorithm=algorithm,
                         gvt_period=period)
            )
    return render_results(
        results, "A4 — GVT period and algorithm (RAID)"
    )


def ablation_time_window(scale: float = 0.1, replicates: int = 3) -> str:
    """A5: optimism throttling — static window sweep vs adaptive."""
    from ..apps.phold import PHOLDParams, build_phold
    from ..core.window_controller import AdaptiveTimeWindow, StaticTimeWindow
    from .harness import ExperimentProfile

    profile = ExperimentProfile(
        "phold-skewed", speed_factors={1: 1.4, 2: 1.8, 3: 2.4}, jitter=0.4,
        gvt_period=20_000.0,
    )
    params = PHOLDParams(n_objects=16, n_lps=4, jobs_per_object=4)
    build = lambda: build_phold(params)
    horizon = 6_000.0 * scale / 0.1
    results = [
        run_cell("unbounded", 0, build, profile, replicates=replicates,
                 end_time=horizon)
    ]
    for window in (50.0, 200.0, 1_000.0, 5_000.0):
        results.append(
            run_cell(f"static W={window:g}", window, build, profile,
                     replicates=replicates, end_time=horizon,
                     time_window=lambda w=window: StaticTimeWindow(w))
        )
    results.append(
        run_cell("adaptive", 0, build, profile, replicates=replicates,
                 end_time=horizon,
                 time_window=lambda: AdaptiveTimeWindow(min_window=20.0))
    )
    return render_results(
        results, "A5 — bounded time windows (PHOLD, skewed NOW)"
    )


def ablation_partitioning(scale: float = 0.1, replicates: int = 3) -> str:
    """A6: partitioning strategies x cancellation on SMMP."""
    from ..apps.smmp import SMMPParams, build_smmp
    from ..partition import (
        apply_assignment,
        greedy_growth,
        kernighan_lin,
        profile_model,
        round_robin,
    )

    params = SMMPParams(requests_per_processor=scaled(1000, scale))
    flat = lambda: [o for g in build_smmp(params) for o in g]
    graph = profile_model(
        [o for g in build_smmp(SMMPParams(requests_per_processor=30))
         for o in g]
    )
    results = []
    cases = [("hand-crafted", None), ("round-robin", round_robin),
             ("greedy", greedy_growth), ("kernighan-lin", kernighan_lin)]
    for name, strategy in cases:
        if strategy is None:
            build = lambda: build_smmp(params)
        else:
            assignment = strategy(graph, 4)
            build = lambda a=assignment: apply_assignment(flat(), a, 4)
        for mode_name, mode in (("AC", Mode.AGGRESSIVE), ("LC", Mode.LAZY)):
            results.append(
                run_cell(f"{name}/{mode_name}", 0, build, SMMP_PROFILE,
                         replicates=replicates,
                         cancellation=lambda o, m=mode: StaticCancellation(m))
            )
    return render_results(
        results, "A6 — partitioning strategies x cancellation (SMMP)"
    )


ABLATIONS = {
    "checkpoint": ablation_checkpoint,
    "cancellation": ablation_cancellation,
    "control-period": ablation_control_period,
    "gvt-period": ablation_gvt_period,
    "time-window": ablation_time_window,
    "partitioning": ablation_partitioning,
}
