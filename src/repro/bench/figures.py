"""Per-figure experiment definitions (one function per paper figure).

Every function regenerates the rows/series of one figure of the paper's
evaluation section at a configurable scale (``scale=1.0`` is the paper's
workload size; the default is scaled down so the whole set runs in
minutes on a laptop).  Functions return lists of
:class:`~repro.bench.harness.RunResult` so the CLI, the pytest
benchmarks and EXPERIMENTS.md all consume the same data.

| function | paper figure | result |
|----------|--------------|--------|
| fig5     | Figure 5     | normalized performance of checkpointing configs |
| fig6     | Figure 6     | RAID exec time vs #requests across cancellation |
| fig7     | Figure 7     | SMMP exec time vs #test vectors across cancellation |
| fig8     | Figure 8     | SMMP exec time vs aggregate age (FAW/SAAW/none) |
| fig9     | Figure 9     | RAID exec time vs aggregate age (FAW/SAAW/none) |
| baseline_rates | Section 8 text | committed events/s of the all-static bases |
"""

from __future__ import annotations

from typing import Callable

from ..apps.raid import RAIDParams, build_raid
from ..apps.smmp import SMMPParams, build_smmp
from ..comm.aggregation import FixedWindow, NoAggregation
from ..core.aggregation_controller import SAAWPolicy
from ..core.cancellation_controller import (
    DynamicCancellation,
    PermanentAggressive,
    PermanentSet,
    single_threshold,
)
from ..core.checkpoint_controller import DynamicCheckpoint
from ..kernel.cancellation import Mode, StaticCancellation
from ..kernel.checkpointing import StaticCheckpoint
from .harness import RAID_PROFILE, SMMP_PROFILE, RunResult, run_cell, scaled

# --------------------------------------------------------------------- #
# canonical strategy factories (paper parameterizations)
# --------------------------------------------------------------------- #
def AC(_obj):
    return StaticCancellation(Mode.AGGRESSIVE)


def LC(_obj):
    return StaticCancellation(Mode.LAZY)


def DC(_obj):
    """Paper Fig 6: filter depth 16, A2L = 0.45, L2A = 0.2."""
    return DynamicCancellation(filter_depth=16, a2l_threshold=0.45,
                               l2a_threshold=0.2, period=8)


def ST04(_obj):
    """Paper Fig 6: single threshold at 0.4."""
    return single_threshold(0.4, filter_depth=16, period=8)


def PS32(_obj):
    return PermanentSet(filter_depth=16, a2l_threshold=0.45,
                        l2a_threshold=0.2, period=8, lock_after=32)


def PS64(_obj):
    return PermanentSet(filter_depth=16, a2l_threshold=0.45,
                        l2a_threshold=0.2, period=8, lock_after=64)


def PA10(_obj):
    return PermanentAggressive(filter_depth=16, a2l_threshold=0.45,
                               l2a_threshold=0.2, period=8, miss_streak=10)


def dynamic_checkpoint(_obj):
    return DynamicCheckpoint(period=16)


# --------------------------------------------------------------------- #
# builders
# --------------------------------------------------------------------- #
def smmp_builder(requests: int) -> Callable:
    params = SMMPParams(requests_per_processor=requests)
    return lambda: build_smmp(params)


def raid_builder(requests: int) -> Callable:
    params = RAIDParams(requests_per_source=requests)
    return lambda: build_raid(params)


# --------------------------------------------------------------------- #
# Figure 5: dynamic check-pointing (normalized performance)
# --------------------------------------------------------------------- #
def fig5(scale: float = 0.15, replicates: int = 3) -> list[RunResult]:
    """Normalized performance of {PC+AC, PC+LC, DynCkpt+LC} on RAID and
    SMMP.  The all-static case (periodic chi=1 + aggressive) is 1.0."""
    results: list[RunResult] = []
    cases = [
        ("PC+AC", lambda o: StaticCheckpoint(1), AC),
        ("PC+LC", lambda o: StaticCheckpoint(1), LC),
        ("DYN+LC", dynamic_checkpoint, LC),
    ]
    for app, build, profile in [
        ("RAID", raid_builder(scaled(1000, scale)), RAID_PROFILE),
        ("SMMP", smmp_builder(scaled(1000, scale)), SMMP_PROFILE),
    ]:
        for name, ckpt, cancel in cases:
            results.append(
                run_cell(
                    f"{app}/{name}", 0.0, build, profile,
                    replicates=replicates,
                    checkpoint=ckpt, cancellation=cancel,
                )
            )
    # annotate normalized performance relative to each app's PC+AC
    base = {r.label.split("/")[0]: r.execution_time_us
            for r in results if r.label.endswith("PC+AC")}
    for r in results:
        r.extra["normalized"] = base[r.label.split("/")[0]] / r.execution_time_us
    return results


# --------------------------------------------------------------------- #
# Figure 6: RAID execution time vs #requests across cancellation
# --------------------------------------------------------------------- #
def fig6(scale: float = 0.15, replicates: int = 3) -> list[RunResult]:
    """Paper x-axis: 500 and 1000 requests per source."""
    strategies = [
        ("AC", AC), ("LC", LC), ("DC", DC),
        ("ST0.4", ST04), ("PS32", PS32), ("PA10", PA10),
    ]
    results = []
    for requests in (scaled(500, scale), scaled(1000, scale)):
        for name, cancel in strategies:
            results.append(
                run_cell(
                    name, requests, raid_builder(requests), RAID_PROFILE,
                    replicates=replicates, cancellation=cancel,
                )
            )
    return results


# --------------------------------------------------------------------- #
# Figure 7: SMMP execution time vs #test vectors across cancellation
# --------------------------------------------------------------------- #
def fig7(scale: float = 0.05, replicates: int = 3) -> list[RunResult]:
    """Paper x-axis: 2000, 5000, 10000 test vectors per processor."""
    strategies = [
        ("AC", AC), ("LC", LC), ("DC", DC), ("PS64", PS64), ("PA10", PA10),
    ]
    results = []
    for vectors in (scaled(2000, scale), scaled(5000, scale),
                    scaled(10000, scale)):
        for name, cancel in strategies:
            results.append(
                run_cell(
                    name, vectors, smmp_builder(vectors), SMMP_PROFILE,
                    replicates=replicates, cancellation=cancel,
                )
            )
    return results


# --------------------------------------------------------------------- #
# Figures 8 / 9: DyMA — execution time vs aggregate age
# --------------------------------------------------------------------- #
#: aggregate ages swept, in wall-clock µs (the paper's log-scale x axis)
DYMA_AGES = (500.0, 2_000.0, 8_000.0, 32_000.0, 128_000.0)


def _dyma(build, profile, ages, replicates, cancellation) -> list[RunResult]:
    results = [
        run_cell("Unaggregated", 0.0, build, profile,
                 replicates=replicates, cancellation=cancellation,
                 aggregation=lambda lp: NoAggregation())
    ]
    for age in ages:
        results.append(
            run_cell("FAW", age, build, profile, replicates=replicates,
                     cancellation=cancellation,
                     aggregation=lambda lp, a=age: FixedWindow(a))
        )
    for age in ages:
        results.append(
            run_cell("SAAW", age, build, profile, replicates=replicates,
                     cancellation=cancellation,
                     aggregation=lambda lp, a=age: SAAWPolicy(
                         initial_window_us=a))
        )
    return results


def fig8(scale: float = 0.1, replicates: int = 3,
         ages=DYMA_AGES) -> list[RunResult]:
    """SMMP: execution time vs aggregate age for FAW, SAAW, unaggregated."""
    return _dyma(smmp_builder(scaled(2000, scale)), SMMP_PROFILE, ages,
                 replicates, LC)


def fig9(scale: float = 0.2, replicates: int = 3,
         ages=DYMA_AGES) -> list[RunResult]:
    """RAID: execution time vs aggregate age for FAW, SAAW, unaggregated."""
    return _dyma(raid_builder(scaled(1000, scale)), RAID_PROFILE, ages,
                 replicates, LC)


# --------------------------------------------------------------------- #
# Section 8 text: baseline committed-event rates
# --------------------------------------------------------------------- #
def baseline_rates(scale: float = 0.15, replicates: int = 3) -> list[RunResult]:
    """The all-static baselines the paper normalizes against: SMMP
    processed 11,300 committed events/s, RAID 10,917."""
    return [
        run_cell("SMMP baseline", 0.0, smmp_builder(scaled(1000, scale)),
                 SMMP_PROFILE, replicates=replicates),
        run_cell("RAID baseline", 0.0, raid_builder(scaled(1000, scale)),
                 RAID_PROFILE, replicates=replicates),
    ]


FIGURES: dict[str, Callable[..., list[RunResult]]] = {
    "5": fig5,
    "6": fig6,
    "7": fig7,
    "8": fig8,
    "9": fig9,
    "baseline": baseline_rates,
}
