"""Command-line entry point for every benchmark family.

Subcommands::

    repro-bench figures --fig 5            # regenerate a paper figure
    repro-bench figures --all              # every figure, quick scale
    repro-bench figures --ablation checkpoint
    repro-bench faults --plans 100         # differential fault fuzzing
    repro-bench perf --quick               # wall-clock perf suite
    repro-bench perf --compare benchmarks/baseline.json --fail-on-regress 25
    repro-bench parallel --workers 2       # validate the parallel backend
    repro-bench ablate --knob checkpoint   # static-best vs on-line control
    repro-bench verify fuzz --budget 40    # forwards to repro-verify

Back-compat: the original flat spellings keep working — ``repro-bench
--fig 5``, ``repro-bench --faults``, ``repro-bench --all`` and friends
dispatch to the same runners as their subcommand forms.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time

from . import ablations, harness
from .figures import FIGURES
from .tables import render_fig5, render_results, render_series

_SERIES_META = {
    "6": ("requests", "Figure 6 — RAID: execution time vs number of requests"),
    "7": ("vectors", "Figure 7 — SMMP: execution time vs number of test vectors"),
    "8": ("agg age (us)", "Figure 8 — SMMP: DyMA execution time vs aggregate age"),
    "9": ("agg age (us)", "Figure 9 — RAID: DyMA execution time vs aggregate age"),
}

_SUBCOMMANDS = ("figures", "faults", "perf", "parallel", "ablate", "verify")


def render(fig: str, results) -> str:
    if fig == "5":
        return render_fig5(results)
    if fig in _SERIES_META:
        xlabel, title = _SERIES_META[fig]
        return render_series(results, xlabel, title)
    return render_results(results, f"Experiment {fig}")


# --------------------------------------------------------------------- #
# argument groups (shared between subcommand and legacy spellings)
# --------------------------------------------------------------------- #
def _add_figure_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--fig", choices=sorted(FIGURES),
                        help="figure to regenerate (5..9 or 'baseline')")
    parser.add_argument("--all", action="store_true",
                        help="regenerate every figure")
    parser.add_argument("--ablation", choices=sorted(ablations.ABLATIONS),
                        help="run an ablation study instead of a figure")
    parser.add_argument("--scale", type=float, default=None,
                        help="workload scale (1.0 = paper size; default: "
                             "per-figure quick scale)")
    parser.add_argument("--full", action="store_true",
                        help="shorthand for --scale 1.0 (paper-sized; slow)")
    parser.add_argument("--replicates", type=int, default=3,
                        help="seeded replicates per cell (paper used 5)")
    parser.add_argument("--json", metavar="PATH",
                        help="also dump raw results as JSON (figures only)")
    parser.add_argument("--trace", metavar="DIR",
                        help="dump a controller-decision trace (JSONL, see "
                             "docs/observability.md) per replicate into DIR")


def _add_fault_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--plans", type=int, default=100,
                        help="seeded fault plans to sweep")


def _add_perf_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized workloads (~1 min for the full suite)")
    parser.add_argument("--reps", type=int, default=3,
                        help="timed repetitions per benchmark")
    parser.add_argument("--warmup", type=int, default=1,
                        help="untimed warmup repetitions per benchmark")
    parser.add_argument("--only", metavar="SUBSTR",
                        help="run only benchmarks whose name contains SUBSTR")
    parser.add_argument("--out", metavar="PATH", default=None,
                        help="output document path (default: BENCH_3.json; "
                             "'-' skips writing)")
    parser.add_argument("--compare", metavar="BASELINE.json",
                        help="diff this run against a baseline document")
    parser.add_argument("--fail-on-regress", type=float, default=None,
                        metavar="PCT",
                        help="with --compare: exit non-zero if any "
                             "benchmark's rate drops more than PCT percent "
                             "or its deterministic counters drift")
    parser.add_argument("--wire-gate", type=float, default=None,
                        metavar="RATIO",
                        help="exit non-zero unless every parallel shm "
                             "benchmark beats its in-document .queue twin "
                             "by at least RATIO x (same machine, same run)")
    parser.add_argument("--fastpath-gate", type=float, default=None,
                        metavar="RATIO",
                        help="exit non-zero unless every numpy-fastpath "
                             "benchmark beats its in-document .python twin "
                             "by at least RATIO x (same machine, same run)")


# --------------------------------------------------------------------- #
# runners
# --------------------------------------------------------------------- #
def run_figures(args: argparse.Namespace) -> int:
    if not (args.fig or args.all or args.ablation):
        raise SystemExit(
            "repro-bench figures: choose --fig N, --all or --ablation NAME"
        )
    if args.trace:
        harness.set_trace_dir(args.trace)
        print(f"tracing every replicate into {args.trace}/ "
              f"(inspect with repro-trace)")

    kwargs: dict = {"replicates": args.replicates}
    if args.full:
        kwargs["scale"] = 1.0
    elif args.scale is not None:
        kwargs["scale"] = args.scale

    if args.ablation:
        start = time.perf_counter()
        text = ablations.ABLATIONS[args.ablation](**kwargs)
        print(text)
        print(f"\n[{time.perf_counter() - start:.1f}s wall]")
        return 0

    figures = sorted(FIGURES) if args.all else [args.fig]
    dump: dict[str, list[dict]] = {}
    for fig in figures:
        start = time.perf_counter()
        results = FIGURES[fig](**kwargs)
        print(render(fig, results))
        print(f"\n[{time.perf_counter() - start:.1f}s wall]\n")
        dump[fig] = [dataclasses.asdict(r) for r in results]
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(dump, fh, indent=2, default=str)
        print(f"raw results written to {args.json}")
    return 0


def run_faults(args: argparse.Namespace) -> int:
    from ..faults.fuzz import run_fuzz

    start = time.perf_counter()
    report = run_fuzz(plans=args.plans)
    print(report.render())
    print(f"\n[{time.perf_counter() - start:.1f}s wall]")
    return 0 if report.ok else 1


def run_parallel(args: argparse.Namespace) -> int:
    from ..parallel.validate import main as validate_main

    argv: list[str] = ["--workers", str(args.workers),
                       "--strategy", args.strategy,
                       "--timeout", str(args.timeout)]
    for app in args.app or ():
        argv += ["--app", app]
    if args.trace_dir:
        argv += ["--trace-dir", args.trace_dir]
    if args.churn:
        argv += ["--churn", args.churn]
    if args.elastic_smoke:
        argv += ["--elastic-smoke"]
    if args.gvt_period is not None:
        argv += ["--gvt-period", str(args.gvt_period)]
    if args.wire:
        argv += ["--wire", args.wire]
    if args.fastpath:
        argv += ["--fastpath", args.fastpath]
    return validate_main(argv)


def run_perf(args: argparse.Namespace) -> int:
    from .perf.report import (
        DEFAULT_OUTPUT,
        compare_documents,
        fastpath_gate,
        load_document,
        make_document,
        render_document,
        wire_gate,
        write_document,
    )
    from .perf.suite import run_suite

    start = time.perf_counter()
    results = run_suite(
        quick=args.quick,
        reps=args.reps,
        warmup=args.warmup,
        only=args.only,
        progress=lambda name: print(f"  running {name} ...", file=sys.stderr),
    )
    document = make_document(
        results, quick=args.quick, reps=args.reps, warmup=args.warmup
    )
    print(render_document(document))
    print(f"\n[{time.perf_counter() - start:.1f}s wall]")

    out = args.out if args.out is not None else DEFAULT_OUTPUT
    if out != "-":
        path = write_document(document, out)
        print(f"document written to {path}")

    failed = False
    if args.compare:
        baseline = load_document(args.compare)
        comparison = compare_documents(
            baseline, document, fail_on_regress=args.fail_on_regress
        )
        print()
        print(f"comparison vs {args.compare}:")
        print(comparison.render())
        if args.fail_on_regress is not None and not comparison.ok:
            failed = True
    elif args.fail_on_regress is not None:
        raise SystemExit("--fail-on-regress requires --compare BASELINE.json")
    if args.wire_gate is not None:
        gate = wire_gate(document, min_speedup=args.wire_gate)
        print()
        print(gate.render())
        if not gate.ok:
            failed = True
    if args.fastpath_gate is not None:
        gate = fastpath_gate(document, min_speedup=args.fastpath_gate)
        print()
        print(gate.render())
        if not gate.ok:
            failed = True
    return 1 if failed else 0


def run_ablate(args: argparse.Namespace) -> int:
    from ..control.registry import KNOBS
    from .ablate import (
        ABLATE_APPS,
        render_ablate,
        run_ablate as run_sweep,
        write_ablate_document,
    )

    knobs = tuple(args.knob) if args.knob else None
    apps = tuple(args.app) if args.app else None
    scale = args.scale if args.scale is not None else 0.05
    replicates = args.replicates
    if args.quick:
        # CI-sized: two knobs, tiny workloads, still static-vs-dynamic
        knobs = knobs or ("checkpoint", "cancellation")
        if args.scale is None:
            scale = 0.02
        replicates = min(replicates, 2)
    if knobs is not None:
        unknown = sorted(set(knobs) - set(KNOBS))
        if unknown:
            raise SystemExit(f"repro-bench ablate: unknown knob(s) "
                             f"{', '.join(unknown)}; see repro-control list")
    if apps is not None:
        unknown = sorted(set(apps) - set(ABLATE_APPS))
        if unknown:
            raise SystemExit(f"repro-bench ablate: unknown app(s) "
                             f"{', '.join(unknown)}")

    start = time.perf_counter()
    results = run_sweep(
        knobs, apps, scale=scale, replicates=replicates,
        tolerance=args.tolerance,
        progress=lambda label: print(f"  sweeping {label} ...",
                                     file=sys.stderr),
    )
    print(render_ablate(results))
    print(f"\n[{time.perf_counter() - start:.1f}s wall]")
    if args.json:
        path = write_ablate_document(
            results, args.json, scale=scale, replicates=replicates
        )
        print(f"document written to {path}")
    if args.fail_on_loss and not all(r.ok for r in results):
        return 1
    return 0


def _add_ablate_args(parser: argparse.ArgumentParser) -> None:
    from .ablate import DEFAULT_TOLERANCE

    parser.add_argument("--knob", action="append", metavar="NAME",
                        help="knob to ablate (repeatable; default: every "
                             "registered knob — see repro-control list)")
    parser.add_argument("--app", action="append",
                        choices=("phold", "smmp"),
                        help="workload to sweep on (repeatable; default: "
                             "each knob's declared apps)")
    parser.add_argument("--scale", type=float, default=None,
                        help="workload scale (1.0 = paper size; "
                             "default 0.05, or 0.02 with --quick)")
    parser.add_argument("--replicates", type=int, default=3,
                        help="seeded replicates per cell")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="allowed dynamic-vs-best-static shortfall "
                             "(fraction; default %(default)s)")
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized: 2 knobs, tiny scale, 2 replicates")
    parser.add_argument("--json", metavar="PATH",
                        help="write the sweep as a JSON document")
    parser.add_argument("--fail-on-loss", action="store_true",
                        help="exit non-zero if any dynamic run loses to "
                             "its best static beyond the tolerance")


# --------------------------------------------------------------------- #
# entry point
# --------------------------------------------------------------------- #
def _build_subcommand_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Benchmarks for the Time Warp reproduction: paper "
                    "figures, fault-injection fuzzing, and wall-clock "
                    "performance (docs/benchmarking.md).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    figures = subparsers.add_parser(
        "figures", help="regenerate the paper's figures and ablations")
    _add_figure_args(figures)
    figures.set_defaults(runner=run_figures)
    faults = subparsers.add_parser(
        "faults", help="differential fault-injection fuzz sweep")
    _add_fault_args(faults)
    faults.set_defaults(runner=run_faults)
    perf = subparsers.add_parser(
        "perf", help="wall-clock performance suite (emits BENCH_3.json)")
    _add_perf_args(perf)
    perf.set_defaults(runner=run_perf)
    parallel = subparsers.add_parser(
        "parallel",
        help="differentially validate the process-sharded backend "
             "(docs/parallel.md)")
    parallel.add_argument("--app", action="append",
                          choices=("phold", "smmp"),
                          help="application to validate (repeatable; "
                               "default: all)")
    parallel.add_argument("--workers", type=int, default=2,
                          help="worker-process count")
    parallel.add_argument("--strategy", default="kernighan_lin",
                          choices=("kernighan_lin", "greedy_growth",
                                   "round_robin"),
                          help="partition strategy for sharding")
    parallel.add_argument("--timeout", type=float, default=120.0,
                          help="per-run stall timeout in seconds")
    parallel.add_argument("--trace-dir", metavar="DIR",
                          help="write per-shard JSONL traces into DIR")
    parallel.add_argument("--churn", metavar="JSON",
                          help="elasticity plan as inline JSON "
                               "(docs/parallel.md)")
    parallel.add_argument("--elastic-smoke", action="store_true",
                          help="canned elasticity check: one scripted "
                               "migration plus one worker leave")
    parallel.add_argument("--gvt-period", type=float, default=None,
                          help="wall-clock GVT period in microseconds")
    parallel.add_argument("--wire", default=None, choices=("shm", "queue"),
                          help="inter-shard data wire (default: shm); the "
                               "CI parity matrix runs both")
    parallel.add_argument("--fastpath", default=None,
                          choices=("python", "numpy"),
                          help="hot-core pin (default: numpy when "
                               "available); the CI parity leg runs both")
    parallel.set_defaults(runner=run_parallel)
    ablate = subparsers.add_parser(
        "ablate",
        help="per-knob static-best sweep vs on-line control "
             "(docs/control.md)")
    _add_ablate_args(ablate)
    ablate.set_defaults(runner=run_ablate)
    return parser


def _build_legacy_parser() -> argparse.ArgumentParser:
    """The original flat interface, kept as an alias layer."""
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the figures of 'On-line Configuration of a "
                    "Time Warp Parallel Discrete Event Simulator' (ICPP 98).",
    )
    _add_figure_args(parser)
    parser.add_argument("--faults", action="store_true",
                        help="alias for the 'faults' subcommand")
    parser.add_argument("--perf", action="store_true",
                        help="alias for the 'perf' subcommand")
    _add_fault_args(parser)
    _add_perf_args(parser)
    return parser


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "verify":
        # the verification harness owns its own CLI (repro-verify)
        from ..verify.cli import main as verify_main

        return verify_main(argv[1:])
    if argv and argv[0] in _SUBCOMMANDS:
        parser = _build_subcommand_parser()
        args = parser.parse_args(argv)
        return args.runner(args)

    parser = _build_legacy_parser()
    args = parser.parse_args(argv)
    if args.faults:
        return run_faults(args)
    if args.perf:
        return run_perf(args)
    if not (args.fig or args.all or args.ablation):
        parser.error("choose a subcommand (figures/faults/perf) or "
                     "--fig N, --all, --ablation NAME, --faults, --perf")
    return run_figures(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
