"""Command-line entry point: regenerate any figure of the paper.

Examples::

    repro-bench --fig 5                 # quick, scaled-down
    repro-bench --fig 8 --scale 0.3     # closer to paper size
    repro-bench --fig 6 --full          # the paper's workload sizes
    repro-bench --all                   # every figure, quick scale
    repro-bench --ablation checkpoint   # ablation studies (DESIGN.md A1-A4)
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time

from . import ablations, harness
from .figures import FIGURES
from .tables import render_fig5, render_results, render_series

_SERIES_META = {
    "6": ("requests", "Figure 6 — RAID: execution time vs number of requests"),
    "7": ("vectors", "Figure 7 — SMMP: execution time vs number of test vectors"),
    "8": ("agg age (us)", "Figure 8 — SMMP: DyMA execution time vs aggregate age"),
    "9": ("agg age (us)", "Figure 9 — RAID: DyMA execution time vs aggregate age"),
}


def render(fig: str, results) -> str:
    if fig == "5":
        return render_fig5(results)
    if fig in _SERIES_META:
        xlabel, title = _SERIES_META[fig]
        return render_series(results, xlabel, title)
    return render_results(results, f"Experiment {fig}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the figures of 'On-line Configuration of a "
                    "Time Warp Parallel Discrete Event Simulator' (ICPP 98).",
    )
    parser.add_argument("--fig", choices=sorted(FIGURES),
                        help="figure to regenerate (5..9 or 'baseline')")
    parser.add_argument("--all", action="store_true",
                        help="regenerate every figure")
    parser.add_argument("--ablation", choices=sorted(ablations.ABLATIONS),
                        help="run an ablation study instead of a figure")
    parser.add_argument("--scale", type=float, default=None,
                        help="workload scale (1.0 = paper size; default: "
                             "per-figure quick scale)")
    parser.add_argument("--full", action="store_true",
                        help="shorthand for --scale 1.0 (paper-sized; slow)")
    parser.add_argument("--replicates", type=int, default=3,
                        help="seeded replicates per cell (paper used 5)")
    parser.add_argument("--json", metavar="PATH",
                        help="also dump raw results as JSON (figures only)")
    parser.add_argument("--trace", metavar="DIR",
                        help="dump a controller-decision trace (JSONL, see "
                             "docs/observability.md) per replicate into DIR")
    parser.add_argument("--faults", action="store_true",
                        help="run the differential fault-injection fuzz "
                             "sweep instead of a figure (docs/robustness.md)")
    parser.add_argument("--plans", type=int, default=100,
                        help="seeded fault plans to sweep with --faults")
    args = parser.parse_args(argv)

    if args.faults:
        from ..faults.fuzz import run_fuzz

        start = time.perf_counter()
        report = run_fuzz(plans=args.plans)
        print(report.render())
        print(f"\n[{time.perf_counter() - start:.1f}s wall]")
        return 0 if report.ok else 1

    if not (args.fig or args.all or args.ablation):
        parser.error("choose --fig N, --all, --ablation NAME, or --faults")

    if args.trace:
        harness.set_trace_dir(args.trace)
        print(f"tracing every replicate into {args.trace}/ "
              f"(inspect with repro-trace)")

    kwargs: dict = {"replicates": args.replicates}
    if args.full:
        kwargs["scale"] = 1.0
    elif args.scale is not None:
        kwargs["scale"] = args.scale

    if args.ablation:
        start = time.perf_counter()
        text = ablations.ABLATIONS[args.ablation](**kwargs)
        print(text)
        print(f"\n[{time.perf_counter() - start:.1f}s wall]")
        return 0

    figures = sorted(FIGURES) if args.all else [args.fig]
    dump: dict[str, list[dict]] = {}
    for fig in figures:
        start = time.perf_counter()
        results = FIGURES[fig](**kwargs)
        print(render(fig, results))
        print(f"\n[{time.perf_counter() - start:.1f}s wall]\n")
        dump[fig] = [dataclasses.asdict(r) for r in results]
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(dump, fh, indent=2, default=str)
        print(f"raw results written to {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
