"""Differential validation of the parallel backend.

A process-sharded run is not tick-for-tick deterministic — the OS
schedule decides which stragglers arrive late and therefore how many
rollbacks happen — so the backend is validated the way the fault
harness validates the modelled kernel (:mod:`repro.faults.fuzz`): the
*committed result* must be schedule-invariant and equal to the
sequential golden.  Concretely, for an app from the shared
:data:`repro.faults.fuzz.APPS` registry:

1. total committed events == the sequential kernel's executed events;
2. per-object committed counts match the sequential trace exactly;
3. final object states compare equal (plain dataclass ``==``);
4. the invariant oracle, armed inside every worker plus the parent's
   global wire check, reports zero violations.

``main`` backs the ``repro-bench parallel`` CLI subcommand and the CI
``parallel-smoke`` job (docs/parallel.md).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from collections import Counter
from dataclasses import dataclass

from ..faults.fuzz import APPS
from ..kernel.arena import resolve_fastpath
from ..kernel.config import SimulationConfig
from ..oracle.invariants import InvariantOracle
from ..sequential import SequentialSimulation
from .backend import ParallelSimulation

#: Safety valve: a livelocked shard aborts instead of hanging the run.
MAX_EXECUTED_EVENTS = 500_000

_golden_cache: dict[str, tuple[Counter, dict, int]] = {}


def sequential_golden(app: str) -> tuple[Counter, dict, int]:
    """``(per-object executed counts, final states, total)`` — cached."""
    cached = _golden_cache.get(app)
    if cached is None:
        build, end_time = APPS[app]
        seq = SequentialSimulation(
            [obj for group in build() for obj in group],
            record_trace=True,
            end_time=end_time,
        )
        seq.run()
        per_object = Counter(entry[1] for entry in seq.trace)
        states = {obj.name: obj.state for obj in seq.objects}
        cached = _golden_cache[app] = (per_object, states, seq.events_executed)
    return cached


@dataclass(frozen=True)
class DifferentialResult:
    """Outcome of one parallel-vs-sequential differential run."""

    app: str
    workers: int
    committed: int
    expected: int
    #: (object, parallel committed, sequential executed) disagreements
    count_mismatches: tuple[tuple[str, int, int], ...]
    #: object names whose final state differs
    state_mismatches: tuple[str, ...]
    violations: tuple[str, ...]
    oracle_checks: int
    rollbacks: int
    gvt_rounds: int
    wall_s: float
    error: str = ""
    #: ``(commit_index, active_workers)`` steps; more than one entry means
    #: the worker set changed mid-run (churn joins/leaves)
    worker_timeline: tuple[tuple[int, int], ...] = ()
    #: checkpoints restored across shard boundaries during the run
    migrations: int = 0
    #: inter-shard data wire actually used ("shm" or "queue")
    wire: str = "shm"
    #: hot core the workers ran ("python" or "numpy", after degradation)
    fastpath: str = "python"

    @property
    def elastic(self) -> bool:
        """Whether the worker set changed or objects moved mid-run."""
        return self.migrations > 0 or len(self.worker_timeline) > 1

    @property
    def ok(self) -> bool:
        return (
            not self.error
            and self.committed == self.expected
            and not self.count_mismatches
            and not self.state_mismatches
            and not self.violations
        )

    def render(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        lines = [
            f"{status} {self.app} workers={self.workers} wire={self.wire} "
            f"fastpath={self.fastpath}: "
            f"committed {self.committed}/{self.expected}, "
            f"{self.rollbacks} rollback(s), {self.gvt_rounds} GVT round(s), "
            f"{self.oracle_checks} oracle check(s), {self.wall_s:.2f}s wall"
        ]
        if self.elastic:
            timeline = " -> ".join(
                f"{n}w@{at}" for at, n in self.worker_timeline
            )
            lines.append(
                f"  elastic: {self.migrations} migration(s), "
                f"workers {timeline}"
            )
        if self.error:
            lines.append(f"  error: {self.error}")
        for name, got, want in self.count_mismatches:
            lines.append(f"  count mismatch {name}: parallel={got} sequential={want}")
        for name in self.state_mismatches:
            lines.append(f"  final-state mismatch: {name}")
        for violation in self.violations:
            lines.append(f"  invariant violation: {violation}")
        return "\n".join(lines)


def run_differential(
    app: str,
    workers: int,
    *,
    strategy="kernighan_lin",
    timeout_s: float = 120.0,
    trace_dir: str | None = None,
    churn: dict | None = None,
    gvt_period: float | None = None,
    wire: str | None = None,
    fastpath: str | None = None,
) -> DifferentialResult:
    """One differential run of ``app`` over ``workers`` shards.

    ``churn`` is a seeded elasticity plan (migrations and worker
    join/leave keyed by GVT-commit index; see
    :func:`repro.kernel.config.validate_churn_plan`) — the committed
    result must match the golden regardless.  Steps the fleet quiesces
    past fire on the quiet fleet, so every feasible step takes effect.
    ``wire`` selects the inter-shard data path ("shm"/"queue"; ``None``
    keeps the config default) — both must commit identical results,
    which is exactly what the CI parity matrix checks.  ``fastpath``
    pins the hot core the same way ("python"/"numpy"): both cores must
    commit the same golden, so the SoA arena cannot silently reorder.
    """
    build, end_time = APPS[app]
    golden_counts, golden_states, expected = sequential_golden(app)
    config = SimulationConfig(
        backend="parallel",
        workers=workers,
        end_time=end_time,
        oracle=InvariantOracle(),
        max_executed_events=MAX_EXECUTED_EVENTS,
        churn=churn,
        **({} if gvt_period is None else {"gvt_period": gvt_period}),
        **({} if wire is None else {"wire": wire}),
        **({} if fastpath is None else {"fastpath": fastpath}),
    )
    started = time.perf_counter()
    error = ""
    wire_used = config.wire
    fastpath_used = resolve_fastpath(config.fastpath)
    committed = rollbacks = gvt_rounds = oracle_checks = 0
    count_mismatches: list[tuple[str, int, int]] = []
    state_mismatches: list[str] = []
    violations: tuple[str, ...] = ()
    worker_timeline: tuple[tuple[int, int], ...] = ((0, workers),)
    migrations = 0
    try:
        sim = ParallelSimulation.from_builder(
            build, config, strategy=strategy,
            trace_dir=trace_dir, timeout_s=timeout_s,
        )
        stats = sim.run()
        wire_used = sim.wire
        committed = stats.committed_events
        rollbacks = stats.rollbacks
        gvt_rounds = sim.gvt_rounds_run
        oracle_checks = sim.oracle_checks
        violations = tuple(
            f"shard {shard}: {violation}" for shard, violation in sim.violations
        )
        worker_timeline = tuple(sim.worker_timeline)
        migrations = sim.migrations_in
        for name in sorted(golden_states):
            got = stats.per_object[name].events_committed
            want = golden_counts.get(name, 0)
            if got != want:
                count_mismatches.append((name, got, want))
            if sim.final_states[name] != golden_states[name]:
                state_mismatches.append(name)
    except Exception as exc:  # a crash is a finding, not a harness abort
        error = f"{type(exc).__name__}: {exc}"
    return DifferentialResult(
        app=app,
        workers=workers,
        committed=committed,
        expected=expected,
        count_mismatches=tuple(count_mismatches),
        state_mismatches=tuple(state_mismatches),
        violations=violations,
        oracle_checks=oracle_checks,
        rollbacks=rollbacks,
        gvt_rounds=gvt_rounds,
        wall_s=time.perf_counter() - started,
        error=error,
        worker_timeline=worker_timeline,
        migrations=migrations,
        wire=wire_used,
        fastpath=fastpath_used,
    )


def main(argv=None) -> int:
    """``repro-bench parallel`` entry: differential runs, exit 1 on FAIL."""
    parser = argparse.ArgumentParser(
        prog="repro-bench parallel",
        description="differentially validate the process-sharded backend",
    )
    parser.add_argument(
        "--app", action="append", choices=sorted(APPS),
        help="application to validate (repeatable; default: all)",
    )
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--strategy", default="kernighan_lin",
        choices=("kernighan_lin", "greedy_growth", "round_robin"),
    )
    parser.add_argument("--timeout", type=float, default=120.0)
    parser.add_argument(
        "--trace-dir", default=None,
        help="write per-shard JSONL traces under this directory",
    )
    parser.add_argument(
        "--churn", default=None, metavar="JSON",
        help="elasticity plan as inline JSON "
             '(e.g. \'{"seed":7,"steps":[{"at":1,"kind":"migrate","count":2}]}\')',
    )
    parser.add_argument(
        "--elastic-smoke", action="store_true",
        help="canned elasticity check: one scripted migration plus one "
             "worker leave, differential against the sequential golden",
    )
    parser.add_argument(
        "--wire", default=None, choices=("shm", "queue"),
        help="inter-shard data wire (default: the config default, shm); "
             "the CI parity matrix runs both and compares digests",
    )
    parser.add_argument(
        "--fastpath", default=None, choices=("python", "numpy"),
        help="hot-core pin (default: the config default, numpy when "
             "available); the CI parity leg runs both against one golden",
    )
    parser.add_argument(
        "--gvt-period", type=float, default=None,
        help="wall-clock GVT period in microseconds (churn plans want a "
             "short one so every step's commit index is reached)",
    )
    args = parser.parse_args(argv)
    apps = args.app or sorted(APPS)
    churn = json.loads(args.churn) if args.churn else None
    gvt_period = args.gvt_period
    if args.elastic_smoke:
        if churn is not None:
            parser.error("--elastic-smoke supplies its own churn plan")
        churn = {
            "seed": 7,
            "steps": [
                {"at": 1, "kind": "migrate", "count": 1},
                {"at": 2, "kind": "leave", "count": 1},
            ],
        }
        if gvt_period is None:
            gvt_period = 5_000.0
    results = [
        run_differential(
            app, args.workers,
            strategy=args.strategy, timeout_s=args.timeout,
            trace_dir=args.trace_dir, churn=churn, gvt_period=gvt_period,
            wire=args.wire, fastpath=args.fastpath,
        )
        for app in apps
    ]
    for result in results:
        print(result.render())
    failed = [r for r in results if not r.ok]
    print("PASS" if not failed else f"FAIL ({len(failed)} app(s))")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
