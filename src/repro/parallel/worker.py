"""The per-shard worker process.

Each worker hosts ONE :class:`~repro.kernel.lp.LogicalProcess` — the
process boundary *is* the LP boundary, which is the paper's reading of an
LP as an address space on one workstation — and runs the proven
single-process Time Warp loop over it: execute lowest-timestamp-first,
roll back on stragglers and anti-messages, checkpoint, coast forward.
Nothing in the rollback machinery is reimplemented; the worker only
supplies what the modelled Executive supplied before:

* a delivery loop draining the shard's inbox queue (data batches from
  peers, GVT control from the coordinator);
* a flush scheduler for aging DyMA aggregates (a small heap against the
  LP's modelled clock, since there is no global modelled NOW);
* Mattern colouring for every inter-shard send/receive via a
  :class:`~repro.gvt.mattern.ColourAgent`, with stamps carried in the
  IPC envelopes;
* fossil collection on every committed GVT bound, and the invariant
  oracle (gvt_monotonic / gvt_safety / state fidelity in-shard;
  wire_conservation / message_loss against the coordinator's global
  totals at the end of the run).
"""

from __future__ import annotations

import heapq
import os
import queue as queue_mod
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..comm.message import MessageKind
from ..comm.transport import CommModule
from ..gvt.mattern import ColourAgent
from ..kernel.arena import resolve_fastpath
from ..kernel.config import SimulationConfig
from ..kernel.errors import ConfigurationError, SchedulingError, TerminationError
from ..kernel.lp import LogicalProcess
from ..kernel.migration import ObjectCheckpoint, detach_object, restore_object
from ..kernel.simobject import SimulationObject
from ..kernel.state import resolve_snapshot_strategy
from ..oracle.invariants import NULL_ORACLE
from ..trace.tracer import NULL_TRACER, Tracer
from .ipc import (
    DataBatch,
    Doorbell,
    DrainAck,
    DrainProbe,
    GvtCommit,
    GvtStart,
    MigrateBatch,
    MigrateDone,
    PauseEpoch,
    Reconfigure,
    Resume,
    Retire,
    ShardDone,
    ShardError,
    ShardReport,
    ShardRetired,
    Stop,
)
from .transport import ShardTransport
from .wire import WireEncodeError, decode_batch, encode_batch

#: events executed between inbox polls.  This is the arrival-latency /
#: throughput trade-off: long slices amortize queue polls but let a shard
#: race ahead of in-flight stragglers, and measured on PHOLD the rollback
#: cost dominates far earlier than the polling cost (slice 128 ran at
#: ~0.26 efficiency where 32 reached ~0.6).  Override per run with
#: ``ShardPlan.extras["execute_slice"]``.
EXECUTE_SLICE = 32

#: idle blocking-wait granularity on the inbox, seconds
IDLE_WAIT_S = 0.005

#: wait while blocked pushing into a full outbound ring, seconds.  The
#: first ~50 retries only yield the scheduler (``sleep(0)``): on an
#: oversubscribed host the consumer usually just needs a time slice.
BACKPRESSURE_WAIT_S = 0.0005
_BACKPRESSURE_YIELDS = 50
#: backoff sleeps tolerated before giving up on the ring for this batch
#: (~1 s at BACKPRESSURE_WAIT_S).  A consumer that long without draining
#: has almost certainly died; the batch takes the queue fallback so the
#: producer returns to its inbox and Stop stays deliverable.
_BACKPRESSURE_MAX_WAITS = 2000


@dataclass
class ShardPlan:
    """Everything one worker needs to build its shard (passed via fork)."""

    #: (global oid, object) pairs hosted by this shard
    objects: list[tuple[int, SimulationObject]]
    name_to_oid: dict[str, int]
    oid_to_shard: dict[int, int]
    config: SimulationConfig
    n_shards: int
    #: directory for a per-shard JSONL trace (None = no tracing)
    trace_dir: str | None = None
    #: extra payload keys tests can request (kept small)
    extras: dict[str, Any] = field(default_factory=dict)


def worker_main(shard_id: int, plan: ShardPlan, inbox, to_coordinator,
                out_queues, rings=None) -> None:
    """Process entry point: run the shard, always report home.

    ``rings`` is the backend's full ``(src, dst) -> ShmRing`` map (shared
    segments inherited across fork), or ``None`` for the queue wire.
    """
    try:
        _ShardRuntime(
            shard_id, plan, inbox, to_coordinator, out_queues, rings
        ).run()
    except BaseException:
        # A crash is a finding for the parent, not a silent exit code.
        to_coordinator.put(ShardError(shard_id, traceback.format_exc()))


class _ShardRuntime:
    """One worker's live state: LP, transport, colour agent, flush heap."""

    def __init__(self, shard_id: int, plan: ShardPlan, inbox, to_coordinator,
                 out_queues, rings=None) -> None:
        self.shard_id = shard_id
        self.plan = plan
        self.inbox = inbox
        self.to_coordinator = to_coordinator
        self.out_queues = out_queues
        config = plan.config
        if config.pin_cores and hasattr(os, "sched_setaffinity"):
            try:
                cpus = sorted(os.sched_getaffinity(0))
                os.sched_setaffinity(0, {cpus[shard_id % len(cpus)]})
            except OSError:  # pragma: no cover - affinity is best-effort
                pass

        # -- shm wire (docs/parallel.md, "Wire formats") ----------------- #
        rings = rings or {}
        #: inbound rings, keyed by producing shard
        self._rings_in = {
            src: ring for (src, dst), ring in rings.items() if dst == shard_id
        }
        #: outbound rings, keyed by consuming shard
        self._rings_out = {
            dst: ring for (src, dst), ring in rings.items() if src == shard_id
        }
        #: batches absorbed from inbound rings while blocked on a full
        #: outbound ring (decoded but not yet handled — handling mutates
        #: LP state, which must not happen mid-send)
        self._pending: deque[DataBatch] = deque()
        self._frames_sent = 0
        self._frames_received = 0
        self._ring_bytes_sent = 0
        self._wire_fallbacks = 0

        self.agent = ColourAgent()
        self.transport = ShardTransport(shard_id, self.agent)

        lp = LogicalProcess(
            shard_id,
            config.costs_for_lp(shard_id),
            resolve_name=self._resolve,
            lp_of=plan.oid_to_shard.__getitem__,
            end_time=config.end_time,
            # resolved per worker: a heterogeneous fleet (some interpreters
            # without numpy) still commits byte-identical results
            fastpath=resolve_fastpath(config.fastpath),
        )
        self.lp = lp
        if plan.trace_dir is not None:
            path = Path(plan.trace_dir) / f"shard-{shard_id}.jsonl"
            self.tracer = Tracer(path=path)
        else:
            self.tracer = NULL_TRACER
        oracle = config.oracle if config.oracle is not None else NULL_ORACLE
        if oracle.enabled and oracle.tracer is NULL_TRACER:
            oracle.tracer = self.tracer
        self.oracle = oracle
        lp.tracer = self.tracer
        lp.oracle = oracle
        lp.snapshot_strategy = resolve_snapshot_strategy(config.snapshot)

        comm = CommModule(
            host=lp,
            network=self.transport,
            costs=lp.costs,
            policy=config.aggregation(shard_id),
            tracer=self.tracer,
        )
        comm.set_routing(plan.oid_to_shard)
        lp.comm = comm
        #: (flush-at modelled clock, dst shard, aggregate generation)
        self._flush_heap: list[tuple[float, int, int]] = []
        lp.schedule_flush = self._schedule_flush  # TransportHost hook

        for oid, obj in plan.objects:
            lp.attach(
                obj,
                oid,
                cancel_policy=config.cancellation(obj),
                ckpt_policy=config.checkpoint(obj),
            )
        # Live migration can leave stale addressing in flight (an aggregate
        # buffered against the old owner, a message already in a pipe): the
        # drain barrier is designed to make that impossible, but if one
        # slips through, re-route it instead of crashing the shard.
        lp.forward = self._forward_event

        self._slice = int(plan.extras.get("execute_slice", EXECUTE_SLICE))
        self._pending_gvt: GvtStart | None = None
        self._stop: Stop | None = None
        self._committed_gvt = 0.0
        self._gvt_commits = 0
        self._executed = 0

        # -- elastic-epoch state (docs/parallel.md) ---------------------- #
        #: joiners fork paused inside the epoch that created them
        self._paused_epoch: int | None = plan.extras.get("join_epoch")
        self._pending_probe: DrainProbe | None = None
        self._reconfig: Reconfigure | None = None
        self._expect_in = 0
        self._got_in = 0
        #: MigrateBatches that outran their Reconfigure (queue feeder
        #: threads give no cross-producer ordering), keyed by epoch
        self._early_batches: dict[int, list[MigrateBatch]] = {}
        self._retired = False
        self.migrations_in = 0
        self.migrations_out = 0
        self._report_loads = bool(plan.extras.get("report_loads"))

    # ------------------------------------------------------------------ #
    def _resolve(self, name: str) -> int:
        try:
            return self.plan.name_to_oid[name]
        except KeyError:
            raise ConfigurationError(f"unknown simulation object {name!r}") from None

    def _forward_event(self, event) -> None:
        """Re-route an event for an object this shard no longer hosts."""
        dst = self.plan.oid_to_shard[event.receiver]
        if dst == self.shard_id:  # pragma: no cover - defensive
            raise SchedulingError(
                f"object {event.receiver} routed to shard {dst} but not hosted"
            )
        self.lp.stats.remote_events_sent += 1
        self.lp.comm.enqueue(event)

    def _schedule_flush(self, dst_lp: int, at: float, generation: int) -> None:
        heapq.heappush(self._flush_heap, (at, dst_lp, generation))

    def _pop_due_flushes(self) -> None:
        heap = self._flush_heap
        clock = self.lp.clock
        comm = self.lp.comm
        while heap and heap[0][0] <= clock:
            _, dst, generation = heapq.heappop(heap)
            comm.flush_due(dst, generation)

    # ------------------------------------------------------------------ #
    # main loop
    # ------------------------------------------------------------------ #
    def run(self) -> None:
        lp = self.lp
        lp.initialize()  # initial sends land in the DyMA buffers
        max_events = self.plan.config.max_executed_events
        while self._stop is None and not self._retired:
            handled = self._drain_inbox()
            if self._stop is not None or self._retired:
                break
            if self._paused_epoch is not None:
                # Elastic epoch: no forward execution, no on_idle (it
                # expires comparison entries, which are checkpoint state);
                # just drain, flush, and answer the coordinator.
                self._elastic_tick(handled)
                continue
            executed = 0
            while executed < self._slice and self._stop is None:
                if not lp.execute_one():
                    break
                executed += 1
                self._pop_due_flushes()
            self._executed += executed
            if max_events is not None and self._executed > max_events:
                raise TerminationError(
                    f"shard {self.shard_id} exceeded max_executed_events="
                    f"{max_events} (livelock safety valve)"
                )
            if self._pending_gvt is not None:
                self._send_report()
            self._flush_outbox()
            if self._stop is None and not executed and not handled:
                lp.on_idle()  # expire comparisons, drain aggregates
                self._flush_outbox()
                self._wait_one()
        if self._stop is not None:
            self._finish(self._stop)

    # ------------------------------------------------------------------ #
    # inbox
    # ------------------------------------------------------------------ #
    def _drain_inbox(self) -> int:
        handled = 0
        while True:
            message = self._next_nowait()
            if message is None:
                return handled
            handled += 1
            self._handle(message)
            if self._stop is not None:
                return handled

    def _next_nowait(self):
        """Next deliverable message: absorbed backlog, rings, then queue."""
        if self._pending:
            return self._pending.popleft()
        for ring in self._rings_in.values():
            frame = ring.try_pop()
            if frame is not None:
                self._frames_received += 1
                return decode_batch(frame)
        try:
            return self.inbox.get_nowait()
        except queue_mod.Empty:
            return None

    def _absorb_rings(self) -> int:
        """Drain every inbound ring into the pending backlog.

        Called while blocked pushing into a *full* outbound ring: taking
        our inbound frames off the wire guarantees some consumer is
        always making space, so two mutually-full workers cannot
        deadlock.  Frames are only decoded here, never handled — the LP
        is mid-send and must not be mutated.
        """
        absorbed = 0
        for ring in self._rings_in.values():
            while True:
                frame = ring.try_pop()
                if frame is None:
                    break
                self._frames_received += 1
                self._pending.append(decode_batch(frame))
                absorbed += 1
        return absorbed

    def _wait_one(self) -> None:
        rings = self._rings_in
        if rings:
            # Sleep-wakeup protocol: raise the waiting flags, re-poll the
            # rings (a frame may have landed before the flag was visible),
            # then block on the control queue — a producer that observes
            # the flag after its push rings the Doorbell there.
            for ring in rings.values():
                ring.set_waiting()
            message = self._next_nowait()
            if message is None:
                try:
                    message = self.inbox.get(timeout=IDLE_WAIT_S)
                except queue_mod.Empty:
                    message = None
            for ring in rings.values():
                ring.clear_waiting()
            if message is not None:
                self._handle(message)
            return
        try:
            message = self.inbox.get(timeout=IDLE_WAIT_S)
        except queue_mod.Empty:
            return
        self._handle(message)

    def _handle(self, message) -> None:
        if isinstance(message, DataBatch):
            self.transport.batches_received += 1
            lp = self.lp
            for stamp, physical in message.envelopes:
                self.agent.note_receive(stamp)
                self.transport.note_received(physical)
                if physical.kind is MessageKind.DATA:
                    lp.receive_physical(physical.size_bytes(), physical.events)
        elif isinstance(message, Doorbell):
            pass  # wakeup only; the frames are already visible in the rings
        elif isinstance(message, GvtStart):
            # Entering the round first makes every later send red.
            self.agent.enter_round(message.round)
            lp = self.lp
            lp.charge(lp.costs.gvt_participation_cost)
            lp.stats.gvt_rounds += 1
            self._pending_gvt = message
        elif isinstance(message, GvtCommit):
            self._on_commit(message)
        elif isinstance(message, Stop):
            self._stop = message
        elif isinstance(message, PauseEpoch):
            self._paused_epoch = message.epoch
            self.lp.comm.flush_all()
            self._flush_outbox()
        elif isinstance(message, DrainProbe):
            self._pending_probe = message
        elif isinstance(message, Reconfigure):
            self._apply_reconfigure(message)
        elif isinstance(message, MigrateBatch):
            if (
                self._reconfig is not None
                and message.epoch == self._reconfig.epoch
            ):
                self._restore_batch(message)
                self._maybe_migrate_done()
            else:
                # outran its Reconfigure; stash until the move list arrives
                self._early_batches.setdefault(
                    message.epoch, []
                ).append(message)
        elif isinstance(message, Resume):
            self._paused_epoch = None
        elif isinstance(message, Retire):
            self.tracer.close()
            self.to_coordinator.put(
                ShardRetired(self.shard_id, self._final_payload())
            )
            self._retired = True
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown IPC message: {message!r}")

    # ------------------------------------------------------------------ #
    # elastic epochs: pause -> drain -> move -> resume
    # ------------------------------------------------------------------ #
    def _elastic_tick(self, handled: int) -> None:
        """One paused-loop iteration: keep the wire moving, answer probes."""
        if handled:
            # deliveries may have rolled objects back and queued
            # anti-messages; push everything out before claiming quiet
            self.lp.comm.flush_all()
            self._flush_outbox()
            return  # re-poll: more may already be behind what we handled
        if self._pending_probe is not None:
            # inbox empty and everything flushed: snapshot the totals
            self.lp.comm.flush_all()
            self._flush_outbox()
            probe = self._pending_probe
            self._pending_probe = None
            self.to_coordinator.put(DrainAck(
                shard=self.shard_id,
                epoch=probe.epoch,
                probe=probe.probe,
                total_sent=self.transport.messages_sent,
                total_received=self.transport.messages_received,
            ))
            return
        self._wait_one()

    def _apply_reconfigure(self, msg: Reconfigure) -> None:
        # The routing delta mutates plan.oid_to_shard IN PLACE: that one
        # dict object is simultaneously the CommModule routing table and
        # the LP's lp_of resolver, so every send sees the new owner at
        # the same instant.
        routing = self.plan.oid_to_shard
        outgoing: dict[int, list[int]] = {}
        incoming = 0
        for oid, src, dst in msg.moves:
            routing[oid] = dst
            if src == self.shard_id:
                outgoing.setdefault(dst, []).append(oid)
            if dst == self.shard_id:
                incoming += 1
        for dst in sorted(outgoing):
            oids = outgoing[dst]
            blobs = tuple(
                detach_object(self.lp, oid).to_bytes() for oid in oids
            )
            self.migrations_out += len(oids)
            # direct queue put, NOT the colour-stamped transport: the wire
            # is provably empty, and migration must not skew Mattern counts
            self.out_queues[dst].put(
                MigrateBatch(self.shard_id, msg.epoch, blobs)
            )
        self._reconfig = msg
        self._expect_in = incoming
        self._got_in = 0
        for batch in self._early_batches.pop(msg.epoch, []):
            self._restore_batch(batch)
        self._maybe_migrate_done()

    def _restore_batch(self, batch: MigrateBatch) -> None:
        for blob in batch.checkpoints:
            checkpoint = ObjectCheckpoint.from_bytes(blob)
            restore_object(self.lp, checkpoint)
            self._got_in += 1
            self.migrations_in += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    "lp.migrate", self.lp.clock,
                    oid=checkpoint.oid,
                    src_lp=batch.src_shard,
                    dst_lp=self.shard_id,
                )

    def _maybe_migrate_done(self) -> None:
        if self._reconfig is None or self._got_in < self._expect_in:
            return
        epoch = self._reconfig.epoch
        self._reconfig = None
        self._expect_in = 0
        self._got_in = 0
        self.to_coordinator.put(MigrateDone(self.shard_id, epoch))

    # ------------------------------------------------------------------ #
    # GVT participation
    # ------------------------------------------------------------------ #
    def _send_report(self) -> None:
        start = self._pending_gvt
        self._pending_gvt = None
        assert start is not None
        # The outbox must be drained first so every send this shard has
        # performed is either in a queue (in flight, covered by the white
        # counts) or red (covered by red_min) at the cut.
        self._flush_outbox()
        lp = self.lp
        agent = self.agent
        active = (
            lp.has_work(ignore_window=True)
            or lp.comm.buffered_event_count() > 0
            or any(ctx.cmp_buffer.pending() for ctx in lp.members.values())
        )
        loads = None
        if self._report_loads:
            # committed (not executed) counts: rollback re-execution
            # inflates the far-ahead shards' executed totals and inverts
            # the balance signal (see PlacementController)
            loads = tuple(sorted(
                (oid, ctx.stats.events_committed)
                for oid, ctx in lp.members.items()
            ))
        self.to_coordinator.put(
            ShardReport(
                shard=self.shard_id,
                round=start.round,
                pass_no=start.pass_no,
                local_min=lp.local_min(),
                white_sent=agent.white_sent(),
                white_received=agent.white_received(),
                red_min=agent.red_min,
                red_sent=agent.red_sent(),
                active=active,
                total_sent=self.transport.messages_sent,
                total_received=self.transport.messages_received,
                loads=loads,
            )
        )

    def _on_commit(self, commit: GvtCommit) -> None:
        lp = self.lp
        oracle = self.oracle
        if oracle.enabled:
            oracle.on_gvt_estimate(lp.clock, commit.gvt, self._committed_gvt)
        if self.tracer.enabled:
            self.tracer.emit(
                "gvt.round", lp.clock,
                algorithm="mattern", gvt=commit.gvt,
                advanced=commit.gvt > self._committed_gvt,
            )
        self._committed_gvt = max(self._committed_gvt, commit.gvt)
        self._gvt_commits += 1
        lp.fossil_collect(commit.gvt)

    # ------------------------------------------------------------------ #
    # outbox
    # ------------------------------------------------------------------ #
    def _flush_outbox(self) -> None:
        for dst, envelopes in self.transport.drain():
            self._send_batch(dst, envelopes)

    def _send_batch(self, dst: int, envelopes) -> None:
        """Ship one batch: packed frame through the ring when possible,
        pickled DataBatch over the queue otherwise (oversized frames,
        unencodable payloads, or no ring for this destination)."""
        ring = self._rings_out.get(dst)
        if ring is not None:
            try:
                frame = encode_batch(self.shard_id, envelopes)
            except WireEncodeError:
                frame = None
            if frame is not None and len(frame) <= ring.max_record:
                spins = 0
                pushed = True
                while not ring.try_push(frame):
                    # Full ring: keep OUR inbound side drained while we
                    # wait (deadlock freedom), then yield/back off.  The
                    # wait is bounded — if the consumer never drains
                    # (crashed or exited), this batch takes the queue
                    # fallback below rather than spinning forever with
                    # the inbox (and any Stop in it) unread.
                    spins += 1
                    if spins > _BACKPRESSURE_YIELDS + _BACKPRESSURE_MAX_WAITS:
                        pushed = False
                        break
                    if not self._absorb_rings():
                        time.sleep(
                            0.0 if spins <= _BACKPRESSURE_YIELDS
                            else BACKPRESSURE_WAIT_S
                        )
                if pushed:
                    self._frames_sent += 1
                    self._ring_bytes_sent += len(frame)
                    if ring.take_waiting():
                        self.out_queues[dst].put(Doorbell(self.shard_id))
                    return
            self._wire_fallbacks += 1
        self.out_queues[dst].put(DataBatch(self.shard_id, envelopes))

    # ------------------------------------------------------------------ #
    # termination
    # ------------------------------------------------------------------ #
    def _finish(self, stop: Stop) -> None:
        lp = self.lp
        lp.on_idle()
        self._flush_outbox()  # quiescence was proven; this must be a no-op
        lp.fossil_collect(float("inf"), final=True)
        lp.finalize()
        oracle = self.oracle
        if oracle.enabled:
            oracle.on_run_end(_EndOfRunView(lp, stop))
        self.tracer.close()
        self.to_coordinator.put(ShardDone(self.shard_id, self._final_payload()))

    def _final_payload(self) -> dict[str, Any]:
        lp = self.lp
        transport = self.transport
        oracle = self.oracle
        return {
            "lp_stats": lp.stats,
            "object_stats": lp.object_stats(),
            "final_states": {
                ctx.obj.name: ctx.state for ctx in lp.members.values()
            },
            "clock": lp.clock,
            "violations": list(oracle.violations),
            "oracle_checks": getattr(oracle, "checks", 0),
            "committed_gvt": self._committed_gvt,
            "gvt_commits": self._gvt_commits,
            "migrations": {
                "in": self.migrations_in,
                "out": self.migrations_out,
            },
            "transport": {
                "messages_sent": transport.messages_sent,
                "messages_received": transport.messages_received,
                "events_carried": transport.events_carried,
                "bytes_sent": transport.bytes_sent,
                "batches_sent": transport.batches_sent,
                "batches_received": transport.batches_received,
                "wire": "shm" if self._rings_out or self._rings_in else "queue",
                "frames_sent": self._frames_sent,
                "frames_received": self._frames_received,
                "ring_bytes_sent": self._ring_bytes_sent,
                "wire_fallbacks": self._wire_fallbacks,
            },
        }


class _GlobalWire:
    """End-of-run wire view built from the coordinator's global totals."""

    def __init__(self, sent: int, delivered: int) -> None:
        self._sent = sent
        self._delivered = delivered

    def wire_counts(self) -> dict[str, int]:
        return {
            "sent": self._sent,
            "delivered": self._delivered,
            "lost": 0,
            "in_flight": self._sent - self._delivered,
        }

    def undelivered_data_count(self) -> int:
        return max(0, self._sent - self._delivered)


class _EndOfRunView:
    """The executive-shaped object ``InvariantOracle.on_run_end`` walks."""

    def __init__(self, lp: LogicalProcess, stop: Stop) -> None:
        self.wallclock = lp.clock
        self.network = _GlobalWire(stop.total_sent, stop.total_received)
        self.lps = [lp]
