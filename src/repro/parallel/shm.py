"""SPSC shared-memory ring buffers: the fast inter-shard wire.

One :class:`ShmRing` sits on a single ``multiprocessing.shared_memory``
segment and carries length-prefixed binary frames from exactly one
producer process to exactly one consumer process (the parallel backend
creates one ring per *directed* shard pair before forking, so rings are
inherited, never pickled).  Handoff is by a pair of monotonically
increasing byte cursors in the segment header — the producer owns
``tail``, the consumer owns ``head``, and each side publishes its cursor
exactly once per operation *after* the corresponding data write, which
is the whole synchronization protocol (single-producer/single-consumer
plus x86-TSO/compiler-barrier-per-bytecode store ordering; no locks, no
syscalls on the hot path).  That ordering assumption is load-bearing:
:func:`shm_wire_supported` answers whether the current machine provides
it, and the parallel backend silently degrades ``wire="shm"`` to the
queue wire where it does not (weakly ordered CPUs could observe a
published cursor before the payload bytes and decode torn frames).

Record framing: ``u32`` length + payload, written contiguously.  When a
record does not fit in the space before the physical end of the segment,
the producer writes a wrap marker (``0xFFFFFFFF``) in the remaining
space (or nothing, if fewer than 4 bytes remain — both sides skip the
tail sliver implicitly) and restarts at offset 0; cursors keep counting
monotonically, so ``full`` vs ``empty`` is never ambiguous.

``try_push`` returns ``False`` on a full ring — backpressure is the
*caller's* job (the worker drains its own inbound rings while waiting,
which is what makes mutual-full deadlock impossible; see
``worker._send_batch``).  The header also carries a consumer-waiting
flag: the consumer sets it before blocking on its control queue, the
producer tests-and-clears it after a push and, if it was set, sends a
``Doorbell`` down the (slow, syscall) queue to wake the consumer.
Duplicate or stale doorbells are harmless no-ops.
"""

from __future__ import annotations

import platform
import struct
from multiprocessing import shared_memory

#: default per-ring data capacity used by the parallel backend, bytes.
#: Bounded memory: a pool of P workers allocates P*(P-1) rings.
RING_CAPACITY = 1 << 18

_HEADER_BYTES = 64
_HEAD_OFF = 0  # consumer cursor (u64, monotonic)
_TAIL_OFF = 16  # producer cursor (u64, monotonic)
_WAIT_OFF = 32  # consumer-waiting flag (u8)
_WRAP = 0xFFFFFFFF

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")

#: machines whose store ordering satisfies the ring protocol (x86-TSO).
_TSO_MACHINES = frozenset(
    {"x86_64", "amd64", "i686", "i586", "i486", "i386", "x86"}
)


def shm_wire_supported(machine: str | None = None) -> bool:
    """Whether the lock-free ring protocol is safe on this CPU.

    The cursor handoff relies on total-store-order semantics: the
    payload write must become visible to the consumer no later than the
    cursor publish.  CPython emits no fences, so on weakly ordered
    machines (aarch64, ppc64le, ...) the consumer could observe the new
    cursor before the payload bytes and decode a torn frame.  The
    parallel backend consults this to degrade ``wire="shm"`` to the
    queue wire silently off x86.
    """
    if machine is None:
        machine = platform.machine()
    return machine.lower() in _TSO_MACHINES


class RingRecordTooLarge(ValueError):
    """The record can never fit this ring; use the queue fallback."""


class ShmRing:
    """One directed single-producer/single-consumer frame ring."""

    __slots__ = ("_shm", "_buf", "_capacity", "max_record", "_owner")

    def __init__(self, shm: shared_memory.SharedMemory, *, owner: bool = False):
        self._shm = shm
        self._buf = shm.buf
        self._capacity = shm.size - _HEADER_BYTES
        #: largest pushable record.  Half the capacity (minus the length
        #: prefix) guarantees progress: at any write offset either the
        #: straight run to the physical end fits the record, or the
        #: offset itself is large enough that the wrap path fits once
        #: the ring drains.  Anything bigger can land at an offset where
        #: *neither* path ever fits — even on an empty ring — and wedge
        #: the producer permanently.
        self.max_record = self._capacity // 2 - 4
        self._owner = owner

    @classmethod
    def create(cls, capacity: int = RING_CAPACITY) -> "ShmRing":
        """Allocate a fresh zeroed ring (call :meth:`destroy` when done)."""
        if capacity < 64:
            raise ValueError(f"ring capacity {capacity} is unusably small")
        shm = shared_memory.SharedMemory(
            create=True, size=_HEADER_BYTES + capacity
        )
        shm.buf[:_HEADER_BYTES] = bytes(_HEADER_BYTES)
        return cls(shm, owner=True)

    # ------------------------------------------------------------------ #
    # producer side
    # ------------------------------------------------------------------ #
    def try_push(self, payload: bytes) -> bool:
        """Append one record; ``False`` if the ring is currently full."""
        n = len(payload)
        need = 4 + n
        if n > self.max_record:
            raise RingRecordTooLarge(
                f"{n}-byte record exceeds ring max {self.max_record}"
            )
        buf = self._buf
        cap = self._capacity
        head = _U64.unpack_from(buf, _HEAD_OFF)[0]
        tail = _U64.unpack_from(buf, _TAIL_OFF)[0]
        free = cap - (tail - head)
        offset = tail % cap
        contiguous = cap - offset
        if contiguous < need:
            # restart at 0; the tail sliver is skipped by both sides
            if contiguous + need > free:
                return False
            if contiguous >= 4:
                _U32.pack_into(buf, _HEADER_BYTES + offset, _WRAP)
            tail += contiguous
            offset = 0
        elif need > free:
            return False
        start = _HEADER_BYTES + offset
        _U32.pack_into(buf, start, n)
        buf[start + 4:start + 4 + n] = payload
        # publish: the single store that makes the record visible
        _U64.pack_into(buf, _TAIL_OFF, tail + need)
        return True

    def take_waiting(self) -> bool:
        """Test-and-clear the consumer-waiting flag (producer side)."""
        buf = self._buf
        if buf[_WAIT_OFF]:
            buf[_WAIT_OFF] = 0
            return True
        return False

    # ------------------------------------------------------------------ #
    # consumer side
    # ------------------------------------------------------------------ #
    def try_pop(self) -> bytes | None:
        """Remove and return the oldest record, or ``None`` when empty."""
        buf = self._buf
        cap = self._capacity
        head = _U64.unpack_from(buf, _HEAD_OFF)[0]
        tail = _U64.unpack_from(buf, _TAIL_OFF)[0]
        if head == tail:
            return None
        offset = head % cap
        contiguous = cap - offset
        if contiguous < 4:
            head += contiguous  # implicit sliver skip (no room for a marker)
            offset = 0
        elif _U32.unpack_from(buf, _HEADER_BYTES + offset)[0] == _WRAP:
            head += contiguous
            offset = 0
        start = _HEADER_BYTES + offset
        n = _U32.unpack_from(buf, start)[0]
        payload = bytes(buf[start + 4:start + 4 + n])
        # publish: frees the space for the producer
        _U64.pack_into(buf, _HEAD_OFF, head + 4 + n)
        return payload

    def set_waiting(self) -> None:
        self._buf[_WAIT_OFF] = 1

    def clear_waiting(self) -> None:
        self._buf[_WAIT_OFF] = 0

    # ------------------------------------------------------------------ #
    # introspection / lifecycle
    # ------------------------------------------------------------------ #
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def used(self) -> int:
        buf = self._buf
        return (_U64.unpack_from(buf, _TAIL_OFF)[0]
                - _U64.unpack_from(buf, _HEAD_OFF)[0])

    @property
    def empty(self) -> bool:
        return self.used == 0

    @property
    def name(self) -> str:
        return self._shm.name

    def close(self) -> None:
        self._buf = None
        self._shm.close()

    def destroy(self) -> None:
        """Close and unlink (creator side; idempotent best-effort)."""
        try:
            self.close()
        except BufferError:  # pragma: no cover - exported views outstanding
            pass
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
