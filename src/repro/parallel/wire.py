"""Packed binary encoding of inter-shard data batches.

The queue wire pickles whole :class:`~repro.parallel.ipc.DataBatch`
objects, which rebuilds every ``Event``/``PhysicalMessage`` dataclass
through the generic pickle machinery on both sides of every hop.  This
module replaces that with a versioned ``struct``-packed frame: the fixed
numeric event fields travel as struct-of-arrays blocks (one contiguous
``u32``/``u64``/``f64`` run per field, vectorized through numpy when it
is installed and the batch is large enough to pay for the call), and
payloads travel as one tag byte plus an inline little-endian body for
the common immutable types, with a pickle *escape hatch* for anything
odd or oversized (big ints, application objects, non-UTF-8 strings).

Frames are self-describing and versioned: a decoder refuses a frame
whose magic or version it does not know (``WireFormatError``), which is
the upgrade rule — bump :data:`WIRE_VERSION` on any layout change, never
reinterpret silently.  An encoder that cannot represent a batch at all
(a non-DATA message, a control payload, an id outside the fixed-width
fields) raises :class:`WireEncodeError`; the worker then falls back to
the pickled queue path for that batch, so the ring only ever carries
frames this module fully owns.

Round-trip contract (tests/parallel/test_wire.py): for every encodable
batch, ``decode_batch(encode_batch(...))`` reproduces the source shard,
every colour stamp, and every event field *exactly* — floats are carried
as IEEE-754 doubles, i.e. bit-identical — so committed results are
byte-identical to a queue-wire run.  Receiver-side
``PhysicalMessage.serial`` is process-local bookkeeping and is minted
fresh on decode (nothing on the receive path reads it).

Frame layout (all little-endian)::

    offset  field
    0       u16   magic 0x5257 ("RW")
    2       u8    version (currently 1)
    3       u8    frame kind (1 = data batch)
    4       u32   src_shard
    8       u32   n_envelopes
    12      envelopes...

    envelope:
      u32 colour stamp | u32 src_lp | u32 dst_lp | u32 n_events
      senders    n*u32     (struct-of-arrays blocks)
      receivers  n*u32
      serials    n*u64
      signs      n*i8
      send_times n*f64
      recv_times n*f64
      payloads   n * (u8 tag + body)       -- see _TAG_* below

The block order and dtypes are :data:`repro.kernel.arena.SOA_LAYOUT` —
the same struct-of-arrays layout the :class:`~repro.kernel.arena.EventArena`
stores — so a decoded envelope's columns can land in an arena
(:func:`decode_batch_soa` + ``EventArena.insert_columns``) as six block
copies, without boxing each row into an :class:`Event` first.
"""

from __future__ import annotations

import pickle
import struct

from ..comm.message import MessageKind, PhysicalMessage
from ..kernel.arena import SOA_LAYOUT
from ..kernel.event import Event
from .ipc import DataBatch, Envelope

try:  # optional vectorized field blocks (pure-struct fallback below)
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on bare installs
    _np = None

#: bump on ANY layout change; decoders reject unknown versions
WIRE_VERSION = 1
_MAGIC = 0x5257  # "RW"
_FRAME_DATA_BATCH = 1

#: batches smaller than this skip numpy (call overhead beats the win)
_NP_MIN_EVENTS = 32

_HEADER = struct.Struct("<HBBII")
_ENVELOPE = struct.Struct("<IIII")
_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")

# payload tag bytes
_TAG_NONE = 0
_TAG_FALSE = 1
_TAG_TRUE = 2
_TAG_INT = 3  # i64 body; ints outside i64 escape to pickle
_TAG_FLOAT = 4  # f64 body
_TAG_STR = 5  # u32 length + utf-8 bytes
_TAG_BYTES = 6  # u32 length + raw bytes
_TAG_TUPLE = 7  # u32 count + nested tagged values
_TAG_PICKLE = 8  # u32 length + pickle bytes (the escape hatch)

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1
_U32_MAX = (1 << 32) - 1
_U64_MAX = (1 << 64) - 1


class WireFormatError(ValueError):
    """A frame's magic/version/kind is not one this decoder speaks."""


class WireEncodeError(ValueError):
    """This batch cannot be represented in the packed format; the caller
    must fall back to the pickled queue wire."""


# --------------------------------------------------------------------- #
# payload values
# --------------------------------------------------------------------- #
def _encode_payload(value, parts: list[bytes]) -> None:
    kind = type(value)
    if value is None:
        parts.append(b"\x00")
    elif kind is bool:
        parts.append(b"\x02" if value else b"\x01")
    elif kind is int:
        if _I64_MIN <= value <= _I64_MAX:
            parts.append(b"\x03" + _I64.pack(value))
        else:
            blob = pickle.dumps(value, pickle.HIGHEST_PROTOCOL)
            parts.append(b"\x08" + _U32.pack(len(blob)) + blob)
    elif kind is float:
        parts.append(b"\x04" + _F64.pack(value))
    elif kind is str:
        try:
            raw = value.encode("utf-8")
        except UnicodeEncodeError:  # lone surrogates etc.
            blob = pickle.dumps(value, pickle.HIGHEST_PROTOCOL)
            parts.append(b"\x08" + _U32.pack(len(blob)) + blob)
        else:
            parts.append(b"\x05" + _U32.pack(len(raw)) + raw)
    elif kind is bytes:
        parts.append(b"\x06" + _U32.pack(len(value)) + value)
    elif kind is tuple:
        parts.append(b"\x07" + _U32.pack(len(value)))
        for item in value:
            _encode_payload(item, parts)
    else:
        # the escape hatch: frozen dataclasses, enums, Decimal, ...
        try:
            blob = pickle.dumps(value, pickle.HIGHEST_PROTOCOL)
        except Exception as exc:  # unpicklable payload: not our problem
            raise WireEncodeError(f"unencodable payload: {exc}") from exc
        parts.append(b"\x08" + _U32.pack(len(blob)) + blob)


def _decode_payload(buf, offset: int):
    tag = buf[offset]
    offset += 1
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_INT:
        return _I64.unpack_from(buf, offset)[0], offset + 8
    if tag == _TAG_FLOAT:
        return _F64.unpack_from(buf, offset)[0], offset + 8
    if tag == _TAG_STR:
        n = _U32.unpack_from(buf, offset)[0]
        offset += 4
        return bytes(buf[offset:offset + n]).decode("utf-8"), offset + n
    if tag == _TAG_BYTES:
        n = _U32.unpack_from(buf, offset)[0]
        offset += 4
        return bytes(buf[offset:offset + n]), offset + n
    if tag == _TAG_TUPLE:
        count = _U32.unpack_from(buf, offset)[0]
        offset += 4
        items = []
        for _ in range(count):
            item, offset = _decode_payload(buf, offset)
            items.append(item)
        return tuple(items), offset
    if tag == _TAG_PICKLE:
        n = _U32.unpack_from(buf, offset)[0]
        offset += 4
        return pickle.loads(bytes(buf[offset:offset + n])), offset + n
    raise WireFormatError(f"unknown payload tag {tag}")


# --------------------------------------------------------------------- #
# struct-of-arrays field blocks
# --------------------------------------------------------------------- #
def _pack_block(values: list, fmt: str, np_dtype: str) -> bytes:
    n = len(values)
    if _np is not None and n >= _NP_MIN_EVENTS:
        try:
            return _np.asarray(values, dtype=np_dtype).tobytes()
        except OverflowError as exc:
            raise WireEncodeError(str(exc)) from exc
    try:
        return struct.pack(f"<{n}{fmt}", *values)
    except struct.error as exc:
        raise WireEncodeError(str(exc)) from exc


def _unpack_block(buf, offset: int, n: int, fmt: str, np_dtype: str, width: int):
    end = offset + n * width
    if _np is not None and n >= _NP_MIN_EVENTS:
        return _np.frombuffer(buf, dtype=np_dtype, count=n, offset=offset).tolist(), end
    return struct.unpack_from(f"<{n}{fmt}", buf, offset), end


# --------------------------------------------------------------------- #
# batches
# --------------------------------------------------------------------- #
def encode_batch(src_shard: int, envelopes: tuple[Envelope, ...]) -> bytes:
    """Pack one outbox drain into a single binary frame.

    Raises :class:`WireEncodeError` when any envelope falls outside the
    packed format's fixed-width fields (the caller falls back to the
    pickled queue wire for the whole batch).
    """
    parts: list[bytes] = [
        _HEADER.pack(_MAGIC, WIRE_VERSION, _FRAME_DATA_BATCH,
                     src_shard, len(envelopes))
    ]
    for stamp, message in envelopes:
        if message.kind is not MessageKind.DATA or message.control is not None:
            raise WireEncodeError(
                f"only plain DATA messages ride the ring, got {message.kind}"
            )
        events = message.events
        n = len(events)
        try:
            parts.append(_ENVELOPE.pack(stamp, message.src_lp,
                                        message.dst_lp, n))
        except struct.error as exc:
            raise WireEncodeError(str(exc)) from exc
        senders = []
        receivers = []
        serials = []
        signs = []
        send_times = []
        recv_times = []
        for event in events:
            senders.append(event.sender)
            receivers.append(event.receiver)
            serials.append(event.serial)
            signs.append(event.sign)
            send_times.append(event.send_time)
            recv_times.append(event.recv_time)
        columns = (senders, receivers, serials, signs, send_times, recv_times)
        for values, (_attr, fmt, np_dtype, _width) in zip(columns, SOA_LAYOUT):
            parts.append(_pack_block(values, fmt, np_dtype))
        for event in events:
            _encode_payload(event.payload, parts)
    return b"".join(parts)


def decode_batch(frame) -> DataBatch:
    """Inverse of :func:`encode_batch` (accepts bytes or a memoryview)."""
    magic, version, kind, src_shard, n_envelopes = _HEADER.unpack_from(frame, 0)
    if magic != _MAGIC:
        raise WireFormatError(f"bad frame magic 0x{magic:04x}")
    if version != WIRE_VERSION:
        raise WireFormatError(
            f"wire version {version} not supported (speaking {WIRE_VERSION})"
        )
    if kind != _FRAME_DATA_BATCH:
        raise WireFormatError(f"unknown frame kind {kind}")
    offset = _HEADER.size
    envelopes: list[Envelope] = []
    for _ in range(n_envelopes):
        stamp, src_lp, dst_lp, n = _ENVELOPE.unpack_from(frame, offset)
        offset += _ENVELOPE.size
        blocks = []
        for _attr, fmt, np_dtype, width in SOA_LAYOUT:
            block, offset = _unpack_block(frame, offset, n, fmt, np_dtype, width)
            blocks.append(block)
        senders, receivers, serials, signs, send_times, recv_times = blocks
        events = []
        for i in range(n):
            payload, offset = _decode_payload(frame, offset)
            events.append(Event(
                sender=senders[i],
                receiver=receivers[i],
                send_time=send_times[i],
                recv_time=recv_times[i],
                payload=payload,
                serial=serials[i],
                sign=signs[i],
            ))
        envelopes.append((stamp, PhysicalMessage(
            src_lp=src_lp,
            dst_lp=dst_lp,
            kind=MessageKind.DATA,
            events=tuple(events),
        )))
    return DataBatch(src_shard, tuple(envelopes))


def decode_batch_soa(frame):
    """Decode a frame into struct-of-arrays columns, without boxing Events.

    Returns ``(src_shard, envelopes)`` where each envelope is
    ``(stamp, src_lp, dst_lp, columns, payloads)`` and ``columns`` holds
    the six :data:`~repro.kernel.arena.SOA_LAYOUT` blocks — numpy arrays
    of the layout dtypes when numpy is available (zero-copy views over
    the frame buffer), plain tuples otherwise.  The columns feed
    ``EventArena.insert_columns`` directly: six block copies per
    envelope, with Event handles materialized lazily only for rows the
    scheduler actually touches.
    """
    magic, version, kind, src_shard, n_envelopes = _HEADER.unpack_from(frame, 0)
    if magic != _MAGIC:
        raise WireFormatError(f"bad frame magic 0x{magic:04x}")
    if version != WIRE_VERSION:
        raise WireFormatError(
            f"wire version {version} not supported (speaking {WIRE_VERSION})"
        )
    if kind != _FRAME_DATA_BATCH:
        raise WireFormatError(f"unknown frame kind {kind}")
    offset = _HEADER.size
    envelopes = []
    for _ in range(n_envelopes):
        stamp, src_lp, dst_lp, n = _ENVELOPE.unpack_from(frame, offset)
        offset += _ENVELOPE.size
        columns = []
        for _attr, fmt, np_dtype, width in SOA_LAYOUT:
            if _np is not None:
                column = _np.frombuffer(frame, dtype=np_dtype, count=n,
                                        offset=offset)
            else:
                column = struct.unpack_from(f"<{n}{fmt}", frame, offset)
            columns.append(column)
            offset += n * width
        payloads = []
        for _ in range(n):
            payload, offset = _decode_payload(frame, offset)
            payloads.append(payload)
        envelopes.append((stamp, src_lp, dst_lp, tuple(columns), payloads))
    return src_shard, envelopes
