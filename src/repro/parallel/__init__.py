"""Process-sharded parallel execution backend (docs/parallel.md).

Shards the LPs of a partitioned model across OS worker processes, runs
the proven single-process Time Warp loop inside each shard, batches
inter-shard events over ``multiprocessing`` queues behind the DyMA
aggregation buffers, and drives Mattern-colour GVT from a coordinator in
the parent process.  Select it with
``SimulationConfig(backend="parallel", workers=N)`` through
:func:`repro.make_simulation`, or construct
:class:`ParallelSimulation` directly.
"""

from .backend import ParallelSimulation, resolve_strategy
from .gvt import GvtCoordinator, RoundResult, WorkerFailedError
from .ipc import (
    DataBatch,
    GvtCommit,
    GvtStart,
    ShardDone,
    ShardError,
    ShardReport,
    Stop,
)
from .transport import ShardTransport
from .validate import DifferentialResult, run_differential, sequential_golden
from .worker import ShardPlan, worker_main

__all__ = [
    "DataBatch",
    "DifferentialResult",
    "GvtCommit",
    "GvtCoordinator",
    "GvtStart",
    "ParallelSimulation",
    "RoundResult",
    "ShardDone",
    "ShardError",
    "ShardPlan",
    "ShardReport",
    "ShardTransport",
    "Stop",
    "WorkerFailedError",
    "resolve_strategy",
    "run_differential",
    "sequential_golden",
    "worker_main",
]
