"""Control-plane records of the process-sharded backend.

Everything that crosses a process boundary is one of the picklable
records below, travelling over ``multiprocessing`` queues.  With the
default ``wire="shm"`` the bulk data path — :class:`DataBatch` — instead
travels as packed binary frames through shared-memory rings
(:mod:`repro.parallel.wire` / :mod:`repro.parallel.shm`) and the queues
carry only control records, doorbells, and the occasional oversized
batch that escapes back to pickle; with ``wire="queue"`` every record
below travels the queues:

* shard -> shard: :class:`DataBatch` — every application
  :class:`~repro.comm.message.PhysicalMessage` the sender accumulated
  since its last queue write, each wrapped in an *envelope* carrying its
  Mattern colour stamp.  The stamp must travel with the message: the
  modelled-network :class:`~repro.gvt.mattern.MatternGVT` keeps stamps in
  a side-table keyed by process-local message serials, which cannot cross
  address spaces.
* coordinator -> shard: :class:`GvtStart` (open one token pass of a GVT
  round), :class:`GvtCommit` (a new safe bound: fossil-collect), and
  :class:`Stop` (global quiescence proven: finalize and report).
* shard -> coordinator: :class:`ShardReport` (one pass's cut snapshot)
  and :class:`ShardDone` / :class:`ShardError` (terminal payloads).

Batching happens at two levels — DyMA aggregation packs events into
physical messages (``comm/aggregation.py``), and the outbox packs
physical messages into one ``DataBatch`` per destination per queue write
— so a chatty model costs queue operations proportional to flushes, not
to events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..comm.message import PhysicalMessage

#: (mattern colour stamp, message) — the unit a DataBatch carries.
Envelope = tuple[int, PhysicalMessage]


@dataclass(frozen=True, slots=True)
class DataBatch:
    """All inter-shard messages one sender accumulated for one receiver."""

    src_shard: int
    envelopes: tuple[Envelope, ...]


@dataclass(frozen=True, slots=True)
class Doorbell:
    """Shm-wire wakeup: "I pushed a frame into your ring while your
    waiting flag was set".  Carries no data — the frames live in the
    rings — and duplicates are harmless; the receiver just re-polls.
    With ``wire="shm"`` the queues carry only control traffic like this
    (see docs/parallel.md, "Wire formats")."""

    src_shard: int


@dataclass(frozen=True, slots=True)
class GvtStart:
    """Coordinator opens one token pass of a Mattern round."""

    round: int
    pass_no: int


@dataclass(frozen=True, slots=True)
class GvtCommit:
    """Coordinator announces a new safe GVT bound."""

    round: int
    gvt: float


@dataclass(frozen=True, slots=True)
class Stop:
    """Coordinator proved global quiescence: finalize and report.

    Carries the global wire totals so every worker can run the oracle's
    wire-conservation / message-loss end-of-run checks against numbers
    that actually mean something (a single shard's sent/received counts
    are never expected to balance on their own).
    """

    final_gvt: float
    total_sent: int
    total_received: int


@dataclass(frozen=True, slots=True)
class ShardReport:
    """One worker's consistent cut snapshot for one (round, pass)."""

    shard: int
    round: int
    pass_no: int
    #: lower bound on virtual times this shard can still affect locally
    local_min: float
    #: messages sent before the shard entered this round
    white_sent: int
    #: received messages stamped with an older round
    white_received: int
    #: min event time among messages sent during this round
    red_min: float
    #: messages sent during this round (0 on a quiescent shard)
    red_sent: int
    #: executable/buffered work remains on this shard
    active: bool
    #: lifetime physical-message totals (for the Stop broadcast)
    total_sent: int
    total_received: int
    #: optional per-object load sample ((oid, events_executed), ...);
    #: populated only when the coordinator-side balancer asked for it
    loads: tuple[tuple[int, int], ...] | None = None


@dataclass(frozen=True, slots=True)
class ShardDone:
    """Terminal payload: everything the parent merges into RunStats."""

    shard: int
    #: serialized per-shard results; see worker._final_payload for keys
    payload: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class ShardError:
    """A worker died; the traceback travels home for the RuntimeError."""

    shard: int
    error: str


# --------------------------------------------------------------------- #
# elastic reconfiguration (docs/parallel.md, "Elastic worker pool")
# --------------------------------------------------------------------- #
# One elastic *epoch* runs strictly between GVT rounds:
#   PauseEpoch -> DrainProbe/DrainAck (wire proven empty) ->
#   Reconfigure -> MigrateBatch/MigrateDone -> Retire/ShardRetired ->
#   Resume
# Migration traffic bypasses the colour-stamped transport on purpose:
# the wire is provably empty while it flows, so it must not perturb the
# Mattern accounting.


@dataclass(frozen=True, slots=True)
class PauseEpoch:
    """Coordinator opens elastic epoch ``epoch``: stop forward execution,
    keep draining the inbox (deliveries may still roll back and emit
    anti-messages), flush all aggregates and the outbox."""

    epoch: int


@dataclass(frozen=True, slots=True)
class DrainProbe:
    """Coordinator asks for a drain snapshot: reply with a DrainAck once
    the inbox is empty and every buffered message is flushed out."""

    epoch: int
    probe: int


@dataclass(frozen=True, slots=True)
class DrainAck:
    """One paused worker's lifetime wire totals, snapshotted with an
    empty inbox and empty outbox.  When the acks of every active worker
    satisfy ``sum(total_sent) == sum(total_received)`` the wire is empty:
    any send after a snapshot would require a receive after a snapshot,
    which inductively requires an uncounted earlier send."""

    shard: int
    epoch: int
    probe: int
    total_sent: int
    total_received: int


@dataclass(frozen=True, slots=True)
class Reconfigure:
    """The epoch's placement delta, broadcast to every active worker
    (joiners included).  Each worker applies ``moves`` to its local
    routing map in place, ships checkpoints for the objects it loses,
    and counts the objects it gains."""

    epoch: int
    #: ((oid, src_shard, dst_shard), ...)
    moves: tuple[tuple[int, int, int], ...]
    #: shards retiring at the end of this epoch
    leavers: tuple[int, ...]


@dataclass(frozen=True, slots=True)
class MigrateBatch:
    """Canonical object checkpoints travelling src -> dst, outside the
    colour-stamped transport (the wire is drained while these flow)."""

    src_shard: int
    epoch: int
    #: serialized ObjectCheckpoint blobs (see repro.kernel.migration)
    checkpoints: tuple[bytes, ...]


@dataclass(frozen=True, slots=True)
class MigrateDone:
    """A worker shipped all outgoing and restored all expected incoming
    checkpoints for ``epoch``."""

    shard: int
    epoch: int


@dataclass(frozen=True, slots=True)
class Resume:
    """Coordinator closes the epoch: surviving workers resume forward
    execution."""

    epoch: int


@dataclass(frozen=True, slots=True)
class Retire:
    """Coordinator tells an emptied leaver to finalize and exit."""

    epoch: int


@dataclass(frozen=True, slots=True)
class ShardRetired:
    """Terminal payload of a retired worker: same keys as ShardDone's,
    plus its lifetime wire totals stay folded into the coordinator's
    retired-correction terms."""

    shard: int
    payload: dict[str, Any] = field(default_factory=dict)
