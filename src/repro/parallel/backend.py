"""Process-sharded parallel execution backend.

:class:`ParallelSimulation` is the concurrent sibling of
:class:`~repro.kernel.kernel.TimeWarpSimulation`: same partition-of-objects
input, same ``run() -> RunStats`` output, but the LPs execute in separate
OS processes (one LP per worker — the process boundary is the address
space the paper's LP abstraction stands for).  Inter-shard events travel
behind the DyMA aggregation buffers as packed binary frames through
shared-memory SPSC rings (``wire="shm"``, the default; see
:mod:`repro.parallel.wire` and :mod:`repro.parallel.shm`) or as pickled
batches over ``multiprocessing`` queues (``wire="queue"``, the pure
fallback); the parent process runs Mattern-colour GVT rounds
(:mod:`repro.parallel.gvt`), drives fossil collection, detects
termination, and merges the per-shard statistics into one
:class:`~repro.stats.counters.RunStats`.

A parallel run is **not** tick-for-tick deterministic — OS scheduling
decides the rollback pattern — so correctness is enforced differentially
(:mod:`repro.parallel.validate`): committed model counters and final
object states must match the sequential golden, and the invariant oracle
runs inside every worker.  See docs/parallel.md.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import queue as queue_mod
import random
import time
from pathlib import Path
from typing import Callable, Sequence

from ..kernel.config import SimulationConfig
from ..kernel.errors import ConfigurationError
from ..kernel.kernel import Partition
from ..kernel.simobject import SimulationObject
from ..oracle.invariants import InvariantViolation
from ..partition.graph import CommGraph, profile_model
from ..partition.rebalance import choose_moves
from ..partition.strategies import (
    greedy_growth,
    kernighan_lin,
    partition_quality,
    round_robin,
)
from ..stats.counters import RunStats
from .gvt import GvtCoordinator, RoundResult
from .shm import RING_CAPACITY, ShmRing, shm_wire_supported
from .ipc import (
    DrainAck,
    DrainProbe,
    GvtCommit,
    MigrateDone,
    PauseEpoch,
    Reconfigure,
    Resume,
    Retire,
    ShardDone,
    ShardError,
    ShardRetired,
    Stop,
)
from .worker import ShardPlan, worker_main

#: wait between all-idle rounds while termination drains, seconds
QUIET_SLEEP_S = 0.001

PartitionBuilder = Callable[[], Partition]

_STRATEGIES = {
    "round_robin": round_robin,
    "greedy_growth": greedy_growth,
    "kernighan_lin": kernighan_lin,
}


def resolve_strategy(spec) -> Callable[[CommGraph, int], dict[str, int]]:
    """Name or callable -> assignment strategy.

    ``"kernighan_lin"`` (the default everywhere) degrades to
    ``greedy_growth`` when networkx is unavailable, so the parallel
    backend works on a bare install.
    """
    if callable(spec):
        return spec
    try:
        strategy = _STRATEGIES[spec]
    except KeyError:
        raise ConfigurationError(
            f"unknown partition strategy {spec!r}; "
            f"available: {sorted(_STRATEGIES)}"
        ) from None
    if strategy is kernighan_lin:
        def kl_with_fallback(graph: CommGraph, n_lps: int) -> dict[str, int]:
            try:
                return kernighan_lin(graph, n_lps)
            except ImportError:
                return greedy_growth(graph, n_lps)
        return kl_with_fallback
    return strategy


class ParallelSimulation:
    """One Time Warp run sharded across ``config.workers`` processes."""

    def __init__(
        self,
        partition: Partition,
        config: SimulationConfig | None = None,
        *,
        shard_map: dict[str, int] | None = None,
        trace_dir: str | None = None,
        timeout_s: float = 120.0,
    ) -> None:
        self.config = config or SimulationConfig(backend="parallel")
        # Enforce the parallel-specific constraints even when the caller
        # constructed us directly with backend="modelled" in the config.
        dataclasses.replace(self.config, backend="parallel").validate()
        if not partition or not any(partition):
            raise ConfigurationError("partition must contain at least one object")
        self.workers = self.config.workers
        self.trace_dir = trace_dir
        if trace_dir is not None:
            # workers open shard-<n>.jsonl inside it before executing
            Path(trace_dir).mkdir(parents=True, exist_ok=True)
        self.timeout_s = timeout_s

        # --- directory (same walk as TimeWarpSimulation) ----------------
        # Object ids are assigned in partition flat order and NEVER by
        # shard, because the event total order tie-breaks on integer oids
        # (kernel/event.py EventKey): keeping oid order identical to a
        # sequential run over the same flattened partition makes the
        # committed result — including same-timestamp tie order — equal to
        # the sequential golden.  ``shard_map`` (object name -> shard)
        # overrides placement without perturbing oid order; without it,
        # groups map to shards 1:1 when counts match, else fold
        # round-robin so each modelled-LP group stays co-resident.
        self._objects: list[SimulationObject] = []
        self._name_to_oid: dict[str, int] = {}
        self._oid_to_shard: dict[int, int] = {}
        n_groups = len(partition)
        for group_index, group in enumerate(partition):
            group_shard = (
                group_index
                if n_groups == self.workers
                else group_index % self.workers
            )
            for obj in group:
                if obj.name in self._name_to_oid:
                    raise ConfigurationError(f"duplicate object name {obj.name!r}")
                if shard_map is not None:
                    try:
                        shard = shard_map[obj.name]
                    except KeyError:
                        raise ConfigurationError(
                            f"shard_map is missing object {obj.name!r}"
                        ) from None
                    if not 0 <= shard < self.workers:
                        raise ConfigurationError(
                            f"shard_map sends {obj.name!r} to shard {shard}, "
                            f"but workers={self.workers}"
                        )
                else:
                    shard = group_shard
                oid = len(self._objects)
                self._objects.append(obj)
                self._name_to_oid[obj.name] = oid
                self._oid_to_shard[oid] = shard
        hosted = set(self._oid_to_shard.values())
        if hosted != set(range(self.workers)):
            empty = sorted(set(range(self.workers)) - hosted)
            raise ConfigurationError(
                f"shard(s) {empty} would host no objects; "
                f"use fewer workers or more partition groups"
            )

        #: set by :meth:`from_builder` when a strategy chose the sharding
        self.assignment: dict[str, int] | None = None
        self.partition_quality: dict | None = None

        # --- elastic pool state (docs/parallel.md) -----------------------
        churn = self.config.churn or {}
        #: GVT-commit index -> scripted churn steps due at that commit
        self._churn_steps: dict[int, list[dict]] = {}
        for step in churn.get("steps", []):
            self._churn_steps.setdefault(step["at"], []).append(step)
        self._churn_rng = random.Random(churn.get("seed", 0))
        self._join_budget = sum(
            1
            for steps in self._churn_steps.values()
            for step in steps
            if step["kind"] == "join"
        )
        self._epoch = 0
        self._commits = 0
        self._next_shard = self.workers
        self._retired_payloads: dict[int, dict] = {}
        #: (GVT-commit index, active worker count) — grows on join/leave;
        #: BENCH provenance and compare_documents key off this timeline
        self.worker_timeline: list[tuple[int, int]] = [(0, self.workers)]
        self.migrations_in = 0
        self.migrations_out = 0
        self.churn_executed = 0
        self.churn_skipped = 0

        #: the wire actually used, resolved at run(): config.wire, with
        #: "shm" degrading to "queue" if shared memory is unavailable,
        #: the run has a single worker, or the CPU lacks the x86-TSO
        #: store ordering the ring protocol relies on (shm_wire_supported)
        self.wire = self.config.wire
        self._rings: dict[tuple[int, int], ShmRing] | None = None
        #: merged per-shard wire counters (frames, fallbacks) after run()
        self.wire_stats: dict[str, int] = {
            "frames_sent": 0,
            "frames_received": 0,
            "ring_bytes_sent": 0,
            "wire_fallbacks": 0,
        }

        # --- run results -------------------------------------------------
        self.stats: RunStats | None = None
        self.final_states: dict[str, object] = {}
        self.violations: list[tuple[int, InvariantViolation]] = []
        self.oracle_checks = 0
        self.wall_s = 0.0
        self.gvt_rounds_run = 0
        self.gvt_passes_run = 0
        self._ran = False

    # ------------------------------------------------------------------ #
    @classmethod
    def from_builder(
        cls,
        builder: PartitionBuilder,
        config: SimulationConfig | None = None,
        *,
        strategy="kernighan_lin",
        profile_end_time: float | None = None,
        profile_max_events: int | None = 200_000,
        **kwargs,
    ) -> "ParallelSimulation":
        """Shard a model with a partition strategy (kernighan_lin default).

        Profiling consumes one instance of the model (it runs
        sequentially, see :func:`repro.partition.profile_model`), so the
        model arrives as a zero-argument ``builder`` returning a fresh
        partition; its group structure only fixes the canonical oid order
        — *placement* follows the measured communication graph via the
        ``shard_map`` mechanism, so tie-breaking stays sequential-equal.
        """
        config = config or SimulationConfig(backend="parallel")
        probe = [obj for group in builder() for obj in group]
        end_time = (
            profile_end_time if profile_end_time is not None else config.end_time
        )
        graph = profile_model(
            probe, end_time=end_time, max_events=profile_max_events
        )
        assignment = resolve_strategy(strategy)(graph, config.workers)
        sim = cls(builder(), config, shard_map=assignment, **kwargs)
        sim.assignment = assignment
        sim.partition_quality = partition_quality(graph, assignment)
        return sim

    # ------------------------------------------------------------------ #
    def run(self) -> RunStats:
        """Execute to global quiescence and return merged statistics."""
        if self._ran:
            raise ConfigurationError("a ParallelSimulation can only run once")
        self._ran = True
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ConfigurationError(
                "backend='parallel' needs the 'fork' start method "
                "(policy factories and model objects are not picklable "
                "under spawn)"
            )
        ctx = multiprocessing.get_context("fork")
        started = time.perf_counter()

        # Pre-provision one inbox per potential worker — the initial
        # shards plus one per scripted join step.  The queues must exist
        # before the first fork so every worker can already address
        # workers that join later (mp queues cannot be shipped mid-run).
        pool_size = self.workers + self._join_budget
        self._ctx = ctx
        self._inboxes = inboxes = [ctx.Queue() for _ in range(pool_size)]
        self._report_queue = report_queue = ctx.Queue()
        self._plan_extras: dict = {}
        if self.config.placement == "dynamic":
            self._plan_extras["report_loads"] = True
        # One SPSC ring per directed pair, allocated for the whole
        # pre-provisioned pool (joiners inherit theirs across fork, like
        # the inboxes).  Allocation failure is not an error: the queue
        # wire is the always-works fallback.
        if self.wire == "shm" and not shm_wire_supported():
            # The ring protocol needs x86-TSO store ordering; on weaker
            # memory models the queue wire is the only safe one.
            self.wire = "queue"
        if self.wire == "shm" and pool_size > 1:
            self._rings = {}
            try:
                for src in range(pool_size):
                    for dst in range(pool_size):
                        if src != dst:
                            self._rings[(src, dst)] = ShmRing.create(
                                RING_CAPACITY
                            )
            except (OSError, ValueError):
                self._destroy_rings()
                self.wire = "queue"
        elif self.wire == "shm":
            self.wire = "queue"  # single worker: nothing inter-shard
        self._processes: dict[int, multiprocessing.process.BaseProcess] = {}
        for shard in range(self.workers):
            self._processes[shard] = ctx.Process(
                target=worker_main,
                args=(shard, self._make_plan(shard), inboxes[shard],
                      report_queue, dict(enumerate(inboxes)), self._rings),
                name=f"repro-shard-{shard}",
                daemon=True,
            )
        for process in self._processes.values():
            process.start()

        coordinator = GvtCoordinator(
            inboxes, report_queue, timeout_s=self.timeout_s,
            active=range(self.workers),
        )
        gvt_period_s = self.config.gvt_period / 1e6
        committed = 0.0
        committed_any = False
        try:
            final_round = self._drive(coordinator, gvt_period_s)
            committed, committed_any = final_round[1], final_round[2]
            last = final_round[0]
            stop = Stop(
                final_gvt=committed if committed_any else last.gvt,
                total_sent=last.total_sent,
                total_received=last.total_received,
            )
            for inbox in coordinator.active_inboxes():
                inbox.put(stop)
            payloads = self._collect_done(report_queue, coordinator)
        except Exception:
            for process in self._processes.values():
                if process.is_alive():
                    process.terminate()
            raise
        finally:
            for process in self._processes.values():
                process.join(timeout=10.0)
            self._destroy_rings()

        for steps in self._churn_steps.values():
            # only reachable when the run committed no GVT at all —
            # quiescence with commits fires leftovers in _drive
            self.churn_skipped += len(steps)
        payloads.update(self._retired_payloads)
        self.wall_s = time.perf_counter() - started
        self.gvt_rounds_run = coordinator.rounds_completed
        self.gvt_passes_run = coordinator.passes_total
        self.stats = self._merge(payloads, committed if committed_any else 0.0)
        self._global_checks(payloads)
        return self.stats

    def _destroy_rings(self) -> None:
        """Release every shared-memory segment (parent is the creator)."""
        if self._rings is not None:
            for ring in self._rings.values():
                ring.destroy()
            self._rings = None

    def _make_plan(
        self, shard: int, *, extra: dict | None = None
    ) -> ShardPlan:
        """Build a ShardPlan from the parent's current placement map."""
        extras = dict(self._plan_extras)
        if extra:
            extras.update(extra)
        return ShardPlan(
            objects=[
                (oid, self._objects[oid])
                for oid, owner in self._oid_to_shard.items()
                if owner == shard
            ],
            name_to_oid=self._name_to_oid,
            oid_to_shard=dict(self._oid_to_shard),
            config=self.config,
            n_shards=len(self._inboxes),
            trace_dir=self.trace_dir,
            extras=extras,
        )

    # ------------------------------------------------------------------ #
    def _drive(self, coordinator, gvt_period_s):
        """GVT rounds until a round proves quiescence.

        Returns ``(final RoundResult, committed gvt, committed_any)``.
        Elastic epochs (scripted churn steps, dynamic-placement
        rebalancing) run strictly between rounds, right after a commit.
        """
        committed = 0.0
        committed_any = False
        while True:
            result: RoundResult = coordinator.run_round()
            gvt = result.gvt
            if gvt != float("inf") and (not committed_any or gvt > committed):
                committed = gvt
                committed_any = True
                self._commits += 1
                commit = GvtCommit(result.round, gvt)
                for inbox in coordinator.active_inboxes():
                    inbox.put(commit)
                if not result.all_quiet:
                    self._maybe_reconfigure(coordinator, result)
            if result.all_quiet:
                if committed_any and self._churn_steps:
                    # The fleet quiesced before some scripted steps'
                    # commit indices were reached (fast wires finish
                    # short runs in a handful of rounds).  A quiet
                    # fleet drains trivially, so fire the outstanding
                    # steps now, in plan order, then run one more
                    # round so the final totals and active set match
                    # the post-churn fleet.
                    for index in sorted(self._churn_steps):
                        for step in self._churn_steps.pop(index):
                            self._run_churn_step(coordinator, step)
                    continue
                return result, committed, committed_any
            # Busy fleet: next round after the configured period.  Idle
            # fleet (draining in-flight work or final reds): spin fast so
            # termination is detected promptly.
            time.sleep(gvt_period_s if result.any_active else QUIET_SLEEP_S)

    # ------------------------------------------------------------------ #
    # elastic epochs: pause -> drain -> move -> resume (docs/parallel.md)
    # ------------------------------------------------------------------ #
    def _maybe_reconfigure(self, coordinator, result: RoundResult) -> None:
        for step in self._churn_steps.pop(self._commits, []):
            self._run_churn_step(coordinator, step)
        if self.config.placement == "dynamic":
            self._balance(coordinator, result)

    def _run_churn_step(self, coordinator, step: dict) -> None:
        """Materialize one scripted churn step with the plan's RNG.

        Impossible steps (a leave with one worker left, a join past the
        pre-provisioned pool, a migrate with a single active worker) are
        counted skipped, never errors: fuzzed plans must stay runnable.
        """
        rng = self._churn_rng
        owners = self._oid_to_shard
        active = sorted(coordinator.active)
        kind = step["kind"]
        if kind == "migrate":
            if len(active) < 2:
                self.churn_skipped += 1
                return
            moves = []
            taken: set[int] = set()
            for _ in range(step.get("count", 1)):
                candidates = [oid for oid in sorted(owners) if oid not in taken]
                if not candidates:
                    break
                oid = rng.choice(candidates)
                taken.add(oid)
                src = owners[oid]
                moves.append(
                    (oid, src, rng.choice([s for s in active if s != src]))
                )
            self._elastic_epoch(coordinator, tuple(moves), (), ())
            self.churn_executed += 1
        elif kind == "join":
            if self._next_shard >= len(self._inboxes):
                self.churn_skipped += 1
                return
            joiner = self._next_shard
            self._next_shard += 1
            count = step.get(
                "count", max(1, len(owners) // (len(active) + 1))
            )
            pool = sorted(owners)
            rng.shuffle(pool)
            moves = tuple(
                (oid, owners[oid], joiner) for oid in pool[:count]
            )
            self._elastic_epoch(coordinator, moves, (joiner,), ())
            self.churn_executed += 1
        else:  # leave
            done = 0
            for _ in range(step.get("count", 1)):
                active = sorted(coordinator.active)
                if len(active) < 2:
                    break
                leaver = rng.choice(active)
                remaining = [s for s in active if s != leaver]
                moves = tuple(
                    (oid, leaver, rng.choice(remaining))
                    for oid in sorted(owners)
                    if owners[oid] == leaver
                )
                self._elastic_epoch(coordinator, moves, (), (leaver,))
                done += 1
            if done:
                self.churn_executed += 1
            else:
                self.churn_skipped += 1

    def _balance(self, coordinator, result: RoundResult) -> None:
        """Dynamic placement: migrate load off the hottest worker."""
        loads = {
            report.shard: dict(report.loads)
            for report in result.reports
            if report.loads is not None and report.shard in coordinator.active
        }
        if len(loads) < 2:
            return
        moves = choose_moves(loads)
        if moves:
            self._elastic_epoch(coordinator, moves, (), ())

    def _elastic_epoch(self, coordinator, moves, joiners, leavers) -> None:
        """One reconfiguration epoch, strictly between GVT rounds.

        Protocol (see repro/parallel/ipc.py): pause every active worker,
        prove the wire empty with drain probes, fork joiners against a
        pre-move routing snapshot, broadcast the placement delta, wait
        for every checkpoint handoff, retire drained leavers, resume.
        """
        self._epoch += 1
        epoch = self._epoch
        deadline = time.monotonic() + self.timeout_s
        pause = PauseEpoch(epoch)
        for inbox in coordinator.active_inboxes():
            inbox.put(pause)
        self._drain_barrier(coordinator, epoch, deadline)
        for shard in joiners:
            # The joiner's plan snapshots the routing map BEFORE this
            # epoch's moves; the Reconfigure broadcast below (which the
            # joiner also receives) applies the delta, so every address
            # space converges on the same map.
            process = self._ctx.Process(
                target=worker_main,
                args=(shard, self._make_plan(shard, extra={"join_epoch": epoch}),
                      self._inboxes[shard], self._report_queue,
                      dict(enumerate(self._inboxes)), self._rings),
                name=f"repro-shard-{shard}",
                daemon=True,
            )
            self._processes[shard] = process
            process.start()
            coordinator.add_worker(shard)
        reconfigure = Reconfigure(epoch, tuple(moves), tuple(leavers))
        for inbox in coordinator.active_inboxes():
            inbox.put(reconfigure)
        self._collect_elastic(
            MigrateDone, lambda m: m.epoch == epoch,
            set(coordinator.active), deadline,
        )
        for shard in leavers:
            self._inboxes[shard].put(Retire(epoch))
        for shard in leavers:
            retired = self._collect_elastic(
                ShardRetired, lambda m, s=shard: m.shard == s,
                {shard}, deadline,
            )[shard]
            transport = retired.payload["transport"]
            coordinator.retire_worker(
                shard,
                transport["messages_sent"],
                transport["messages_received"],
            )
            self._retired_payloads[shard] = retired.payload
            self._processes[shard].join(timeout=10.0)
        resume = Resume(epoch)
        for inbox in coordinator.active_inboxes():
            inbox.put(resume)
        for oid, _src, dst in moves:
            self._oid_to_shard[oid] = dst
        if joiners or leavers:
            self.worker_timeline.append(
                (self._commits, len(coordinator.active))
            )

    def _drain_barrier(self, coordinator, epoch: int, deadline: float) -> None:
        """Probe the paused fleet until the wire is provably empty.

        A probe succeeds when the retired-corrected lifetime totals
        balance: every ack was snapshotted with an empty inbox, and a
        send after a snapshot would need a receive after a snapshot,
        which inductively needs an uncounted earlier send.
        """
        probe_no = 0
        while True:
            probe_no += 1
            probe = DrainProbe(epoch, probe_no)
            for inbox in coordinator.active_inboxes():
                inbox.put(probe)
            acks = self._collect_elastic(
                DrainAck,
                lambda m: (m.epoch, m.probe) == (epoch, probe_no),
                set(coordinator.active), deadline,
            )
            sent = coordinator.retired_sent + sum(
                ack.total_sent for ack in acks.values()
            )
            received = coordinator.retired_received + sum(
                ack.total_received for ack in acks.values()
            )
            if sent == received:
                return
            time.sleep(QUIET_SLEEP_S)  # whites still in a pipe; reprobe

    def _collect_elastic(self, kind, match, expected: set[int], deadline):
        """Collect one matching ``kind`` record per expected shard."""
        got: dict[int, object] = {}
        while expected:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise RuntimeError(
                    f"elastic epoch stalled: no {kind.__name__} from "
                    f"shard(s) {sorted(expected)} within {self.timeout_s:.0f}s"
                )
            try:
                message = self._report_queue.get(timeout=min(remaining, 1.0))
            except queue_mod.Empty:
                continue
            if isinstance(message, ShardError):
                raise RuntimeError(
                    f"shard {message.shard} crashed during elastic epoch:\n"
                    f"{message.error}"
                )
            if isinstance(message, kind) and match(message):
                got[message.shard] = message
                expected.discard(message.shard)
            # anything else (an ack from an abandoned probe) is dropped:
            # the epoch protocol is lockstep per record kind
        return got

    def _collect_done(self, report_queue, coordinator) -> dict[int, dict]:
        payloads: dict[int, dict] = {}
        expected = set(coordinator.active)
        deadline = time.monotonic() + self.timeout_s
        while expected:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise RuntimeError(
                    f"shard(s) {sorted(expected)} never sent their final report"
                )
            message = report_queue.get(timeout=remaining)
            if isinstance(message, ShardError):
                raise RuntimeError(
                    f"shard {message.shard} crashed during shutdown:\n"
                    f"{message.error}"
                )
            if isinstance(message, ShardDone):
                payloads[message.shard] = message.payload
                expected.discard(message.shard)
            # stale ShardReports from the final round are dropped
        return payloads

    # ------------------------------------------------------------------ #
    def _merge(self, payloads: dict[int, dict], final_gvt: float) -> RunStats:
        stats = RunStats()
        stats.final_gvt = final_gvt
        for shard in sorted(payloads):
            payload = payloads[shard]
            lp_stats = payload["lp_stats"]
            stats.per_lp[shard] = lp_stats
            stats.gvt_rounds += lp_stats.gvt_rounds
            stats.execution_time = max(stats.execution_time, payload["clock"])
            stats.peak_state_entries = max(
                stats.peak_state_entries, lp_stats.peak_state_entries
            )
            stats.peak_state_bytes = max(
                stats.peak_state_bytes, lp_stats.peak_state_bytes
            )
            stats.peak_history_events = max(
                stats.peak_history_events, lp_stats.peak_history_events
            )
            transport = payload["transport"]
            stats.physical_messages += transport["messages_sent"]
            stats.events_on_wire += transport["events_carried"]
            stats.bytes_on_wire += transport["bytes_sent"]
            for key in self.wire_stats:
                self.wire_stats[key] += transport.get(key, 0)
            for name, ostats in payload["object_stats"].items():
                stats.per_object[name] = ostats
                stats.committed_events += ostats.events_committed
                stats.executed_events += ostats.events_executed
                stats.rolled_back_events += ostats.events_rolled_back
                stats.rollbacks += ostats.rollbacks
                stats.state_saves += ostats.state_saves
                stats.coast_forward_events += ostats.coast_forward_events
                stats.antis_sent += ostats.antis_sent
                stats.lazy_hits += ostats.lazy_hits
                stats.lazy_misses += ostats.lazy_misses
            self.final_states.update(payload["final_states"])
            self.oracle_checks += payload["oracle_checks"]
            migrations = payload.get("migrations", {})
            self.migrations_in += migrations.get("in", 0)
            self.migrations_out += migrations.get("out", 0)
            for violation in payload["violations"]:
                self.violations.append((shard, violation))
        if self.migrations_in != self.migrations_out:
            self.violations.append(
                (-1, InvariantViolation(
                    "migration_conservation",
                    stats.execution_time,
                    f"checkpoints shipped vs restored diverge: "
                    f"{self.migrations_out} out vs {self.migrations_in} in",
                ))
            )
        return stats

    def _global_checks(self, payloads: dict[int, dict]) -> None:
        """Parent-side wire conservation over the merged totals."""
        sent = sum(p["transport"]["messages_sent"] for p in payloads.values())
        received = sum(
            p["transport"]["messages_received"] for p in payloads.values()
        )
        if sent != received:
            self.violations.append(
                (-1, InvariantViolation(
                    "wire_conservation",
                    self.stats.execution_time if self.stats else 0.0,
                    f"global totals diverge after shutdown: "
                    f"{sent} sent vs {received} received",
                ))
            )

    # ------------------------------------------------------------------ #
    def shard_of(self, name: str) -> int:
        """Which worker hosts the named object (introspection/tests)."""
        return self._oid_to_shard[self._name_to_oid[name]]


def flatten(partition: Partition) -> list[SimulationObject]:
    """Partition-of-objects -> flat list, preserving group order."""
    return [obj for group in partition for obj in group]


# re-exported convenience: Sequence import kept for type checkers
__all__ = [
    "ParallelSimulation",
    "PartitionBuilder",
    "flatten",
    "resolve_strategy",
]

_ = Sequence  # pragma: no cover - silence unused-import in type-only use
