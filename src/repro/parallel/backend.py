"""Process-sharded parallel execution backend.

:class:`ParallelSimulation` is the concurrent sibling of
:class:`~repro.kernel.kernel.TimeWarpSimulation`: same partition-of-objects
input, same ``run() -> RunStats`` output, but the LPs execute in separate
OS processes (one LP per worker — the process boundary is the address
space the paper's LP abstraction stands for).  Inter-shard events travel
as pickled batches over ``multiprocessing`` queues behind the DyMA
aggregation buffers; the parent process runs Mattern-colour GVT rounds
(:mod:`repro.parallel.gvt`), drives fossil collection, detects
termination, and merges the per-shard statistics into one
:class:`~repro.stats.counters.RunStats`.

A parallel run is **not** tick-for-tick deterministic — OS scheduling
decides the rollback pattern — so correctness is enforced differentially
(:mod:`repro.parallel.validate`): committed model counters and final
object states must match the sequential golden, and the invariant oracle
runs inside every worker.  See docs/parallel.md.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import time
from typing import Callable, Sequence

from ..kernel.config import SimulationConfig
from ..kernel.errors import ConfigurationError
from ..kernel.kernel import Partition
from ..kernel.simobject import SimulationObject
from ..oracle.invariants import InvariantViolation
from ..partition.graph import CommGraph, profile_model
from ..partition.strategies import (
    greedy_growth,
    kernighan_lin,
    partition_quality,
    round_robin,
)
from ..stats.counters import RunStats
from .gvt import GvtCoordinator, RoundResult
from .ipc import GvtCommit, ShardDone, ShardError, Stop
from .worker import ShardPlan, worker_main

#: wait between all-idle rounds while termination drains, seconds
QUIET_SLEEP_S = 0.001

PartitionBuilder = Callable[[], Partition]

_STRATEGIES = {
    "round_robin": round_robin,
    "greedy_growth": greedy_growth,
    "kernighan_lin": kernighan_lin,
}


def resolve_strategy(spec) -> Callable[[CommGraph, int], dict[str, int]]:
    """Name or callable -> assignment strategy.

    ``"kernighan_lin"`` (the default everywhere) degrades to
    ``greedy_growth`` when networkx is unavailable, so the parallel
    backend works on a bare install.
    """
    if callable(spec):
        return spec
    try:
        strategy = _STRATEGIES[spec]
    except KeyError:
        raise ConfigurationError(
            f"unknown partition strategy {spec!r}; "
            f"available: {sorted(_STRATEGIES)}"
        ) from None
    if strategy is kernighan_lin:
        def kl_with_fallback(graph: CommGraph, n_lps: int) -> dict[str, int]:
            try:
                return kernighan_lin(graph, n_lps)
            except ImportError:
                return greedy_growth(graph, n_lps)
        return kl_with_fallback
    return strategy


class ParallelSimulation:
    """One Time Warp run sharded across ``config.workers`` processes."""

    def __init__(
        self,
        partition: Partition,
        config: SimulationConfig | None = None,
        *,
        shard_map: dict[str, int] | None = None,
        trace_dir: str | None = None,
        timeout_s: float = 120.0,
    ) -> None:
        self.config = config or SimulationConfig(backend="parallel")
        # Enforce the parallel-specific constraints even when the caller
        # constructed us directly with backend="modelled" in the config.
        dataclasses.replace(self.config, backend="parallel").validate()
        if not partition or not any(partition):
            raise ConfigurationError("partition must contain at least one object")
        self.workers = self.config.workers
        self.trace_dir = trace_dir
        self.timeout_s = timeout_s

        # --- directory (same walk as TimeWarpSimulation) ----------------
        # Object ids are assigned in partition flat order and NEVER by
        # shard, because the event total order tie-breaks on integer oids
        # (kernel/event.py EventKey): keeping oid order identical to a
        # sequential run over the same flattened partition makes the
        # committed result — including same-timestamp tie order — equal to
        # the sequential golden.  ``shard_map`` (object name -> shard)
        # overrides placement without perturbing oid order; without it,
        # groups map to shards 1:1 when counts match, else fold
        # round-robin so each modelled-LP group stays co-resident.
        self._objects: list[SimulationObject] = []
        self._name_to_oid: dict[str, int] = {}
        self._oid_to_shard: dict[int, int] = {}
        n_groups = len(partition)
        for group_index, group in enumerate(partition):
            group_shard = (
                group_index
                if n_groups == self.workers
                else group_index % self.workers
            )
            for obj in group:
                if obj.name in self._name_to_oid:
                    raise ConfigurationError(f"duplicate object name {obj.name!r}")
                if shard_map is not None:
                    try:
                        shard = shard_map[obj.name]
                    except KeyError:
                        raise ConfigurationError(
                            f"shard_map is missing object {obj.name!r}"
                        ) from None
                    if not 0 <= shard < self.workers:
                        raise ConfigurationError(
                            f"shard_map sends {obj.name!r} to shard {shard}, "
                            f"but workers={self.workers}"
                        )
                else:
                    shard = group_shard
                oid = len(self._objects)
                self._objects.append(obj)
                self._name_to_oid[obj.name] = oid
                self._oid_to_shard[oid] = shard
        hosted = set(self._oid_to_shard.values())
        if hosted != set(range(self.workers)):
            empty = sorted(set(range(self.workers)) - hosted)
            raise ConfigurationError(
                f"shard(s) {empty} would host no objects; "
                f"use fewer workers or more partition groups"
            )

        #: set by :meth:`from_builder` when a strategy chose the sharding
        self.assignment: dict[str, int] | None = None
        self.partition_quality: dict | None = None

        # --- run results -------------------------------------------------
        self.stats: RunStats | None = None
        self.final_states: dict[str, object] = {}
        self.violations: list[tuple[int, InvariantViolation]] = []
        self.oracle_checks = 0
        self.wall_s = 0.0
        self.gvt_rounds_run = 0
        self.gvt_passes_run = 0
        self._ran = False

    # ------------------------------------------------------------------ #
    @classmethod
    def from_builder(
        cls,
        builder: PartitionBuilder,
        config: SimulationConfig | None = None,
        *,
        strategy="kernighan_lin",
        profile_end_time: float | None = None,
        profile_max_events: int | None = 200_000,
        **kwargs,
    ) -> "ParallelSimulation":
        """Shard a model with a partition strategy (kernighan_lin default).

        Profiling consumes one instance of the model (it runs
        sequentially, see :func:`repro.partition.profile_model`), so the
        model arrives as a zero-argument ``builder`` returning a fresh
        partition; its group structure only fixes the canonical oid order
        — *placement* follows the measured communication graph via the
        ``shard_map`` mechanism, so tie-breaking stays sequential-equal.
        """
        config = config or SimulationConfig(backend="parallel")
        probe = [obj for group in builder() for obj in group]
        end_time = (
            profile_end_time if profile_end_time is not None else config.end_time
        )
        graph = profile_model(
            probe, end_time=end_time, max_events=profile_max_events
        )
        assignment = resolve_strategy(strategy)(graph, config.workers)
        sim = cls(builder(), config, shard_map=assignment, **kwargs)
        sim.assignment = assignment
        sim.partition_quality = partition_quality(graph, assignment)
        return sim

    # ------------------------------------------------------------------ #
    def run(self) -> RunStats:
        """Execute to global quiescence and return merged statistics."""
        if self._ran:
            raise ConfigurationError("a ParallelSimulation can only run once")
        self._ran = True
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ConfigurationError(
                "backend='parallel' needs the 'fork' start method "
                "(policy factories and model objects are not picklable "
                "under spawn)"
            )
        ctx = multiprocessing.get_context("fork")
        started = time.perf_counter()

        inboxes = [ctx.Queue() for _ in range(self.workers)]
        report_queue = ctx.Queue()
        processes = []
        for shard in range(self.workers):
            plan = ShardPlan(
                objects=[
                    (oid, self._objects[oid])
                    for oid, owner in self._oid_to_shard.items()
                    if owner == shard
                ],
                name_to_oid=self._name_to_oid,
                oid_to_shard=self._oid_to_shard,
                config=self.config,
                n_shards=self.workers,
                trace_dir=self.trace_dir,
            )
            process = ctx.Process(
                target=worker_main,
                args=(shard, plan, inboxes[shard], report_queue,
                      dict(enumerate(inboxes))),
                name=f"repro-shard-{shard}",
                daemon=True,
            )
            processes.append(process)
        for process in processes:
            process.start()

        coordinator = GvtCoordinator(
            inboxes, report_queue, timeout_s=self.timeout_s
        )
        gvt_period_s = self.config.gvt_period / 1e6
        committed = 0.0
        committed_any = False
        try:
            final_round = self._drive(
                coordinator, inboxes, gvt_period_s,
            )
            committed, committed_any = final_round[1], final_round[2]
            last = final_round[0]
            stop = Stop(
                final_gvt=committed if committed_any else last.gvt,
                total_sent=last.total_sent,
                total_received=last.total_received,
            )
            for inbox in inboxes:
                inbox.put(stop)
            payloads = self._collect_done(report_queue)
        except Exception:
            for process in processes:
                if process.is_alive():
                    process.terminate()
            raise
        finally:
            for process in processes:
                process.join(timeout=10.0)

        self.wall_s = time.perf_counter() - started
        self.gvt_rounds_run = coordinator.rounds_completed
        self.gvt_passes_run = coordinator.passes_total
        self.stats = self._merge(payloads, committed if committed_any else 0.0)
        self._global_checks(payloads)
        return self.stats

    # ------------------------------------------------------------------ #
    def _drive(self, coordinator, inboxes, gvt_period_s):
        """GVT rounds until a round proves quiescence.

        Returns ``(final RoundResult, committed gvt, committed_any)``.
        """
        committed = 0.0
        committed_any = False
        while True:
            result: RoundResult = coordinator.run_round()
            gvt = result.gvt
            if gvt != float("inf") and (not committed_any or gvt > committed):
                committed = gvt
                committed_any = True
                commit = GvtCommit(result.round, gvt)
                for inbox in inboxes:
                    inbox.put(commit)
            if result.all_quiet:
                return result, committed, committed_any
            # Busy fleet: next round after the configured period.  Idle
            # fleet (draining in-flight work or final reds): spin fast so
            # termination is detected promptly.
            time.sleep(gvt_period_s if result.any_active else QUIET_SLEEP_S)

    def _collect_done(self, report_queue) -> dict[int, dict]:
        payloads: dict[int, dict] = {}
        deadline = time.monotonic() + self.timeout_s
        while len(payloads) < self.workers:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                missing = sorted(set(range(self.workers)) - set(payloads))
                raise RuntimeError(
                    f"shard(s) {missing} never sent their final report"
                )
            message = report_queue.get(timeout=remaining)
            if isinstance(message, ShardError):
                raise RuntimeError(
                    f"shard {message.shard} crashed during shutdown:\n"
                    f"{message.error}"
                )
            if isinstance(message, ShardDone):
                payloads[message.shard] = message.payload
            # stale ShardReports from the final round are dropped
        return payloads

    # ------------------------------------------------------------------ #
    def _merge(self, payloads: dict[int, dict], final_gvt: float) -> RunStats:
        stats = RunStats()
        stats.final_gvt = final_gvt
        for shard in sorted(payloads):
            payload = payloads[shard]
            lp_stats = payload["lp_stats"]
            stats.per_lp[shard] = lp_stats
            stats.gvt_rounds += lp_stats.gvt_rounds
            stats.execution_time = max(stats.execution_time, payload["clock"])
            stats.peak_state_entries = max(
                stats.peak_state_entries, lp_stats.peak_state_entries
            )
            stats.peak_state_bytes = max(
                stats.peak_state_bytes, lp_stats.peak_state_bytes
            )
            stats.peak_history_events = max(
                stats.peak_history_events, lp_stats.peak_history_events
            )
            transport = payload["transport"]
            stats.physical_messages += transport["messages_sent"]
            stats.events_on_wire += transport["events_carried"]
            stats.bytes_on_wire += transport["bytes_sent"]
            for name, ostats in payload["object_stats"].items():
                stats.per_object[name] = ostats
                stats.committed_events += ostats.events_committed
                stats.executed_events += ostats.events_executed
                stats.rolled_back_events += ostats.events_rolled_back
                stats.rollbacks += ostats.rollbacks
                stats.state_saves += ostats.state_saves
                stats.coast_forward_events += ostats.coast_forward_events
                stats.antis_sent += ostats.antis_sent
                stats.lazy_hits += ostats.lazy_hits
                stats.lazy_misses += ostats.lazy_misses
            self.final_states.update(payload["final_states"])
            self.oracle_checks += payload["oracle_checks"]
            for violation in payload["violations"]:
                self.violations.append((shard, violation))
        return stats

    def _global_checks(self, payloads: dict[int, dict]) -> None:
        """Parent-side wire conservation over the merged totals."""
        sent = sum(p["transport"]["messages_sent"] for p in payloads.values())
        received = sum(
            p["transport"]["messages_received"] for p in payloads.values()
        )
        if sent != received:
            self.violations.append(
                (-1, InvariantViolation(
                    "wire_conservation",
                    self.stats.execution_time if self.stats else 0.0,
                    f"global totals diverge after shutdown: "
                    f"{sent} sent vs {received} received",
                ))
            )

    # ------------------------------------------------------------------ #
    def shard_of(self, name: str) -> int:
        """Which worker hosts the named object (introspection/tests)."""
        return self._oid_to_shard[self._name_to_oid[name]]


def flatten(partition: Partition) -> list[SimulationObject]:
    """Partition-of-objects -> flat list, preserving group order."""
    return [obj for group in partition for obj in group]


# re-exported convenience: Sequence import kept for type checkers
__all__ = [
    "ParallelSimulation",
    "PartitionBuilder",
    "flatten",
    "resolve_strategy",
]

_ = Sequence  # pragma: no cover - silence unused-import in type-only use
