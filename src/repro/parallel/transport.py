"""The inter-process wire: an outbox behind the CommModule.

Each worker's LP keeps its ordinary :class:`~repro.comm.transport.CommModule`
— DyMA aggregation buffers, flush-on-size/age, send-cost charging — and
the module's ``network`` slot holds a :class:`ShardTransport` instead of
the modelled :class:`~repro.comm.network.Network`.  A "sent" physical
message is stamped with the worker's current Mattern colour
(:class:`~repro.gvt.mattern.ColourAgent`) and parked in a per-destination
outbox; the worker loop drains the outbox into one
:class:`~repro.parallel.ipc.DataBatch` per destination per queue write,
so the paper's aggregation controller governs a real OS-pipe wire and the
queue traffic is batched on top of it.
"""

from __future__ import annotations

from ..comm.message import PhysicalMessage
from ..gvt.mattern import ColourAgent
from .ipc import Envelope


class ShardTransport:
    """Network-protocol endpoint of one worker (send side + counters)."""

    def __init__(self, shard_id: int, agent: ColourAgent) -> None:
        self.shard_id = shard_id
        self.agent = agent
        self._outbox: dict[int, list[Envelope]] = {}
        # send-side counters (merged into RunStats wire totals)
        self.messages_sent = 0
        self.events_carried = 0
        self.bytes_sent = 0
        # receive-side counters (filled by the worker loop)
        self.messages_received = 0
        self.batches_sent = 0
        self.batches_received = 0

    # ------------------------------------------------------------------ #
    # Network protocol (what CommModule calls)
    # ------------------------------------------------------------------ #
    def send(self, message: PhysicalMessage, completion_clock: float) -> float:
        """Stamp with the current colour and park in the outbox."""
        stamp = self.agent.note_send(message.min_event_time())
        bucket = self._outbox.get(message.dst_lp)
        if bucket is None:
            bucket = self._outbox[message.dst_lp] = []
        bucket.append((stamp, message))
        self.messages_sent += 1
        self.events_carried += message.event_count()
        self.bytes_sent += message.size_bytes()
        return completion_clock

    # ------------------------------------------------------------------ #
    # worker-loop side
    # ------------------------------------------------------------------ #
    def drain(self) -> list[tuple[int, tuple[Envelope, ...]]]:
        """Take everything parked, grouped by destination shard."""
        if not self._outbox:
            return []
        out = [(dst, tuple(envelopes)) for dst, envelopes in self._outbox.items()]
        self._outbox.clear()
        self.batches_sent += len(out)
        return out

    def note_received(self, message: PhysicalMessage) -> None:
        self.messages_received += 1

    @property
    def pending(self) -> bool:
        return bool(self._outbox)
