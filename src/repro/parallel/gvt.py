"""Coordinator-side Mattern GVT across worker processes.

This extends the modelled-network :class:`~repro.gvt.mattern.MatternGVT`
cut semantics to real inter-process transient messages.  The colouring
invariant is identical — a message is *white* for round ``r`` when its
carried stamp is ``< r`` and *red* otherwise — but the topology is a
coordinator star instead of a token ring: every pass the coordinator
broadcasts :class:`~repro.parallel.ipc.GvtStart` and collects one
:class:`~repro.parallel.ipc.ShardReport` per shard, each a consistent
local cut snapshot (the worker composes it atomically between queue
operations).  The pass succeeds when the global white counts balance —
``Σ white_sent == Σ white_received`` proves every message sent before the
round is out of the queues and reflected in a report — and then

    GVT = min over shards of min(local_min, red_min)

is a safe bound, exactly as in the token-ring derivation.  Unbalanced
counts mean whites were still in an OS pipe; the coordinator sleeps
briefly and runs another pass of the same round with fresh totals.

Termination detection rides on the same machinery: a successful pass in
which every shard is inactive (no executable events below the horizon,
no buffered aggregates, no live comparison entries) *and* nobody sent a
message during the round proves global quiescence — the lifetime
sent/received totals necessarily balance — so the coordinator can stop
the fleet and certify the wire empty.
"""

from __future__ import annotations

import queue as queue_mod
import time
from dataclasses import dataclass

from .ipc import GvtStart, ShardError, ShardReport

#: back-off between passes of one round while whites drain, seconds
PASS_SLEEP_S = 0.001


class WorkerFailedError(RuntimeError):
    """A worker process crashed or a GVT round stalled past the timeout."""


@dataclass(frozen=True)
class RoundResult:
    """Outcome of one completed (count-balanced) GVT round."""

    round: int
    passes: int
    gvt: float
    #: every shard idle and silent this round: global quiescence
    all_quiet: bool
    reports: tuple[ShardReport, ...]
    #: lifetime wire totals of workers retired before this round (their
    #: messages are all delivered, but they no longer report)
    retired_sent: int = 0
    retired_received: int = 0

    @property
    def total_sent(self) -> int:
        return self.retired_sent + sum(r.total_sent for r in self.reports)

    @property
    def total_received(self) -> int:
        return self.retired_received + sum(
            r.total_received for r in self.reports
        )

    @property
    def any_active(self) -> bool:
        return any(r.active for r in self.reports)


class GvtCoordinator:
    """Drives Mattern rounds over the worker fleet from the parent."""

    def __init__(
        self, inboxes, report_queue, *,
        timeout_s: float = 120.0, active=None,
    ) -> None:
        self._inboxes = list(inboxes)
        self._reports = report_queue
        self._timeout_s = timeout_s
        self._round = 0
        self.rounds_completed = 0
        self.passes_total = 0
        #: shards currently participating in rounds; the elastic driver
        #: grows it on join and shrinks it on retire
        self.active: set[int] = (
            set(range(len(self._inboxes))) if active is None else set(active)
        )
        #: lifetime wire totals of retired workers: their sends were all
        #: received and their receipts all counted, but they no longer
        #: report, so the white balance needs these correction terms
        self.retired_sent = 0
        self.retired_received = 0

    # -- elastic membership -------------------------------------------- #
    def add_worker(self, shard: int) -> None:
        """A joiner (pre-provisioned inbox) starts taking rounds."""
        if not 0 <= shard < len(self._inboxes):
            raise WorkerFailedError(f"no pre-provisioned inbox for {shard}")
        self.active.add(shard)

    def retire_worker(
        self, shard: int, total_sent: int, total_received: int
    ) -> None:
        """A drained leaver stops taking rounds; fold its lifetime wire
        totals into the balance-correction terms."""
        self.active.discard(shard)
        self.retired_sent += total_sent
        self.retired_received += total_received

    def active_inboxes(self):
        return [self._inboxes[shard] for shard in sorted(self.active)]

    def run_round(self) -> RoundResult:
        """One full round: pass until the white counts balance.

        With retirements, round validity becomes
        ``sum(white_sent) + retired_sent ==
        sum(white_received) + retired_received`` over the active set:
        retired workers' whites are final (the drain barrier proved their
        wire empty at retirement) and enter as constants.
        """
        self._round += 1
        deadline = time.monotonic() + self._timeout_s
        pass_no = 0
        while True:
            pass_no += 1
            self.passes_total += 1
            start = GvtStart(self._round, pass_no)
            for inbox in self.active_inboxes():
                inbox.put(start)
            reports = self._collect(self._round, pass_no, deadline)
            white_sent = self.retired_sent + sum(
                r.white_sent for r in reports
            )
            white_received = self.retired_received + sum(
                r.white_received for r in reports
            )
            if white_sent == white_received:
                self.rounds_completed += 1
                gvt = min(min(r.local_min, r.red_min) for r in reports)
                all_quiet = all(
                    not r.active and r.red_sent == 0 for r in reports
                )
                return RoundResult(
                    round=self._round,
                    passes=pass_no,
                    gvt=gvt,
                    all_quiet=all_quiet,
                    reports=reports,
                    retired_sent=self.retired_sent,
                    retired_received=self.retired_received,
                )
            time.sleep(PASS_SLEEP_S)  # whites still in a pipe; retry

    def _collect(
        self, round_number: int, pass_no: int, deadline: float
    ) -> tuple[ShardReport, ...]:
        expected = set(self.active)
        reports: dict[int, ShardReport] = {}
        while expected:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise WorkerFailedError(
                    f"GVT round {round_number} pass {pass_no} stalled: "
                    f"no report from shard(s) {sorted(expected)} within "
                    f"{self._timeout_s:.0f}s"
                )
            try:
                message = self._reports.get(timeout=min(remaining, 1.0))
            except queue_mod.Empty:
                continue
            if isinstance(message, ShardError):
                raise WorkerFailedError(
                    f"shard {message.shard} crashed:\n{message.error}"
                )
            if not isinstance(message, ShardReport):  # pragma: no cover
                raise WorkerFailedError(
                    f"unexpected message during GVT round: {message!r}"
                )
            if (message.round, message.pass_no) != (round_number, pass_no):
                # A stale report from an abandoned pass; lockstep makes
                # this unreachable, but dropping it is always safe.
                continue
            reports[message.shard] = message
            expected.discard(message.shard)
        return tuple(reports[shard] for shard in sorted(reports))
