"""Instrumentation: per-object, per-LP and whole-run counters, reports,
and per-GVT-round timelines."""

from .counters import LPStats, ObjectStats, RunStats
from .report import class_report, full_report, lp_report, per_class_breakdown
from .timeline import Timeline, TimelineSample

__all__ = [
    "LPStats",
    "ObjectStats",
    "RunStats",
    "Timeline",
    "TimelineSample",
    "class_report",
    "full_report",
    "lp_report",
    "per_class_breakdown",
]
