"""Run timelines: per-GVT-round snapshots of the simulation's state.

The paper's claim is not just that adaptive beats static, but that the
optimum *moves over the lifetime of the simulation* — which only a
time-series view can show.  A :class:`Timeline` attached through
:attr:`SimulationConfig.timeline` records one snapshot per GVT round:
progress (GVT, committed work), health (rollback and waste rates since
the previous round), and the current positions of every controllable
knob (mean checkpoint interval, per-mode object counts, aggregation
windows, optimism window).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..kernel.cancellation import Mode

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.executive import Executive


@dataclass(slots=True)
class TimelineSample:
    """One per-GVT-round observation."""

    wallclock_us: float
    gvt: float
    executed_events: int
    rolled_back_events: int
    #: waste ratio over the *interval* since the previous sample
    interval_waste: float
    lazy_objects: int
    aggressive_objects: int
    mean_checkpoint_interval: float
    aggregation_windows: tuple[float, ...]
    optimism_window: float


@dataclass
class Timeline:
    """Collects :class:`TimelineSample` rows; attach via the config."""

    samples: list[TimelineSample] = field(default_factory=list)
    _last_executed: int = 0
    _last_rolled: int = 0

    def record(self, executive: "Executive") -> None:
        executed = executive.executed_events
        rolled = 0
        lazy = aggressive = 0
        chi_total = 0
        n_objects = 0
        for lp in executive.lps:
            for ctx in lp.members.values():
                rolled += ctx.stats.events_rolled_back
                n_objects += 1
                chi_total += ctx.chi
                if ctx.mode is Mode.LAZY:
                    lazy += 1
                else:
                    aggressive += 1
        d_exec = executed - self._last_executed
        d_rolled = rolled - self._last_rolled
        self._last_executed = executed
        self._last_rolled = rolled
        width = executive._window_width
        self.samples.append(
            TimelineSample(
                wallclock_us=executive.wallclock,
                gvt=executive.gvt,
                executed_events=executed,
                rolled_back_events=rolled,
                interval_waste=(d_rolled / d_exec) if d_exec else 0.0,
                lazy_objects=lazy,
                aggressive_objects=aggressive,
                mean_checkpoint_interval=(chi_total / n_objects)
                if n_objects else 0.0,
                aggregation_windows=tuple(
                    lp.comm.window for lp in executive.lps
                    if lp.comm is not None
                ),
                optimism_window=width if width is not None else float("inf"),
            )
        )

    def render(self) -> str:
        """A compact trajectory table (one row per GVT round)."""
        lines = [
            f"{'wall (s)':>9} {'gvt':>10} {'waste':>6} {'lazy':>5} "
            f"{'aggr':>5} {'chi':>6} {'agg win (us)':>14} {'opt win':>9}",
        ]
        lines.append("-" * len(lines[0]))
        for s in self.samples:
            windows = ",".join(f"{w:.0f}" for w in s.aggregation_windows[:4])
            opt = "inf" if s.optimism_window == float("inf") else (
                f"{s.optimism_window:.0f}"
            )
            lines.append(
                f"{s.wallclock_us / 1e6:>9.3f} {s.gvt:>10.1f} "
                f"{s.interval_waste:>6.2f} {s.lazy_objects:>5} "
                f"{s.aggressive_objects:>5} {s.mean_checkpoint_interval:>6.1f} "
                f"{windows:>14} {opt:>9}"
            )
        return "\n".join(lines)
