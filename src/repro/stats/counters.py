"""Instrumentation counters.

Every quantity the paper samples or reports lives here: committed events,
rollbacks and their lengths, coast-forward work, state saves, cancellation
comparisons (hits/misses), anti-messages, aggregation behaviour and the
modelled execution time.  Counters are plain attributes so the hot path
pays one attribute increment, and they aggregate cleanly for reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass(slots=True)
class ObjectStats:
    """Per-simulation-object counters."""

    events_executed: int = 0
    events_committed: int = 0
    events_rolled_back: int = 0
    rollbacks: int = 0
    primary_rollbacks: int = 0       # caused by a straggler positive message
    secondary_rollbacks: int = 0     # caused by an anti-message
    coast_forward_events: int = 0
    state_saves: int = 0
    state_restores: int = 0
    antis_sent: int = 0
    lazy_hits: int = 0
    lazy_misses: int = 0
    lazy_aggressive_hits: int = 0
    lazy_aggressive_misses: int = 0
    comparisons: int = 0
    mode_switches: int = 0
    control_invocations: int = 0
    sends: int = 0
    sends_suppressed: int = 0        # lazy hits: message never re-sent

    def merge(self, other: "ObjectStats") -> None:
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    @property
    def hit_ratio(self) -> float:
        """Observed lifetime hit ratio (the controller uses a windowed one)."""
        hits = self.lazy_hits + self.lazy_aggressive_hits
        return hits / self.comparisons if self.comparisons else 0.0


@dataclass(slots=True)
class LPStats:
    """Per-LP counters (comm + GVT live here; object work aggregates up)."""

    physical_messages_sent: int = 0
    physical_messages_received: int = 0
    remote_events_sent: int = 0
    remote_events_received: int = 0
    intra_lp_events: int = 0
    aggregates_flushed_idle: int = 0
    gvt_rounds: int = 0
    fossil_collections: int = 0
    fossil_items: int = 0
    busy_time: float = 0.0
    idle_time: float = 0.0
    #: memory high-water marks, sampled at every fossil collection (the
    #: paper's intro lists "high memory usage" among Time Warp's costs;
    #: these are the history-queue sizes GVT keeps bounded)
    peak_state_entries: int = 0
    peak_state_bytes: int = 0
    peak_history_events: int = 0

    def merge(self, other: "LPStats") -> None:
        for f in fields(self):
            if f.name.startswith("peak_"):
                setattr(self, f.name,
                        max(getattr(self, f.name), getattr(other, f.name)))
            else:
                setattr(self, f.name,
                        getattr(self, f.name) + getattr(other, f.name))


@dataclass(slots=True)
class RunStats:
    """Whole-run summary assembled by the kernel at termination."""

    execution_time: float = 0.0          # modelled µs (max LP wall clock)
    committed_events: int = 0
    executed_events: int = 0
    rolled_back_events: int = 0
    rollbacks: int = 0
    state_saves: int = 0
    coast_forward_events: int = 0
    antis_sent: int = 0
    lazy_hits: int = 0
    lazy_misses: int = 0
    physical_messages: int = 0
    events_on_wire: int = 0
    bytes_on_wire: int = 0
    gvt_rounds: int = 0
    final_gvt: float = 0.0
    peak_state_entries: int = 0
    peak_state_bytes: int = 0
    peak_history_events: int = 0
    per_object: dict[str, ObjectStats] = field(default_factory=dict)
    per_lp: dict[int, LPStats] = field(default_factory=dict)

    @property
    def execution_time_seconds(self) -> float:
        return self.execution_time / 1e6

    @property
    def committed_events_per_second(self) -> float:
        if self.execution_time <= 0:
            return 0.0
        return self.committed_events / self.execution_time_seconds

    @property
    def efficiency(self) -> float:
        """Committed / executed — the fraction of work that was not wasted."""
        return self.committed_events / self.executed_events if self.executed_events else 0.0

    @property
    def rollback_frequency(self) -> float:
        return self.rollbacks / self.executed_events if self.executed_events else 0.0

    def summary(self) -> str:
        return (
            f"time={self.execution_time_seconds:.3f}s "
            f"committed={self.committed_events} "
            f"({self.committed_events_per_second:,.0f} ev/s) "
            f"executed={self.executed_events} rollbacks={self.rollbacks} "
            f"efficiency={self.efficiency:.3f} "
            f"phys_msgs={self.physical_messages}"
        )

    def to_dict(self, *, include_breakdown: bool = False) -> dict:
        """JSON-serializable view (scalars always; per-object/per-LP
        breakdowns on request)."""
        from dataclasses import fields as dc_fields

        out: dict = {}
        for f in dc_fields(self):
            if f.name in ("per_object", "per_lp"):
                continue
            out[f.name] = getattr(self, f.name)
        out["committed_events_per_second"] = self.committed_events_per_second
        out["efficiency"] = self.efficiency
        if include_breakdown:
            out["per_object"] = {
                name: {
                    **{g.name: getattr(s, g.name) for g in dc_fields(s)},
                    "hit_ratio": s.hit_ratio,
                }
                for name, s in self.per_object.items()
            }
            out["per_lp"] = {
                lp: {g.name: getattr(s, g.name) for g in dc_fields(s)}
                for lp, s in self.per_lp.items()
            }
        return out
