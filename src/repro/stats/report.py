"""Human-readable run reports.

Formats the per-object / per-LP breakdowns the examples and the README
show: where rollbacks happen, which objects hit or miss under lazy
cancellation, how the LPs' time divides between work and waiting.
"""

from __future__ import annotations

from collections import defaultdict
from .counters import ObjectStats, RunStats


def _class_of(name: str) -> str:
    """Object class = the name with its trailing instance number removed
    ("disk-3" -> "disk", "in-a0" -> "in-a", "gate" -> "gate")."""
    head, _, tail = name.rpartition("-")
    if head and tail.isdigit():
        return head
    stripped = name.rstrip("0123456789")
    return stripped if stripped else name


def per_class_breakdown(stats: RunStats) -> dict[str, ObjectStats]:
    """Aggregate per-object counters by object class."""
    classes: dict[str, ObjectStats] = defaultdict(ObjectStats)
    for name, ostats in stats.per_object.items():
        classes[_class_of(name)].merge(ostats)
    return dict(classes)


def class_report(stats: RunStats) -> str:
    """One line per object class: work, rollbacks, cancellation profile."""
    lines = [
        f"{'class':<10} {'objects':>7} {'executed':>9} {'committed':>9} "
        f"{'rollbacks':>9} {'coast':>7} {'hit ratio':>9} {'antis':>7}",
    ]
    lines.append("-" * len(lines[0]))
    counts: dict[str, int] = defaultdict(int)
    for name in stats.per_object:
        counts[_class_of(name)] += 1
    for cls, agg in sorted(per_class_breakdown(stats).items()):
        hr = f"{agg.hit_ratio:9.2f}" if agg.comparisons else "        -"
        lines.append(
            f"{cls:<10} {counts[cls]:>7} {agg.events_executed:>9} "
            f"{agg.events_committed:>9} {agg.rollbacks:>9} "
            f"{agg.coast_forward_events:>7} {hr} {agg.antis_sent:>7}"
        )
    return "\n".join(lines)


def lp_report(stats: RunStats) -> str:
    """Per-LP utilization and communication."""
    lines = [
        f"{'LP':>3} {'busy (s)':>9} {'idle (s)':>9} {'util':>6} "
        f"{'msgs out':>9} {'msgs in':>8} {'gvt':>5}",
    ]
    lines.append("-" * len(lines[0]))
    for lp_id, lp in sorted(stats.per_lp.items()):
        total = lp.busy_time + lp.idle_time
        util = lp.busy_time / total if total else 0.0
        lines.append(
            f"{lp_id:>3} {lp.busy_time / 1e6:>9.3f} {lp.idle_time / 1e6:>9.3f} "
            f"{util:>6.1%} {lp.physical_messages_sent:>9} "
            f"{lp.physical_messages_received:>8} {lp.gvt_rounds:>5}"
        )
    return "\n".join(lines)


def full_report(stats: RunStats, title: str = "Run report") -> str:
    return "\n".join(
        [
            title,
            "=" * len(title),
            stats.summary(),
            "",
            "Per object class:",
            class_report(stats),
            "",
            "Per logical process:",
            lp_report(stats),
        ]
    )
