"""repro: reproduction of "On-line Configuration of a Time Warp Parallel
Discrete Event Simulator" (Radhakrishnan, Abu-Ghazaleh, Chetlur, Wilsey;
ICPP 1998).

A complete Time Warp parallel discrete event simulation kernel (WARPED-
style) running on a deterministic modelled network of workstations, with
the paper's three on-line configuration control systems: dynamic
check-pointing, dynamic cancellation, and dynamic message aggregation.

Quickstart::

    from repro import SimulationConfig, TimeWarpSimulation
    from repro.apps import build_smmp, SMMPParams

    partition = build_smmp(SMMPParams(requests_per_processor=200))
    stats = TimeWarpSimulation(partition, SimulationConfig()).run()
    print(stats.summary())
"""

# NOTE: the kernel package must initialize first; it pulls in the
# comm/cluster/gvt packages in an order that resolves their cycles.
from .kernel import (
    Mode,
    RecordState,
    SimulationConfig,
    SimulationObject,
    StaticCancellation,
    StaticCheckpoint,
    TimeWarpSimulation,
    make_simulation,
)
from .cluster.costmodel import CostModel, NetworkModel
from .core import (
    AdaptiveTimeWindow,
    DynamicCancellation,
    DynamicCheckpoint,
    PermanentAggressive,
    PermanentSet,
    SAAWPolicy,
    StaticTimeWindow,
    single_threshold,
)
from .comm.aggregation import FixedWindow, NoAggregation
from .conservative import ConservativeSimulation
from .control import MetaController
from .faults import FaultPlan, FaultRates
from .oracle import InvariantOracle, InvariantViolation
from .sequential import SequentialSimulation
from .stats import RunStats, Timeline

__version__ = "1.0.0"

__all__ = [
    "AdaptiveTimeWindow",
    "ConservativeSimulation",
    "CostModel",
    "DynamicCancellation",
    "DynamicCheckpoint",
    "FaultPlan",
    "FaultRates",
    "FixedWindow",
    "InvariantOracle",
    "InvariantViolation",
    "MetaController",
    "Mode",
    "NetworkModel",
    "NoAggregation",
    "PermanentAggressive",
    "PermanentSet",
    "RecordState",
    "RunStats",
    "Timeline",
    "SAAWPolicy",
    "SequentialSimulation",
    "SimulationConfig",
    "SimulationObject",
    "StaticCancellation",
    "StaticCheckpoint",
    "StaticTimeWindow",
    "TimeWarpSimulation",
    "make_simulation",
    "single_threshold",
]
