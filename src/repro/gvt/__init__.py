"""Global Virtual Time estimation and fossil collection."""

from .manager import GVTAlgorithm, OmniscientGVT, true_global_minimum
from .mattern import MatternGVT

__all__ = ["GVTAlgorithm", "MatternGVT", "OmniscientGVT", "true_global_minimum"]
