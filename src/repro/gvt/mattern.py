"""Mattern-style distributed GVT over the modelled network.

Implements the token-ring variant of Mattern's GVT algorithm [Mattern 93]
with round-numbered message colouring:

* every application physical message is stamped with its sender's current
  round number (its "colour");
* a message is *white* for round ``r`` if it was stamped with a round
  ``< r`` — i.e. sent before its sender learned of round ``r`` — and *red*
  otherwise;
* the round-``r`` token circulates the LP ring accumulating
  ``count = white-sent − white-received`` and
  ``mvt = min(local minima, red send minima)``;
* when the token returns to the initiator with ``count == 0`` every white
  message has been received *and reflected in its receiver's last report*,
  so ``mvt`` is a safe GVT bound, which the initiator broadcasts.

Multiple token passes per round are made until the white count drains;
each pass reports fresh totals, so a pass during which whites were still
flying simply fails the zero test and triggers another pass.

The token and broadcast travel as control physical messages through the
same modelled network as application traffic (they bypass aggregation but
pay full per-message cost — GVT is not free, which is why its period is
worth an ablation, see ``benchmarks/bench_abl_gvt_period.py``).

Every ``mvt`` contribution below goes through
:meth:`~repro.kernel.lp.LogicalProcess.local_min`, which on the numpy
fast path is a single vectorized reduction over the LP's
:class:`~repro.kernel.arena.EventArena` time column rather than a
per-member heap walk — the token ring gets the same speedup as the
omniscient scan without any change here.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..comm.message import MessageKind, PhysicalMessage
from ..kernel.event import VirtualTime

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.executive import Executive


@dataclass(slots=True, frozen=True)
class Token:
    """The circulating GVT token."""

    round: int
    mvt: float
    count: int
    #: ring position of the LP the token is being sent to
    position: int


@dataclass(slots=True, frozen=True)
class Broadcast:
    """GVT announcement ending a round."""

    round: int
    gvt: float


class ColourAgent:
    """Per-LP colouring and counting state.

    Shared between the modelled-network :class:`MatternGVT` (one agent per
    LP, stamps carried in a serial side-table) and the process-sharded
    backend (:mod:`repro.parallel`, one agent per worker, stamps carried
    explicitly in the IPC envelope — a side-table keyed by process-local
    message serials cannot cross address spaces).
    """

    __slots__ = ("round", "sent_before_round", "total_sent", "recv_by_stamp", "red_min")

    def __init__(self) -> None:
        self.round = 0
        #: total messages sent before entering the current round
        self.sent_before_round = 0
        self.total_sent = 0
        #: received-message counts keyed by the sender's stamp
        self.recv_by_stamp: defaultdict[int, int] = defaultdict(int)
        #: min event time among messages sent in the current round
        self.red_min: float = float("inf")

    def enter_round(self, round_number: int) -> None:
        if round_number > self.round:
            self.round = round_number
            self.sent_before_round = self.total_sent
            self.red_min = float("inf")

    def note_send(self, min_event_time: VirtualTime | None) -> int:
        """Record a send; returns the stamp to attach to the message."""
        self.total_sent += 1
        if min_event_time is not None and min_event_time < self.red_min:
            self.red_min = min_event_time
        return self.round

    def note_receive(self, stamp: int) -> None:
        self.recv_by_stamp[stamp] += 1

    def white_sent(self) -> int:
        return self.sent_before_round

    def white_received(self) -> int:
        return sum(n for stamp, n in self.recv_by_stamp.items() if stamp < self.round)

    def red_sent(self) -> int:
        """Messages sent since entering the current round."""
        return self.total_sent - self.sent_before_round


#: Backward-compatible alias (the agent was private before repro.parallel
#: started reusing it).
_Agent = ColourAgent


class MatternGVT:
    """Distributed GVT estimation through the modelled network."""

    def __init__(self, executive: "Executive") -> None:
        self._executive = executive
        self.gvt: VirtualTime = 0.0
        self._agents = [ColourAgent() for _ in executive.lps]
        self._stamps: dict[int, int] = {}  # physical message serial -> stamp
        self._round = 0
        self._active = False
        self.rounds_completed = 0
        self.token_passes = 0

    # ------------------------------------------------------------------ #
    # executive interface
    # ------------------------------------------------------------------ #
    @property
    def round_active(self) -> bool:
        return self._active

    def start_round(self) -> None:
        if self._active:
            return  # previous round still draining; skip this tick
        executive = self._executive
        if len(executive.lps) < 2:
            # Degenerate single-LP "ring": the local bound is the truth.
            estimate = executive.lps[0].local_min()
            wire = executive.network.min_in_flight_time()
            if wire is not None:
                estimate = min(estimate, wire)
            self._commit(estimate)
            return
        self._round += 1
        self._active = True
        initiator = executive.lps[0]
        agent = self._agents[0]
        agent.enter_round(self._round)
        initiator.charge(initiator.costs.gvt_participation_cost)
        initiator.stats.gvt_rounds += 1
        token = Token(
            round=self._round,
            mvt=min(initiator.local_min(), agent.red_min),
            count=agent.white_sent() - agent.white_received(),
            position=1,
        )
        self._send_token(0, token)

    def handle_control(self, message: PhysicalMessage) -> None:
        control = message.control
        if isinstance(control, Token):
            self._on_token(message.dst_lp, control)
        elif isinstance(control, Broadcast):
            self._on_broadcast(message.dst_lp, control)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown GVT control payload: {control!r}")

    def observe_send(self, message: PhysicalMessage) -> None:
        agent = self._agents[message.src_lp]
        stamp = agent.note_send(message.min_event_time())
        self._stamps[message.serial] = stamp

    def observe_receive(self, message: PhysicalMessage) -> None:
        stamp = self._stamps.pop(message.serial, None)
        if stamp is None:
            # Retransmit safety: a fault-injecting wire may hand the same
            # logical message to the kernel only once (dedup), but a
            # defensively re-observed serial must not count as a second
            # receive — colouring counts logical messages, not copies.
            return
        self._agents[message.dst_lp].note_receive(stamp)

    # ------------------------------------------------------------------ #
    # token protocol
    # ------------------------------------------------------------------ #
    def _send_token(self, from_lp: int, token: Token) -> None:
        executive = self._executive
        dst = token.position % len(executive.lps)
        lp = executive.lps[from_lp]
        lp.comm.send_control(dst, MessageKind.GVT_TOKEN, token)
        self.token_passes += 1

    def _on_token(self, lp_id: int, token: Token) -> None:
        executive = self._executive
        lp = executive.lps[lp_id]
        agent = self._agents[lp_id]
        agent.enter_round(token.round)
        lp.charge(lp.costs.gvt_participation_cost)
        lp.stats.gvt_rounds += 1

        if lp_id == 0:
            # Token returned to the initiator: zero count ends the round.
            if token.count == 0:
                self._active = False
                self.rounds_completed += 1
                gvt = min(token.mvt, lp.local_min(), agent.red_min)
                for dst in range(1, len(executive.lps)):
                    lp.comm.send_control(dst, MessageKind.GVT_BROADCAST,
                                         Broadcast(round=token.round, gvt=gvt))
                self._commit(gvt)
            else:
                # Whites still in flight: another pass with fresh totals.
                fresh = Token(
                    round=token.round,
                    mvt=min(lp.local_min(), agent.red_min),
                    count=agent.white_sent() - agent.white_received(),
                    position=1,
                )
                self._send_token(0, fresh)
            return

        forwarded = Token(
            round=token.round,
            mvt=min(token.mvt, lp.local_min(), agent.red_min),
            count=token.count + agent.white_sent() - agent.white_received(),
            position=token.position + 1,
        )
        self._send_token(lp_id, forwarded)

    def _on_broadcast(self, lp_id: int, broadcast: Broadcast) -> None:
        lp = self._executive.lps[lp_id]
        self._agents[lp_id].enter_round(broadcast.round)
        lp.charge(lp.costs.gvt_participation_cost)
        lp.fossil_collect(broadcast.gvt)

    def _commit(self, estimate: VirtualTime) -> None:
        executive = self._executive
        oracle = executive.oracle
        if oracle.enabled:
            oracle.on_gvt_estimate(executive.wallclock, estimate, self.gvt)
        tracer = executive.tracer
        if tracer.enabled:
            tracer.emit(
                "gvt.round", executive.wallclock,
                algorithm="mattern", gvt=estimate,
                advanced=estimate > self.gvt,
            )
        if estimate > self.gvt:
            self.gvt = estimate
            # The initiator collects immediately; the other LPs collect
            # when their broadcast arrives.
            self._executive.lps[0].fossil_collect(estimate)
            self._executive.on_new_gvt(estimate)
