"""GVT management: the estimator protocol and the omniscient baseline.

Global Virtual Time is the floor of all virtual times the simulation can
still affect: unprocessed events, events on the wire or waiting in
aggregation buffers, and anti-messages that lazy cancellation may still
emit.  History below GVT is committed and fossil-collected.

Two estimators are provided:

* :class:`OmniscientGVT` — computes the exact bound from global executive
  state in one step.  It still charges each LP the per-round participation
  cost, so the *overhead* of GVT shows up in modelled time, but the value
  is exact.  This is the default for benchmarks (fast and deterministic).
* :class:`~repro.gvt.mattern.MatternGVT` — the distributed token-ring
  algorithm with message colouring, run through the modelled network like
  any other control traffic.  Produces a (safe) lower bound; used to show
  the kernel is a real distributed Time Warp and validated against the
  omniscient bound in tests.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol

from ..comm.message import PhysicalMessage
from ..kernel.event import VirtualTime

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.executive import Executive


class GVTAlgorithm(Protocol):
    """What the executive needs from a GVT estimator."""

    #: latest committed estimate
    gvt: VirtualTime

    def start_round(self) -> None:
        """Begin an estimation round (called on the executive's GVT tick)."""
        ...

    def handle_control(self, message: PhysicalMessage) -> None:
        """Process an arriving GVT control message (token / broadcast)."""
        ...

    def observe_send(self, message: PhysicalMessage) -> None:
        """Observe an application physical message entering the network."""
        ...

    def observe_receive(self, message: PhysicalMessage) -> None:
        """Observe an application physical message being delivered."""
        ...

    @property
    def round_active(self) -> bool: ...


def true_global_minimum(executive: "Executive") -> VirtualTime:
    """The exact GVT bound, computed from complete global state.

    Each LP's :meth:`~repro.kernel.lp.LogicalProcess.local_min` is the
    hot part of this scan: on the numpy fast path it is one vectorized
    pass over the LP's :class:`~repro.kernel.arena.EventArena` time
    column instead of a per-member heap peek (the per-event Python mins
    this sweep used to pay).
    """
    best = min((lp.local_min() for lp in executive.lps), default=float("inf"))
    wire = executive.network.min_in_flight_time()
    if wire is not None and wire < best:
        best = wire
    return best


class OmniscientGVT:
    """Exact GVT computed centrally; costs are still charged per LP."""

    def __init__(self, executive: "Executive") -> None:
        self._executive = executive
        self.gvt: VirtualTime = 0.0
        self.rounds = 0

    @property
    def round_active(self) -> bool:
        return False

    def start_round(self) -> None:
        executive = self._executive
        estimate = true_global_minimum(executive)
        self.rounds += 1
        for lp in executive.lps:
            lp.charge(lp.costs.gvt_participation_cost)
            lp.stats.gvt_rounds += 1
        oracle = executive.oracle
        if oracle.enabled:
            oracle.on_gvt_estimate(executive.wallclock, estimate, self.gvt)
        tracer = executive.tracer
        if tracer.enabled:
            tracer.emit(
                "gvt.round", executive.wallclock,
                algorithm="omniscient", gvt=estimate,
                advanced=estimate > self.gvt,
            )
        if estimate > self.gvt:
            self.gvt = estimate
            for lp in executive.lps:
                lp.fossil_collect(estimate)
            executive.on_new_gvt(estimate)

    def handle_control(self, message: PhysicalMessage) -> None:  # pragma: no cover
        raise AssertionError("omniscient GVT sends no control messages")

    def observe_send(self, message: PhysicalMessage) -> None:
        pass

    def observe_receive(self, message: PhysicalMessage) -> None:
        pass
