"""``repro-trace``: inspect controller-decision traces from the terminal.

Examples::

    repro-trace summarize run.jsonl              # counts + per-object moves
    repro-trace filter run.jsonl --type rollback --obj disk0
    repro-trace timeline run.jsonl --obj disk0   # chi / HR / rollbacks over time
    repro-trace validate run.jsonl               # schema check every record
"""

from __future__ import annotations

import argparse
import sys

from .reader import (
    TraceFormatError,
    load_trace,
    read_trace,
    summarize,
    validate_trace,
)
from .schema import RECORD_TYPES
from .tracer import encode_record


def _fmt_num(value: object, precision: int = 4) -> str:
    if isinstance(value, float):
        if value == float("inf"):
            return "inf"
        return f"{value:.{precision}f}"
    return str(value)


# ---------------------------------------------------------------------- #
# subcommands
# ---------------------------------------------------------------------- #
def cmd_summarize(args: argparse.Namespace) -> int:
    summary = summarize(read_trace(args.trace))
    print(f"{args.trace}: {summary.records} records")
    print("\nrecords by type:")
    for rtype in sorted(summary.by_type):
        print(f"  {rtype:<18} {summary.by_type[rtype]:>8}")
    print(
        f"\ngvt rounds: {summary.gvt_rounds}   final gvt: "
        f"{_fmt_num(summary.final_gvt, 1)}"
    )
    if summary.flushes:
        print(
            f"aggregates flushed: {summary.flushes} "
            f"({summary.flushed_events} events)"
        )
    if summary.window_invocations:
        print(
            f"optimism-window control: {summary.window_invocations} "
            f"invocations, {summary.window_moves} moves   "
            f"final W: {_fmt_num(summary.final_window, 1)}"
        )
    if summary.gvt_ctrl_invocations:
        print(
            f"gvt-period control: {summary.gvt_ctrl_invocations} "
            f"invocations, {summary.gvt_ctrl_moves} moves   "
            f"final P: {_fmt_num(summary.final_gvt_period, 1)}"
        )
    if summary.snapshot_invocations:
        print(
            f"snapshot control: {summary.snapshot_invocations} "
            f"invocations, {summary.snapshot_switches} switches   "
            f"final strategy: {summary.final_snapshot}"
        )
    if summary.objects:
        header = (
            f"\n{'object':<14} {'chi invoc':>9} {'chi moves':>9} {'chi':>9} "
            f"{'HR invoc':>8} {'switches':>8} {'mode':>12} {'rollbacks':>9}"
        )
        print(header)
        print("-" * len(header))
        for name in sorted(summary.objects):
            traj = summary.objects[name]
            chi = (
                f"{traj.chi_first}->{traj.chi_last}"
                if traj.chi_first is not None
                else "-"
            )
            print(
                f"{traj.obj:<14} {traj.checkpoint_invocations:>9} "
                f"{traj.checkpoint_moves:>9} {chi:>9} "
                f"{traj.cancellation_invocations:>8} {traj.mode_switches:>8} "
                f"{traj.final_mode or '-':>12} {traj.rollbacks:>9}"
            )
    return 0


def cmd_filter(args: argparse.Namespace) -> int:
    records = load_trace(
        args.trace,
        types=args.type or None,
        obj=args.obj,
        lp=args.lp,
    )
    for record in records[: args.limit] if args.limit else records:
        print(encode_record(record))
    if args.limit and len(records) > args.limit:
        print(
            f"... {len(records) - args.limit} more (raise --limit)",
            file=sys.stderr,
        )
    return 0


def cmd_timeline(args: argparse.Namespace) -> int:
    """Per-object text timeline: every controller decision and rollback."""
    records = load_trace(
        args.trace,
        types=("ctrl.checkpoint", "ctrl.cancellation", "rollback"),
        obj=args.obj,
    )
    if not records:
        print(f"no records for object {args.obj!r}", file=sys.stderr)
        return 1
    header = f"{'wall (s)':>10} {'event':<18} {'O':>8} {'move':<24} verdict"
    print(f"object {args.obj}\n")
    print(header)
    print("-" * len(header))
    for record in records:
        rtype = record["type"]
        t = record["t"] / 1e6
        if rtype == "ctrl.checkpoint":
            o = _fmt_num(record["o"])
            move = f"chi {record['old']} -> {record['new']}"
            verdict = record["verdict"]
        elif rtype == "ctrl.cancellation":
            o = _fmt_num(record["o"])
            move = f"{record['old']} -> {record['new']}"
            verdict = record["verdict"]
        else:  # rollback
            o = "-"
            move = f"depth {record['depth']} coast {record['coast_events']}"
            verdict = record["cause"]
        print(f"{t:>10.4f} {rtype:<18} {o:>8} {move:<24} {verdict}")
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    errors = validate_trace(args.trace)
    if errors:
        for error in errors[:50]:
            print(error, file=sys.stderr)
        if len(errors) > 50:
            print(f"... {len(errors) - 50} more errors", file=sys.stderr)
        print(f"{args.trace}: INVALID ({len(errors)} errors)")
        return 1
    print(f"{args.trace}: valid (schema knows {len(RECORD_TYPES)} record types)")
    return 0


# ---------------------------------------------------------------------- #
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Inspect controller-decision traces (docs/observability.md).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("summarize", help="counts and per-object trajectories")
    p.add_argument("trace")
    p.set_defaults(func=cmd_summarize)

    p = sub.add_parser("filter", help="print matching records as JSONL")
    p.add_argument("trace")
    p.add_argument("--type", action="append", choices=sorted(RECORD_TYPES),
                   help="keep this record type (repeatable)")
    p.add_argument("--obj", help="keep records about this simulation object")
    p.add_argument("--lp", type=int, help="keep records emitted by this LP")
    p.add_argument("--limit", type=int, default=0,
                   help="print at most N records (0 = all)")
    p.set_defaults(func=cmd_filter)

    p = sub.add_parser("timeline",
                       help="one object's chi / HR / rollback history as text")
    p.add_argument("trace")
    p.add_argument("--obj", required=True, help="simulation object name")
    p.set_defaults(func=cmd_timeline)

    p = sub.add_parser("validate", help="schema-check every record")
    p.add_argument("trace")
    p.set_defaults(func=cmd_validate)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except OSError as exc:
        print(f"repro-trace: {exc}", file=sys.stderr)
        return 2
    except TraceFormatError as exc:
        print(f"repro-trace: {args.trace}: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
