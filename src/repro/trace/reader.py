"""Reading traces back: parse, filter, validate, summarize.

The inverse of :mod:`repro.trace.tracer`: iterate the JSONL records of a
trace file (reviving the ``"inf"``/``"-inf"``/``"nan"`` encodings of
non-finite numbers on schema-declared number fields), filter them by
type/object/LP, and compute the summaries the ``repro-trace`` CLI prints.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from .schema import COMMON_FIELDS, RECORD_TYPES, validate_record

#: field name -> revive non-finite strings to floats, per record type
_NUMBER_FIELDS: dict[str, frozenset[str]] = {
    rtype: frozenset(
        f.name for f in spec.fields + COMMON_FIELDS if f.type == "number"
    )
    for rtype, spec in RECORD_TYPES.items()
}

_REVIVE = {"inf": float("inf"), "-inf": float("-inf"), "nan": float("nan")}


class TraceFormatError(ValueError):
    """A line of the trace is not valid JSON."""


def _revive(record: dict) -> dict:
    numeric = _NUMBER_FIELDS.get(record.get("type", ""), frozenset())
    for key in numeric:
        value = record.get(key)
        if isinstance(value, str) and value in _REVIVE:
            record[key] = _REVIVE[value]
    return record


def parse_line(line: str, lineno: int = 0) -> dict:
    """One JSONL line -> one record dict (non-finite numbers revived)."""
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"line {lineno}: not JSON: {exc}") from None
    if not isinstance(record, dict):
        raise TraceFormatError(f"line {lineno}: record is not an object")
    return _revive(record)


def read_trace(path: str | Path) -> Iterator[dict]:
    """Yield every record of a trace file, header included, in file order."""
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if line:
                yield parse_line(line, lineno)


def load_trace(
    path: str | Path,
    *,
    types: Iterable[str] | None = None,
    obj: str | None = None,
    lp: int | None = None,
) -> list[dict]:
    """Read a trace with optional filtering.

    ``types`` keeps only the given record types; ``obj`` keeps records
    about that simulation object; ``lp`` keeps records emitted by (or, for
    ``comm.flush``/``ctrl.aggregation``, sent from) that LP.  The header is
    dropped whenever any filter is active.
    """
    wanted = set(types) if types is not None else None
    out: list[dict] = []
    filtering = wanted is not None or obj is not None or lp is not None
    for record in read_trace(path):
        if filtering and record["type"] == "trace.header":
            continue
        if wanted is not None and record["type"] not in wanted:
            continue
        if obj is not None and record.get("obj") != obj:
            continue
        if lp is not None and record.get("lp") != lp:
            continue
        out.append(record)
    return out


def validate_trace(path: str | Path) -> list[str]:
    """Validate every record of a trace; returns all errors found.

    Unlike :func:`read_trace`, a malformed line is reported as an error
    and validation continues — this is the function you point at a
    suspect file."""
    errors: list[str] = []
    first = True
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = parse_line(line, lineno)
            except TraceFormatError as exc:
                errors.append(str(exc))
                first = False
                continue
            if first:
                first = False
                if record.get("type") != "trace.header":
                    errors.append(
                        "trace does not start with a trace.header record"
                    )
            errors.extend(validate_record(record))
    if first:
        errors.append("trace is empty")
    return errors


# ---------------------------------------------------------------------- #
# summaries (consumed by the CLI and by tests)
# ---------------------------------------------------------------------- #
@dataclass
class ObjectTrajectory:
    """What one simulation object's controllers did over a run.

    *Invocations* count every ``ctrl.*`` record (the cadence is the
    controller's period ``P``, no-ops included); *moves* count only the
    invocations whose ``old != new`` — the distinction
    ``docs/observability.md`` documents under "verdict semantics".
    """

    obj: str
    checkpoint_invocations: int = 0
    checkpoint_moves: int = 0
    chi_first: int | None = None
    chi_last: int | None = None
    cancellation_invocations: int = 0
    mode_switches: int = 0
    final_mode: str | None = None
    rollbacks: int = 0
    rolled_back_events: int = 0


@dataclass
class TraceSummary:
    """Aggregate view of one trace file."""

    records: int = 0
    by_type: Counter = field(default_factory=Counter)
    objects: dict[str, ObjectTrajectory] = field(default_factory=dict)
    gvt_rounds: int = 0
    final_gvt: float = 0.0
    window_invocations: int = 0
    window_moves: int = 0
    final_window: float | None = None
    gvt_ctrl_invocations: int = 0
    gvt_ctrl_moves: int = 0
    final_gvt_period: float | None = None
    snapshot_invocations: int = 0
    snapshot_switches: int = 0
    final_snapshot: str | None = None
    flushes: int = 0
    flushed_events: int = 0

    def trajectory(self, obj: str) -> ObjectTrajectory:
        traj = self.objects.get(obj)
        if traj is None:
            traj = self.objects[obj] = ObjectTrajectory(obj)
        return traj


def summarize(records: Iterable[dict]) -> TraceSummary:
    """Fold a record stream into a :class:`TraceSummary`."""
    summary = TraceSummary()
    for record in records:
        rtype = record["type"]
        summary.records += 1
        summary.by_type[rtype] += 1
        if rtype == "ctrl.checkpoint":
            traj = summary.trajectory(record["obj"])
            traj.checkpoint_invocations += 1
            if record["old"] != record["new"]:
                traj.checkpoint_moves += 1
            if traj.chi_first is None:
                traj.chi_first = record["old"]
            traj.chi_last = record["new"]
        elif rtype == "ctrl.cancellation":
            traj = summary.trajectory(record["obj"])
            traj.cancellation_invocations += 1
            if record["switched"]:
                traj.mode_switches += 1
            traj.final_mode = record["new"]
        elif rtype == "rollback":
            traj = summary.trajectory(record["obj"])
            traj.rollbacks += 1
            traj.rolled_back_events += record["depth"]
        elif rtype == "gvt.round":
            summary.gvt_rounds += 1
            if record["advanced"]:
                summary.final_gvt = record["gvt"]
        elif rtype == "ctrl.window":
            summary.window_invocations += 1
            if record["old"] != record["new"]:
                summary.window_moves += 1
            summary.final_window = record["new"]
        elif rtype == "ctrl.gvt":
            summary.gvt_ctrl_invocations += 1
            if record["old"] != record["new"]:
                summary.gvt_ctrl_moves += 1
            summary.final_gvt_period = record["new"]
        elif rtype == "ctrl.snapshot":
            summary.snapshot_invocations += 1
            if record["old"] != record["new"]:
                summary.snapshot_switches += 1
            summary.final_snapshot = record["new"]
        elif rtype == "comm.flush":
            summary.flushes += 1
            summary.flushed_events += record["count"]
    return summary
