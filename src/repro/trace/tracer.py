"""The trace emitter: one cheap append on the hot path, off by default.

Instrumented kernel sites all follow the same pattern::

    tracer = self.tracer
    if tracer.enabled:
        tracer.emit("rollback", self.clock, lp=self.lp_id, ...)

With tracing off (the default) every site costs one attribute load and a
false branch on the shared :data:`NULL_TRACER`; no record dict is ever
built.  With tracing on, :meth:`Tracer.emit` builds one dict and either
appends it to an in-memory buffer (optionally a bounded ring) or writes
one JSONL line.

Determinism: records carry only modelled quantities (modelled clocks, the
deterministic ``seq`` counter, controller state), never host wall time —
two runs of the same configuration produce byte-identical traces, and the
tier-1 suite enforces that.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import IO

from .schema import SCHEMA_VERSION

_INF = float("inf")


def _sanitize(value: object) -> object:
    if type(value) is float and (value != value or value in (_INF, -_INF)):
        return "nan" if value != value else "inf" if value > 0 else "-inf"
    return value


def encode_record(record: dict) -> str:
    """One record as its canonical JSONL line (no newline).

    Keys are sorted and separators minimal so the encoding — and therefore
    the byte-identity guarantee — does not depend on emission-site field
    order.  Non-finite floats are encoded as the strings ``"inf"`` /
    ``"-inf"`` / ``"nan"`` so every line is strict JSON (re-encoding a
    record the reader revived round-trips)."""
    out = record
    for key, value in record.items():
        clean = _sanitize(value)
        if clean is not value:
            if out is record:
                out = dict(record)
            out[key] = clean
    return json.dumps(out, separators=(",", ":"), sort_keys=True,
                      allow_nan=False)


class NullTracer:
    """The disabled tracer: emit is a no-op, ``enabled`` is False."""

    __slots__ = ()
    enabled = False

    def emit(self, etype: str, t: float, **fields: object) -> None:
        pass

    def close(self) -> None:
        pass


#: Shared disabled tracer; instrumented sites default to this.
NULL_TRACER = NullTracer()


class Tracer:
    """Collects structured trace records in memory or streams them as JSONL.

    Args:
        path: stream records to this file as JSON Lines.  The header line
            is written on open.  Mutually exclusive with ``capacity``.
        capacity: keep only the newest ``capacity`` records in memory (a
            ring buffer); ``None`` keeps all records.

    Use as a context manager when writing to a path so the file is closed
    (and flushed) deterministically::

        with Tracer.to_path("run.jsonl") as tracer:
            config = SimulationConfig(..., tracer=tracer)
            TimeWarpSimulation(partition, config).run()
    """

    __slots__ = ("enabled", "_seq", "_records", "_fh", "_owns_fh", "path")

    enabled: bool

    def __init__(
        self,
        *,
        path: str | Path | None = None,
        stream: IO[str] | None = None,
        capacity: int | None = None,
    ) -> None:
        if (path is not None or stream is not None) and capacity is not None:
            raise ValueError("ring-buffer capacity only applies to in-memory traces")
        if path is not None and stream is not None:
            raise ValueError("give either path or stream, not both")
        self.enabled = True
        self._seq = 1  # seq 0 is the header
        self.path = Path(path) if path is not None else None
        self._records: "deque[dict] | list[dict]"
        if capacity is not None:
            if capacity < 1:
                raise ValueError("capacity must be >= 1")
            self._records = deque(maxlen=capacity)
        else:
            self._records = []
        self._owns_fh = path is not None
        if path is not None:
            self._fh: IO[str] | None = open(path, "w", encoding="utf-8")
        else:
            self._fh = stream
        if self._fh is not None:
            self._fh.write(encode_record(self._header()) + "\n")

    # -- construction shorthands --------------------------------------- #
    @classmethod
    def to_path(cls, path: str | Path) -> "Tracer":
        """A tracer streaming JSONL records to ``path``."""
        return cls(path=path)

    @classmethod
    def in_memory(cls, capacity: int | None = None) -> "Tracer":
        """An in-memory tracer; bounded ring if ``capacity`` is given."""
        return cls(capacity=capacity)

    # -- emission ------------------------------------------------------ #
    @staticmethod
    def _header() -> dict:
        return {"type": "trace.header", "seq": 0, "t": 0.0,
                "schema": SCHEMA_VERSION, "lib": "repro"}

    def emit(self, etype: str, t: float, **fields: object) -> None:
        """Record one event of type ``etype`` at modelled time ``t`` (us)."""
        record: dict = {"type": etype, "t": t, "seq": self._seq}
        self._seq += 1
        for key, value in fields.items():
            record[key] = _sanitize(value)
        if self._fh is not None:
            self._fh.write(encode_record(record) + "\n")
        else:
            self._records.append(record)

    # -- access -------------------------------------------------------- #
    @property
    def records(self) -> list[dict]:
        """In-memory records, oldest first (header not included)."""
        return list(self._records)

    def select(self, *types: str) -> list[dict]:
        """In-memory records of the given types, oldest first."""
        return [r for r in self._records if r["type"] in types]

    def dumps(self) -> str:
        """The complete JSONL document for an in-memory trace.

        Always starts with a fresh header line, even if a bounded ring has
        evicted early records."""
        lines = [encode_record(self._header())]
        lines.extend(encode_record(r) for r in self._records)
        return "\n".join(lines) + "\n"

    def dump(self, path: str | Path) -> Path:
        """Write an in-memory trace to ``path`` as JSONL."""
        path = Path(path)
        path.write_text(self.dumps(), encoding="utf-8")
        return path

    # -- lifecycle ----------------------------------------------------- #
    def close(self) -> None:
        """Flush and (if this tracer opened it) close the output stream.
        The tracer is disabled afterwards."""
        if self._fh is not None:
            self._fh.flush()
            if self._owns_fh:
                self._fh.close()
            self._fh = None
        self.enabled = False

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
