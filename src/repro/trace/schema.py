"""The versioned controller-decision trace schema.

A trace is a JSON-Lines stream: one JSON object per line, the first line
always a ``trace.header`` record carrying :data:`SCHEMA_VERSION`.  Every
record type, every field, and the verdict vocabularies are declared here
as data — the declarations *are* the schema, :func:`validate_record`
checks records against them, and ``docs/observability.md`` documents the
same registry prose-first (a test asserts the two never drift).

Versioning policy (documented in docs/observability.md):

* adding a record type or an *optional* field is backward compatible and
  does not bump :data:`SCHEMA_VERSION`;
* renaming/removing a field or type, changing a field's meaning or unit,
  or changing a verdict vocabulary bumps the version;
* readers must ignore record types and fields they do not know.

Encoding notes: all times are modelled microseconds (the emitting LP's
wall clock, or the executive wall clock for global records); non-finite
floats are encoded as the strings ``"inf"``/``"-inf"``/``"nan"`` so every
line is strict JSON.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Bumped only on breaking changes; see the versioning policy above.
SCHEMA_VERSION = 1

#: Python types accepted for each declared field type.  ``number`` fields
#: additionally accept the non-finite string encodings.
_TYPE_CHECKS = {
    "int": (int,),
    "number": (int, float),
    "str": (str,),
    "bool": (bool,),
}

_NON_FINITE = ("inf", "-inf", "nan")


@dataclass(frozen=True)
class FieldSpec:
    """One field of one record type."""

    name: str
    type: str  # "int" | "number" | "str" | "bool"
    doc: str
    required: bool = True


@dataclass(frozen=True)
class RecordSpec:
    """One record type: its fields and, if any, its verdict vocabulary."""

    type: str
    doc: str
    fields: tuple[FieldSpec, ...]
    verdicts: tuple[str, ...] = ()


#: Fields present on every record (including the header).
COMMON_FIELDS: tuple[FieldSpec, ...] = (
    FieldSpec("type", "str", "record type, one of the registry keys"),
    FieldSpec("seq", "int", "per-trace monotonically increasing sequence number"),
    FieldSpec("t", "number", "modelled wall-clock microseconds at emission"),
)


def _f(*specs: tuple) -> tuple[FieldSpec, ...]:
    return tuple(FieldSpec(*s) for s in specs)


#: The registry: every record type the kernel can emit.
RECORD_TYPES: dict[str, RecordSpec] = {
    spec.type: spec
    for spec in (
        RecordSpec(
            "trace.header",
            "First record of every trace; identifies the schema.",
            _f(
                ("schema", "int", "the SCHEMA_VERSION the trace was written with"),
                ("lib", "str", 'always "repro"'),
            ),
        ),
        RecordSpec(
            "ctrl.checkpoint",
            "One dynamic check-pointing control invocation (<Ec, chi, S, T, P>): "
            "the sampled cost index and the interval move it produced.",
            _f(
                ("lp", "int", "emitting LP id"),
                ("obj", "str", "simulation object name"),
                ("o", "number", "sampled output O: Ec normalized per window event"),
                ("old", "int", "checkpoint interval chi before the invocation"),
                ("new", "int", "chi after the invocation (clamped to [1, MAX_INTERVAL])"),
                ("verdict", "str", "transfer-function branch taken"),
                ("events", "int", "events executed in the observation window"),
                ("saves", "int", "state saves in the window"),
                ("save_cost", "number", "modelled us spent saving state in the window"),
                ("coast_events", "int", "coast-forward re-executions in the window"),
                ("coast_cost", "number", "modelled us spent coasting in the window"),
                ("rollbacks", "int", "rollbacks in the window"),
            ),
            verdicts=(
                "first_sample", "ec_rose", "ec_flat",       # DynamicCheckpoint
                "reversed", "kept_direction",               # HillClimbCheckpoint
                "static",                                   # StaticCheckpoint
            ),
        ),
        RecordSpec(
            "ctrl.cancellation",
            "One dynamic cancellation control invocation (<HR, strategy, "
            "Aggressive, T, P>): the sampled hit ratio and the dead-zone verdict.",
            _f(
                ("lp", "int", "emitting LP id"),
                ("obj", "str", "simulation object name"),
                ("o", "number", "sampled output O: hit ratio over the filter depth"),
                ("old", "str", 'strategy before: "aggressive" | "lazy"'),
                ("new", "str", "strategy after"),
                ("verdict", "str", "dead-zone verdict"),
                ("switched", "bool", "whether the strategy actually changed"),
            ),
            verdicts=(
                "above_a2l", "below_l2a", "dead_zone",      # DynamicCancellation
                "locked_in", "locked",                      # PermanentSet
                "pinned_aggressive",                        # PermanentAggressive
            ),
        ),
        RecordSpec(
            "ctrl.aggregation",
            "One DyMA control invocation (<R(age), W, W_initial, SAAW, "
            "everyAggregate>): emitted as each aggregate is sent, when the "
            "LP's aggregation policy is adaptive.",
            _f(
                ("lp", "int", "sending LP id"),
                ("dst_lp", "int", "destination LP of the flushed aggregate"),
                ("o", "number", "sampled output O: age-modified reception rate R(age)"),
                ("old", "number", "aggregation window W (us) before"),
                ("new", "number", "W (us) after"),
                ("verdict", "str", "rate-comparison verdict"),
                ("count", "int", "events in the flushed aggregate"),
                ("age", "number", "aggregate age (us) when flushed"),
            ),
            verdicts=("first_aggregate", "rate_rose", "rate_fell", "rate_flat"),
        ),
        RecordSpec(
            "ctrl.window",
            "One adaptive-time-window control invocation (<waste, W_opt, "
            "unbounded, T, everyGVT>); global, fired from the executive at "
            "each advancing GVT round.",
            _f(
                ("o", "number", "sampled output O: wasted-work ratio of the interval"),
                ("old", "number", 'optimism window before ("inf" = unbounded)'),
                ("new", "number", "optimism window after"),
                ("verdict", "str", "dead-zone verdict"),
                ("executed", "int", "events executed since the previous invocation"),
                ("rolled_back", "int", "events rolled back since the previous invocation"),
                ("gvt", "number", "the GVT estimate the window is anchored at"),
            ),
            verdicts=("high_waste_first_clamp", "high_waste", "low_waste",
                      "dead_zone", "static"),
        ),
        RecordSpec(
            "ctrl.gvt",
            "One meta-controller GVT-period invocation (<backlog, gvt "
            "period, 50ms, T, every4Rounds>); global, fired from the "
            "executive's meta loop (docs/control.md).",
            _f(
                ("o", "number",
                 "sampled output O: uncommitted-history backlog per LP"),
                ("old", "number", "GVT round period (us) before"),
                ("new", "number",
                 "period (us) after (clamped to [1e3, 1e6])"),
                ("verdict", "str", "dead-zone verdict"),
                ("executed", "int", "events executed so far, run total"),
                ("committed", "int", "events committed so far, run total"),
                ("gvt", "number", "the GVT estimate at the invocation"),
            ),
            verdicts=("backlog_high", "backlog_low", "dead_zone"),
        ),
        RecordSpec(
            "ctrl.snapshot",
            "One meta-controller snapshot-strategy invocation (<state "
            "size, strategy, copy, hysteresis, every8Rounds>); global, "
            "fired from the executive's meta loop (docs/control.md).",
            _f(
                ("o", "number",
                 "sampled output O: mean live state size (modelled bytes)"),
                ("old", "str", 'strategy before: "copy" | "pickle" | "deepcopy"'),
                ("new", "str", "strategy after"),
                ("verdict", "str", "hysteresis verdict"),
                ("objects", "int", "simulation objects sampled"),
            ),
            verdicts=("state_large", "state_small", "dead_zone"),
        ),
        RecordSpec(
            "ctrl.placement",
            "One meta-controller placement invocation (<imbalance, "
            "placement, static, gap-halving move, every8Rounds>); global, "
            "fired from the executive's meta loop (docs/control.md).",
            _f(
                ("o", "number",
                 "sampled output O: hottest-host load over mean host load"),
                ("old", "str",
                 'applied moves as "oid@src" pairs, comma-joined '
                 '("" = no move)'),
                ("new", "str",
                 'the same moves as "oid@dst" pairs, comma-joined'),
                ("verdict", "str", "move/hold verdict"),
                ("moves", "int", "migrations applied by this invocation"),
            ),
            verdicts=("migrate", "hold"),
        ),
        RecordSpec(
            "lp.migrate",
            "One live object migration between hosts: the full Time Warp "
            "context moved as a canonical checkpoint "
            "(repro.kernel.migration).",
            _f(
                ("oid", "int", "global id of the migrated object"),
                ("src_lp", "int", "host LP/shard the object left"),
                ("dst_lp", "int", "host LP/shard the object joined"),
            ),
        ),
        RecordSpec(
            "rollback",
            "One rollback at one simulation object: cause, depth and the "
            "coast-forward bill.",
            _f(
                ("lp", "int", "emitting LP id"),
                ("obj", "str", "simulation object name"),
                ("cause", "str", '"primary" (straggler) | "secondary" (anti-message)'),
                ("to", "number", "virtual receive time of the straggler/anti"),
                ("restored_lvt", "number", "LVT of the restored snapshot"),
                ("depth", "int", "processed events returned to the future"),
                ("undone_sends", "int", "output records undone by the rollback"),
                ("coast_events", "int", "events re-executed during coast-forward"),
                ("coast_cost", "number", "modelled us charged for the coast-forward"),
            ),
        ),
        RecordSpec(
            "gvt.round",
            "One GVT estimation round reaching a value (omniscient: every "
            "round; mattern: every token round that completes).",
            _f(
                ("algorithm", "str", '"omniscient" | "mattern"'),
                ("gvt", "number", "the round's estimate"),
                ("advanced", "bool", "whether the estimate advanced committed GVT"),
            ),
        ),
        RecordSpec(
            "fossil.collect",
            "One fossil collection pass at one LP.",
            _f(
                ("lp", "int", "collecting LP id"),
                ("gvt", "number", "the GVT bound collected below"),
                ("committed", "int", "events committed by this pass"),
                ("items", "int", "history items (events/states/output records) reclaimed"),
                ("final", "bool", "whether this is the unconditional pass at termination"),
            ),
        ),
        RecordSpec(
            "comm.flush",
            "One aggregate leaving an LP's transport buffer as a physical "
            "message.",
            _f(
                ("lp", "int", "sending LP id"),
                ("dst_lp", "int", "destination LP id"),
                ("count", "int", "events in the aggregate"),
                ("age", "number", "aggregate age (us) when flushed"),
                ("window", "number", "aggregation window (us) in force at the flush"),
                ("trigger", "str", '"age" | "capacity" | "drain"'),
            ),
        ),
        RecordSpec(
            "fault.inject",
            "One injected network fault applied to one physical-message "
            "copy by the fault-injecting wire (docs/robustness.md).",
            _f(
                ("fault", "str", '"drop" | "duplicate" | "delay" | "reorder"'),
                ("src_lp", "int", "sending LP id"),
                ("dst_lp", "int", "destination LP id"),
                ("serial", "int",
                 "run-relative physical message serial "
                 "(-1 for transport-internal acks)"),
                ("seq", "int", "per-channel transport sequence number"),
                ("attempt", "int", "transmission attempt (0 = first send)"),
                ("msg_kind", "str",
                 '"data" | "gvt-token" | "gvt-broadcast" | "ack"'),
                ("lost", "bool",
                 "whether the copy is permanently lost (drops only)", False),
            ),
        ),
        RecordSpec(
            "net.retransmit",
            "One timeout-driven retransmission of an unacknowledged "
            "physical message by the reliable transport.",
            _f(
                ("src_lp", "int", "sending LP id"),
                ("dst_lp", "int", "destination LP id"),
                ("serial", "int", "run-relative physical message serial"),
                ("seq", "int", "per-channel transport sequence number"),
                ("attempt", "int", "retransmission number (1 = first retry)"),
                ("rto", "number", "the retransmission timeout (us) that expired"),
            ),
        ),
        RecordSpec(
            "oracle.violation",
            "One Time Warp invariant violation detected by the runtime "
            "oracle (docs/robustness.md).",
            _f(
                ("invariant", "str",
                 '"gvt_monotonic" | "gvt_safety" | "state_fidelity" | '
                 '"anti_pairing" | "wire_conservation" | "message_loss"'),
                ("detail", "str", "human-readable specifics of the violation"),
            ),
        ),
    )
}


def validate_record(record: object) -> list[str]:
    """Check one parsed record against the schema; returns error strings
    (empty = valid).  Unknown fields are allowed per the versioning policy;
    unknown record *types* are an error when validating a trace this
    library wrote (readers of foreign traces should skip them instead)."""
    errors: list[str] = []
    if not isinstance(record, dict):
        return [f"record is not an object: {record!r}"]
    rtype = record.get("type")
    if not isinstance(rtype, str):
        return [f"record has no string 'type': {record!r}"]
    spec = RECORD_TYPES.get(rtype)
    if spec is None:
        return [f"unknown record type {rtype!r}"]
    for fspec in COMMON_FIELDS + spec.fields:
        if fspec.name not in record:
            if fspec.required:
                errors.append(f"{rtype}: missing field {fspec.name!r}")
            continue
        value = record[fspec.name]
        accepted = _TYPE_CHECKS[fspec.type]
        if fspec.type == "number" and isinstance(value, str):
            if value in _NON_FINITE:
                continue
            errors.append(
                f"{rtype}.{fspec.name}: non-finite string must be one of "
                f"{_NON_FINITE}, got {value!r}"
            )
            continue
        # bool is an int subclass; keep int fields strictly integral
        if isinstance(value, bool) and fspec.type != "bool":
            errors.append(f"{rtype}.{fspec.name}: expected {fspec.type}, got bool")
            continue
        if not isinstance(value, accepted):
            errors.append(
                f"{rtype}.{fspec.name}: expected {fspec.type}, "
                f"got {type(value).__name__}"
            )
            continue
        if fspec.name == "verdict" and spec.verdicts and value not in spec.verdicts:
            errors.append(
                f"{rtype}.verdict: {value!r} not in vocabulary {spec.verdicts}"
            )
    if rtype == "trace.header":
        schema = record.get("schema")
        if isinstance(schema, int) and schema > SCHEMA_VERSION:
            errors.append(
                f"trace written with schema {schema}, reader knows {SCHEMA_VERSION}"
            )
    return errors
