"""Controller-decision tracing: run observability for the feedback loops.

The paper's controllers are only trustworthy if every adjustment they
make is observable: *when* did χ move, *what* Hit Ratio flipped an object
lazy, *why* did the aggregation window widen.  This package records those
decisions — plus the rollbacks, GVT rounds, fossil collections and
transport flushes that surround them — as timestamped structured records
with a versioned schema (:mod:`repro.trace.schema`, prose companion in
``docs/observability.md``).

Enable by attaching a :class:`Tracer` to the run configuration::

    from repro.trace import Tracer

    with Tracer.to_path("run.jsonl") as tracer:
        config = SimulationConfig(..., tracer=tracer)
        TimeWarpSimulation(partition, config).run()

Tracing is off by default and costs one attribute check per potential
emission site (the shared :data:`NULL_TRACER`).  Traces are as
deterministic as the runs themselves: identical configurations produce
byte-identical JSONL.  Inspect traces with the ``repro-trace`` CLI.
"""

from .reader import (
    TraceFormatError,
    load_trace,
    read_trace,
    summarize,
    validate_trace,
)
from .schema import RECORD_TYPES, SCHEMA_VERSION, validate_record
from .tracer import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "RECORD_TYPES",
    "SCHEMA_VERSION",
    "TraceFormatError",
    "Tracer",
    "load_trace",
    "read_trace",
    "summarize",
    "validate_record",
    "validate_trace",
]
