"""Deterministic network fault injection (docs/robustness.md).

A seeded :class:`FaultPlan` describes drop/duplicate/delay/reorder
behaviour; configuring one (``SimulationConfig(faults=plan)``) swaps the
perfect wire for a :class:`FaultyNetwork` with a reliable transport on
top.  :mod:`repro.faults.fuzz` sweeps plans differentially against the
sequential kernel (``repro-bench --faults``).
"""

from .network import FaultCounters, FaultyNetwork
from .plan import CLEAN, FaultDecision, FaultPlan, FaultRates

__all__ = [
    "CLEAN",
    "FaultCounters",
    "FaultDecision",
    "FaultPlan",
    "FaultRates",
    "FaultyNetwork",
]
