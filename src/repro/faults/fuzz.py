"""Differential fuzzing of the Time Warp kernel under network faults.

For each seeded :class:`~repro.faults.plan.FaultPlan` the harness runs
the parallel kernel over a fault-injecting wire — with the invariant
oracle armed — and asserts two properties:

1. **Differential**: the committed-event trace equals the sequential
   kernel's golden trace for the same application (faults may change the
   *path* — rollbacks, retransmissions — never the committed result);
2. **Invariants**: the oracle reports zero violations.

Plans alternate the GVT algorithm (omniscient / Mattern) per seed so the
distributed GVT's colouring is fuzzed too.  Used by the property tests in
``tests/properties/test_fault_fuzz.py`` and by ``repro-bench --faults``
(docs/robustness.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..apps.phold import PHOLDParams, build_phold
from ..apps.smmp import SMMPParams, build_smmp
from ..kernel.config import SimulationConfig
from ..kernel.kernel import TimeWarpSimulation
from ..sequential import SequentialSimulation
from ..oracle.invariants import InvariantOracle
from .network import FaultyNetwork
from .plan import FaultPlan, FaultRates

#: Default sweep rates: every fault class enabled, drop+dup+reorder per
#: the acceptance bar, plus a little extra latency noise.
DEFAULT_RATES = FaultRates(drop=0.08, duplicate=0.08, delay=0.06, reorder=0.08)

#: Virtual-time horizon for the PHOLD fuzz workload (PHOLD is unbounded).
PHOLD_END_TIME = 300.0

#: Safety valve: a livelocked case aborts instead of hanging the sweep.
MAX_EXECUTED_EVENTS = 500_000


def make_plan(seed: int, rates: FaultRates = DEFAULT_RATES, **overrides) -> FaultPlan:
    """The sweep's plan for one seed (overrides forward to FaultPlan)."""
    return FaultPlan(seed=seed, rates=rates, **overrides)


def _build_phold_workload():
    return build_phold(
        PHOLDParams(
            n_objects=8, n_lps=3, jobs_per_object=2,
            state_size_ints=4, seed=11,
        )
    )


def _build_smmp_workload():
    return build_smmp(
        SMMPParams(
            n_processors=4, n_lps=2, n_banks=4,
            requests_per_processor=5, pipeline_depth=2,
        )
    )


#: app name -> (partition builder, virtual-time horizon)
APPS = {
    "phold": (_build_phold_workload, PHOLD_END_TIME),
    "smmp": (_build_smmp_workload, float("inf")),
}

_golden_cache: dict[str, list] = {}


def golden_trace(app: str) -> list:
    """The sequential kernel's committed trace for ``app`` (cached)."""
    trace = _golden_cache.get(app)
    if trace is None:
        build, end_time = APPS[app]
        seq = SequentialSimulation(
            [obj for group in build() for obj in group],
            record_trace=True, end_time=end_time,
        )
        seq.run()
        trace = _golden_cache[app] = seq.sorted_trace()
    return trace


@dataclass(frozen=True)
class FuzzCase:
    """Outcome of one (app, plan) fuzz run."""

    app: str
    plan_seed: int
    gvt_algorithm: str
    trace_match: bool
    violations: tuple[str, ...]
    committed: int
    expected: int
    faults_injected: int
    retransmissions: int
    oracle_checks: int
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.trace_match and not self.violations and not self.error


@dataclass
class FuzzReport:
    """Outcome of a full sweep."""

    cases: list[FuzzCase] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(case.ok for case in self.cases)

    @property
    def failures(self) -> list[FuzzCase]:
        return [case for case in self.cases if not case.ok]

    def render(self) -> str:
        lines = []
        by_app: dict[str, int] = {}
        faults = retrans = checks = 0
        for case in self.cases:
            by_app[case.app] = by_app.get(case.app, 0) + 1
            faults += case.faults_injected
            retrans += case.retransmissions
            checks += case.oracle_checks
        per_app = ", ".join(f"{app}: {n}" for app, n in sorted(by_app.items()))
        lines.append(
            f"fuzzed {len(self.cases)} case(s) ({per_app}); "
            f"{faults} fault(s) injected, {retrans} retransmission(s), "
            f"{checks} oracle check(s)"
        )
        for case in self.failures:
            detail = case.error or (
                f"trace_match={case.trace_match} "
                f"({case.committed}/{case.expected} events) "
                f"violations={list(case.violations)}"
            )
            lines.append(
                f"  FAIL {case.app} plan_seed={case.plan_seed} "
                f"gvt={case.gvt_algorithm}: {detail}"
            )
        lines.append("PASS" if self.ok else f"FAIL ({len(self.failures)} case(s))")
        return "\n".join(lines)


def run_case(app: str, plan: FaultPlan, *, gvt_algorithm: str) -> FuzzCase:
    """One differential run of ``app`` under ``plan``."""
    build, end_time = APPS[app]
    expected = golden_trace(app)
    oracle = InvariantOracle()
    config = SimulationConfig(
        end_time=end_time,
        record_trace=True,
        faults=plan,
        oracle=oracle,
        gvt_algorithm=gvt_algorithm,
        max_executed_events=MAX_EXECUTED_EVENTS,
    )
    error = ""
    trace_match = False
    committed = 0
    faults_injected = retransmissions = 0
    try:
        sim = TimeWarpSimulation(build(), config)
        sim.run()
        committed = len(sim.trace or ())
        trace_match = sim.sorted_trace() == expected
        network = sim.executive.network
        assert isinstance(network, FaultyNetwork)
        faults_injected = network.counters.faults_injected()
        retransmissions = network.counters.retransmissions
    except Exception as exc:  # a crash is a finding, not a harness abort
        error = f"{type(exc).__name__}: {exc}"
    return FuzzCase(
        app=app,
        plan_seed=plan.seed,
        gvt_algorithm=gvt_algorithm,
        trace_match=trace_match,
        violations=tuple(v.invariant for v in oracle.violations),
        committed=committed,
        expected=len(expected),
        faults_injected=faults_injected,
        retransmissions=retransmissions,
        oracle_checks=oracle.checks,
        error=error,
    )


def run_fuzz(
    plans: int = 100,
    *,
    apps: tuple[str, ...] = ("phold", "smmp"),
    rates: FaultRates = DEFAULT_RATES,
) -> FuzzReport:
    """Sweep ``plans`` seeded fault plans over ``apps``.

    Seed ``s`` runs with the omniscient GVT when even and Mattern when
    odd, so both estimators face every second plan."""
    report = FuzzReport()
    for seed in range(plans):
        plan = make_plan(seed, rates)
        gvt = "mattern" if seed % 2 else "omniscient"
        for app in apps:
            report.cases.append(run_case(app, plan, gvt_algorithm=gvt))
    return report
