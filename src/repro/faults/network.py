"""A fault-injecting wire with a reliable transport on top.

:class:`FaultyNetwork` replaces the perfect :class:`~repro.comm.network.
Network` when a :class:`~repro.faults.plan.FaultPlan` is configured.  A
*logical* send is accounted exactly once (statistics, GVT colouring,
in-flight tracking), then one or more *physical copies* cross the wire,
each subject to the plan's drop/duplicate/delay/reorder decisions.

With ``plan.retransmit`` (default) the transport is reliable: per-channel
sequence numbers, receiver-side dedup with in-order release, cumulative
acks on the reverse channel (themselves subject to the plan's ``"ack"``
rates), and timeout retransmission with exponential backoff.  The kernel
above sees exactly the perfect wire's FIFO contract, just with noisier
latency — which is what makes differential fuzzing against the
sequential kernel possible.

With ``retransmit=False`` the wire is fire-and-forget: a dropped copy is
permanently lost (counted in ``lost_count`` so the invariant oracle can
detect it), duplicates are still suppressed, and arrival order is
whatever the faults produce.

All timing flows through the executive's ``schedule_callback`` heap, so
runs stay fully deterministic and traces byte-identical per plan seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..cluster.costmodel import NetworkModel
from ..comm.message import (
    PHYSICAL_HEADER_BYTES,
    MessageKind,
    PhysicalMessage,
    _serial_counter,
)
from ..comm.network import CHANNEL_EPSILON, Network, _jitter_unit
from ..comm.transport import ReliableReceiver, ReliableSender
from ..kernel.errors import TransportFailureError
from ..trace.tracer import NULL_TRACER
from .plan import FaultPlan

Channel = tuple[int, int]


@dataclass
class FaultCounters:
    """What the fault layer actually did to a run."""

    copies_sent: int = 0
    drops: int = 0
    duplicates: int = 0
    delays: int = 0
    reorders: int = 0
    retransmissions: int = 0
    duplicate_deliveries_discarded: int = 0
    acks_sent: int = 0
    ack_drops: int = 0

    def faults_injected(self) -> int:
        return self.drops + self.duplicates + self.delays + self.reorders


class FaultyNetwork(Network):
    """Fault-injecting, optionally reliable, replacement wire."""

    def __init__(
        self,
        model: NetworkModel,
        deliver: Callable[[int, float, PhysicalMessage], None],
        *,
        plan: FaultPlan,
        schedule_callback: Callable[[float, Callable[[float], None]], None],
        tracer=NULL_TRACER,
    ) -> None:
        super().__init__(model, deliver)
        self.plan = plan
        self._schedule = schedule_callback
        #: structured observability tracer; the kernel attaches the run's
        self.tracer = tracer
        self.counters = FaultCounters()
        self._senders: dict[Channel, ReliableSender] = {}
        self._receivers: dict[Channel, ReliableReceiver] = {}
        self._ack_counts: dict[Channel, int] = {}
        #: logical DATA messages accepted but not yet handed to their LP
        self._outstanding_data = 0
        # Message serials come from a process-global counter; trace records
        # report them relative to this wire's construction so identical
        # runs in one process stay byte-identical.
        self._serial_base = next(_serial_counter) + 1

    # ------------------------------------------------------------------ #
    # logical send
    # ------------------------------------------------------------------ #
    def send(self, message: PhysicalMessage, completion_clock: float) -> float:
        """Accept one logical message; returns its *nominal* (fault-free)
        arrival time — actual wire arrivals are scheduled as callbacks."""
        channel = (message.src_lp, message.dst_lp)
        sender = self._senders.get(channel)
        if sender is None:
            sender = self._senders[channel] = ReliableSender()
        seq = sender.register(message, track=self.plan.retransmit)
        self._track(message)
        if self.on_data_send is not None and message.kind is MessageKind.DATA:
            self.on_data_send(message)
        size = message.size_bytes()
        self.messages_sent += 1
        self.bytes_sent += size
        self.events_carried += message.event_count()
        if message.kind is MessageKind.DATA:
            self._outstanding_data += 1
        self._transmit_copy(channel, seq, message, completion_clock, 0)
        jitter = _jitter_unit(
            message.src_lp, message.dst_lp, 1 + seq * 131, self.model.seed
        )
        return completion_clock + self.model.delivery_latency(size, jitter)

    # ------------------------------------------------------------------ #
    # wire copies
    # ------------------------------------------------------------------ #
    def _transmit_copy(
        self,
        channel: Channel,
        seq: int,
        message: PhysicalMessage,
        when: float,
        attempt: int,
    ) -> None:
        plan = self.plan
        src, dst = channel
        kind = message.kind.value
        decision = plan.decide(channel, kind, seq, attempt)
        tracer = self.tracer
        if decision.drop:
            self.counters.drops += 1
            lost = not plan.retransmit
            if tracer.enabled:
                tracer.emit(
                    "fault.inject", when, fault="drop",
                    src_lp=src, dst_lp=dst, serial=message.serial - self._serial_base,
                    seq=seq, attempt=attempt, msg_kind=kind, lost=lost,
                )
            if lost:
                self.lost_count += 1
                self._untrack(message)
                if message.kind is MessageKind.DATA:
                    self._outstanding_data -= 1
        else:
            self.counters.copies_sent += 1
            jitter = _jitter_unit(
                src, dst, 1 + seq * 131 + attempt * 17, self.model.seed
            )
            latency = self.model.delivery_latency(message.size_bytes(), jitter)
            if decision.delay:
                self.counters.delays += 1
                latency *= plan.delay_factor
                if tracer.enabled:
                    tracer.emit(
                        "fault.inject", when, fault="delay",
                        src_lp=src, dst_lp=dst, serial=message.serial - self._serial_base,
                        seq=seq, attempt=attempt, msg_kind=kind,
                    )
            if decision.reorder:
                self.counters.reorders += 1
                latency *= plan.reorder_factor
                if tracer.enabled:
                    tracer.emit(
                        "fault.inject", when, fault="reorder",
                        src_lp=src, dst_lp=dst, serial=message.serial - self._serial_base,
                        seq=seq, attempt=attempt, msg_kind=kind,
                    )
            arrival = when + latency
            self._schedule_arrival(channel, seq, message, arrival)
            if decision.duplicate:
                self.counters.duplicates += 1
                self.counters.copies_sent += 1
                if tracer.enabled:
                    tracer.emit(
                        "fault.inject", when, fault="duplicate",
                        src_lp=src, dst_lp=dst, serial=message.serial - self._serial_base,
                        seq=seq, attempt=attempt, msg_kind=kind,
                    )
                self._schedule_arrival(
                    channel, seq, message, arrival + plan.duplicate_lag
                )
        if plan.retransmit:
            rto = plan.rto * (plan.backoff ** attempt)
            self._schedule(
                when + rto,
                lambda now, c=channel, s=seq, m=message, a=attempt, r=rto: (
                    self._on_retransmit_timer(c, s, m, a, r, now)
                ),
            )

    def _schedule_arrival(
        self, channel: Channel, seq: int, message: PhysicalMessage, at: float
    ) -> None:
        self._schedule(
            at,
            lambda now, c=channel, s=seq, m=message: (
                self._on_wire_arrival(c, s, m, now)
            ),
        )

    def _on_retransmit_timer(
        self,
        channel: Channel,
        seq: int,
        message: PhysicalMessage,
        attempt: int,
        rto: float,
        now: float,
    ) -> None:
        sender = self._senders[channel]
        if not sender.is_outstanding(seq):
            return  # acked meanwhile; stale timer
        if attempt >= self.plan.max_retransmits:
            raise TransportFailureError(
                f"message serial {message.serial} (channel {channel}, seq "
                f"{seq}) unacknowledged after {attempt} retransmissions"
            )
        self.counters.retransmissions += 1
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(
                "net.retransmit", now,
                src_lp=channel[0], dst_lp=channel[1],
                serial=message.serial - self._serial_base, seq=seq, attempt=attempt + 1, rto=rto,
            )
        self._transmit_copy(channel, seq, message, now, attempt + 1)

    # ------------------------------------------------------------------ #
    # receive side
    # ------------------------------------------------------------------ #
    def _on_wire_arrival(
        self, channel: Channel, seq: int, message: PhysicalMessage, now: float
    ) -> None:
        plan = self.plan
        receiver = self._receivers.get(channel)
        if receiver is None:
            receiver = self._receivers[channel] = ReliableReceiver(
                ordered=plan.retransmit
            )
        ready = receiver.accept(seq, message)
        if ready is None:
            # Duplicate copy: discard, but re-ack so a lost ack cannot
            # keep the sender retransmitting forever.
            self.counters.duplicate_deliveries_discarded += 1
            if plan.retransmit:
                self._send_ack(channel, receiver.cumulative_ack(), now)
            return
        for msg in ready:
            arrival = now
            if plan.retransmit:
                # Restore the perfect wire's per-channel FIFO spacing.
                previous = self._last_arrival.get(channel)
                if previous is not None and arrival <= previous:
                    arrival = previous + CHANNEL_EPSILON
                self._last_arrival[channel] = arrival
            self._deliver(msg.dst_lp, arrival, msg)
        if plan.retransmit:
            self._send_ack(channel, receiver.cumulative_ack(), now)

    def _send_ack(self, channel: Channel, cum_seq: int, now: float) -> None:
        if cum_seq < 0:
            return  # nothing delivered in-order yet; nothing to ack
        plan = self.plan
        src, dst = channel  # data direction; the ack flows dst -> src
        index = self._ack_counts.get(channel, 0)
        self._ack_counts[channel] = index + 1
        self.counters.acks_sent += 1
        decision = plan.decide((dst, src), "ack", index, 0)
        if decision.drop:
            # A lost ack is recovered by the data-side retransmit timer.
            self.counters.ack_drops += 1
            tracer = self.tracer
            if tracer.enabled:
                tracer.emit(
                    "fault.inject", now, fault="drop",
                    src_lp=dst, dst_lp=src, serial=-1,
                    seq=index, attempt=0, msg_kind="ack", lost=True,
                )
            return
        jitter = _jitter_unit(dst, src, 7 + index * 193, self.model.seed)
        latency = self.model.delivery_latency(PHYSICAL_HEADER_BYTES, jitter)
        if decision.delay:
            latency *= plan.delay_factor
        if decision.reorder:
            # A "reordered" cumulative ack is just a very late ack.
            latency *= plan.reorder_factor
        self._schedule(
            now + latency,
            lambda _now, c=channel, q=cum_seq: self._on_ack(c, q),
        )

    def _on_ack(self, channel: Channel, cum_seq: int) -> None:
        sender = self._senders.get(channel)
        if sender is not None:
            sender.ack_through(cum_seq)

    # ------------------------------------------------------------------ #
    # delivery + termination accounting
    # ------------------------------------------------------------------ #
    def on_delivered(self, message: PhysicalMessage) -> bool:
        delivered = super().on_delivered(message)
        if delivered and message.kind is MessageKind.DATA:
            self._outstanding_data -= 1
        return delivered

    def undelivered_data_count(self) -> int:
        return self._outstanding_data

    def unacked_count(self) -> int:
        """Messages still awaiting a cumulative ack (reliable mode)."""
        return sum(len(s.pending) for s in self._senders.values())
