"""Seeded fault plans: deterministic schedules of network misbehaviour.

A :class:`FaultPlan` decides, for every physical-message copy the wire
carries, whether that copy is dropped, duplicated, delayed, or reordered.
Decisions are pure functions of ``(plan seed, channel, message kind,
sequence number, attempt)`` via the same multiplicative-hash idiom the
network uses for latency jitter — no RNG object, no hidden state — so an
identical plan replays an identical fault schedule and traces stay
byte-identical across runs and processes.

Rates resolve most-specific-first: a per-channel override beats a
per-kind override beats the plan-wide default.  Retransmission attempts
draw fresh decisions (the attempt number is hashed in), so a drop rate
below 1.0 cannot starve a message forever once retransmission is on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..kernel.errors import ConfigurationError

#: Stable small codes per message kind for hashing (enum identity and
#: Python's own hash() are not stable across processes).  "ack" is the
#: transport's internal acknowledgement traffic, which never surfaces as
#: a PhysicalMessage kind but can still be dropped or delayed by a plan.
KIND_CODES: dict[str, int] = {
    "data": 1,
    "gvt-token": 2,
    "gvt-broadcast": 3,
    "ack": 4,
}

# Per-fault salts keep the four decisions on one copy independent.
_SALT_DROP = 1
_SALT_DUPLICATE = 2
_SALT_DELAY = 3
_SALT_REORDER = 4


def _unit(
    seed: int, src: int, dst: int, kind_code: int, seq: int, attempt: int,
    salt: int,
) -> float:
    """Deterministic pseudo-random value in [0, 1)."""
    h = (
        src * 1_000_003
        + dst * 10_007
        + seq * 97
        + attempt * 6_151
        + kind_code * 523
        + salt * 7_919
        + seed * 104_729
    )
    h = (h * 2654435761) % 2**32
    return h / 2**32


@dataclass(frozen=True, slots=True)
class FaultRates:
    """Per-copy probabilities of each fault, each in [0, 1]."""

    drop: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    reorder: float = 0.0

    def validate(self, where: str = "rates") -> None:
        for name in ("drop", "duplicate", "delay", "reorder"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"{where}.{name} must be in [0, 1], got {value!r}"
                )

    def any_active(self) -> bool:
        return bool(self.drop or self.duplicate or self.delay or self.reorder)

    def to_dict(self) -> dict:
        """JSON-able form (non-zero rates only, for compact scenarios)."""
        return {
            name: value
            for name in ("drop", "duplicate", "delay", "reorder")
            if (value := getattr(self, name))
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultRates":
        unknown = set(data) - {"drop", "duplicate", "delay", "reorder"}
        if unknown:
            raise ConfigurationError(
                f"unknown fault-rate field(s): {sorted(unknown)}"
            )
        return cls(**data)


@dataclass(frozen=True, slots=True)
class FaultDecision:
    """Which faults hit one physical-message copy."""

    drop: bool = False
    duplicate: bool = False
    delay: bool = False
    reorder: bool = False


#: The no-fault decision, shared to keep the common path allocation-free.
CLEAN = FaultDecision()


@dataclass(frozen=True)
class FaultPlan:
    """A complete, replayable description of network misbehaviour.

    ``retransmit=True`` (the default) arms the reliable transport:
    sequence numbers, cumulative acks, receiver-side dedup with in-order
    release, and timeout retransmission with exponential backoff — the
    kernel then survives any fault mix.  ``retransmit=False`` models a
    fire-and-forget wire: dropped copies are permanently lost (and the
    invariant oracle is expected to notice), duplicates are still
    deduplicated, but arrival order is whatever the faults produce.
    """

    seed: int = 0
    #: plan-wide default rates
    rates: FaultRates = field(default_factory=FaultRates)
    #: per-message-kind overrides, keyed by kind value ("data", "gvt-token",
    #: "gvt-broadcast", "ack")
    per_kind: dict[str, FaultRates] = field(default_factory=dict)
    #: per-directed-channel overrides, keyed by (src_lp, dst_lp)
    per_channel: dict[tuple[int, int], FaultRates] = field(default_factory=dict)
    #: reliable transport on/off (see class docstring)
    retransmit: bool = True
    #: initial retransmission timeout (modelled microseconds)
    rto: float = 4_000.0
    #: multiplicative backoff applied per retransmission attempt
    backoff: float = 1.6
    #: give up (raise TransportFailureError) after this many retransmits
    max_retransmits: int = 24
    #: latency multiplier for a delayed copy
    delay_factor: float = 3.0
    #: latency multiplier for a reordered copy — large enough that later
    #: traffic on the channel overtakes it
    reorder_factor: float = 5.0
    #: wire lag between a copy and its injected duplicate (microseconds)
    duplicate_lag: float = 600.0

    def validate(self) -> None:
        self.rates.validate("rates")
        for kind, rates in self.per_kind.items():
            if kind not in KIND_CODES:
                raise ConfigurationError(
                    f"per_kind key {kind!r} is not a known message kind "
                    f"(expected one of {sorted(KIND_CODES)})"
                )
            rates.validate(f"per_kind[{kind!r}]")
        for channel, rates in self.per_channel.items():
            rates.validate(f"per_channel[{channel!r}]")
        if self.rto <= 0.0:
            raise ConfigurationError(f"rto must be positive, got {self.rto!r}")
        if self.backoff < 1.0:
            raise ConfigurationError(
                f"backoff must be >= 1, got {self.backoff!r}"
            )
        if self.max_retransmits < 0:
            raise ConfigurationError(
                f"max_retransmits must be >= 0, got {self.max_retransmits!r}"
            )
        for name in ("delay_factor", "reorder_factor"):
            if getattr(self, name) < 1.0:
                raise ConfigurationError(
                    f"{name} must be >= 1, got {getattr(self, name)!r}"
                )
        if self.duplicate_lag < 0.0:
            raise ConfigurationError(
                f"duplicate_lag must be >= 0, got {self.duplicate_lag!r}"
            )

    # ------------------------------------------------------------------ #
    # stable JSON form (the verify harness serializes plans in scenarios)
    # ------------------------------------------------------------------ #
    _SCALAR_FIELDS = (
        "seed", "retransmit", "rto", "backoff", "max_retransmits",
        "delay_factor", "reorder_factor", "duplicate_lag",
    )

    def to_dict(self) -> dict:
        """JSON-able form; only fields differing from the defaults."""
        default = type(self)()
        doc: dict = {
            name: getattr(self, name)
            for name in self._SCALAR_FIELDS
            if getattr(self, name) != getattr(default, name)
        }
        doc["seed"] = self.seed
        if self.rates.any_active():
            doc["rates"] = self.rates.to_dict()
        if self.per_kind:
            doc["per_kind"] = {
                kind: rates.to_dict() for kind, rates in self.per_kind.items()
            }
        if self.per_channel:
            # JSON keys must be strings: (src, dst) -> "src->dst"
            doc["per_channel"] = {
                f"{src}->{dst}": rates.to_dict()
                for (src, dst), rates in self.per_channel.items()
            }
        return doc

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        kwargs: dict = {
            name: data[name] for name in cls._SCALAR_FIELDS if name in data
        }
        if "rates" in data:
            kwargs["rates"] = FaultRates.from_dict(data["rates"])
        if "per_kind" in data:
            kwargs["per_kind"] = {
                kind: FaultRates.from_dict(rates)
                for kind, rates in data["per_kind"].items()
            }
        if "per_channel" in data:
            per_channel: dict[tuple[int, int], FaultRates] = {}
            for key, rates in data["per_channel"].items():
                try:
                    src, dst = key.split("->")
                    channel = (int(src), int(dst))
                except ValueError:
                    raise ConfigurationError(
                        f"per_channel key {key!r} is not 'src->dst'"
                    ) from None
                per_channel[channel] = FaultRates.from_dict(rates)
            kwargs["per_channel"] = per_channel
        unknown = set(data) - set(kwargs) - {"rates", "per_kind", "per_channel"}
        if unknown:
            raise ConfigurationError(
                f"unknown FaultPlan field(s): {sorted(unknown)}"
            )
        plan = cls(**kwargs)
        plan.validate()
        return plan

    # ------------------------------------------------------------------ #
    def rates_for(self, channel: tuple[int, int], kind: str) -> FaultRates:
        """Resolve the effective rates: channel > kind > plan default."""
        rates = self.per_channel.get(channel)
        if rates is not None:
            return rates
        rates = self.per_kind.get(kind)
        if rates is not None:
            return rates
        return self.rates

    def decide(
        self, channel: tuple[int, int], kind: str, seq: int, attempt: int = 0
    ) -> FaultDecision:
        """The fault outcome for one copy — pure and replayable."""
        rates = self.rates_for(channel, kind)
        if not rates.any_active():
            return CLEAN
        src, dst = channel
        code = KIND_CODES.get(kind, 0)
        drop = rates.drop > 0.0 and (
            _unit(self.seed, src, dst, code, seq, attempt, _SALT_DROP)
            < rates.drop
        )
        if drop:
            # A dropped copy never reaches the wire; the other faults are moot.
            return FaultDecision(drop=True)
        duplicate = rates.duplicate > 0.0 and (
            _unit(self.seed, src, dst, code, seq, attempt, _SALT_DUPLICATE)
            < rates.duplicate
        )
        delay = rates.delay > 0.0 and (
            _unit(self.seed, src, dst, code, seq, attempt, _SALT_DELAY)
            < rates.delay
        )
        reorder = rates.reorder > 0.0 and (
            _unit(self.seed, src, dst, code, seq, attempt, _SALT_REORDER)
            < rates.reorder
        )
        if not (duplicate or delay or reorder):
            return CLEAN
        return FaultDecision(
            duplicate=duplicate, delay=delay, reorder=reorder
        )
