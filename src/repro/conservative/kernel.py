"""Conservative (YAWNS-style) parallel kernel over the WARPED app API.

Section 7 of the paper: "an implementation of the WARPED interface can
be constructed using either conservative or optimistic parallel
synchronization techniques."  This kernel is the conservative
implementation: a bulk-synchronous bounded-window protocol (YAWNS /
bounded lag).  Each round,

1. the LPs agree (a modelled barrier + min-reduction) on the global
   minimum unprocessed timestamp ``T``,
2. every LP executes all of its events with ``recv_time < T + L`` in
   timestamp order, where ``L`` is the model's *lookahead* — the minimum
   send delay the application guarantees.  Any event generated inside
   the window lands at or beyond ``T + L``, so the window is causally
   closed and **no rollback can ever be needed**;
3. messages sent during the round are exchanged, everyone re-synchronizes,
   and the next round begins.

No state saving, no anti-messages, no GVT — conservative synchronization
buys freedom from all Time Warp overheads, and pays with barrier idling:
every round ends at the *slowest* LP's clock.  On the paper's
non-dedicated NOW (heterogeneous speed factors) that trade usually
favors Time Warp, which is exactly the comparison
``benchmarks/bench_abl_conservative.py`` makes.

The lookahead is declared, not inferred, and the kernel *enforces* it:
an application send with ``delay < L`` raises immediately, so a wrong
declaration cannot silently corrupt causality.
"""

from __future__ import annotations

import heapq
from typing import Any, Sequence

from ..cluster.costmodel import DEFAULT_COSTS, DEFAULT_NETWORK, CostModel, NetworkModel
from ..kernel.errors import (
    ApplicationError,
    ConfigurationError,
    SchedulingError,
    TimeWarpError,
)
from ..kernel.event import Event, EventKey, VirtualTime
from ..kernel.simobject import SimulationObject
from ..stats.counters import LPStats, RunStats


class _ConservativeServices:
    """KernelServices adapter enforcing the lookahead contract."""

    __slots__ = ("_kernel", "_oid")

    def __init__(self, kernel: "ConservativeSimulation", oid: int) -> None:
        self._kernel = kernel
        self._oid = oid

    @property
    def now(self) -> VirtualTime:
        return self._kernel._lvt[self._oid]

    def send(self, dest: str, delay: VirtualTime, payload: Any) -> None:
        self._kernel._send(self._oid, dest, delay, payload)


class ConservativeSimulation:
    """Bounded-window conservative run of a partitioned object graph."""

    def __init__(
        self,
        partition: Sequence[Sequence[SimulationObject]],
        *,
        lookahead: float,
        costs: CostModel = DEFAULT_COSTS,
        network: NetworkModel = DEFAULT_NETWORK,
        lp_speed_factors: dict[int, float] | None = None,
        end_time: float = float("inf"),
        record_trace: bool = False,
        max_rounds: int | None = None,
    ) -> None:
        if lookahead <= 0:
            raise ConfigurationError(
                "conservative synchronization needs strictly positive lookahead"
            )
        if not partition or not any(partition):
            raise ConfigurationError("partition must contain objects")
        self.lookahead = lookahead
        self.network = network
        self.end_time = end_time
        self.max_rounds = max_rounds

        self.objects: list[SimulationObject] = []
        self._name_to_oid: dict[str, int] = {}
        self._oid_to_lp: dict[int, int] = {}
        for lp_index, group in enumerate(partition):
            for obj in group:
                if obj.name in self._name_to_oid:
                    raise ConfigurationError(f"duplicate name {obj.name!r}")
                oid = len(self.objects)
                self.objects.append(obj)
                self._name_to_oid[obj.name] = oid
                self._oid_to_lp[oid] = lp_index
        self.n_lps = len(partition)

        factors = lp_speed_factors or {}
        self._costs = [
            costs if factors.get(lp, 1.0) == 1.0 else costs.scaled(factors[lp])
            for lp in range(self.n_lps)
        ]
        self._base_costs = costs

        self._queues: list[list[tuple[EventKey, Event]]] = [
            [] for _ in range(self.n_lps)
        ]
        self._lvt = [0.0] * len(self.objects)
        self._serials = [0] * len(self.objects)
        self._clock = [0.0] * self.n_lps
        self._current_lp = 0
        self.lp_stats = [LPStats() for _ in range(self.n_lps)]
        self.rounds = 0
        self.events_executed = 0
        self.trace: list[tuple] | None = [] if record_trace else None
        #: remote events produced in the current round, delivered at its end
        self._outbox: list[tuple[int, Event]] = []
        self._ran = False

    # ------------------------------------------------------------------ #
    # sends
    # ------------------------------------------------------------------ #
    def _send(self, sender: int, dest: str, delay: VirtualTime,
              payload: Any) -> None:
        if delay < self.lookahead:
            raise ConfigurationError(
                f"{self.objects[sender].name}: send delay {delay} violates "
                f"the declared lookahead {self.lookahead} — either the "
                "model's minimum delay is smaller than declared, or the "
                "declaration is wrong"
            )
        try:
            receiver = self._name_to_oid[dest]
        except KeyError:
            raise SchedulingError(f"unknown simulation object {dest!r}") from None
        event = Event(
            sender=sender,
            receiver=receiver,
            send_time=self._lvt[sender],
            recv_time=self._lvt[sender] + delay,
            payload=payload,
            serial=self._serials[sender],
        )
        self._serials[sender] += 1
        src_lp = self._current_lp
        dst_lp = self._oid_to_lp[receiver]
        if dst_lp == src_lp:
            self._clock[src_lp] += self._costs[src_lp].intra_send_cost
            self.lp_stats[src_lp].intra_lp_events += 1
            heapq.heappush(self._queues[dst_lp], (event.key(), event))
        else:
            # charged now; delivered at the round's synchronization point
            self._clock[src_lp] += self._costs[src_lp].physical_send(
                event.size_bytes()
            )
            self.lp_stats[src_lp].physical_messages_sent += 1
            self.lp_stats[src_lp].remote_events_sent += 1
            self._outbox.append((dst_lp, event))

    # ------------------------------------------------------------------ #
    # rounds
    # ------------------------------------------------------------------ #
    def _deliver_outbox(self) -> None:
        for dst_lp, event in self._outbox:
            self._clock[dst_lp] += self._costs[dst_lp].physical_recv(
                event.size_bytes()
            )
            self.lp_stats[dst_lp].physical_messages_received += 1
            self.lp_stats[dst_lp].remote_events_received += 1
            heapq.heappush(self._queues[dst_lp], (event.key(), event))
        self._outbox.clear()

    def _barrier(self) -> None:
        """Synchronize the LP clocks: barrier + min-reduction cost, then
        everyone waits for the slowest (plus one message latency)."""
        for lp in range(self.n_lps):
            self._clock[lp] += self._costs[lp].gvt_participation_cost
            self._clock[lp] += self._costs[lp].physical_send(64)
            self.lp_stats[lp].gvt_rounds += 1
        latest = max(self._clock)
        latency = self.network.delivery_latency(64)
        for lp in range(self.n_lps):
            idle = latest - self._clock[lp]
            if idle > 0:
                self.lp_stats[lp].idle_time += idle
            self._clock[lp] = latest + latency

    def _global_min(self) -> float:
        best = float("inf")
        for queue in self._queues:
            if queue:
                best = min(best, queue[0][0].recv_time)
        return best

    def run(self) -> RunStats:
        if self._ran:
            raise ConfigurationError("a ConservativeSimulation can only run once")
        self._ran = True
        # initialization: states + initial sends (delivered before round 1)
        for oid, obj in enumerate(self.objects):
            obj.state = obj.initial_state()
            obj.bind(_ConservativeServices(self, oid))
        for oid, obj in enumerate(self.objects):
            self._current_lp = self._oid_to_lp[oid]
            obj.initialize()
        self._deliver_outbox()

        while True:
            horizon = min(self._global_min() + self.lookahead, self.end_time)
            if self._global_min() > self.end_time or self._global_min() == float("inf"):
                break
            self._execute_window(horizon)
            self._deliver_outbox()
            self._barrier()
            self.rounds += 1
            if self.max_rounds is not None and self.rounds > self.max_rounds:
                raise TimeWarpError(
                    f"exceeded {self.max_rounds} conservative rounds"
                )

        for obj in self.objects:
            obj.finalize()
        return self._assemble_stats()

    def _execute_window(self, horizon: float) -> None:
        for lp in range(self.n_lps):
            self._current_lp = lp
            queue = self._queues[lp]
            costs = self._costs[lp]
            clock_before = self._clock[lp]
            while queue and queue[0][0].recv_time < horizon:
                _, event = heapq.heappop(queue)
                if event.recv_time > self.end_time:
                    continue
                oid = event.receiver
                obj = self.objects[oid]
                self._lvt[oid] = event.recv_time
                try:
                    obj.execute_process(event.payload)
                except TimeWarpError:
                    raise
                except Exception as exc:
                    raise ApplicationError(
                        obj.name, event.recv_time, event.payload
                    ) from exc
                self._clock[lp] += costs.event_execution(obj.grain_factor)
                self.events_executed += 1
                if self.trace is not None:
                    self.trace.append((
                        event.recv_time,
                        obj.name,
                        self.objects[event.sender].name,
                        event.send_time,
                        event.payload,
                    ))
            self.lp_stats[lp].busy_time += self._clock[lp] - clock_before

    # ------------------------------------------------------------------ #
    # results
    # ------------------------------------------------------------------ #
    def _assemble_stats(self) -> RunStats:
        stats = RunStats()
        stats.execution_time = max(self._clock) if self._clock else 0.0
        stats.committed_events = self.events_executed
        stats.executed_events = self.events_executed
        stats.gvt_rounds = sum(s.gvt_rounds for s in self.lp_stats)
        stats.physical_messages = sum(
            s.physical_messages_sent for s in self.lp_stats
        )
        stats.final_gvt = self._global_min()
        for lp, lp_stats in enumerate(self.lp_stats):
            stats.per_lp[lp] = lp_stats
        return stats

    def sorted_trace(self) -> list[tuple]:
        if self.trace is None:
            raise ConfigurationError("construct with record_trace=True")
        return sorted(self.trace, key=lambda t: (t[0], t[1], t[2], t[3],
                                                 repr(t[4])))
