"""Conservative (YAWNS bounded-window) kernel over the same app API."""

from .kernel import ConservativeSimulation

__all__ = ["ConservativeSimulation"]
