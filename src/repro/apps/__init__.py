"""Bundled simulation models: SMMP, RAID, PHOLD and test workloads."""

from .base import chance, pick, round_robin_partition, token_hash, uniform
from .logic import (
    AdderParams,
    Gate,
    Probe,
    VectorSource,
    adder_vectors,
    build_ripple_adder,
    build_xor_chain,
    read_adder_outputs,
)
from .phold import PHOLDObject, PHOLDParams, build_phold
from .pingpong import Player, build_pingpong
from .raid import RAIDParams, build_raid
from .smmp import SMMPParams, build_smmp

__all__ = [
    "AdderParams",
    "Gate",
    "PHOLDObject",
    "PHOLDParams",
    "Player",
    "Probe",
    "RAIDParams",
    "SMMPParams",
    "VectorSource",
    "adder_vectors",
    "build_phold",
    "build_raid",
    "build_ripple_adder",
    "build_smmp",
    "build_xor_chain",
    "read_adder_outputs",
    "build_pingpong",
    "chance",
    "pick",
    "round_robin_partition",
    "token_hash",
    "uniform",
]
