"""SMMP: the shared-memory multiprocessor model of the paper's evaluation.

Models ``n_processors`` CPUs, each with a private cache, sharing a banked
global memory.  As in the paper's configuration: 16 processors simulated
in 4 LPs, cache access 10 ns, main memory 100 ns, cache hit ratio 90 %,
100 simulation objects, and memory requests are *not serialized* — a bank
answers each request a fixed latency after its arrival regardless of
other pending requests (the paper notes this deliberate simplification).

Object pipeline per CPU ``i`` (all per-request decisions are deterministic
hashes of the request token, so every SMMP object is lazy-cancellation
friendly — the paper observed exactly this: "all the objects strictly
favor lazy-cancellation"):

    src-i --> cache-i --(90 % hit)--> src-i
                 |(miss)
                 v
             membus-i --> bank-j  (j = hash of token, unserialized)
                              |
                              v
                          cache-i --> src-i --> stat-k (completion count)

The default sizing (16 CPUs, 48 banks, 4 stat collectors, 4 LPs) gives
16*3 + 48 + 4 = 100 simulation objects, matching the paper.  Each source
keeps ``pipeline_depth`` requests outstanding, which creates the
optimistic parallelism (and hence the rollbacks) a closed single-request
loop would not.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..kernel.errors import ConfigurationError
from ..kernel.simobject import SimulationObject
from ..kernel.state import RecordState
from .base import chance, pick, token_hash


@dataclass(frozen=True)
class SMMPParams:
    """Configuration of the SMMP model (paper defaults)."""

    n_processors: int = 16
    n_lps: int = 4
    n_banks: int = 48
    requests_per_processor: int = 1000
    cache_time: float = 10.0       # ns, paper: cache speed 10 ns
    memory_time: float = 100.0     # ns, paper: main memory 100 ns
    hit_ratio: float = 0.90        # paper: 90 %
    bus_time: float = 2.0          # ns, membus forwarding
    fill_time: float = 2.0         # ns, cache fill on response
    think_time: float = 5.0        # ns, source think time between requests
    pipeline_depth: int = 4        # outstanding requests per source
    #: fraction of requests that are writes; with a write-through cache
    #: every write reaches its memory bank regardless of hit/miss, which
    #: produces the inter-LP communication intensity the paper's
    #: aggregation results imply (a 30 % gain from aggregation requires a
    #: communication-bound run)
    write_fraction: float = 0.3
    #: cache tag-store entries modelled in state; drives state size and
    #: therefore checkpointing cost
    cache_tag_entries: int = 512
    seed: int = 42

    def validate(self) -> None:
        if self.n_processors < 1:
            raise ConfigurationError("need at least one processor")
        if not 1 <= self.n_lps <= self.n_processors:
            raise ConfigurationError("n_lps must be in [1, n_processors]")
        if self.n_processors % self.n_lps:
            raise ConfigurationError("n_lps must divide n_processors")
        if self.n_banks % self.n_lps:
            raise ConfigurationError("n_lps must divide n_banks")
        if not 0.0 <= self.hit_ratio <= 1.0:
            raise ConfigurationError("hit_ratio must be in [0, 1]")
        if self.pipeline_depth < 1:
            raise ConfigurationError("pipeline_depth must be >= 1")
        if self.requests_per_processor < 1:
            raise ConfigurationError("requests_per_processor must be >= 1")

    @property
    def n_objects(self) -> int:
        return 3 * self.n_processors + self.n_banks + self.n_lps


# --------------------------------------------------------------------- #
# request tokens
# --------------------------------------------------------------------- #
def _request_token(params: SMMPParams, cpu: int, req_id: int) -> tuple:
    """The paper's test vector: creation info + target address digest."""
    h = token_hash(params.seed, cpu, req_id)
    return (cpu, req_id, h & 0xFFFFFFFF)


# --------------------------------------------------------------------- #
# simulation objects
# --------------------------------------------------------------------- #
@dataclass
class SourceState(RecordState):
    issued: int = 0
    completed: int = 0


class Source(SimulationObject):
    """CPU-side request generator.

    *Open loop*, as in the paper: each test vector carries its creation
    time with it, so the request schedule is pre-determined — the
    generator paces itself with a self-addressed "tick" chain and never
    depends on when responses come back.  This is what makes every SMMP
    object a pure function of its input events, and hence the whole model
    lazy-cancellation friendly (the paper: "all the objects strictly
    favor lazy-cancellation").

    Responses are still consumed (completion accounting and an intra-LP
    note to the stat collector); they just do not gate further requests.
    """

    def __init__(self, cpu: int, params: SMMPParams) -> None:
        super().__init__(f"src-{cpu}")
        self.cpu = cpu
        self.params = params

    def initial_state(self) -> SourceState:
        return SourceState()

    def initialize(self) -> None:
        if self.params.requests_per_processor > 0:
            self.send_event(f"src-{self.cpu}", self.params.think_time, ("tick",))

    def execute_process(self, payload: tuple) -> None:
        state: SourceState = self.state
        if payload[0] == "tick":
            token = _request_token(self.params, self.cpu, state.issued)
            state.issued += 1
            self.send_event(f"cache-{self.cpu}", 1.0, token)
            if state.issued < self.params.requests_per_processor:
                self.send_event(f"src-{self.cpu}", self.params.think_time, ("tick",))
            return
        # A response for one of our outstanding requests.  Completion
        # notifications go to the CPU's own LP's collector (intra-LP).
        state.completed += 1
        lp = self.cpu // (self.params.n_processors // self.params.n_lps)
        self.send_event(f"stat-{lp}", 1.0, payload[:2])


@dataclass
class CacheState(RecordState):
    hits: int = 0
    misses: int = 0
    fills: int = 0
    #: modelled tag store: gives the cache a realistic (large) state, the
    #: paper's motivation for tuning the checkpoint interval
    tags: list[int] = field(default_factory=list)

    # The tag store is a flat list of ints and the cache state is copied
    # on every checkpoint: specialized copy/size keep the *real* cost of
    # the reproduction proportional to the *modelled* cost (profiling
    # showed the generic field-walking versions dominating wall time).
    def copy(self) -> "CacheState":
        return CacheState(hits=self.hits, misses=self.misses,
                          fills=self.fills, tags=self.tags.copy())

    def size_bytes(self) -> int:
        return 3 * 8 + 8 + 8 * len(self.tags)


class Cache(SimulationObject):
    """Private cache: 90 % deterministic hits at 10 ns, misses to memory."""

    grain_factor = 1.2  # tag lookup is slightly heavier than source logic

    def __init__(self, cpu: int, params: SMMPParams) -> None:
        super().__init__(f"cache-{cpu}")
        self.cpu = cpu
        self.params = params

    def initial_state(self) -> CacheState:
        return CacheState(tags=[0] * self.params.cache_tag_entries)

    def execute_process(self, payload: tuple) -> None:
        params = self.params
        state: CacheState = self.state
        kind = payload[0] if isinstance(payload[0], str) else None
        if kind == "fill":
            # Memory response: fill the line, answer the CPU.
            _, cpu, req_id, address = payload
            state.fills += 1
            state.tags[address % len(state.tags)] = address
            self.send_event(f"src-{self.cpu}", params.fill_time, (cpu, req_id))
            return
        cpu, req_id, address = payload
        is_write = chance(
            token_hash(params.seed, 11, cpu, req_id), params.write_fraction
        )
        if is_write:
            # Write-through, no-write-allocate: ack the CPU at cache
            # speed, propagate the write to its memory bank.
            state.tags[address % len(state.tags)] = address
            self.send_event(f"src-{self.cpu}", params.cache_time, (cpu, req_id))
            self.send_event(
                f"membus-{self.cpu}", params.cache_time,
                ("w", cpu, req_id, address),
            )
        elif chance(token_hash(params.seed, 3, cpu, req_id), params.hit_ratio):
            state.hits += 1
            self.send_event(f"src-{self.cpu}", params.cache_time, (cpu, req_id))
        else:
            state.misses += 1
            self.send_event(
                f"membus-{self.cpu}", params.cache_time, (cpu, req_id, address)
            )


@dataclass
class MembusState(RecordState):
    forwarded: int = 0
    write_acks: int = 0


class Membus(SimulationObject):
    """Bus interface: routes a miss to its (hash-selected) memory bank."""

    def __init__(self, cpu: int, params: SMMPParams) -> None:
        super().__init__(f"membus-{cpu}")
        self.cpu = cpu
        self.params = params

    def initial_state(self) -> MembusState:
        return MembusState()

    def execute_process(self, payload: tuple) -> None:
        state: MembusState = self.state
        if payload[0] == "wack":
            state.write_acks += 1
            return
        write = payload[0] == "w"
        cpu, req_id, address = payload[1:] if write else payload
        state.forwarded += 1
        bank = pick(token_hash(self.params.seed, 5, address), self.params.n_banks)
        token = ("w", cpu, req_id, address) if write else (cpu, req_id, address)
        self.send_event(f"bank-{bank}", self.params.bus_time, token)


@dataclass
class BankState(RecordState):
    served: int = 0
    writes_absorbed: int = 0


class Bank(SimulationObject):
    """One global-memory bank.

    Unserialized, as in the paper: every request is answered exactly
    ``memory_time`` after its arrival, so the response is a pure function
    of the request — rollbacks at banks regenerate identical output.
    """

    grain_factor = 1.5  # the memory access is the heavyweight event

    def __init__(self, index: int, params: SMMPParams) -> None:
        super().__init__(f"bank-{index}")
        self.index = index
        self.params = params

    def initial_state(self) -> BankState:
        return BankState()

    def execute_process(self, payload: tuple) -> None:
        state: BankState = self.state
        state.served += 1
        if payload[0] == "w":
            # Write-through store: acknowledge to the bus interface so it
            # can release the store-buffer entry.
            _, cpu, req_id, address = payload
            state.writes_absorbed += 1
            self.send_event(
                f"membus-{cpu}", self.params.memory_time, ("wack", cpu, req_id)
            )
            return
        cpu, req_id, address = payload
        self.send_event(
            f"cache-{cpu}", self.params.memory_time, ("fill", cpu, req_id, address)
        )


@dataclass
class StatState(RecordState):
    completions: int = 0
    last_cpu: int = -1


class StatCollector(SimulationObject):
    """Per-LP completion counter (the 4 extra objects of the 100)."""

    def __init__(self, index: int) -> None:
        super().__init__(f"stat-{index}")
        self.index = index

    def initial_state(self) -> StatState:
        return StatState()

    def execute_process(self, payload: tuple) -> None:
        state: StatState = self.state
        state.completions += 1
        state.last_cpu = payload[0]


# --------------------------------------------------------------------- #
# builder
# --------------------------------------------------------------------- #
def build_smmp(params: SMMPParams | None = None) -> list[list[SimulationObject]]:
    """Build the SMMP partition: per-CPU pipelines stay LP-local, banks
    are distributed evenly (so ~ (n_lps-1)/n_lps of misses cross LPs)."""
    params = params or SMMPParams()
    params.validate()
    cpus_per_lp = params.n_processors // params.n_lps
    banks_per_lp = params.n_banks // params.n_lps
    partition: list[list[SimulationObject]] = []
    for lp in range(params.n_lps):
        group: list[SimulationObject] = []
        for cpu in range(lp * cpus_per_lp, (lp + 1) * cpus_per_lp):
            group.append(Source(cpu, params))
            group.append(Cache(cpu, params))
            group.append(Membus(cpu, params))
        for bank in range(lp * banks_per_lp, (lp + 1) * banks_per_lp):
            group.append(Bank(bank, params))
        group.append(StatCollector(lp))
        partition.append(group)
    return partition


def total_requests(params: SMMPParams) -> int:
    return params.n_processors * params.requests_per_processor
