"""PHOLD: the classic synthetic Time Warp stress workload (extension).

Each object holds a population of jobs; processing a job forwards it to a
pseudo-randomly chosen object after a pseudo-random delay.  All draws are
counter-based hashes of the job identity and hop count, so execution is
deterministic under rollback (see :mod:`repro.apps.base`).  PHOLD has no
natural end: runs bound it with ``SimulationConfig.end_time``.

PHOLD generates abundant cross-LP traffic and LVT skew, which makes it the
test-suite's workhorse for rollback-heavy property tests, and a natural
ablation workload for the controllers (its hit ratio is tunable through
``deterministic_fraction``: job payload mutations can be made
order-sensitive, defeating lazy cancellation on a controllable share of
objects).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..kernel.errors import ConfigurationError
from ..kernel.simobject import SimulationObject
from ..kernel.state import RecordState
from .base import chance, pick, token_hash, uniform


@dataclass(frozen=True)
class PHOLDParams:
    """Model-size and behaviour knobs."""

    n_objects: int = 16
    n_lps: int = 4
    jobs_per_object: int = 2
    min_delay: float = 5.0
    max_delay: float = 50.0
    #: fraction of objects whose outputs depend only on the incoming job
    #: (lazy-friendly); the rest mix an order-sensitive state counter into
    #: their forwarding decision (lazy-hostile).
    deterministic_fraction: float = 1.0
    #: size of each object's scratch table (ints).  PHOLD's natural state
    #: is tiny; raising this makes checkpointing expensive, which the
    #: checkpoint-interval ablation needs to expose both arms of the
    #: chi U-curve.
    state_size_ints: int = 0
    #: probability a forwarded job stays inside the sender's contiguous
    #: LP-sized block of objects (0.0 = classic uniform PHOLD).  Gives the
    #: model tunable communication locality, which partition-aware runs
    #: (repro.partition, the parallel backend) need to have something to
    #: exploit.
    locality: float = 0.0
    seed: int = 1

    def validate(self) -> None:
        if self.n_objects < 2:
            raise ConfigurationError("PHOLD needs at least two objects")
        if self.n_lps < 1 or self.n_lps > self.n_objects:
            raise ConfigurationError("n_lps must be in [1, n_objects]")
        if not 0 < self.min_delay <= self.max_delay:
            raise ConfigurationError("delays must satisfy 0 < min <= max")
        if not 0.0 <= self.deterministic_fraction <= 1.0:
            raise ConfigurationError("deterministic_fraction must be in [0, 1]")
        if not 0.0 <= self.locality <= 1.0:
            raise ConfigurationError("locality must be in [0, 1]")


@dataclass
class PHOLDState(RecordState):
    jobs_processed: int = 0
    #: order-sensitive counter mixed into routing by non-deterministic
    #: objects — this is what defeats lazy cancellation for them
    sequence: int = 0
    #: optional scratch table (see PHOLDParams.state_size_ints)
    scratch: list = None  # type: ignore[assignment]

    def copy(self) -> "PHOLDState":
        clone = PHOLDState(jobs_processed=self.jobs_processed,
                           sequence=self.sequence)
        clone.scratch = None if self.scratch is None else self.scratch.copy()
        return clone

    def size_bytes(self) -> int:
        return 16 + (0 if self.scratch is None else 8 + 8 * len(self.scratch))


class PHOLDObject(SimulationObject):
    """One PHOLD node."""

    def __init__(self, index: int, params: PHOLDParams) -> None:
        super().__init__(f"phold-{index}")
        self.index = index
        self.params = params
        #: whether this object's output is a pure function of the job
        self.deterministic = chance(
            token_hash(params.seed, 7, index), params.deterministic_fraction
        )

    def initial_state(self) -> PHOLDState:
        state = PHOLDState()
        if self.params.state_size_ints:
            state.scratch = [0] * self.params.state_size_ints
        return state

    def initialize(self) -> None:
        params = self.params
        for job in range(params.jobs_per_object):
            job_id = self.index * params.jobs_per_object + job
            h = token_hash(params.seed, job_id)
            delay = uniform(h, params.min_delay, params.max_delay)
            self.send_event(self._dest_name(h), delay, (job_id, 0))

    def execute_process(self, payload: tuple[int, int]) -> None:
        job_id, hop = payload
        state: PHOLDState = self.state
        state.jobs_processed += 1
        if state.scratch is not None:
            state.scratch[job_id % len(state.scratch)] += 1
        if self.deterministic:
            h = token_hash(self.params.seed, job_id, hop, self.index)
        else:
            state.sequence += 1
            h = token_hash(self.params.seed, job_id, hop, self.index, state.sequence)
        delay = uniform(
            token_hash(h, 1), self.params.min_delay, self.params.max_delay
        )
        self.send_event(self._dest_name(h), delay, (job_id, hop + 1))

    def _dest_name(self, h: int) -> str:
        params = self.params
        if params.locality > 0.0 and chance(token_hash(h, 3), params.locality):
            # Stay inside the sender's contiguous block (the same blocks
            # build_phold deals out, one per LP).
            block = (params.n_objects + params.n_lps - 1) // params.n_lps
            start = (self.index // block) * block
            size = min(block, params.n_objects - start)
            if size > 1:
                dest = start + pick(token_hash(h, 2), size - 1)
                if dest >= self.index:
                    dest += 1  # never self: keeps every hop a real message
                return f"phold-{dest}"
        dest = pick(token_hash(h, 2), params.n_objects - 1)
        if dest >= self.index:
            dest += 1  # never self: keeps every hop a real message
        return f"phold-{dest}"


def build_phold(params: PHOLDParams | None = None) -> list[list[SimulationObject]]:
    """Build a PHOLD partition: contiguous blocks of objects per LP."""
    params = params or PHOLDParams()
    params.validate()
    objects = [PHOLDObject(i, params) for i in range(params.n_objects)]
    per_lp = (params.n_objects + params.n_lps - 1) // params.n_lps
    return [
        list(objects[i : i + per_lp]) for i in range(0, params.n_objects, per_lp)
    ]
