"""Ping-pong: the minimal two-object model, used heavily by the tests.

Each player receives a counter token and returns it after a fixed delay
until ``rounds`` exchanges have happened.  With the two players on
different LPs, the model exercises every inter-LP code path (network,
aggregation, rollback when LP clocks skew) while remaining small enough
to reason about exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..kernel.simobject import SimulationObject
from ..kernel.state import RecordState


@dataclass
class PingPongState(RecordState):
    tokens_seen: int = 0
    last_value: int = -1
    log: list[int] = field(default_factory=list)


class Player(SimulationObject):
    """One ping-pong player."""

    def __init__(self, name: str, peer: str, rounds: int, delay: float = 10.0,
                 serve: bool = False) -> None:
        super().__init__(name)
        self.peer = peer
        self.rounds = rounds
        self.delay = delay
        self.serve = serve

    def initial_state(self) -> PingPongState:
        return PingPongState()

    def initialize(self) -> None:
        if self.serve:
            self.send_event(self.peer, self.delay, 0)

    def execute_process(self, payload: int) -> None:
        state: PingPongState = self.state
        state.tokens_seen += 1
        state.last_value = payload
        state.log.append(payload)
        if payload + 1 < self.rounds:
            self.send_event(self.peer, self.delay, payload + 1)


def build_pingpong(
    rounds: int = 100, delay: float = 10.0, split: bool = True
) -> list[list[SimulationObject]]:
    """Build the two players; ``split`` puts them on separate LPs."""
    ping = Player("ping", "pong", rounds, delay, serve=True)
    pong = Player("pong", "ping", rounds, delay)
    if split:
        return [[ping], [pong]]
    return [[ping, pong]]
