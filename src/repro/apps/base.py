"""Shared application utilities.

The determinism contract of :class:`repro.kernel.SimulationObject`
(coast-forward re-executes events, lazy cancellation compares regenerated
output) forbids global RNGs: all "randomness" in the bundled models is
derived from event payloads and state counters through the counter-based
hash below, so the same (state, event) pair always produces the same
draws, under any kernel and any rollback history.
"""

from __future__ import annotations

from typing import Sequence

from ..kernel.errors import ConfigurationError
from ..kernel.simobject import SimulationObject

_MASK = (1 << 64) - 1


def token_hash(*parts: int) -> int:
    """Deterministic 64-bit mix of integer parts (splitmix64 finalizer)."""
    h = 0x9E3779B97F4A7C15
    for part in parts:
        h = (h ^ (part & _MASK)) * 0xBF58476D1CE4E5B9 & _MASK
        h ^= h >> 27
    h = (h ^ (h >> 31)) * 0x94D049BB133111EB & _MASK
    return (h ^ (h >> 33)) & _MASK


def uniform(h: int, low: float, high: float) -> float:
    """Map a :func:`token_hash` value to a float in [low, high)."""
    return low + (h / 2**64) * (high - low)


def pick(h: int, n: int) -> int:
    """Map a :func:`token_hash` value to an index in [0, n)."""
    return h % n


def chance(h: int, probability: float) -> bool:
    """Deterministic Bernoulli draw from a hash value."""
    return (h / 2**64) < probability


def round_robin_partition(
    objects: Sequence[SimulationObject], n_lps: int
) -> list[list[SimulationObject]]:
    """Spread objects over ``n_lps`` LPs round-robin (a worst-case-ish
    partition that maximizes inter-LP traffic; the bundled models define
    their own locality-aware partitions instead)."""
    if n_lps < 1:
        raise ConfigurationError("need at least one LP")
    partition: list[list[SimulationObject]] = [[] for _ in range(n_lps)]
    for index, obj in enumerate(objects):
        partition[index % n_lps].append(obj)
    return partition
