"""Gate-level digital logic simulation — the paper's motivating domain.

The authors' observations about cancellation strategies came from
"digital systems models written in the hardware description language
VHDL"; this module provides that class of workload: gate-level circuits
with per-gate propagation delays, driven by test vectors.

Included circuit builders:

* :func:`build_ripple_adder` — an n-bit ripple-carry adder fed random
  operand pairs; the simulation's outputs are checked against Python
  integer addition, so a Time Warp run *computes real sums* under
  rollback (the strongest possible end-to-end check of causal
  correctness).
* :func:`build_xor_chain` — a deep chain of XORs (a parity tree spine):
  maximal signal-propagation depth, minimal fan-out.

Gates are pure functions of their latched input values — but the *latch*
is order-sensitive state (a gate output depends on which input edges have
arrived), which makes glitch propagation genuinely interesting for lazy
cancellation: re-converging signals regenerate identical output events
(lazy hits), re-ordered edges do not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..kernel.errors import ConfigurationError
from ..kernel.simobject import SimulationObject
from ..kernel.state import RecordState
from .base import token_hash

#: gate propagation delays in ns (inverters are faster than 2-input gates)
GATE_DELAY = {"and": 4.0, "or": 4.0, "xor": 6.0, "not": 2.0, "buf": 1.0}

_GATE_FUNC: dict[str, Callable[[int, int], int]] = {
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "not": lambda a, _b: 1 - a,
    "buf": lambda a, _b: a,
}


@dataclass
class GateState(RecordState):
    #: latched input values, by input pin index
    inputs: list = field(default_factory=lambda: [0, 0])
    output: int = 0
    evaluations: int = 0


class Gate(SimulationObject):
    """One logic gate.  Payloads: ``(pin, value)`` signal edges."""

    grain_factor = 0.6  # gate evaluation is light

    def __init__(self, name: str, kind: str,
                 fanout: Sequence[tuple[str, int]]) -> None:
        super().__init__(name)
        if kind not in _GATE_FUNC:
            raise ConfigurationError(f"unknown gate kind {kind!r}")
        self.kind = kind
        #: (destination gate, destination pin) pairs
        self.fanout = list(fanout)

    def initial_state(self) -> GateState:
        return GateState()

    def execute_process(self, payload: tuple) -> None:
        pin, value = payload
        state: GateState = self.state
        state.inputs[pin] = value
        state.evaluations += 1
        new_output = _GATE_FUNC[self.kind](state.inputs[0], state.inputs[1])
        if new_output != state.output:
            state.output = new_output
            delay = GATE_DELAY[self.kind]
            for dest, dest_pin in self.fanout:
                self.send_event(dest, delay, (dest_pin, new_output))


@dataclass
class VectorSourceState(RecordState):
    applied: int = 0


class VectorSource(SimulationObject):
    """Drives one circuit input with a pre-determined test-vector stream."""

    def __init__(self, name: str, bits: Sequence[int], period: float,
                 fanout: Sequence[tuple[str, int]]) -> None:
        super().__init__(name)
        self.bits = list(bits)
        self.period = period
        self.fanout = list(fanout)

    def initial_state(self) -> VectorSourceState:
        return VectorSourceState()

    def initialize(self) -> None:
        if self.bits:
            self.send_event(self.name, self.period, ("tick",))

    def execute_process(self, payload: tuple) -> None:
        state: VectorSourceState = self.state
        value = self.bits[state.applied]
        state.applied += 1
        for dest, pin in self.fanout:
            self.send_event(dest, 1.0, (pin, value))
        if state.applied < len(self.bits):
            self.send_event(self.name, self.period, ("tick",))


@dataclass
class ProbeState(RecordState):
    #: (time, value) observations
    history: list = field(default_factory=list)
    value: int = 0


class Probe(SimulationObject):
    """Records a signal's waveform (the circuit's observable output)."""

    def __init__(self, name: str) -> None:
        super().__init__(name)

    def initial_state(self) -> ProbeState:
        return ProbeState()

    def execute_process(self, payload: tuple) -> None:
        _pin, value = payload
        state: ProbeState = self.state
        state.value = value
        state.history.append((self.now, value))

    def value_at(self, time: float) -> int:
        """The settled value of the signal at virtual time ``time``."""
        value = 0
        for t, v in self.state.history:
            if t <= time:
                value = v
            else:
                break
        return value


# --------------------------------------------------------------------- #
# circuit builders
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class AdderParams:
    bits: int = 8
    n_vectors: int = 32
    n_lps: int = 4
    #: virtual time between test vectors; must exceed the adder's settle
    #: time (~ 3 gate delays per bit of carry chain)
    vector_period: float = 400.0
    seed: int = 5

    def validate(self) -> None:
        if self.bits < 1:
            raise ConfigurationError("need at least 1 bit")
        if self.n_lps < 1:
            raise ConfigurationError("need at least 1 LP")
        if self.vector_period < 20.0 * self.bits:
            raise ConfigurationError(
                "vector_period too small for the carry chain to settle"
            )


def adder_vectors(params: AdderParams) -> list[tuple[int, int]]:
    """The operand pairs applied to the adder, derived from the seed."""
    pairs = []
    for i in range(params.n_vectors):
        a = token_hash(params.seed, 2 * i) % (1 << params.bits)
        b = token_hash(params.seed, 2 * i + 1) % (1 << params.bits)
        pairs.append((a, b))
    return pairs


def build_ripple_adder(params: AdderParams | None = None):
    """Build an n-bit ripple-carry adder as a partitioned gate netlist.

    Per bit ``i``: a full adder from 2 XORs, 2 ANDs and an OR::

        s_i  = a_i ^ b_i ^ c_i
        c_i+1 = (a_i & b_i) | ((a_i ^ b_i) & c_i)

    Partitioning slices the carry chain into contiguous bit ranges, one
    per LP — so every carry crossing a slice boundary is an inter-LP
    message, and faster LPs speculatively compute sums with stale
    carries, to be rolled back when the true carry ripples in.  This is
    the classic "optimism along the critical path" structure of parallel
    digital logic simulation.

    Returns ``(partition, probes)`` where ``probes`` maps output names
    ("s0".."s{n-1}", "cout") to :class:`Probe` objects.
    """
    params = params or AdderParams()
    params.validate()
    vectors = adder_vectors(params)

    gates: list[SimulationObject] = []
    probes: dict[str, Probe] = {}

    # Probes for the sum bits and carry out.
    for i in range(params.bits):
        probes[f"s{i}"] = Probe(f"probe-s{i}")
    probes["cout"] = Probe("probe-cout")

    def fan(*dests: tuple[str, int]):
        return list(dests)

    for i in range(params.bits):
        # xor1 = a ^ b ; feeds sum xor and the carry-select and2
        gates.append(Gate(f"xor1-{i}", "xor",
                          fan((f"xor2-{i}", 0), (f"and2-{i}", 0))))
        # xor2 = xor1 ^ c_i -> sum bit probe
        gates.append(Gate(f"xor2-{i}", "xor", fan((f"probe-s{i}", 0))))
        # and1 = a & b ; and2 = xor1 & c_i ; or1 = and1 | and2 -> c_{i+1}
        gates.append(Gate(f"and1-{i}", "and", fan((f"or1-{i}", 0))))
        gates.append(Gate(f"and2-{i}", "and", fan((f"or1-{i}", 1))))
        if i + 1 < params.bits:
            carry_out = fan((f"xor2-{i+1}", 1), (f"and2-{i+1}", 1))
        else:
            carry_out = fan(("probe-cout", 0))
        gates.append(Gate(f"or1-{i}", "or", carry_out))

    # Input sources: one per operand bit.
    a_ops = [a for a, _ in vectors]
    b_ops = [b for _, b in vectors]
    sources: list[SimulationObject] = []
    for i in range(params.bits):
        sources.append(VectorSource(
            f"in-a{i}", [(a >> i) & 1 for a in a_ops], params.vector_period,
            fan((f"xor1-{i}", 0), (f"and1-{i}", 0)),
        ))
        sources.append(VectorSource(
            f"in-b{i}", [(b >> i) & 1 for b in b_ops], params.vector_period,
            fan((f"xor1-{i}", 1), (f"and1-{i}", 1)),
        ))

    # Partition: contiguous bit slices of the carry chain.
    bits_per_lp = (params.bits + params.n_lps - 1) // params.n_lps
    partition: list[list[SimulationObject]] = [[] for _ in range(params.n_lps)]
    for obj in gates + sources + list(probes.values()):
        # every object's name ends with its bit index (cout -> last LP)
        tail = obj.name.rsplit("-", 1)[-1]
        digits = "".join(ch for ch in tail if ch.isdigit())
        bit = int(digits) if digits else params.bits - 1
        partition[min(bit // bits_per_lp, params.n_lps - 1)].append(obj)
    return [group for group in partition if group], probes


def read_adder_outputs(
    params: AdderParams, probes: dict[str, Probe]
) -> list[int]:
    """Settled sum (including carry-out) after each vector period."""
    sums = []
    for v in range(1, params.n_vectors + 1):
        settle = v * params.vector_period + params.vector_period - 1.0
        total = sum(
            probes[f"s{i}"].value_at(settle) << i for i in range(params.bits)
        )
        total += probes["cout"].value_at(settle) << params.bits
        sums.append(total)
    return sums


def build_xor_chain(length: int = 64, n_lps: int = 4, n_vectors: int = 16,
                    period: float = 500.0, seed: int = 9):
    """A chain of XOR gates toggled from one end; returns (partition, probe)."""
    if length < 1 or n_lps < 1:
        raise ConfigurationError("length and n_lps must be >= 1")
    probe = Probe("probe-out")
    gates = []
    for i in range(length):
        dest = f"chain-{i+1}" if i + 1 < length else "probe-out"
        gates.append(Gate(f"chain-{i}", "xor", [(dest, 0)]))
    bits = [token_hash(seed, i) & 1 for i in range(n_vectors)]
    source = VectorSource("chain-in", bits, period, [("chain-0", 0)])
    per_lp = (length + n_lps - 1) // n_lps
    partition: list[list[SimulationObject]] = [[] for _ in range(n_lps)]
    partition[0].append(source)
    for i, gate in enumerate(gates):
        partition[min(i // per_lp, n_lps - 1)].append(gate)
    partition[-1].append(probe)
    return [g for g in partition if g], probe
