"""RAID: the disk-array model of the paper's evaluation.

Models a RAID-5-style disk array: request generators (sources) issue
striped I/O requests through fork processes to a set of disks.  The
paper's configuration — 20 sources generating 1000 requests each to 8
disks via 4 forks, partitioned into 4 LPs (5 sources + 1 fork + 2 disks
per LP) — is the default.

Request tokens carry the geometry the paper lists: number of disks,
cylinder / track / sector addressing, sector size, the stripe to read and
parity information.

The model reproduces the paper's central cancellation observation:

* **disks favor lazy cancellation** — a disk's service time is a pure
  function of the request's own geometry (seek distance from the
  cylinder's home band, rotational latency from the token, transfer time
  from the sector count), so after a rollback the disk regenerates
  byte-identical responses;
* **forks favor aggressive cancellation** — the fork spreads read load
  over the stripe's replica group using a rotating dispatch counter, an
  *arrival-order-sensitive* decision, so a straggler re-orders every
  subsequent routing choice and regenerated messages differ.

With 8 disk objects to 4 fork objects, lazy beats aggressive overall,
and per-object dynamic cancellation beats both — Figure 6 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..kernel.errors import ConfigurationError
from ..kernel.simobject import SimulationObject
from ..kernel.state import RecordState
from .base import chance, pick, token_hash, uniform


@dataclass(frozen=True)
class RAIDParams:
    """Configuration of the RAID model (paper defaults)."""

    n_sources: int = 20
    n_forks: int = 4
    n_disks: int = 8
    n_lps: int = 4
    requests_per_source: int = 1000

    # geometry (classic late-90s disk)
    cylinders: int = 1024
    tracks_per_cylinder: int = 8
    sectors_per_track: int = 32
    sector_bytes: int = 512
    max_sectors_per_request: int = 8

    # timing (µs of virtual time)
    seek_per_cylinder: float = 0.02
    seek_base: float = 40.0
    rotation_max: float = 80.0
    transfer_per_sector: float = 4.0
    fork_time: float = 5.0
    think_time: float = 20.0
    write_fraction: float = 0.3
    pipeline_depth: int = 3

    seed: int = 7

    def validate(self) -> None:
        if self.n_sources < 1 or self.n_forks < 1 or self.n_disks < 1:
            raise ConfigurationError("sources, forks and disks must be >= 1")
        if self.n_sources % self.n_forks:
            raise ConfigurationError("n_forks must divide n_sources")
        if self.n_lps < 1:
            raise ConfigurationError("n_lps must be >= 1")
        if self.n_forks % self.n_lps:
            raise ConfigurationError("n_lps must divide n_forks")
        if self.n_disks % self.n_lps:
            raise ConfigurationError("n_lps must divide n_disks")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ConfigurationError("write_fraction must be in [0, 1]")
        if self.pipeline_depth < 1 or self.requests_per_source < 1:
            raise ConfigurationError("pipeline_depth/requests must be >= 1")

    @property
    def n_objects(self) -> int:
        return self.n_sources + self.n_forks + self.n_disks


# --------------------------------------------------------------------- #
# request tokens: (src, req_id, stripe, cylinder, track, sector,
#                  n_sectors, is_write, parity_disk_hint)
# --------------------------------------------------------------------- #
def make_request(params: RAIDParams, src: int, req_id: int) -> tuple:
    """Build the geometry-bearing request token the paper describes."""
    h = token_hash(params.seed, src, req_id)
    stripe = pick(token_hash(h, 1), params.cylinders * params.tracks_per_cylinder)
    cylinder = pick(token_hash(h, 2), params.cylinders)
    track = pick(token_hash(h, 3), params.tracks_per_cylinder)
    sector = pick(token_hash(h, 4), params.sectors_per_track)
    n_sectors = 1 + pick(token_hash(h, 5), params.max_sectors_per_request)
    is_write = chance(token_hash(h, 6), params.write_fraction)
    parity_disk = (stripe + 1) % params.n_disks
    return (src, req_id, stripe, cylinder, track, sector, n_sectors,
            is_write, parity_disk)


# --------------------------------------------------------------------- #
# simulation objects
# --------------------------------------------------------------------- #
@dataclass
class RSourceState(RecordState):
    issued: int = 0
    completed: int = 0


class RAIDSource(SimulationObject):
    """One request generator (closed loop with a small pipeline)."""

    def __init__(self, index: int, params: RAIDParams) -> None:
        super().__init__(f"rsrc-{index}")
        self.index = index
        self.params = params
        # All of a fork's sources are LP-local (the partition exploits
        # fast intra-LP communication, as the paper's model generators
        # do).  Forks therefore roll back only when disk-response
        # reordering upsets their sources — rarely, but with a near-zero
        # hit ratio when it happens, which is the paper's fork profile.
        self.fork = index // (params.n_sources // params.n_forks)

    def initial_state(self) -> RSourceState:
        return RSourceState()

    def initialize(self) -> None:
        state: RSourceState = self.state
        depth = min(self.params.pipeline_depth, self.params.requests_per_source)
        for _ in range(depth):
            self._issue(state, stagger=state.issued + 1)

    def _issue(self, state: RSourceState, stagger: int = 1) -> None:
        token = make_request(self.params, self.index, state.issued)
        state.issued += 1
        self.send_event(f"fork-{self.fork}", self.params.think_time * stagger, token)

    def execute_process(self, payload: tuple) -> None:
        state: RSourceState = self.state
        state.completed += 1
        if state.issued < self.params.requests_per_source:
            self._issue(state)


@dataclass
class ForkState(RecordState):
    dispatched: int = 0
    #: rotating offset used to balance reads over the replica group —
    #: the arrival-order-sensitive state that makes forks lazy-hostile
    rotation: int = 0


class Fork(SimulationObject):
    """Striping / load-balancing fork.

    Writes go to the stripe's primary disk and (as a second message) to
    the parity disk; reads are balanced over the primary and its
    neighbour using the rotating dispatch counter.  The fork is a *queued*
    dispatcher: its dispatch latency grows with recent queue occupancy
    (``dispatched`` modulo a small burst window), so both the routing of
    reads and the timing of every dispatch are arrival-order-sensitive —
    a rolled-back fork regenerates different messages, which is why forks
    favor aggressive cancellation in the paper.
    """

    def __init__(self, index: int, params: RAIDParams) -> None:
        super().__init__(f"fork-{index}")
        self.index = index
        self.params = params

    def initial_state(self) -> ForkState:
        return ForkState()

    def execute_process(self, payload: tuple) -> None:
        params = self.params
        state: ForkState = self.state
        (src, req_id, stripe, cylinder, track, sector, n_sectors,
         is_write, parity_disk) = payload
        state.dispatched += 1
        # Queueing delay: a function of how many dispatches this fork has
        # made recently — order-sensitive by construction.
        dispatch_time = params.fork_time * (1.0 + 0.25 * (state.dispatched % 8))
        primary = stripe % params.n_disks
        if is_write:
            self.send_event(f"disk-{primary}", dispatch_time, payload)
            parity_token = (src, req_id, stripe, cylinder, track, sector,
                            1, True, parity_disk)
            self.send_event(
                f"disk-{parity_disk}", dispatch_time, ("parity",) + parity_token
            )
        else:
            state.rotation += 1
            replica = (primary + state.rotation % 2) % params.n_disks
            self.send_event(f"disk-{replica}", dispatch_time, payload)


@dataclass
class DiskState(RecordState):
    served: int = 0
    sectors_read: int = 0
    sectors_written: int = 0
    #: per-zone access histogram: gives the disk a sizeable state so the
    #: checkpoint-interval trade-off is visible
    zone_histogram: list[int] = field(default_factory=list)

    # Specialized hot-path copy/size (see CacheState in smmp.py).
    def copy(self) -> "DiskState":
        return DiskState(served=self.served, sectors_read=self.sectors_read,
                         sectors_written=self.sectors_written,
                         zone_histogram=self.zone_histogram.copy())

    def size_bytes(self) -> int:
        return 3 * 8 + 8 + 8 * len(self.zone_histogram)


class Disk(SimulationObject):
    """One disk of the array.

    Service time is computed from the request's own geometry only (home-
    band seek model), so regenerated responses are identical after any
    rollback — the lazy-friendly half of the paper's observation.
    """

    grain_factor = 2.0  # seek/rotation arithmetic: the heavy events

    N_ZONES = 256

    def __init__(self, index: int, params: RAIDParams) -> None:
        super().__init__(f"disk-{index}")
        self.index = index
        self.params = params

    def initial_state(self) -> DiskState:
        return DiskState(zone_histogram=[0] * self.N_ZONES)

    def execute_process(self, payload: tuple) -> None:
        params = self.params
        is_parity = payload[0] == "parity"
        token = payload[1:] if is_parity else payload
        (src, req_id, stripe, cylinder, track, sector, n_sectors,
         is_write, parity_disk) = token
        state: DiskState = self.state
        state.served += 1
        zone = cylinder * self.N_ZONES // params.cylinders
        state.zone_histogram[zone] += 1
        if is_write:
            state.sectors_written += n_sectors
        else:
            state.sectors_read += n_sectors

        # Geometry-determined service time: seek from the home band of
        # the cylinder's zone, rotational latency from the token, then
        # the transfer.
        home = (zone + 0.5) * params.cylinders / self.N_ZONES
        seek = params.seek_base + params.seek_per_cylinder * abs(cylinder - home)
        rotation = uniform(
            token_hash(params.seed, 9, src, req_id, self.index),
            0.0,
            params.rotation_max,
        )
        service = seek + rotation + params.transfer_per_sector * n_sectors
        if not is_parity:
            # Parity updates complete silently; data requests are answered.
            self.send_event(f"rsrc-{src}", service, (src, req_id, self.index))


# --------------------------------------------------------------------- #
# builder
# --------------------------------------------------------------------- #
def build_raid(params: RAIDParams | None = None) -> list[list[SimulationObject]]:
    """Build the paper's partition: each LP hosts ``n_sources/n_lps``
    sources, ``n_forks/n_lps`` forks and ``n_disks/n_lps`` disks."""
    params = params or RAIDParams()
    params.validate()
    sources = [RAIDSource(i, params) for i in range(params.n_sources)]
    forks = [Fork(i, params) for i in range(params.n_forks)]
    disks = [Disk(i, params) for i in range(params.n_disks)]
    src_per_lp = params.n_sources // params.n_lps
    fork_per_lp = params.n_forks // params.n_lps
    disk_per_lp = params.n_disks // params.n_lps
    partition: list[list[SimulationObject]] = []
    for lp in range(params.n_lps):
        group: list[SimulationObject] = []
        group.extend(sources[lp * src_per_lp : (lp + 1) * src_per_lp])
        group.extend(forks[lp * fork_per_lp : (lp + 1) * fork_per_lp])
        group.extend(disks[lp * disk_per_lp : (lp + 1) * disk_per_lp])
        partition.append(group)
    return partition


def total_requests(params: RAIDParams) -> int:
    return params.n_sources * params.requests_per_source
