"""The meta-controller: one sample→decide→apply loop for global knobs.

The paper's three controllers each own a private loop buried in the
kernel (checkpointing inside the LP event loop, cancellation inside
comparison resolution, DyMA inside the transport).  Those loops stay
where they are — they are byte-trace-compatible registry entries (see
:mod:`repro.control.registry`) — but the two knobs the paper leaves
static, the GVT period and the snapshot strategy, have no natural home
in any LP: their outputs are *global* quantities.  The
:class:`MetaController` gives them one: the executive calls
:meth:`MetaController.on_gvt` at every advancing GVT round, each
registered global controller samples its output at its declared period
``P``, runs its transfer function ``T``, and applies the move.

Both controllers feed exclusively on modelled quantities (event
counters, modelled state sizes) — never host wall time — so a run with
meta-control enabled is exactly as deterministic as one without, and the
byte-identical-trace test holds with the meta loop on.

Like every control system here, the feedback competes for the CPU it is
trying to save: each invocation charges
:attr:`~repro.cluster.costmodel.CostModel.control_invocation_cost` to
every LP, exactly like the adaptive-time-window loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..kernel.errors import ConfigurationError
from ..kernel.state import SNAPSHOT_STRATEGIES, resolve_snapshot_strategy

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.executive import Executive


@dataclass
class GvtPeriodController:
    """On-line GVT-period control: memory pressure vs round overhead.

    ``O`` is the uncommitted-history backlog per LP — executed minus
    rolled-back minus committed events, i.e. the speculative history a
    fossil pass cannot reclaim yet.  A large backlog means GVT rounds
    are too rare to bound memory (shrink the period); a small one means
    the rounds' control traffic is pure overhead (grow it).  Dead-zone
    in between, multiplicative moves, clamped to a safe range — the same
    shape as :class:`~repro.core.window_controller.AdaptiveTimeWindow`.
    """

    #: control period P, in advancing GVT rounds
    period: int = 4
    #: backlog per LP above which the period shrinks
    high_backlog: float = 512.0
    #: backlog per LP below which the period grows
    low_backlog: float = 64.0
    shrink: float = 0.5
    grow: float = 1.5
    min_period_us: float = 1_000.0
    max_period_us: float = 1_000_000.0
    last_verdict: str = ""
    #: (backlog_per_lp, old_period, new_period) per invocation
    history: list = field(default_factory=list)

    def control(self, backlog_per_lp: float, current: float) -> float:
        """One transfer-function evaluation: backlog -> new period."""
        if backlog_per_lp > self.high_backlog:
            new = max(current * self.shrink, self.min_period_us)
            self.last_verdict = "backlog_high"
        elif backlog_per_lp < self.low_backlog:
            new = min(current * self.grow, self.max_period_us)
            self.last_verdict = "backlog_low"
        else:
            new = current
            self.last_verdict = "dead_zone"
        self.history.append((backlog_per_lp, current, new))
        return new


@dataclass
class SnapshotController:
    """On-line snapshot-strategy selection by observed state size.

    ``O`` is the mean live state size across simulation objects in
    modelled bytes.  The snapshot micro-benchmarks (docs/benchmarking.md)
    show ``copy`` winning for small flat states and ``pickle`` for large
    container-heavy ones; the hysteresis pair (switch up at
    ``large_state_bytes``, back down at half of it) keeps the strategy
    from thrashing around the break-even point.  Switching mid-run is
    safe because every strategy returns plain, independent state objects
    (:mod:`repro.kernel.state`).

    An explicit ``array`` pin is *held*: the controller never moves off
    it, because a user who selected the block-copy strategy has asserted
    the states are ndarray-backed — a size heuristic tuned for python
    containers has nothing useful to say about those.
    """

    #: control period P, in advancing GVT rounds
    period: int = 8
    #: mean state bytes above which "pickle" takes over
    large_state_bytes: float = 4096.0
    last_verdict: str = ""
    #: (mean_bytes, old_name, new_name) per invocation
    history: list = field(default_factory=list)

    def control(self, mean_bytes: float, current: str) -> str:
        """One transfer-function evaluation: state size -> strategy name."""
        if current == "array":
            new = current
            self.last_verdict = "array_pinned"
        elif mean_bytes > self.large_state_bytes:
            new = "pickle"
            self.last_verdict = "state_large" if current != "pickle" else "dead_zone"
        elif mean_bytes < self.large_state_bytes / 2 and current == "pickle":
            new = "copy"
            self.last_verdict = "state_small"
        else:
            new = current
            self.last_verdict = "dead_zone"
        self.history.append((mean_bytes, current, new))
        return new


@dataclass
class PlacementController:
    """On-line object placement: migrate load off the hottest LP.

    ``O`` is the per-LP *cost-weighted committed-event* imbalance over
    the last control window: each LP's window of committed events times
    its speed factor (a slow workstation pays more wall time per event),
    the hottest such load divided by the mean.  Committed — not executed
    — counts, because rollback re-execution inflates the fast,
    far-ahead LPs' executed totals and inverts the signal; committed
    progress is model-determined and steady, so the loop converges to a
    speed-proportional placement and then holds.  Above ``imbalance``,
    the
    controller asks :func:`repro.partition.rebalance.choose_moves` for
    the migration that best lowers the peak load and applies it through
    :meth:`Executive.migrate_object` — a real live migration of the
    object's full Time Warp context, not a bookkeeping relabel.  The
    move selection is shared verbatim with the parallel backend's
    coordinator balancer (with all-equal factors there), so both
    backends flap (or refuse to) the same way.
    """

    #: control period P, in advancing GVT rounds
    period: int = 8
    #: hottest-LP load over mean load above which a move is proposed
    imbalance: float = 1.25
    #: migrations applied per invocation
    max_moves: int = 1
    last_verdict: str = ""
    #: (imbalance, moves) per invocation
    history: list = field(default_factory=list)
    #: per-object executed counts at the previous invocation (the
    #: controller balances *recent* load, not lifetime totals)
    _last_counts: dict = field(default_factory=dict, repr=False)

    def control(
        self,
        loads: dict[int, dict[int, int]],
        factors: dict[int, float] | None = None,
    ) -> tuple[tuple[int, int, int], ...]:
        """One transfer-function evaluation: load sample -> moves."""
        factor = {lp_id: (factors or {}).get(lp_id, 1.0) for lp_id in loads}
        window: dict[int, dict[int, int]] = {}
        for lp_id, per in loads.items():
            window[lp_id] = {
                oid: count - self._last_counts.get(oid, 0)
                for oid, count in per.items()
            }
            for oid, count in per.items():
                self._last_counts[oid] = count
        totals = {
            lp_id: factor[lp_id] * sum(per.values())
            for lp_id, per in window.items()
        }
        mean = sum(totals.values()) / max(1, len(totals))
        observed = max(totals.values(), default=0) / mean if mean > 0 else 0.0
        from ..partition.rebalance import choose_moves

        moves = choose_moves(
            window,
            threshold=self.imbalance,
            factors=factor,
            max_moves=self.max_moves,
        )
        self.last_verdict = "migrate" if moves else "hold"
        self.history.append((observed, moves))
        return moves


#: the knobs a MetaController can own (the per-object/per-LP knobs are
#: driven by their in-kernel loops; see repro.control.registry)
META_KNOBS = ("gvt_period", "snapshot", "placement")


class MetaController:
    """Owns the sample→decide→apply loop for the registered global knobs.

    Construct one per run (it holds per-run state) and hand it to
    :class:`~repro.kernel.config.SimulationConfig` via the
    ``meta_control`` factory field::

        config = SimulationConfig(meta_control=lambda: MetaController())

    The kernel attaches it to the executive; :meth:`on_gvt` then runs at
    every advancing GVT round and invokes each knob's controller at that
    knob's declared period.
    """

    def __init__(
        self,
        knobs: tuple[str, ...] = META_KNOBS,
        *,
        gvt_period: GvtPeriodController | None = None,
        snapshot: SnapshotController | None = None,
        placement: PlacementController | None = None,
    ) -> None:
        unknown = set(knobs) - set(META_KNOBS)
        if unknown:
            raise ConfigurationError(
                f"MetaController cannot drive {sorted(unknown)}; "
                f"meta-managed knobs are {META_KNOBS} (docs/control.md)"
            )
        self.knobs = tuple(knobs)
        self.gvt_period = gvt_period or GvtPeriodController()
        self.snapshot = snapshot or SnapshotController()
        self.placement = placement or PlacementController()
        self._rounds = 0
        self._snapshot_name = "copy"
        self._attached = False
        #: (round, knob, old, new, verdict) per invocation, for reports
        self.history: list[tuple[int, str, object, object, str]] = []

    # ------------------------------------------------------------------ #
    def attach(self, executive: "Executive", snapshot_spec: object) -> None:
        """Wire the loop into a run (called by the kernel facade)."""
        self._attached = True
        if isinstance(snapshot_spec, str):
            self._snapshot_name = snapshot_spec
        elif "snapshot" in self.knobs:
            raise ConfigurationError(
                "meta-managed snapshot control needs a named strategy "
                f"({sorted(SNAPSHOT_STRATEGIES)}), not an instance"
            )
        executive.meta = self

    # ------------------------------------------------------------------ #
    def on_gvt(self, executive: "Executive", gvt: float) -> None:
        """One advancing GVT round: run every due knob controller."""
        self._rounds += 1
        invoked = False
        if "gvt_period" in self.knobs and self._rounds % self.gvt_period.period == 0:
            self._control_gvt_period(executive, gvt)
            invoked = True
        if "snapshot" in self.knobs and self._rounds % self.snapshot.period == 0:
            self._control_snapshot(executive)
            invoked = True
        if "placement" in self.knobs and self._rounds % self.placement.period == 0:
            self._control_placement(executive)
            invoked = True
        if invoked:
            # feedback competes for the CPU it tunes, like window control
            for lp in executive.lps:
                lp.charge(lp.costs.control_invocation_cost)

    def _control_gvt_period(self, executive: "Executive", gvt: float) -> None:
        executed = executive.executed_events
        committed = rolled = 0
        for lp in executive.lps:
            for ctx in lp.members.values():
                committed += ctx.stats.events_committed
                rolled += ctx.stats.events_rolled_back
        backlog = max(0, executed - rolled - committed)
        per_lp = backlog / max(1, len(executive.lps))
        old = executive.gvt_period
        new = self.gvt_period.control(per_lp, old)
        executive.gvt_period = new
        self.history.append(
            (self._rounds, "gvt_period", old, new, self.gvt_period.last_verdict)
        )
        tracer = executive.tracer
        if tracer.enabled:
            tracer.emit(
                "ctrl.gvt", executive.wallclock,
                o=per_lp,
                old=old,
                new=new,
                verdict=self.gvt_period.last_verdict,
                executed=executed,
                committed=committed,
                gvt=gvt,
            )

    def _control_snapshot(self, executive: "Executive") -> None:
        total = 0.0
        objects = 0
        for lp in executive.lps:
            for ctx in lp.members.values():
                objects += 1
                state = ctx.state
                if hasattr(state, "size_bytes"):
                    total += state.size_bytes()
        mean = total / max(1, objects)
        old = self._snapshot_name
        new = self.snapshot.control(mean, old)
        if new != old:
            strategy = resolve_snapshot_strategy(new)
            for lp in executive.lps:
                lp.snapshot_strategy = strategy
            self._snapshot_name = new
        self.history.append(
            (self._rounds, "snapshot", old, new, self.snapshot.last_verdict)
        )
        tracer = executive.tracer
        if tracer.enabled:
            tracer.emit(
                "ctrl.snapshot", executive.wallclock,
                o=mean,
                old=old,
                new=new,
                verdict=self.snapshot.last_verdict,
                objects=objects,
            )

    def _control_placement(self, executive: "Executive") -> None:
        if executive.routing is None:
            return  # a bare executive (unit tests) has nothing to move
        loads = {
            lp.lp_id: {
                oid: ctx.stats.events_committed
                for oid, ctx in lp.members.items()
            }
            for lp in executive.lps
        }
        factors = {
            lp.lp_id: executive.config.lp_speed_factors.get(lp.lp_id, 1.0)
            for lp in executive.lps
        }
        moves = self.placement.control(loads, factors)
        for oid, _src, dst in moves:
            executive.migrate_object(oid, dst)
        observed, _ = self.placement.history[-1]
        self.history.append(
            (self._rounds, "placement", (), moves, self.placement.last_verdict)
        )
        tracer = executive.tracer
        if tracer.enabled:
            tracer.emit(
                "ctrl.placement", executive.wallclock,
                o=observed,
                old=",".join(f"{oid}@{src}" for oid, src, _ in moves),
                new=",".join(f"{oid}@{dst}" for oid, _, dst in moves),
                verdict=self.placement.last_verdict,
                moves=len(moves),
            )

    # ------------------------------------------------------------------ #
    @property
    def snapshot_strategy_name(self) -> str:
        """The snapshot strategy currently in force ("copy"/"pickle"/...)."""
        return self._snapshot_name
