"""``repro-control``: inspect the knob registry from the terminal.

Examples::

    repro-control list                      # one line per registered knob
    repro-control show checkpoint           # one knob's full declaration
    repro-control docs                      # the markdown knob table
    repro-control docs --check docs/control.md   # drift check (CI)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .registry import KNOBS, get_knob, render_knob_table

#: markers bounding the generated table inside docs/control.md
TABLE_START = "<!-- knob-table:start (generated: repro-control docs) -->"
TABLE_END = "<!-- knob-table:end -->"


def embedded_table(text: str) -> str | None:
    """Extract the generated table committed between the doc markers."""
    try:
        after = text.split(TABLE_START, 1)[1]
        return after.split(TABLE_END, 1)[0].strip()
    except IndexError:
        return None


# ---------------------------------------------------------------------- #
def cmd_list(_args: argparse.Namespace) -> int:
    width = max(len(name) for name in KNOBS)
    for spec in KNOBS.values():
        managed = "meta" if spec.meta_managed else "kernel"
        print(f"{spec.name:<{width}}  [{spec.target:>6}/{managed:<6}]  "
              f"{spec.domain}")
    return 0


def cmd_show(args: argparse.Namespace) -> int:
    spec = get_knob(args.knob)
    print(f"{spec.title} ({spec.name})")
    print(f"  tuple       {spec.control_spec()}")
    print(f"  target      {spec.target}"
          + ("  (meta-managed)" if spec.meta_managed else ""))
    print(f"  domain      {spec.domain}")
    print(f"  constraint  {spec.constraint}")
    print(f"  config      SimulationConfig.{spec.config_field}")
    print(f"  trace       {spec.record_type}")
    print(f"  statics     {', '.join(label for label, _ in spec.static_values)}")
    if spec.doc:
        print(f"\n  {spec.doc}")
    return 0


def cmd_docs(args: argparse.Namespace) -> int:
    table = render_knob_table()
    if not args.check:
        print(table)
        return 0
    path = Path(args.check)
    committed = embedded_table(path.read_text(encoding="utf-8"))
    if committed is None:
        print(f"{path}: missing the knob-table markers\n"
              f"  {TABLE_START}\n  {TABLE_END}", file=sys.stderr)
        return 1
    if committed != table:
        print(f"{path}: committed knob table drifted from the registry; "
              "regenerate with `repro-control docs` and paste between the "
              "markers", file=sys.stderr)
        return 1
    print(f"{path}: knob table matches the registry ({len(KNOBS)} knobs)")
    return 0


# ---------------------------------------------------------------------- #
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-control",
        description="Inspect the declarative knob registry (docs/control.md).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("list", help="one line per registered knob")
    p.set_defaults(func=cmd_list)

    p = sub.add_parser("show", help="one knob's full declaration")
    p.add_argument("knob", choices=sorted(KNOBS))
    p.set_defaults(func=cmd_show)

    p = sub.add_parser("docs", help="render (or drift-check) the knob table")
    p.add_argument("--check", metavar="DOC.md",
                   help="verify the table committed in DOC.md matches the "
                        "registry instead of printing it")
    p.set_defaults(func=cmd_docs)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except OSError as exc:
        print(f"repro-control: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
