"""The unified control plane: knob registry + meta-controller.

The paper demonstrates on-line configuration with three hand-built
controllers; this package generalizes the recipe (docs/control.md).
Every tunable is declared once as a :class:`KnobSpec` — value domain,
sampled output ``O``, transfer model ``T``, period ``P``, safety
constraint — and generic machinery consumes the declarations: the
:class:`MetaController` drives the global knobs at GVT rounds,
``repro-bench ablate`` sweeps static-best vs dynamic per knob, and
``repro-control docs`` renders the reference table in docs/control.md.
"""

from .meta import (
    META_KNOBS,
    GvtPeriodController,
    MetaController,
    PlacementController,
    SnapshotController,
)
from .registry import (
    KNOBS,
    dynamic_config_kwargs,
    get_knob,
    render_knob_table,
    static_config_kwargs,
)
from .spec import KnobSpec

__all__ = [
    "KNOBS",
    "META_KNOBS",
    "GvtPeriodController",
    "KnobSpec",
    "MetaController",
    "PlacementController",
    "SnapshotController",
    "dynamic_config_kwargs",
    "get_knob",
    "render_knob_table",
    "static_config_kwargs",
]
