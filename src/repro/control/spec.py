"""The declarative knob specification: one ``KnobSpec`` per tunable.

The paper describes each of its three on-line controllers as a control
system ``<O, I, S, T, P>`` (Section 3); :class:`repro.core.ControlSpec`
captures that tuple for a *running* controller instance.  A
:class:`KnobSpec` is the static, registry-level counterpart: it declares
everything the control plane needs to know about one tunable *before*
any run exists — its value domain, the sampled output ``O`` a dynamic
policy feeds on, the transfer model ``T`` and period ``P`` of that
policy, the safety constraint on values, and the factories that turn a
chosen value (or the decision to go dynamic) into the
:class:`~repro.kernel.config.SimulationConfig` field it governs.

SmartConf (PAPERS.md) calls this shape a *configuration specification*:
once a knob is declared this way, generic machinery — the
:class:`~repro.control.meta.MetaController`, the ``repro-bench ablate``
static-vs-dynamic benchmark, the auto-generated reference table in
``docs/control.md`` — works for it without knob-specific code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..core.control import ControlSpec
from ..kernel.errors import ConfigurationError


@dataclass(frozen=True)
class KnobSpec:
    """Everything the control plane knows about one tunable.

    The ``<O, I, S, T, P>`` fields are prose (they render into the knob
    reference table of ``docs/control.md``); the callables are the
    executable side: ``check`` enforces the safety constraint,
    ``make_static``/``make_dynamic`` produce the value to assign to
    ``config_field`` on a :class:`~repro.kernel.config.SimulationConfig`.
    """

    #: registry key ("checkpoint", "cancellation", ...)
    name: str
    #: human title for tables and reports
    title: str
    #: the configured input ``I``
    parameter: str
    #: what one policy instance governs: "object" | "lp" | "global"
    target: str
    #: the value domain, as prose
    domain: str
    #: the sampled output ``O`` of the dynamic policy
    sampled_output: str
    #: the initial configuration ``S``
    initial: str
    #: the transfer model ``T`` of the dynamic policy
    transfer: str
    #: the control period ``P`` of the dynamic policy
    period: str
    #: the safety constraint, as prose (``check`` is the executable form)
    constraint: str
    #: the ``ctrl.*`` trace record type the dynamic policy emits
    record_type: str
    #: the :class:`SimulationConfig` field this knob maps onto
    config_field: str
    #: True when the dynamic side lives in the MetaController (global
    #: knobs sampled at GVT rounds) rather than in a per-object/per-LP
    #: policy created by ``make_dynamic``
    meta_managed: bool = False
    #: named static settings for the ablation sweep: (label, value)
    static_values: tuple[tuple[str, Any], ...] = ()
    #: raise :class:`ConfigurationError` on an out-of-domain value
    check: Callable[[Any], None] | None = None
    #: static value -> the config-field value that pins it
    make_static: Callable[[Any], Any] | None = None
    #: () -> the config-field value that puts the knob under on-line
    #: control (None for meta-managed knobs: enabling them means
    #: registering them with a MetaController instead)
    make_dynamic: Callable[[], Any] | None = field(default=None, repr=False)
    #: one-paragraph description for docs/control.md
    doc: str = ""

    def control_spec(self) -> ControlSpec:
        """The knob's ``<O, I, S, T, P>`` tuple as a :class:`ControlSpec`."""
        return ControlSpec(
            sampled_output=self.sampled_output,
            configured_parameter=self.parameter,
            initial_configuration=self.initial,
            transfer_function=self.transfer,
            period=self.period,
        )

    def validate_value(self, value: Any) -> None:
        """Enforce the safety constraint on a static setting."""
        if self.check is not None:
            self.check(value)

    def static_config_value(self, value: Any) -> Any:
        """The ``config_field`` value pinning this knob to ``value``."""
        self.validate_value(value)
        if self.make_static is None:
            raise ConfigurationError(
                f"knob {self.name!r} has no static form"
            )
        return self.make_static(value)

    def dynamic_config_value(self) -> Any:
        """The ``config_field`` value putting this knob under on-line
        control; meta-managed knobs have none (use the MetaController)."""
        if self.make_dynamic is None:
            raise ConfigurationError(
                f"knob {self.name!r} is meta-managed: enable it through "
                "MetaController(knobs=...), not a config factory "
                "(docs/control.md)"
            )
        return self.make_dynamic()
