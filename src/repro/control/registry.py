"""The knob registry: every tunable of the simulator, declared as data.

One :class:`~repro.control.spec.KnobSpec` per knob the paper's
configuration space exposes — the four with in-kernel dynamic
controllers (checkpoint interval, cancellation strategy, aggregation
window, optimism window) and the two global ones the
:class:`~repro.control.meta.MetaController` drives (GVT period, snapshot
strategy).  The four legacy controllers in :mod:`repro.core` are *not*
re-implemented here: each registry entry's ``make_dynamic`` returns the
same policy object with the same defaults the kernel has always used, so
a run configured through the registry is byte-trace-identical to one
configured by hand.

Generic consumers:

* :func:`dynamic_config_kwargs` — SimulationConfig kwargs that put any
  subset of knobs under on-line control (``repro-bench ablate`` uses it
  for the dynamic cell of every sweep);
* :func:`render_knob_table` — the markdown reference table embedded in
  ``docs/control.md`` (``repro-control docs``), drift-guarded by
  ``tests/control/test_docs.py``.
"""

from __future__ import annotations

from typing import Any

from ..comm.aggregation import FixedWindow, NoAggregation
from ..core.aggregation_controller import SAAWPolicy
from ..core.cancellation_controller import DynamicCancellation
from ..core.checkpoint_controller import DynamicCheckpoint
from ..core.window_controller import AdaptiveTimeWindow, StaticTimeWindow
from ..kernel.cancellation import Mode, StaticCancellation
from ..kernel.checkpointing import MAX_INTERVAL, StaticCheckpoint
from ..kernel.errors import ConfigurationError
from ..kernel.state import SNAPSHOT_STRATEGIES
from .spec import KnobSpec

#: registration order is presentation order (docs table, CLI listing)
KNOBS: dict[str, KnobSpec] = {}


def register(spec: KnobSpec) -> KnobSpec:
    if spec.name in KNOBS:
        raise ConfigurationError(f"duplicate knob {spec.name!r}")
    KNOBS[spec.name] = spec
    return spec


def get_knob(name: str) -> KnobSpec:
    try:
        return KNOBS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown knob {name!r} (registered: {sorted(KNOBS)})"
        ) from None


# --------------------------------------------------------------------- #
# checks
# --------------------------------------------------------------------- #
def _check_checkpoint(value: Any) -> None:
    if not isinstance(value, int) or not 1 <= value <= MAX_INTERVAL:
        raise ConfigurationError(
            f"checkpoint interval must be an int in [1, {MAX_INTERVAL}], "
            f"got {value!r}"
        )


def _check_cancellation(value: Any) -> None:
    if not isinstance(value, Mode):
        raise ConfigurationError(
            f"cancellation value must be a Mode, got {value!r}"
        )


def _check_aggregation(value: Any) -> None:
    if value is not None and (not isinstance(value, (int, float)) or value <= 0):
        raise ConfigurationError(
            f"aggregation window must be a positive number of us or None, "
            f"got {value!r}"
        )


def _check_time_window(value: Any) -> None:
    if value is not None and (not isinstance(value, (int, float)) or value <= 0):
        raise ConfigurationError(
            f"time window must be a positive width in virtual time or None, "
            f"got {value!r}"
        )


def _check_gvt_period(value: Any) -> None:
    if not isinstance(value, (int, float)) or value <= 0:
        raise ConfigurationError(
            f"gvt_period must be a positive number of us, got {value!r}"
        )


def _check_snapshot(value: Any) -> None:
    if value not in SNAPSHOT_STRATEGIES:
        raise ConfigurationError(
            f"snapshot strategy must be one of "
            f"{sorted(SNAPSHOT_STRATEGIES)}, got {value!r}"
        )


def _check_placement(value: Any) -> None:
    if value not in ("static", "dynamic"):
        raise ConfigurationError(
            f"placement must be 'static' or 'dynamic', got {value!r}"
        )


# --------------------------------------------------------------------- #
# the six knobs
# --------------------------------------------------------------------- #
register(KnobSpec(
    name="checkpoint",
    title="Checkpoint interval",
    parameter="checkpoint interval chi",
    target="object",
    domain=f"int in [1, {MAX_INTERVAL}] or dynamic",
    sampled_output="Ec: state-saving + coast-forward cost per window event",
    initial="chi = 1 (save every event)",
    transfer="+-1 step: increment chi unless Ec rose significantly",
    period="16 processed events per object",
    constraint=f"1 <= chi <= {MAX_INTERVAL}",
    record_type="ctrl.checkpoint",
    config_field="checkpoint",
    static_values=tuple((f"chi={c}", c) for c in (1, 2, 4, 8, 16, 32, 64)),
    check=_check_checkpoint,
    make_static=lambda chi: (lambda _obj, c=chi: StaticCheckpoint(c)),
    make_dynamic=lambda: (lambda _obj: DynamicCheckpoint()),
    doc="Section 4: infrequent state saving trades save cost against "
        "coast-forward cost; the paper's heuristic walks chi by +-1 "
        "toward the U-curve minimum of Ec.",
))

register(KnobSpec(
    name="cancellation",
    title="Cancellation strategy",
    parameter="cancellation strategy (aggressive | lazy)",
    target="object",
    domain="aggressive | lazy | dynamic (DC)",
    sampled_output="HR: lazy hit ratio over the filter depth",
    initial="aggressive",
    transfer="dead zone on HR: >= 0.45 -> lazy, <= 0.2 -> aggressive",
    period="8 resolved comparisons per object",
    constraint="value must be a kernel Mode",
    record_type="ctrl.cancellation",
    config_field="cancellation",
    static_values=(
        ("aggressive", Mode.AGGRESSIVE),
        ("lazy", Mode.LAZY),
    ),
    check=_check_cancellation,
    make_static=lambda mode: (lambda _obj, m=mode: StaticCancellation(m)),
    make_dynamic=lambda: (lambda _obj: DynamicCancellation()),
    doc="Section 5: lazy cancellation wins when rollbacks regenerate the "
        "same messages (high HR); the DC controller monitors HR in both "
        "modes and switches inside a dead zone.",
))

register(KnobSpec(
    name="aggregation",
    title="Message aggregation window",
    parameter="aggregation window W (us)",
    target="lp",
    domain="none | fixed W > 0 us | dynamic (SAAW)",
    sampled_output="R(age): age-modified message reception rate",
    initial="W = 100 us",
    transfer="SAAW: W *= 1 +- 0.1 as R(age) rises/falls",
    period="every flushed aggregate",
    constraint="W must be positive (None = no aggregation)",
    record_type="ctrl.aggregation",
    config_field="aggregation",
    static_values=(
        ("none", None),
        ("W=50", 50.0),
        ("W=200", 200.0),
        ("W=1000", 1000.0),
    ),
    check=_check_aggregation,
    make_static=lambda w: (
        (lambda _lp: NoAggregation())
        if w is None
        else (lambda _lp, v=float(w): FixedWindow(v))
    ),
    make_dynamic=lambda: (lambda _lp: SAAWPolicy()),
    doc="Section 6 (DyMA): batching events into one physical message "
        "amortizes per-message cost but delays delivery; SAAW adapts the "
        "window to the observed reception rate.",
))

register(KnobSpec(
    name="time_window",
    title="Bounded time window",
    parameter="optimism window width (virtual time)",
    target="global",
    domain="unbounded | static width > 0 | adaptive",
    sampled_output="wasted-work ratio: rolled back / executed per GVT interval",
    initial="unbounded (pure Time Warp)",
    transfer="multiplicative shrink/grow outside the [0.08, 0.25] waste band",
    period="every advancing GVT round",
    constraint="width must be positive (None = unbounded)",
    record_type="ctrl.window",
    config_field="time_window",
    static_values=(
        ("unbounded", None),
        ("W=50", 50.0),
        ("W=200", 200.0),
        ("W=1000", 1000.0),
    ),
    check=_check_time_window,
    make_static=lambda w: (
        None if w is None else (lambda v=float(w): StaticTimeWindow(v))
    ),
    make_dynamic=lambda: (lambda: AdaptiveTimeWindow()),
    doc="Extension: throttle optimism to GVT + W so far-future execution "
        "cannot run ahead and be rolled back; the adaptive policy servos "
        "W on the observed waste ratio.",
))

register(KnobSpec(
    name="gvt_period",
    title="GVT period",
    parameter="GVT round period (wall-clock us)",
    target="global",
    domain="period > 0 us or dynamic (meta)",
    sampled_output="uncommitted-history backlog per LP (events)",
    initial="50,000 us",
    transfer="dead zone on backlog: > 512 -> halve period, < 64 -> grow 1.5x",
    period="every 4 advancing GVT rounds",
    constraint="period clamped to [1e3, 1e6] us",
    record_type="ctrl.gvt",
    config_field="gvt_period",
    meta_managed=True,
    static_values=(
        ("P=5ms", 5_000.0),
        ("P=20ms", 20_000.0),
        ("P=50ms", 50_000.0),
        ("P=200ms", 200_000.0),
    ),
    check=_check_gvt_period,
    make_static=lambda period: float(period),
    doc="Frequent GVT rounds reclaim memory sooner but spend bandwidth "
        "and CPU on control traffic (ablation A4); the meta-controller "
        "servos the period on the uncommitted-history backlog.",
))

register(KnobSpec(
    name="snapshot",
    title="Snapshot strategy",
    parameter="state snapshot strategy",
    target="global",
    domain="copy | pickle | deepcopy | array or dynamic (meta)",
    sampled_output="mean live state size across objects (modelled bytes)",
    initial="copy",
    transfer="hysteresis: > 4096 bytes -> pickle, < 2048 bytes -> copy; "
             "an explicit 'array' pin is held (never overridden)",
    period="every 8 advancing GVT rounds",
    constraint="named strategies only (copy | pickle | deepcopy | array)",
    record_type="ctrl.snapshot",
    config_field="snapshot",
    meta_managed=True,
    static_values=tuple((n, n) for n in ("copy", "pickle", "deepcopy", "array")),
    check=_check_snapshot,
    make_static=lambda name: str(name),
    doc="How the kernel copies states for checkpoints: 'copy' wins for "
        "small flat states, 'pickle' for large container-heavy ones, "
        "'array' block-copies ndarray-backed record states "
        "(docs/benchmarking.md); the meta-controller switches on the "
        "observed mean state size.",
))

register(KnobSpec(
    name="placement",
    title="Object placement",
    parameter="object -> host placement",
    target="global",
    domain="static | dynamic (live migration)",
    sampled_output="cost-weighted per-host committed-event imbalance "
                   "over the control window",
    initial="the configured partition (static)",
    transfer="imbalance > 1.25x mean -> migrate the object that most "
             "lowers the peak",
    period="every 8 advancing GVT rounds",
    constraint="moves never empty a host; chosen move must strictly "
               "lower the peak",
    record_type="ctrl.placement",
    config_field="placement",
    meta_managed=True,
    static_values=(("static", "static"),),
    check=_check_placement,
    make_static=lambda value: str(value),
    doc="Where each object runs is itself a knob: the meta-controller's "
        "placement loop live-migrates the full Time Warp context of hot "
        "objects between modelled LPs, and the parallel backend's "
        "coordinator balancer does the same between worker processes "
        "through checkpoint handoff (docs/parallel.md).",
))


# --------------------------------------------------------------------- #
# generic consumers
# --------------------------------------------------------------------- #
def dynamic_config_kwargs(knobs: tuple[str, ...] | None = None) -> dict[str, Any]:
    """SimulationConfig kwargs putting ``knobs`` under on-line control.

    Per-object/per-LP knobs map to their dynamic policy factory;
    meta-managed knobs are collected into one ``meta_control`` factory.
    ``None`` selects every registered knob (the full control plane).
    """
    names = tuple(KNOBS) if knobs is None else knobs
    kwargs: dict[str, Any] = {}
    meta: list[str] = []
    for name in names:
        spec = get_knob(name)
        if spec.meta_managed:
            meta.append(name)
        else:
            kwargs[spec.config_field] = spec.dynamic_config_value()
    if meta:
        from .meta import MetaController

        picked = tuple(meta)
        kwargs["meta_control"] = lambda: MetaController(knobs=picked)
    return kwargs


def static_config_kwargs(knob: str, value: Any) -> dict[str, Any]:
    """SimulationConfig kwargs pinning one knob to one static value."""
    spec = get_knob(knob)
    config_value = spec.static_config_value(value)
    if config_value is None:  # e.g. time_window "unbounded"
        return {}
    return {spec.config_field: config_value}


def render_knob_table() -> str:
    """The markdown knob reference table for docs/control.md."""

    def cell(text: str) -> str:
        return text.replace("|", "\\|")

    header = (
        "| knob | target | domain | O (sampled output) | "
        "T (transfer) | P (period) | constraint | trace record |\n"
        "|---|---|---|---|---|---|---|---|"
    )
    rows = [
        f"| `{spec.name}` | {cell(spec.target)} | {cell(spec.domain)} | "
        f"{cell(spec.sampled_output)} | {cell(spec.transfer)} | "
        f"{cell(spec.period)} | {cell(spec.constraint)} | "
        f"`{spec.record_type}` |"
        for spec in KNOBS.values()
    ]
    return "\n".join([header, *rows])
