"""Runtime invariant oracle for the Time Warp kernel.

Follows the null-tracer pattern from :mod:`repro.trace`: every hook site
holds an ``oracle`` attribute that defaults to the shared
:data:`NULL_ORACLE`, guards with ``if oracle.enabled:``, and therefore
costs one attribute load and one truth test when the oracle is off.

The real :class:`InvariantOracle` checks, while the simulation runs:

- **GVT monotonicity and safety** — no GVT round may estimate below the
  committed GVT.  A committed GVT of G certifies that no event below G
  exists anywhere, so a later estimate under G means either the earlier
  commit was unsafe or live state regressed below it.
- **Committed-event safety** — no rollback may target a virtual time
  below the committed GVT (a committed event would be undone).
- **State-restore fidelity** — a snapshot must be bit-equivalent at
  restore time to what was saved (no aliasing mutated it), and the
  restored working state must match the snapshot.
- **Anti-message pairing** — at the end of a run no anti-message may be
  left unannihilated (pending antis, live cancel-buffer entries, or
  events stranded in aggregation buffers).
- **Wire conservation** — ``sent = delivered + lost + in-flight`` holds
  at every GVT commit and at the end of the run, where in-flight must be
  zero and any permanent loss is reported (this is how a dropped message
  on a non-retransmitting wire is *detected*).

Violations are recorded on ``oracle.violations``, emitted as
``oracle.violation`` trace records when a tracer is attached, and raise
:class:`~repro.kernel.errors.InvariantViolationError` in strict mode.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from ..kernel.errors import InvariantViolationError
from ..trace.tracer import NULL_TRACER

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.state import SavedState


@dataclass(frozen=True, slots=True)
class InvariantViolation:
    """One detected invariant violation."""

    invariant: str  # gvt_monotonic | gvt_safety | state_fidelity |
    #                 anti_pairing | wire_conservation | message_loss
    t: float  # modelled wall-clock time of detection (us)
    detail: str

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"[{self.invariant}] t={self.t}: {self.detail}"


def state_digest(state: Any) -> str:
    """A stable, comparison-friendly digest of an application state.

    Dataclass states (the :class:`~repro.kernel.state.RecordState` family)
    digest field by field; anything else falls back to ``vars``/``repr``.
    Digests are only ever compared within one process, so ``repr``
    stability across interpreter runs is not required.
    """
    if dataclasses.is_dataclass(state) and not isinstance(state, type):
        return repr(
            [(f.name, getattr(state, f.name))
             for f in dataclasses.fields(state)]
        )
    attrs = getattr(state, "__dict__", None)
    if attrs is not None:
        return repr(sorted(attrs.items()))
    return repr(state)


class NullOracle:
    """Does nothing, fast.  Every hook site guards on ``enabled``."""

    __slots__ = ()
    enabled = False
    violations: tuple = ()

    def on_state_save(self, t, lp, obj, snapshot) -> None: ...

    def on_state_restore(self, t, lp, obj, snapshot, restored) -> None: ...

    def on_rollback(self, t, lp, obj, to_time) -> None: ...

    def on_gvt_estimate(self, t, estimate, committed) -> None: ...

    def on_wire_check(self, t, network) -> None: ...

    def on_run_end(self, executive) -> None: ...


#: Shared do-nothing instance, the default everywhere an oracle plugs in.
NULL_ORACLE = NullOracle()


class InvariantOracle:
    """Checks Time Warp invariants as the simulation runs (off by default;
    enable by passing one via ``SimulationConfig(oracle=...)``)."""

    enabled = True

    def __init__(self, *, strict: bool = False, tracer=NULL_TRACER) -> None:
        #: raise InvariantViolationError at the first violation
        self.strict = strict
        #: trace sink for oracle.violation records (the kernel attaches
        #: the run tracer automatically unless one was set explicitly)
        self.tracer = tracer
        self.violations: list[InvariantViolation] = []
        #: how many individual invariant checks ran (proof of coverage)
        self.checks = 0
        #: check count per hook kind (state_save, state_restore, rollback,
        #: gvt_estimate, wire_check, wire_final, message_loss,
        #: anti_pairing) — the verify harness uses which kinds fired as a
        #: coverage signal (docs/testing.md)
        self.checks_by_kind: Counter[str] = Counter()
        self._committed_gvt = float("-inf")
        #: id(snapshot) -> (snapshot, digest-at-save); pruned at GVT commits
        self._snapshots: dict[int, tuple[SavedState, str]] = {}

    # ------------------------------------------------------------------ #
    def _check(self, kind: str) -> None:
        self.checks += 1
        self.checks_by_kind[kind] += 1

    # ------------------------------------------------------------------ #
    def _violate(self, invariant: str, t: float, detail: str) -> None:
        violation = InvariantViolation(invariant, t, detail)
        self.violations.append(violation)
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(
                "oracle.violation", t, invariant=invariant, detail=detail
            )
        if self.strict:
            raise InvariantViolationError(str(violation))

    # ------------------------------------------------------------------ #
    # state fidelity
    # ------------------------------------------------------------------ #
    def on_state_save(self, t: float, lp: int, obj: str, snapshot) -> None:
        self._check("state_save")
        self._snapshots[id(snapshot)] = (snapshot, state_digest(snapshot.state))

    def on_state_restore(
        self, t: float, lp: int, obj: str, snapshot, restored
    ) -> None:
        self._check("state_restore")
        entry = self._snapshots.get(id(snapshot))
        if entry is None or entry[0] is not snapshot:
            return  # saved before the oracle was attached
        saved_digest = entry[1]
        if state_digest(snapshot.state) != saved_digest:
            self._violate(
                "state_fidelity", t,
                f"{obj} (lp {lp}): snapshot at lvt={snapshot.lvt!r} mutated "
                "between save and restore (history aliasing)",
            )
        elif state_digest(restored) != saved_digest:
            self._violate(
                "state_fidelity", t,
                f"{obj} (lp {lp}): restored state differs from snapshot "
                f"at lvt={snapshot.lvt!r}",
            )

    # ------------------------------------------------------------------ #
    # rollback vs committed GVT
    # ------------------------------------------------------------------ #
    def on_rollback(self, t: float, lp: int, obj: str, to_time) -> None:
        self._check("rollback")
        if to_time < self._committed_gvt:
            self._violate(
                "gvt_safety", t,
                f"{obj} (lp {lp}): rollback to virtual time {to_time!r} "
                f"below committed GVT {self._committed_gvt!r}",
            )

    # ------------------------------------------------------------------ #
    # GVT rounds
    # ------------------------------------------------------------------ #
    def on_gvt_estimate(self, t: float, estimate, committed) -> None:
        self._check("gvt_estimate")
        if estimate < self._committed_gvt:
            self._violate(
                "gvt_monotonic", t,
                f"GVT round estimated {estimate!r} below committed "
                f"GVT {self._committed_gvt!r}",
            )
        if estimate > self._committed_gvt:
            self._committed_gvt = estimate
            gvt = self._committed_gvt
            if self._snapshots:
                self._snapshots = {
                    key: entry
                    for key, entry in self._snapshots.items()
                    if entry[0].lvt >= gvt
                }

    # ------------------------------------------------------------------ #
    # wire conservation
    # ------------------------------------------------------------------ #
    def on_wire_check(self, t: float, network) -> None:
        self._check("wire_check")
        counts = network.wire_counts()
        if counts["sent"] != (
            counts["delivered"] + counts["lost"] + counts["in_flight"]
        ):
            self._violate(
                "wire_conservation", t,
                "sent != delivered + lost + in-flight: "
                f"{counts}",
            )

    # ------------------------------------------------------------------ #
    # end of run
    # ------------------------------------------------------------------ #
    def on_run_end(self, executive) -> None:
        t = executive.wallclock
        network = executive.network
        self.on_wire_check(t, network)
        counts = network.wire_counts()
        self._check("wire_final")
        if counts["in_flight"]:
            self._violate(
                "wire_conservation", t,
                f"{counts['in_flight']} message(s) still in flight at end "
                "of run",
            )
        self._check("message_loss")
        if counts["lost"] or network.undelivered_data_count():
            self._violate(
                "message_loss", t,
                f"{counts['lost']} message(s) permanently lost and "
                f"{network.undelivered_data_count()} DATA message(s) never "
                "delivered",
            )
        for lp in executive.lps:
            self._check("anti_pairing")
            leftovers: list[str] = []
            for ctx in lp.members.values():
                pending = ctx.iq.pending_anti_count()
                if pending:
                    leftovers.append(
                        f"{ctx.obj.name}: {pending} unpaired anti-message(s)"
                    )
                live = ctx.cmp_buffer.min_live_time()
                if live is not None:
                    leftovers.append(
                        f"{ctx.obj.name}: live cancel-buffer entry at "
                        f"{live!r}"
                    )
            buffered = (
                lp.comm.buffered_event_count() if lp.comm is not None else 0
            )
            if buffered:
                leftovers.append(
                    f"{buffered} event(s) stranded in aggregation buffers"
                )
            if leftovers:
                self._violate(
                    "anti_pairing", t,
                    f"lp {lp.lp_id}: " + "; ".join(leftovers),
                )
