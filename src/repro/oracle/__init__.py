"""Runtime invariant oracle for the Time Warp kernel (off by default).

See :mod:`repro.oracle.invariants` for the invariants checked and
``docs/robustness.md`` for the workflow.
"""

from .invariants import (
    NULL_ORACLE,
    InvariantOracle,
    InvariantViolation,
    NullOracle,
    state_digest,
)

__all__ = [
    "NULL_ORACLE",
    "InvariantOracle",
    "InvariantViolation",
    "NullOracle",
    "state_digest",
]
