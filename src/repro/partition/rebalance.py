"""Load-driven move selection for dynamic placement.

Both dynamic-placement drivers — the MetaController's
:class:`~repro.control.meta.PlacementController` on the modelled backend
and the coordinator-side balancer of the parallel backend — reduce to the
same question: given per-object executed-event counts grouped by host,
which objects should move where?  :func:`choose_moves` answers it with a
deliberately simple greedy rule (the hottest host donates the object
that most lowers the peak host load), because the *interesting*
machinery is the migration itself; the policy only needs to be
deterministic, cheap, and monotone-improving so it cannot flap.

Host heterogeneity enters through ``factors``: a host's load is its
event count times its cost factor (the modelled per-LP speed factor; 1.0
for the parallel backend's identical worker processes), so on a skewed
NOW the balancer drains the slow workstations instead of piling onto
them.

All tie-breaks are total orders over (load, id) so two runs fed the same
samples pick the same moves.
"""

from __future__ import annotations

#: (oid, src_host, dst_host)
Move = tuple[int, int, int]


def choose_moves(
    loads: dict[int, dict[int, int]],
    *,
    threshold: float = 1.25,
    factors: dict[int, float] | None = None,
    max_moves: int = 1,
) -> tuple[Move, ...]:
    """Pick up to ``max_moves`` rebalancing moves from a load sample.

    ``loads`` maps host -> {object id -> executed events}; ``factors``
    maps host -> cost factor (missing hosts default to 1.0), making a
    host's load ``factor * sum(events)``.  A move is only proposed when
    the hottest host exceeds ``threshold`` times the mean host load,
    hosts at least two objects (never empty a host implicitly), and the
    donation strictly lowers the peak of the (src, dst) pair.  The input
    is not mutated.
    """
    if len(loads) < 2 or max_moves < 1:
        return ()
    given = factors or {}
    factor = {host: given.get(host, 1.0) for host in loads}
    work = {host: dict(per) for host, per in loads.items()}
    totals = {
        host: factor[host] * sum(per.values()) for host, per in work.items()
    }
    moves: list[Move] = []
    for _ in range(max_moves):
        src = min(totals, key=lambda host: (-totals[host], host))
        dst = min(totals, key=lambda host: (totals[host], host))
        mean = sum(totals.values()) / len(totals)
        if src == dst or len(work[src]) < 2:
            break
        if mean <= 0 or totals[src] <= threshold * mean:
            break
        # The donor object that most lowers max(src, dst) after the move;
        # an improvement at all requires that peak to drop below the
        # current hot-host load.
        best: tuple[float, int] | None = None
        for oid, events in work[src].items():
            if events <= 0:
                continue
            peak = max(
                totals[src] - factor[src] * events,
                totals[dst] + factor[dst] * events,
            )
            if peak >= totals[src]:
                continue
            if best is None or (peak, oid) < best:
                best = (peak, oid)
        if best is None:
            break
        _, oid = best
        events = work[src].pop(oid)
        work[dst][oid] = events
        totals[src] -= factor[src] * events
        totals[dst] += factor[dst] * events
        moves.append((oid, src, dst))
    return tuple(moves)
