"""Object-communication graphs, measured by profiling.

The paper's models ship with partitions hand-crafted "to take advantage
of the fast intra-LP communication".  For arbitrary user models this
package does the same automatically: profile the model sequentially,
build the weighted object-communication graph, and hand it to a
partitioning strategy (:mod:`repro.partition.strategies`).

Profiling runs the *sequential* kernel with a counting shim around the
send path, so it needs no Time Warp machinery and no model changes — the
same trick the WARPED model generators used (static knowledge), except
measured instead of assumed.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Sequence

from ..kernel.errors import ConfigurationError
from ..kernel.simobject import SimulationObject
from ..sequential.kernel import SequentialSimulation


@dataclass
class CommGraph:
    """A weighted, undirected object-communication graph.

    ``weights[(a, b)]`` (names sorted) is the number of events exchanged
    between objects ``a`` and ``b``; ``loads[a]`` is the number of events
    object ``a`` executed (its CPU weight).
    """

    objects: list[str] = field(default_factory=list)
    weights: dict[tuple[str, str], int] = field(default_factory=dict)
    loads: dict[str, int] = field(default_factory=dict)

    def add_message(self, src: str, dst: str, count: int = 1) -> None:
        if src == dst:
            return
        key = (src, dst) if src <= dst else (dst, src)
        self.weights[key] = self.weights.get(key, 0) + count

    def edge_weight(self, a: str, b: str) -> int:
        key = (a, b) if a <= b else (b, a)
        return self.weights.get(key, 0)

    def neighbours(self, name: str) -> dict[str, int]:
        out: dict[str, int] = {}
        for (a, b), w in self.weights.items():
            if a == name:
                out[b] = w
            elif b == name:
                out[a] = w
        return out

    def total_weight(self) -> int:
        return sum(self.weights.values())

    def cut_weight(self, assignment: dict[str, int]) -> int:
        """Total weight of edges crossing LP boundaries under
        ``assignment`` (object name -> LP index)."""
        cut = 0
        for (a, b), w in self.weights.items():
            if assignment[a] != assignment[b]:
                cut += w
        return cut

    def to_networkx(self):
        """The graph as a :mod:`networkx` ``Graph`` (node attr ``load``,
        edge attr ``weight``) — for the KL/spectral strategies."""
        import networkx as nx

        graph = nx.Graph()
        for name in self.objects:
            graph.add_node(name, load=self.loads.get(name, 1))
        for (a, b), w in self.weights.items():
            graph.add_edge(a, b, weight=w)
        return graph


def profile_model(
    objects: Sequence[SimulationObject],
    *,
    end_time: float = float("inf"),
    max_events: int | None = 200_000,
) -> CommGraph:
    """Run the model sequentially and measure its communication graph.

    The model's objects are *consumed* (they run); build fresh objects
    for the actual partitioned run.
    """
    if not objects:
        raise ConfigurationError("nothing to profile")
    graph = CommGraph(objects=[obj.name for obj in objects])
    counts: Counter[tuple[str, str]] = Counter()
    loads: Counter[str] = Counter()

    seq = SequentialSimulation(list(objects), end_time=end_time,
                               max_events=max_events, record_trace=True)
    seq.run()
    for _recv_time, receiver, sender, _send_time, _payload in seq.trace or []:
        counts[(sender, receiver)] += 1
        loads[receiver] += 1

    for (src, dst), count in counts.items():
        graph.add_message(src, dst, count)
    graph.loads = dict(loads)
    for name in graph.objects:
        graph.loads.setdefault(name, 0)
    return graph
