"""Automatic model partitioning: profiling + graph partitioning.

The paper's hand-partitioned models exploit fast intra-LP communication;
this package does the same for arbitrary models: profile sequentially
(:func:`profile_model`), then assign objects to LPs with a strategy and
materialize the partition (:func:`apply_assignment`).
"""

from .graph import CommGraph, profile_model
from .rebalance import choose_moves
from .strategies import (
    apply_assignment,
    greedy_growth,
    kernighan_lin,
    partition_quality,
    round_robin,
)

__all__ = [
    "CommGraph",
    "apply_assignment",
    "choose_moves",
    "greedy_growth",
    "kernighan_lin",
    "partition_quality",
    "profile_model",
    "round_robin",
]
