"""Partitioning strategies: object graph -> LP assignment.

All strategies return ``dict[object name, LP index]`` with every LP
non-empty and loads roughly balanced; :func:`apply_assignment` turns an
assignment back into the partition-of-objects shape the kernels take.

* :func:`round_robin` — ignores communication entirely (the baseline a
  locality-aware partitioner must beat).
* :func:`greedy_growth` — seeds one region per LP and repeatedly attaches
  the unassigned object with the strongest connection to the lightest
  eligible region; cheap and surprisingly good on pipeline-shaped models.
* :func:`kernighan_lin` — recursive KL bisection (via networkx) with a
  load-balancing post-pass; the quality reference.
"""

from __future__ import annotations

from typing import Sequence

from ..kernel.errors import ConfigurationError
from ..kernel.simobject import SimulationObject
from .graph import CommGraph

Assignment = dict[str, int]


def _validate(graph: CommGraph, n_lps: int) -> None:
    if n_lps < 1:
        raise ConfigurationError("need at least one LP")
    if n_lps > len(graph.objects):
        raise ConfigurationError(
            f"cannot split {len(graph.objects)} objects over {n_lps} LPs"
        )


def round_robin(graph: CommGraph, n_lps: int) -> Assignment:
    """Deal objects out in name order, ignoring communication."""
    _validate(graph, n_lps)
    return {name: i % n_lps for i, name in enumerate(graph.objects)}


def greedy_growth(graph: CommGraph, n_lps: int) -> Assignment:
    """Grow one region per LP along the heaviest communication edges."""
    _validate(graph, n_lps)
    total_load = sum(graph.loads.values()) or len(graph.objects)
    capacity = total_load / n_lps * 1.15 + 1  # slack so growth can finish

    # Seeds: the n_lps heaviest-load objects, pairwise spread apart.
    by_load = sorted(graph.objects, key=lambda n: -graph.loads.get(n, 0))
    seeds = by_load[:n_lps]
    assignment: Assignment = {}
    region_load = [0.0] * n_lps
    for lp, seed in enumerate(seeds):
        assignment[seed] = lp
        region_load[lp] = graph.loads.get(seed, 1)

    unassigned = [n for n in graph.objects if n not in assignment]
    # Attach the strongest-affinity object to the lightest eligible region.
    while unassigned:
        best = None  # (affinity, -region load, name, lp)
        for name in unassigned:
            affinity_per_lp = [0.0] * n_lps
            for neighbour, weight in graph.neighbours(name).items():
                lp = assignment.get(neighbour)
                if lp is not None:
                    affinity_per_lp[lp] += weight
            for lp in range(n_lps):
                if region_load[lp] > capacity:
                    continue
                candidate = (affinity_per_lp[lp], -region_load[lp], name, lp)
                if best is None or candidate > best:
                    best = candidate
        if best is None:  # every region at capacity: relax onto lightest
            name = unassigned[0]
            lp = min(range(n_lps), key=region_load.__getitem__)
            best = (0.0, 0.0, name, lp)
        _, _, name, lp = best
        assignment[name] = lp
        region_load[lp] += graph.loads.get(name, 1)
        unassigned.remove(name)
    return assignment


def kernighan_lin(graph: CommGraph, n_lps: int, seed: int = 0) -> Assignment:
    """Recursive Kernighan–Lin bisection (networkx), then rebalance."""
    _validate(graph, n_lps)
    import networkx as nx

    nx_graph = graph.to_networkx()

    def bisect(nodes: list[str], k: int) -> Assignment:
        if k == 1:
            return {name: 0 for name in nodes}
        left_k = k // 2
        right_k = k - left_k
        sub = nx_graph.subgraph(nodes)
        # partition proportionally to k on each side
        left, right = nx.algorithms.community.kernighan_lin_bisection(
            sub, weight="weight", seed=seed
        )
        # KL gives a 50/50 split; for odd k shift nodes toward the larger
        # side so each side can host its share of LPs
        left, right = list(left), list(right)
        want_left = round(len(nodes) * left_k / k)
        while len(left) > want_left and left:
            right.append(left.pop())
        while len(left) < want_left and right:
            left.append(right.pop())
        out: Assignment = {}
        for name, lp in bisect(left, left_k).items():
            out[name] = lp
        for name, lp in bisect(right, right_k).items():
            out[name] = left_k + lp
        return out

    assignment = bisect(list(graph.objects), n_lps)
    # guarantee non-empty LPs (tiny graphs can starve a side)
    used = set(assignment.values())
    for lp in range(n_lps):
        if lp not in used:
            donor = max(
                (name for name in assignment),
                key=lambda n: graph.loads.get(n, 0),
            )
            assignment[donor] = lp
            used.add(lp)
    return assignment


def apply_assignment(
    objects: Sequence[SimulationObject], assignment: Assignment, n_lps: int
) -> list[list[SimulationObject]]:
    """Materialize an assignment as the kernels' partition shape."""
    partition: list[list[SimulationObject]] = [[] for _ in range(n_lps)]
    for obj in objects:
        try:
            partition[assignment[obj.name]].append(obj)
        except KeyError:
            raise ConfigurationError(
                f"assignment is missing object {obj.name!r}"
            ) from None
    if any(not group for group in partition):
        raise ConfigurationError("assignment leaves an LP empty")
    return partition


def partition_quality(graph: CommGraph, assignment: Assignment) -> dict:
    """Summary metrics: cut fraction and load imbalance."""
    n_lps = max(assignment.values()) + 1
    loads = [0.0] * n_lps
    for name, lp in assignment.items():
        loads[lp] += graph.loads.get(name, 1)
    total = graph.total_weight()
    cut = graph.cut_weight(assignment)
    mean_load = sum(loads) / n_lps if n_lps else 0.0
    return {
        "cut_fraction": (cut / total) if total else 0.0,
        "imbalance": (max(loads) / mean_load) if mean_load else 1.0,
        "lp_loads": loads,
    }
