"""Non-linear thresholding with a dead zone (Figure 3 of the paper).

A thresholding function maps a continuous input (e.g. the Hit Ratio) to a
discrete output (e.g. the cancellation strategy) through two boundaries
with a *dead zone* between them: the output only changes after the input
crosses into the region beyond the far threshold, and while the input sits
inside the dead zone the function keeps producing its previous output.
The hysteresis this introduces is one of the paper's three anti-thrashing
mechanisms (with a deep filter and infrequent control invocation).
"""

from __future__ import annotations

from typing import Generic, TypeVar

from ..kernel.errors import ConfigurationError

T = TypeVar("T")


class DeadZoneThreshold(Generic[T]):
    """Two-threshold switch between a *low* and a *high* output value.

    * input > ``upper``  -> output becomes ``high``
    * input < ``lower``  -> output becomes ``low``
    * otherwise (the dead zone, boundaries included) -> output unchanged

    The comparisons are strict, following the paper's wording ("whenever
    HR *rises over* A2L_Threshold... if HR *falls below* L2A_Threshold"):
    with ``lower == upper`` (the single-threshold ``ST`` variant) a value
    exactly at the threshold would otherwise satisfy both conditions and
    thrash.
    """

    def __init__(self, lower: float, upper: float, low: T, high: T, initial: T) -> None:
        if lower > upper:
            raise ConfigurationError(
                f"lower threshold ({lower}) must not exceed upper ({upper})"
            )
        if initial not in (low, high):
            raise ConfigurationError("initial output must be one of the two outputs")
        self.lower = lower
        self.upper = upper
        self.low = low
        self.high = high
        self._output = initial
        self.transitions = 0

    def update(self, value: float) -> T:
        """Feed one input sample; returns the (possibly unchanged) output."""
        if value > self.upper and self._output != self.high:
            self._output = self.high
            self.transitions += 1
        elif value < self.lower and self._output != self.low:
            self._output = self.low
            self.transitions += 1
        return self._output

    @property
    def output(self) -> T:
        return self._output

    @property
    def dead_zone_width(self) -> float:
        return self.upper - self.lower
