"""The configuration control system abstraction of Section 3.

The paper characterizes an on-line configuration control system by the
tuple ``<O, I, S, T, P>``:

* ``O`` — the sampled output (e.g. the checkpointing cost index ``Ec``,
  or the Hit Ratio ``HR``);
* ``I`` — the parameter under configuration (checkpoint interval,
  cancellation strategy, aggregation window);
* ``S`` — the initial configuration;
* ``T`` — the transfer function from ``O`` to the new configuration;
* ``P`` — the period between control invocations.

Unlike analog control, the feedback logic competes for the same CPU
cycles as useful computation, so ``P`` must be large enough that tuning
overhead does not outweigh the benefit of the better configuration — the
kernel charges :attr:`~repro.cluster.costmodel.CostModel.control_invocation_cost`
per invocation, and ``benchmarks/bench_abl_control_period.py`` sweeps ``P``.

Every concrete controller in this package exposes its tuple through
:meth:`Controlled.spec`, both as executable documentation and so reports
can print the configuration of a run.

The tuple is also observable at run time: with tracing enabled
(``docs/observability.md``), every control invocation becomes one
``ctrl.*`` trace record whose ``o`` field is the sampled output ``O``,
whose ``old``/``new`` fields are the configured input ``I`` before and
after, and whose ``verdict`` names the branch of ``T`` that fired; the
record cadence *is* ``P``.

Verdict semantics for no-op invocations: a record is emitted at every
invocation, *including* those that leave the configuration unchanged
(dead zones, first samples, locked states).  The ``verdict`` reports
which branch of ``T`` fired, never whether the configuration moved —
a no-op invocation simply has ``old == new`` (and ``switched == false``
where present).  The trace reader's summarizer therefore counts
*invocations* (all records) and *moves* (``old != new``) separately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Protocol, runtime_checkable


@dataclass(frozen=True, slots=True)
class ControlSpec:
    """The ``<O, I, S, T, P>`` tuple of one control system, as data.

    Trace correspondence (``docs/observability.md``): in a ``ctrl.*``
    record, :attr:`sampled_output` is the ``o`` field,
    :attr:`configured_parameter` is ``old``/``new``,
    :attr:`transfer_function` is summarized by ``verdict``, and
    :attr:`period` is the cadence at which the records appear.
    """

    sampled_output: str
    configured_parameter: str
    initial_configuration: Any
    transfer_function: str
    period: Any

    def __str__(self) -> str:
        return (
            f"<O={self.sampled_output}, I={self.configured_parameter}, "
            f"S={self.initial_configuration}, T={self.transfer_function}, "
            f"P={self.period}>"
        )


@runtime_checkable
class Controlled(Protocol):
    """Anything that can describe itself as a configuration control system."""

    def spec(self) -> ControlSpec: ...
