"""Dynamic check-pointing: the ``<Ec, chi, 1, A, P>`` control system.

The controller monitors the check-pointing cost index ``Ec`` — the sum of
state-saving cost and coast-forward cost accumulated since the previous
control invocation — and adjusts the checkpoint interval ``chi`` under the
single-minimum assumption: the optimal interval minimizes ``Ec``.

Two transfer functions are provided:

* :class:`DynamicCheckpoint` — the paper's heuristic ``A``: "at every
  control invocation, if Ec is not observed to have increased
  significantly, the check-pointing period is incremented; otherwise, it
  is decremented."  Simple, nearly free to evaluate — the paper's point is
  precisely that this beats the costly analytical models of Lin and
  Palaniswamy *because* it is cheap.
* :class:`HillClimbCheckpoint` — an ablation variant that remembers its
  direction of travel and reverses when ``Ec`` worsens, converging from
  either side of the minimum.  Used by
  ``benchmarks/bench_abl_checkpoint_sweep.py`` to quantify how much the
  transfer function matters.

``Ec`` is normalized per processed event before comparison: windows are
equal in *events* (the invocation period), but a window interrupted by
fossil-collection pauses or idle time would otherwise skew raw sums.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..kernel.checkpointing import MAX_INTERVAL, CheckpointWindow
from ..kernel.errors import ConfigurationError
from .control import ControlSpec


@dataclass
class DynamicCheckpoint:
    """The paper's dynamic check-pointing controller.

    Attributes:
        initial: starting interval ``S`` (the paper starts at 1, the
            save-every-event default).
        period: control invocation period ``P`` in processed events.
        significance: relative increase of normalized ``Ec`` that counts
            as "increased significantly".
        step: interval increment/decrement applied by the transfer
            function.
        max_interval: upper clamp for the interval.
    """

    initial: int = 1
    period: int = 16
    significance: float = 0.05
    step: int = 1
    max_interval: int = MAX_INTERVAL

    _interval: int = field(init=False)
    _previous_ec: float | None = field(default=None, init=False)
    #: (event-normalized Ec, interval) per invocation, for analysis
    history: list[tuple[float, int]] = field(default_factory=list, init=False)
    #: transfer-function branch taken by the last invocation; recorded in
    #: the ``ctrl.checkpoint`` trace record (docs/observability.md)
    last_verdict: str = field(default="", init=False)

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ConfigurationError("control period must be >= 1 event")
        if not 1 <= self.initial <= self.max_interval:
            raise ConfigurationError(
                f"initial interval must be in [1, {self.max_interval}]"
            )
        if self.significance < 0:
            raise ConfigurationError("significance must be >= 0")
        self._interval = self.initial

    # -- CheckpointPolicy protocol ------------------------------------- #
    def initial_interval(self) -> int:
        return self._interval

    def control(self, window: CheckpointWindow) -> int:
        events = max(1, window.events)
        ec = window.ec / events
        self.history.append((ec, self._interval))
        previous = self._previous_ec
        self._previous_ec = ec
        if previous is None:
            self.last_verdict = "first_sample"
            return self._interval
        if ec > previous * (1.0 + self.significance):
            self.last_verdict = "ec_rose"
            self._interval = max(1, self._interval - self.step)
        else:
            self.last_verdict = "ec_flat"
            self._interval = min(self.max_interval, self._interval + self.step)
        return self._interval

    # -- introspection --------------------------------------------------- #
    @property
    def interval(self) -> int:
        return self._interval

    def spec(self) -> ControlSpec:
        return ControlSpec(
            sampled_output="Ec (state-saving + coast-forward cost)",
            configured_parameter="checkpoint interval chi",
            initial_configuration=self.initial,
            transfer_function=(
                "increment chi unless Ec increased significantly, else decrement"
            ),
            period=f"{self.period} events",
        )


@dataclass
class HillClimbCheckpoint:
    """Directional hill-climbing variant (ablation).

    Keeps moving the interval in its current direction while ``Ec``
    improves; reverses direction when ``Ec`` worsens beyond the
    significance band.  Converges to the minimum from either side instead
    of relying on the paper's upward drift + decrement correction.
    """

    initial: int = 1
    period: int = 16
    significance: float = 0.02
    step: int = 1
    max_interval: int = MAX_INTERVAL

    _interval: int = field(init=False)
    _direction: int = field(default=1, init=False)
    _previous_ec: float | None = field(default=None, init=False)
    history: list[tuple[float, int]] = field(default_factory=list, init=False)
    last_verdict: str = field(default="", init=False)

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ConfigurationError("control period must be >= 1 event")
        if not 1 <= self.initial <= self.max_interval:
            raise ConfigurationError(
                f"initial interval must be in [1, {self.max_interval}]"
            )
        self._interval = self.initial

    def initial_interval(self) -> int:
        return self._interval

    def control(self, window: CheckpointWindow) -> int:
        events = max(1, window.events)
        ec = window.ec / events
        self.history.append((ec, self._interval))
        previous = self._previous_ec
        self._previous_ec = ec
        if previous is None:
            self.last_verdict = "first_sample"
        elif ec > previous * (1.0 + self.significance):
            self._direction = -self._direction
            self.last_verdict = "reversed"
        else:
            self.last_verdict = "kept_direction"
        candidate = self._interval + self._direction * self.step
        if candidate < 1:
            candidate = 1
            self._direction = 1
        elif candidate > self.max_interval:
            candidate = self.max_interval
            self._direction = -1
        self._interval = candidate
        return self._interval

    @property
    def interval(self) -> int:
        return self._interval

    def spec(self) -> ControlSpec:
        return ControlSpec(
            sampled_output="Ec (state-saving + coast-forward cost)",
            configured_parameter="checkpoint interval chi",
            initial_configuration=self.initial,
            transfer_function="hill climb: keep direction while Ec improves",
            period=f"{self.period} events",
        )
