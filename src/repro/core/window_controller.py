"""Adaptive bounded time windows — the extension control system.

The paper's related work (Palaniswamy & Wilsey, "Adaptive bounded time
windows in an optimistically synchronized simulator" — reference [20])
throttles optimism: an LP may only execute events within ``GVT + W`` of
virtual time, trading idle time for avoided rollbacks.  A static ``W``
has the same problem as every other static configuration in this paper,
so we close the loop with the same ``<O, I, S, T, P>`` machinery:

* ``O`` — the fraction of executed events that were rolled back since the
  previous control invocation (wasted-work ratio);
* ``I`` — the time-window width ``W`` (virtual time units);
* ``S`` — unbounded (pure Time Warp) until the first measurement;
* ``T`` — multiplicative decrease when waste exceeds ``high_waste``,
  multiplicative increase when below ``low_waste`` (dead zone between);
* ``P`` — every GVT round (the natural opportunity: windows are anchored
  at GVT, so that is when they move anyway).

This is a *global* controller (one instance per simulation, shared by
all LPs) because the window is anchored at the global GVT.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from ..kernel.errors import ConfigurationError
from .control import ControlSpec

UNBOUNDED = float("inf")


@dataclass(slots=True)
class WindowObservation:
    """What the executive reports at each GVT round."""

    executed: int = 0
    rolled_back: int = 0
    #: fraction of wall-clock the LPs spent blocked on the window
    blocked_fraction: float = 0.0

    @property
    def waste(self) -> float:
        return self.rolled_back / self.executed if self.executed else 0.0


class TimeWindowPolicy(Protocol):
    """Controls the optimism window of the whole simulation."""

    def initial_window(self) -> float: ...

    def control(self, observation: WindowObservation) -> float:
        """Observe the last GVT interval; return the next window width."""
        ...


@dataclass
class StaticTimeWindow:
    """A fixed optimism bound (reference [20]'s non-adaptive baseline)."""

    window: float = UNBOUNDED
    #: uniform with the adaptive policy, for the ``ctrl.window`` trace record
    last_verdict = "static"

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ConfigurationError("time window must be positive")

    def initial_window(self) -> float:
        return self.window

    def control(self, observation: WindowObservation) -> float:
        return self.window


@dataclass
class AdaptiveTimeWindow:
    """Feedback-controlled optimism window.

    Attributes:
        initial: starting width ``S`` (default unbounded: start as pure
            Time Warp and clamp only if waste shows up).
        high_waste / low_waste: dead-zone thresholds on the wasted-work
            ratio.
        shrink / grow: multiplicative adjustments applied outside the
            dead zone.
        min_window: floor, in virtual-time units; must be generous enough
            to keep several events executable, or throttling serializes
            the simulation.
    """

    initial: float = UNBOUNDED
    high_waste: float = 0.25
    low_waste: float = 0.08
    shrink: float = 0.5
    grow: float = 1.5
    min_window: float = 1.0

    _window: float = field(init=False)
    #: (waste, window) per control invocation
    history: list[tuple[float, float]] = field(default_factory=list, init=False)
    #: dead-zone verdict of the last invocation; recorded in the
    #: ``ctrl.window`` trace record (docs/observability.md)
    last_verdict: str = field(default="", init=False)

    def __post_init__(self) -> None:
        if not 0 <= self.low_waste <= self.high_waste <= 1:
            raise ConfigurationError(
                "need 0 <= low_waste <= high_waste <= 1"
            )
        if not 0 < self.shrink < 1 < self.grow:
            raise ConfigurationError("need shrink in (0,1) and grow > 1")
        if self.min_window <= 0 or self.initial <= 0:
            raise ConfigurationError("windows must be positive")
        self._window = self.initial

    def initial_window(self) -> float:
        return self._window

    def control(self, observation: WindowObservation) -> float:
        waste = observation.waste
        self.history.append((waste, self._window))
        if waste > self.high_waste:
            if self._window is UNBOUNDED or self._window == UNBOUNDED:
                # First clamp: anchor to something observable — the
                # controller cannot halve infinity.  Use min_window scaled
                # well up; subsequent rounds will adjust multiplicatively.
                self._window = self.min_window * 64
                self.last_verdict = "high_waste_first_clamp"
            else:
                self._window = max(self.min_window, self._window * self.shrink)
                self.last_verdict = "high_waste"
        elif waste < self.low_waste:
            self.last_verdict = "low_waste"
            if self._window != UNBOUNDED:
                self._window = self._window * self.grow
        else:
            self.last_verdict = "dead_zone"
        return self._window

    @property
    def window(self) -> float:
        return self._window

    def spec(self) -> ControlSpec:
        return ControlSpec(
            sampled_output="wasted-work ratio (rolled back / executed)",
            configured_parameter="optimism time window W",
            initial_configuration=self.initial,
            transfer_function=(
                f"W *= {self.shrink} above {self.high_waste} waste, "
                f"W *= {self.grow} below {self.low_waste}"
            ),
            period="every GVT round",
        )
