"""Data filters for feedback control.

"Virtually all dynamic control investigations have also used data
filtering techniques to smooth and to prevent spurious data points from
causing wide variations in parameter adjustment" (Section 3).  These are
the filters the controllers in this package use:

* :class:`SampleWindow` — a fixed-depth ring buffer of boolean samples;
  the paper's *Filter Depth* record of the last *n* output-message
  comparisons, whose mean is the Hit Ratio.
* :class:`MovingAverage` — fixed-depth mean over float samples.
* :class:`EWMA` — exponentially weighted moving average, for controllers
  that prefer recency weighting over a hard window.
"""

from __future__ import annotations

from collections import deque

from ..kernel.errors import ConfigurationError


class SampleWindow:
    """Ring buffer of the last ``depth`` boolean samples.

    ``ratio()`` divides by ``depth`` (the paper's definition of the Hit
    Ratio divides by Filter Depth, not by samples seen), so the ratio
    ramps up from zero while the window warms — which conveniently biases
    a freshly started object toward the initial (aggressive) strategy.
    """

    __slots__ = ("depth", "_window", "_true_count", "_total_seen", "_streak_false")

    def __init__(self, depth: int) -> None:
        if depth < 1:
            raise ConfigurationError(f"filter depth must be >= 1, got {depth}")
        self.depth = depth
        self._window: deque[bool] = deque(maxlen=depth)
        self._true_count = 0
        self._total_seen = 0
        self._streak_false = 0

    def record(self, value: bool) -> None:
        if len(self._window) == self.depth:
            if self._window[0]:
                self._true_count -= 1
        self._window.append(value)
        if value:
            self._true_count += 1
            self._streak_false = 0
        else:
            self._streak_false += 1
        self._total_seen += 1

    def ratio(self) -> float:
        """Fraction of true samples over the *full* window depth."""
        return self._true_count / self.depth

    @property
    def samples_seen(self) -> int:
        return self._total_seen

    @property
    def consecutive_false(self) -> int:
        """Length of the current run of false samples (PA-n uses this)."""
        return self._streak_false

    def is_warm(self) -> bool:
        return len(self._window) == self.depth

    def __len__(self) -> int:
        return len(self._window)


class MovingAverage:
    """Mean of the last ``depth`` float samples."""

    __slots__ = ("depth", "_window", "_sum")

    def __init__(self, depth: int) -> None:
        if depth < 1:
            raise ConfigurationError(f"depth must be >= 1, got {depth}")
        self.depth = depth
        self._window: deque[float] = deque(maxlen=depth)
        self._sum = 0.0

    def record(self, value: float) -> None:
        if len(self._window) == self.depth:
            self._sum -= self._window[0]
        self._window.append(value)
        self._sum += value

    def value(self) -> float:
        if not self._window:
            return 0.0
        return self._sum / len(self._window)

    def is_warm(self) -> bool:
        return len(self._window) == self.depth

    def __len__(self) -> int:
        return len(self._window)


class EWMA:
    """Exponentially weighted moving average: ``v <- (1-a)*v + a*x``."""

    __slots__ = ("alpha", "_value", "_primed")

    def __init__(self, alpha: float) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._value = 0.0
        self._primed = False

    def record(self, value: float) -> None:
        if not self._primed:
            self._value = value
            self._primed = True
        else:
            self._value += self.alpha * (value - self._value)

    def value(self) -> float:
        return self._value

    def is_warm(self) -> bool:
        return self._primed
