"""The paper's contribution: on-line configuration by feedback control.

This package holds the ``<O, I, S, T, P>`` control framework (Section 3)
and its three instantiations: dynamic check-pointing (Section 4), dynamic
cancellation (Section 5) and dynamic message aggregation (Section 6).
"""

from .aggregation_controller import BoundedMultiplicativeSAAW, SAAWPolicy
from .cancellation_controller import (
    DynamicCancellation,
    PermanentAggressive,
    PermanentSet,
    single_threshold,
)
from .checkpoint_controller import DynamicCheckpoint, HillClimbCheckpoint
from .control import ControlSpec, Controlled
from .external import (
    set_aggregation_window,
    set_cancellation_mode,
    set_checkpoint_interval,
    set_optimism_window,
)
from .filters import EWMA, MovingAverage, SampleWindow
from .thresholding import DeadZoneThreshold
from .window_controller import (
    AdaptiveTimeWindow,
    StaticTimeWindow,
    TimeWindowPolicy,
    WindowObservation,
)

__all__ = [
    "BoundedMultiplicativeSAAW",
    "ControlSpec",
    "Controlled",
    "DeadZoneThreshold",
    "DynamicCancellation",
    "DynamicCheckpoint",
    "EWMA",
    "HillClimbCheckpoint",
    "MovingAverage",
    "PermanentAggressive",
    "PermanentSet",
    "SAAWPolicy",
    "SampleWindow",
    "single_threshold",
    "AdaptiveTimeWindow",
    "StaticTimeWindow",
    "TimeWindowPolicy",
    "WindowObservation",
    "set_aggregation_window",
    "set_cancellation_mode",
    "set_checkpoint_interval",
    "set_optimism_window",
]
