"""External adjustment of runtime parameters (paper reference [26]).

Radhakrishnan, Moore & Wilsey, "External adjustment of runtime
parameters in Time Warp synchronized parallel simulators" (IPPS '97) —
the precursor to this paper's on-line configuration: instead of a
feedback loop, a human (or an external agent) changes the simulator's
knobs *while it runs*.  This module reproduces that capability on top of
the same kernel interfaces the controllers use.

An external script is a list of ``(wallclock_us, adjustment)`` pairs
passed through :attr:`SimulationConfig.external_script`; each adjustment
is applied when the modelled cluster reaches that wall-clock time.  The
helpers below build the common adjustments; arbitrary callables taking
the :class:`~repro.cluster.executive.Executive` are accepted too.

Example::

    config = SimulationConfig(external_script=[
        (100_000.0, set_cancellation_mode("disk-3", Mode.LAZY)),
        (250_000.0, set_checkpoint_interval("cache-0", 16)),
        (400_000.0, set_aggregation_window(lp_id=2, window_us=8_000.0)),
    ])
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from ..kernel.cancellation import Mode
from ..kernel.checkpointing import MAX_INTERVAL
from ..kernel.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.executive import Executive

Adjustment = Callable[["Executive"], None]


def _find_ctx(executive: "Executive", obj_name: str):
    for lp in executive.lps:
        for ctx in lp.members.values():
            if ctx.obj.name == obj_name:
                return ctx
    raise ConfigurationError(f"no simulation object named {obj_name!r}")


def set_checkpoint_interval(obj_name: str, interval: int) -> Adjustment:
    """Pin one object's checkpoint interval chi."""
    if not 1 <= interval <= MAX_INTERVAL:
        raise ConfigurationError(
            f"interval must be in [1, {MAX_INTERVAL}], got {interval}"
        )

    def adjust(executive: "Executive") -> None:
        _find_ctx(executive, obj_name).chi = interval

    return adjust


def set_cancellation_mode(obj_name: str, mode: Mode) -> Adjustment:
    """Switch one object's cancellation strategy.

    Exactly like the dynamic controller's switch: it affects how *future*
    rollbacks undo sends; messages already parked keep their semantics.
    """

    def adjust(executive: "Executive") -> None:
        ctx = _find_ctx(executive, obj_name)
        if ctx.mode is not mode:
            ctx.mode = mode
            ctx.stats.mode_switches += 1

    return adjust


def set_aggregation_window(lp_id: int, window_us: float) -> Adjustment:
    """Pin one LP's aggregation window (0 disables buffering for new
    events; anything already buffered is flushed on its old schedule).

    Replaces the LP's aggregation *policy* with a fixed one, so the
    externally chosen window is not overwritten at the next aggregate —
    external adjustment takes the knob away from the controller, exactly
    as in reference [26].
    """
    if window_us < 0:
        raise ConfigurationError("window must be >= 0")

    def adjust(executive: "Executive") -> None:
        from ..comm.aggregation import FixedWindow, NoAggregation

        try:
            lp = executive.lps[lp_id]
        except IndexError:
            raise ConfigurationError(f"no LP {lp_id}") from None
        lp.comm.policy = (
            FixedWindow(window_us) if window_us > 0 else NoAggregation()
        )
        lp.comm.window = window_us

    return adjust


def set_optimism_window(window: float) -> Adjustment:
    """Bound optimism to ``GVT + window`` from now on.

    Installs (or replaces) the executive's time-window policy with a
    static one of the given width, so every subsequent GVT round
    re-anchors the bound — a throttled LP is always unblocked by the next
    round, even if the simulation was started as pure Time Warp.
    """
    if window <= 0:
        raise ConfigurationError("window must be positive")

    def adjust(executive: "Executive") -> None:
        from .window_controller import StaticTimeWindow

        executive.window_policy = StaticTimeWindow(window)
        executive._window_width = window
        bound = executive.gvt + window
        for lp in executive.lps:
            lp.optimism_bound = bound
            if lp.has_work():
                executive._schedule_turn(lp, lp.clock)

    return adjust
