"""DyMA feedback control: the SAAW policy and extensions.

The paper's Simple Adaptive Aggregation Window is described by the tuple
``<R(age), W, W_initial, SAAW, everyAggregate>``: as each aggregate is
sent, the *age-modified* message reception rate it achieved is compared
with the previous aggregate's, and the window grows if the modified rate
rose (bursty traffic: more aggregation is profitable) or shrinks if it
fell (sparse traffic: further delay just harms the receiver).

The age modification implements the paper's requirement that of two
aggregates achieving the same raw rate, the *younger* one counts as the
higher modified rate: ``R(age) = (count / age) / (1 + age_penalty * age)``.

:class:`BoundedMultiplicativeSAAW` (extension) is the same controller with
multiplicative-increase/multiplicative-decrease steps of different gains,
which converges faster from a poor initial window — used by the fig8/fig9
harness's ``--saaw-variant`` ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..kernel.errors import ConfigurationError
from .control import ControlSpec

#: Floor for aggregate ages in rate computations, to avoid dividing by the
#: (wall-clock) zero age of a buffer flushed in the same instant it opened.
MIN_AGE = 1e-3


@dataclass
class SAAWPolicy:
    """Simple Adaptive Aggregation Window.

    Attributes:
        initial_window_us: ``W_initial`` (the only statically fixed input).
        step: relative window adjustment per aggregate (10 % by default).
        age_penalty: weight of the age modification of the rate (per µs).
        min_window_us / max_window_us: clamps for the adapted window.
    """

    initial_window_us: float = 100.0
    step: float = 0.1
    age_penalty: float = 1e-5
    min_window_us: float = 1.0
    max_window_us: float = 100_000.0

    _last_rate: float | None = field(default=None, init=False)
    #: adapted window per aggregate, for analysis
    history: list[float] = field(default_factory=list, init=False)
    #: rate-comparison verdict and sampled R(age) of the last invocation;
    #: recorded in the ``ctrl.aggregation`` trace record
    last_verdict: str = field(default="", init=False)
    last_rate: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if self.initial_window_us <= 0:
            raise ConfigurationError("SAAW initial window must be > 0")
        if not 0 < self.step < 1:
            raise ConfigurationError("SAAW step must be in (0, 1)")
        if not 0 < self.min_window_us <= self.max_window_us:
            raise ConfigurationError("SAAW window clamps are inconsistent")

    # -- AggregationPolicy protocol -------------------------------------- #
    def initial_window(self) -> float:
        return self._clamp(self.initial_window_us)

    def next_window(self, sent_count: int, age: float, window: float) -> float:
        rate = self.modified_rate(sent_count, age)
        previous = self._last_rate
        self._last_rate = rate
        self.last_rate = rate
        if previous is None:
            self.last_verdict = "first_aggregate"
            return window
        if rate > previous:
            self.last_verdict = "rate_rose"
            window = window * (1.0 + self.step)
        elif rate < previous:
            self.last_verdict = "rate_fell"
            window = window * (1.0 - self.step)
        else:
            self.last_verdict = "rate_flat"
        window = self._clamp(window)
        self.history.append(window)
        return window

    # -- helpers ----------------------------------------------------------- #
    def modified_rate(self, count: int, age: float) -> float:
        """``R(age)``: raw reception rate discounted by aggregate age."""
        age = max(age, MIN_AGE)
        return (count / age) / (1.0 + self.age_penalty * age)

    def _clamp(self, window: float) -> float:
        return min(self.max_window_us, max(self.min_window_us, window))

    def spec(self) -> ControlSpec:
        return ControlSpec(
            sampled_output="R(age): age-modified message reception rate",
            configured_parameter="aggregation window W",
            initial_configuration=f"{self.initial_window_us} us",
            transfer_function=(
                f"W *= 1 +/- {self.step} as R(age) rises/falls vs previous aggregate"
            ),
            period="every aggregate",
        )


@dataclass
class BoundedMultiplicativeSAAW(SAAWPolicy):
    """SAAW with asymmetric gains (extension / ablation).

    Growing fast when the rate rises and shrinking cautiously (or vice
    versa) changes convergence speed from a poor ``W_initial``; the paper
    anticipates that "more sophisticated adaption of the window size"
    could improve on SAAW — this is the simplest such refinement.
    """

    grow: float = 0.25
    shrink: float = 0.1

    def __post_init__(self) -> None:
        super().__post_init__()
        if not (0 < self.grow < 1 and 0 < self.shrink < 1):
            raise ConfigurationError("grow/shrink must be in (0, 1)")

    def next_window(self, sent_count: int, age: float, window: float) -> float:
        rate = self.modified_rate(sent_count, age)
        previous = self._last_rate
        self._last_rate = rate
        self.last_rate = rate
        if previous is None:
            self.last_verdict = "first_aggregate"
            return window
        if rate > previous:
            self.last_verdict = "rate_rose"
            window = window * (1.0 + self.grow)
        elif rate < previous:
            self.last_verdict = "rate_fell"
            window = window * (1.0 - self.shrink)
        else:
            self.last_verdict = "rate_flat"
        window = self._clamp(window)
        self.history.append(window)
        return window

    def spec(self) -> ControlSpec:
        base = super().spec()
        return ControlSpec(
            sampled_output=base.sampled_output,
            configured_parameter=base.configured_parameter,
            initial_configuration=base.initial_configuration,
            transfer_function=(
                f"W *= 1 + {self.grow} on rising R(age), W *= 1 - {self.shrink} "
                "on falling"
            ),
            period="every aggregate",
        )
