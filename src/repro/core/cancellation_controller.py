"""Dynamic cancellation: the ``<HR, I, Aggressive, A, P>`` control system.

The Hit Ratio ``HR = (lazy hits + lazy-aggressive hits) / filter depth``
measures how productive an object's premature computations were in its
recent past: a high HR means rolled-back sends are regenerated unchanged,
so lazy cancellation would have avoided the anti-message + resend; a low
HR means the optimistic output really was wrong, so cancelling it
immediately (aggressively) limits error spread.

Variants reproduced from the paper's evaluation:

* :class:`DynamicCancellation` (``DC``) — dead-zone thresholding with
  A2L and L2A thresholds (Figure 3); the evaluation uses filter depth 16,
  A2L = 0.45, L2A = 0.2 for RAID.
* ``ST`` — single threshold: :func:`single_threshold` builds a
  :class:`DynamicCancellation` with A2L == L2A (no dead zone).
* :class:`PermanentSet` (``PS-n``) — behaves like DC until *n*
  comparisons have been observed, then locks the thresholded strategy in
  permanently and *stops monitoring*, eliminating the passive-comparison
  cost (the paper's PS32/PS64).
* :class:`PermanentAggressive` (``PA-n``) — locks aggressive in
  permanently if *n* successive comparisons miss (the paper's PA10);
  otherwise keeps adapting like DC.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..kernel.cancellation import Mode
from ..kernel.errors import ConfigurationError
from .control import ControlSpec
from .filters import SampleWindow
from .thresholding import DeadZoneThreshold


@dataclass
class DynamicCancellation:
    """The paper's DC controller.

    Attributes:
        filter_depth: ring-buffer depth *n* over which HR is computed.
        a2l_threshold: HR at/above which the object switches to lazy.
        l2a_threshold: HR at/below which it switches back to aggressive.
        period: control invocation period ``P`` in resolved comparisons.
    """

    filter_depth: int = 16
    a2l_threshold: float = 0.45
    l2a_threshold: float = 0.2
    period: int | None = 8

    window: SampleWindow = field(init=False)
    _threshold: DeadZoneThreshold[Mode] = field(init=False)
    #: (HR, mode) at each control invocation, for analysis
    history: list[tuple[float, Mode]] = field(default_factory=list, init=False)
    #: dead-zone verdict of the last invocation; recorded in the
    #: ``ctrl.cancellation`` trace record (docs/observability.md)
    last_verdict: str = field(default="", init=False)

    def __post_init__(self) -> None:
        if self.l2a_threshold > self.a2l_threshold:
            raise ConfigurationError(
                "L2A threshold must not exceed A2L threshold "
                f"({self.l2a_threshold} > {self.a2l_threshold})"
            )
        self.window = SampleWindow(self.filter_depth)
        self._threshold = DeadZoneThreshold(
            lower=self.l2a_threshold,
            upper=self.a2l_threshold,
            low=Mode.AGGRESSIVE,
            high=Mode.LAZY,
            initial=Mode.AGGRESSIVE,
        )

    # -- CancellationPolicy protocol ------------------------------------ #
    def initial_mode(self) -> Mode:
        return Mode.AGGRESSIVE

    @property
    def monitoring(self) -> bool:
        return True

    def record(self, hit: bool) -> None:
        self.window.record(hit)

    def control(self) -> Mode:
        hr = self.hit_ratio
        mode = self._threshold.update(hr)
        if hr >= self.a2l_threshold:
            self.last_verdict = "above_a2l"
        elif hr <= self.l2a_threshold:
            self.last_verdict = "below_l2a"
        else:
            self.last_verdict = "dead_zone"
        self.history.append((hr, mode))
        return mode

    # -- introspection --------------------------------------------------- #
    @property
    def hit_ratio(self) -> float:
        return self.window.ratio()

    @property
    def mode(self) -> Mode:
        return self._threshold.output

    @property
    def switches(self) -> int:
        return self._threshold.transitions

    def spec(self) -> ControlSpec:
        return ControlSpec(
            sampled_output=f"HR over filter depth {self.filter_depth}",
            configured_parameter="cancellation strategy",
            initial_configuration=Mode.AGGRESSIVE,
            transfer_function=(
                f"dead-zone threshold: >= {self.a2l_threshold} -> lazy, "
                f"<= {self.l2a_threshold} -> aggressive"
            ),
            period=f"{self.period} comparisons",
        )


def single_threshold(
    threshold: float = 0.4, filter_depth: int = 16, period: int | None = 8
) -> DynamicCancellation:
    """The paper's ``ST`` variant: A2L == L2A (dead zone eliminated)."""
    return DynamicCancellation(
        filter_depth=filter_depth,
        a2l_threshold=threshold,
        l2a_threshold=threshold,
        period=period,
    )


@dataclass
class PermanentSet(DynamicCancellation):
    """``PS-n``: permanently set the strategy after *n* comparisons.

    Once ``lock_after`` comparisons have been observed, the currently
    thresholded strategy is locked in and monitoring stops — the passive
    comparison cost disappears for the rest of the run, which is why the
    paper measured PS32/PS64 slightly ahead of plain DC.
    """

    lock_after: int = 32
    _locked: Mode | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.lock_after < 1:
            raise ConfigurationError("lock_after must be >= 1")

    @property
    def monitoring(self) -> bool:
        return self._locked is None

    @property
    def locked(self) -> Mode | None:
        return self._locked

    def control(self) -> Mode:
        if self._locked is not None:
            self.last_verdict = "locked"
            return self._locked
        mode = super().control()
        if self.window.samples_seen >= self.lock_after:
            # Lock in what the thresholding function currently selects and
            # stop paying for control invocations from here on.
            self._locked = mode
            self.period = None
            self.last_verdict = "locked_in"
        return mode

    def spec(self) -> ControlSpec:
        base = super().spec()
        return ControlSpec(
            sampled_output=base.sampled_output,
            configured_parameter=base.configured_parameter,
            initial_configuration=base.initial_configuration,
            transfer_function=(
                base.transfer_function + f"; lock permanently after "
                f"{self.lock_after} comparisons"
            ),
            period=base.period,
        )


@dataclass
class PermanentAggressive(DynamicCancellation):
    """``PA-n``: lock aggressive in after *n* successive misses.

    An object whose regenerated output keeps differing from its premature
    output is wasting comparison effort: after ``miss_streak`` consecutive
    misses the controller pins aggressive cancellation and stops
    monitoring.
    """

    miss_streak: int = 10
    _locked: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.miss_streak < 1:
            raise ConfigurationError("miss_streak must be >= 1")

    @property
    def monitoring(self) -> bool:
        return not self._locked

    @property
    def locked(self) -> Mode | None:
        return Mode.AGGRESSIVE if self._locked else None

    def record(self, hit: bool) -> None:
        super().record(hit)
        if not self._locked and self.window.consecutive_false >= self.miss_streak:
            self._locked = True

    def control(self) -> Mode:
        if self._locked:
            # Apply the pinned strategy, then stop control invocations.
            self.period = None
            self.last_verdict = "pinned_aggressive"
            return Mode.AGGRESSIVE
        return super().control()

    def spec(self) -> ControlSpec:
        base = super().spec()
        return ControlSpec(
            sampled_output=base.sampled_output,
            configured_parameter=base.configured_parameter,
            initial_configuration=base.initial_configuration,
            transfer_function=(
                base.transfer_function
                + f"; pin aggressive after {self.miss_streak} successive misses"
            ),
            period=base.period,
        )
