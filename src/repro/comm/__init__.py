"""Communication substrate: physical messages, aggregation, NOW network."""

from .aggregation import AggregationPolicy, FixedWindow, NoAggregation
from .message import MessageKind, PhysicalMessage
from .network import Network
from .transport import CommModule

__all__ = [
    "AggregationPolicy",
    "CommModule",
    "FixedWindow",
    "MessageKind",
    "Network",
    "NoAggregation",
]
