"""Per-LP communication module: routing, aggregation, and control traffic.

Every LP owns one :class:`CommModule`.  Remote application events pass
through a per-destination :class:`AggregateBuffer` governed by the LP's
aggregation policy; kernel control messages (GVT tokens) bypass
aggregation.  The module charges all send-side CPU costs to its host LP's
wall clock and asks the host to schedule wall-clock flush callbacks for
aging aggregates.
"""

from __future__ import annotations

from typing import Protocol

from ..cluster.costmodel import CostModel
from ..kernel.event import Event, VirtualTime
from ..trace.tracer import NULL_TRACER
from .aggregation import AggregateBuffer, AggregationPolicy
from .message import MessageKind, PhysicalMessage
from .network import Network


class TransportHost(Protocol):
    """Services the owning LP provides to its comm module."""

    lp_id: int

    @property
    def clock(self) -> float: ...

    def charge(self, cost: float) -> None: ...

    def schedule_flush(self, dst_lp: int, at: float, generation: int) -> None: ...

    def note_physical_sent(self) -> None:
        """Statistics hook: one physical message left this host."""
        ...


class CommModule:
    """Aggregating transport endpoint of one LP."""

    #: Hard cap on events per aggregate; bounds memory and models the MTU.
    MAX_AGGREGATE_EVENTS = 128

    def __init__(
        self,
        host: TransportHost,
        network: Network,
        costs: CostModel,
        policy: AggregationPolicy,
        *,
        tracer=NULL_TRACER,
    ) -> None:
        self.host = host
        self.network = network
        self.costs = costs
        self.policy = policy
        #: structured observability tracer (repro.trace)
        self.tracer = tracer
        self.window: float = policy.initial_window()
        self._buffers: dict[int, AggregateBuffer] = {}
        self._routing: dict[int, int] = {}
        # statistics
        self.aggregates_sent = 0
        self.events_sent = 0
        self.antis_annihilated_in_buffer = 0
        self.window_trace: list[tuple[float, float]] = []

    # ------------------------------------------------------------------ #
    # application-event path
    # ------------------------------------------------------------------ #
    def enqueue(self, event: Event) -> None:
        """Queue one application event for a remote LP (called post-routing,
        so ``event.receiver`` is known to live on another LP)."""
        dst_lp = self._dst_lp_of(event)
        if self.window <= 0.0:
            self._transmit(dst_lp, (event,))
            return
        buffer = self._buffers.get(dst_lp)
        if buffer is None:
            buffer = self._buffers[dst_lp] = AggregateBuffer(dst_lp=dst_lp)
        if event.is_anti and buffer.try_annihilate(event):
            self.antis_annihilated_in_buffer += 1
            return
        if not buffer.events:
            buffer.open(self.host.clock)
            self.host.schedule_flush(
                dst_lp, self.host.clock + self.window, buffer.generation
            )
        buffer.append(event)
        if len(buffer) >= self.MAX_AGGREGATE_EVENTS:
            self._send_aggregate(buffer, trigger="capacity")

    def _dst_lp_of(self, event: Event) -> int:
        # The LP resolves receiver -> LP before calling us and stashes it on
        # a routing side-table to keep Event immutable and compact.
        return self._routing[event.receiver]

    def set_routing(self, routing: dict[int, int]) -> None:
        """Install the receiver-object -> LP map (built by the kernel)."""
        self._routing = routing

    # ------------------------------------------------------------------ #
    # flushing
    # ------------------------------------------------------------------ #
    def flush_due(self, dst_lp: int, generation: int) -> None:
        """Wall-clock flush callback; ignores stale generations."""
        buffer = self._buffers.get(dst_lp)
        if buffer is None or buffer.generation != generation or not buffer.events:
            return
        self._send_aggregate(buffer, trigger="age")

    def flush_all(self) -> int:
        """Force-send every non-empty aggregate (idle or GVT barrier)."""
        flushed = 0
        for buffer in self._buffers.values():
            if buffer.events:
                self._send_aggregate(buffer, trigger="drain")
                flushed += 1
        return flushed

    def _send_aggregate(self, buffer: AggregateBuffer, *, trigger: str = "age") -> None:
        age = buffer.age(self.host.clock)
        count = len(buffer)
        events = buffer.take()
        self._transmit(buffer.dst_lp, events)
        old_window = self.window
        new_window = self.policy.next_window(count, age, self.window)
        if new_window != self.window:
            self.window = new_window
            self.window_trace.append((self.host.clock, new_window))
        tracer = self.tracer
        if tracer.enabled:
            clock = self.host.clock
            tracer.emit(
                "comm.flush", clock,
                lp=self.host.lp_id, dst_lp=buffer.dst_lp,
                count=count, age=age, window=old_window, trigger=trigger,
            )
            # Adaptive policies treat every aggregate as one <O,I,S,T,P>
            # control invocation; static policies carry no verdict.
            verdict = getattr(self.policy, "last_verdict", "")
            if verdict:
                tracer.emit(
                    "ctrl.aggregation", clock,
                    lp=self.host.lp_id, dst_lp=buffer.dst_lp,
                    o=getattr(self.policy, "last_rate", 0.0),
                    old=old_window, new=new_window,
                    verdict=verdict, count=count, age=age,
                )

    def _transmit(self, dst_lp: int, events: tuple[Event, ...]) -> None:
        message = PhysicalMessage(
            src_lp=self.host.lp_id,
            dst_lp=dst_lp,
            kind=MessageKind.DATA,
            events=events,
        )
        self.host.charge(self.costs.physical_send(message.size_bytes()))
        self.host.note_physical_sent()
        self.network.send(message, self.host.clock)
        self.aggregates_sent += 1
        self.events_sent += len(events)

    # ------------------------------------------------------------------ #
    # control traffic (bypasses aggregation)
    # ------------------------------------------------------------------ #
    def send_control(self, dst_lp: int, kind: MessageKind, control: object) -> None:
        message = PhysicalMessage(
            src_lp=self.host.lp_id, dst_lp=dst_lp, kind=kind, control=control
        )
        self.host.charge(self.costs.physical_send(message.size_bytes()))
        self.host.note_physical_sent()
        self.network.send(message, self.host.clock)

    # ------------------------------------------------------------------ #
    # GVT accounting
    # ------------------------------------------------------------------ #
    def min_buffered_time(self) -> VirtualTime | None:
        best: VirtualTime | None = None
        for buffer in self._buffers.values():
            t = buffer.min_event_time()
            if t is not None and (best is None or t < best):
                best = t
        return best

    def buffered_event_count(self) -> int:
        return sum(len(buffer) for buffer in self._buffers.values())


# ---------------------------------------------------------------------- #
# reliable-channel state machines
# ---------------------------------------------------------------------- #
# One sender/receiver pair exists per directed LP channel when the wire
# injects faults (repro.faults.FaultyNetwork drives them).  They are pure
# protocol state — sequencing, cumulative acks, dedup, in-order release —
# with no clocks or scheduling of their own, so they are unit-testable in
# isolation and add nothing to the perfect-wire fast path.


class ReliableSender:
    """Send half of one directed channel.

    Assigns consecutive per-channel sequence numbers and remembers every
    unacknowledged message so a timeout can retransmit it.  A cumulative
    ack for sequence ``n`` settles everything up to and including ``n``.
    """

    __slots__ = ("next_seq", "pending")

    def __init__(self) -> None:
        self.next_seq = 0
        self.pending: dict[int, PhysicalMessage] = {}

    def register(self, message: PhysicalMessage, *, track: bool = True) -> int:
        """Assign the next sequence number; remember it unless ``track``
        is False (fire-and-forget channels still need seqs for dedup)."""
        seq = self.next_seq
        self.next_seq += 1
        if track:
            self.pending[seq] = message
        return seq

    def ack_through(self, cum_seq: int) -> int:
        """Settle every pending message with seq <= ``cum_seq``; returns
        how many were newly settled."""
        settled = [seq for seq in self.pending if seq <= cum_seq]
        for seq in settled:
            del self.pending[seq]
        return len(settled)

    def is_outstanding(self, seq: int) -> bool:
        return seq in self.pending


class ReliableReceiver:
    """Receive half of one directed channel.

    In ordered mode (the retransmitting transport) it holds back
    out-of-order arrivals and releases messages strictly in sequence; in
    unordered mode (fire-and-forget) it only deduplicates, passing unseen
    messages through immediately in arrival order.
    """

    __slots__ = ("ordered", "expected", "_held", "_seen")

    def __init__(self, *, ordered: bool = True) -> None:
        self.ordered = ordered
        self.expected = 0
        self._held: dict[int, PhysicalMessage] = {}
        self._seen: set[int] = set()

    def accept(
        self, seq: int, message: PhysicalMessage
    ) -> list[PhysicalMessage] | None:
        """Process one wire arrival.

        Returns the messages now ready for delivery, in order (possibly
        empty while waiting for a gap to fill), or None for a duplicate
        that must be discarded."""
        if not self.ordered:
            if seq in self._seen:
                return None
            self._seen.add(seq)
            return [message]
        if seq < self.expected or seq in self._held:
            return None
        self._held[seq] = message
        ready: list[PhysicalMessage] = []
        while self.expected in self._held:
            ready.append(self._held.pop(self.expected))
            self.expected += 1
        return ready

    def cumulative_ack(self) -> int:
        """Highest sequence below which everything was delivered (-1 when
        nothing has been)."""
        return self.expected - 1

    def held_count(self) -> int:
        return len(self._held)
