"""Dynamic Message Aggregation: buffers and the policy protocol.

The comm module of each LP collects application events destined to the
same LP that occur in close *wall-clock* proximity and sends them as one
physical message (Section 6 of the paper).  The **policy** decides how
long an aggregate may age before it is sent:

* :class:`NoAggregation` — window 0, every event is its own physical
  message (the paper's "Unaggregated Version");
* :class:`FixedWindow` — the paper's FAW: a constant age limit;
* ``repro.core.aggregation_controller.SAAWPolicy`` — the paper's SAAW
  feedback controller, which re-sizes the window after every aggregate.

The buffer also annihilates anti-messages against positive messages that
are still waiting in the same aggregate — cancelling a message that never
left the machine costs nothing on the wire.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from ..kernel.errors import ConfigurationError
from ..kernel.event import Event, VirtualTime


class AggregationPolicy(Protocol):
    """Controls the aggregation window of one LP's comm module.

    All windows are wall-clock microseconds.  ``initial_window() == 0``
    disables aggregation entirely (immediate sends).
    """

    def initial_window(self) -> float: ...

    def next_window(self, sent_count: int, age: float, window: float) -> float:
        """Called as each aggregate is sent; returns the next window."""
        ...


@dataclass
class NoAggregation:
    """Every application event is sent as its own physical message."""

    def initial_window(self) -> float:
        return 0.0

    def next_window(self, sent_count: int, age: float, window: float) -> float:
        return 0.0


@dataclass
class FixedWindow:
    """The paper's Fixed Aggregation Window (FAW) policy.

    The age of the first event in the aggregate is tracked; once it
    reaches ``window`` the aggregate is sent.  A single comparison per
    enqueue — the cheapest possible policy, but statically balanced.
    """

    window: float

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ConfigurationError(
                f"FAW window must be > 0 (use NoAggregation for 0), got {self.window}"
            )

    def initial_window(self) -> float:
        return self.window

    def next_window(self, sent_count: int, age: float, window: float) -> float:
        return self.window


@dataclass(slots=True)
class AggregateBuffer:
    """Events waiting to leave one LP for one destination LP.

    ``generation`` invalidates stale scheduled flushes: a buffer that was
    already sent (full, forced, or idle-flushed) ignores the wall-clock
    flush that was scheduled for its previous contents.
    """

    dst_lp: int
    events: list[Event] = field(default_factory=list)
    opened_at: float = 0.0
    generation: int = 0
    #: annihilated-in-buffer statistics
    local_annihilations: int = 0

    def open(self, now: float) -> None:
        self.opened_at = now

    def age(self, now: float) -> float:
        return now - self.opened_at

    def append(self, event: Event) -> None:
        self.events.append(event)

    def try_annihilate(self, anti: Event) -> bool:
        """Remove a buffered positive matching ``anti``; True on success."""
        eid = anti.event_id()
        for index in range(len(self.events) - 1, -1, -1):
            buffered = self.events[index]
            if buffered.sign > 0 and buffered.event_id() == eid:
                del self.events[index]
                self.local_annihilations += 1
                return True
        return False

    def take(self) -> tuple[Event, ...]:
        """Empty the buffer and bump the generation."""
        events = tuple(self.events)
        self.events.clear()
        self.generation += 1
        return events

    def min_event_time(self) -> VirtualTime | None:
        if not self.events:
            return None
        return min(event.recv_time for event in self.events)

    def __len__(self) -> int:
        return len(self.events)
