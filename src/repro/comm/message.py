"""Physical messages: what actually crosses the modelled network.

A physical message bundles one or more application events bound from one
LP to another (Dynamic Message Aggregation), or carries a kernel control
payload (a GVT token).  The per-physical-message overhead — not the event
count — dominates 1998-era NOW communication cost, which is the entire
premise of DyMA.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any

from ..kernel.event import Event, VirtualTime

#: Modelled size of the physical-message envelope (UDP/IP + kernel framing).
PHYSICAL_HEADER_BYTES = 64

_serial_counter = itertools.count()


class MessageKind(enum.Enum):
    DATA = "data"
    GVT_TOKEN = "gvt-token"
    GVT_BROADCAST = "gvt-broadcast"


@dataclass(slots=True, frozen=True)
class PhysicalMessage:
    """One wire-level message between two LPs."""

    src_lp: int
    dst_lp: int
    kind: MessageKind
    events: tuple[Event, ...] = ()
    control: Any = None
    serial: int = field(default_factory=lambda: next(_serial_counter))
    # memoized wire size — charged at send, receive and network transit,
    # so computed once (identity-irrelevant: excluded from eq/hash)
    _size: "int | None" = field(default=None, init=False, repr=False, compare=False)

    def size_bytes(self) -> int:
        size = self._size
        if size is None:
            if self.kind is MessageKind.DATA:
                size = PHYSICAL_HEADER_BYTES + sum(
                    e.size_bytes() for e in self.events
                )
            else:
                # Control messages are small and fixed-size.
                size = PHYSICAL_HEADER_BYTES + 32
            object.__setattr__(self, "_size", size)
        return size

    def min_event_time(self) -> VirtualTime | None:
        """Smallest receive timestamp carried (for GVT accounting)."""
        if not self.events:
            return None
        return min(event.recv_time for event in self.events)

    def event_count(self) -> int:
        return len(self.events)
