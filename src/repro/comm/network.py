"""The modelled shared-Ethernet network of workstations.

The network converts a physical message's send-completion wall-clock time
into an arrival wall-clock time at the destination LP, enforces per-channel
FIFO (TCP-like ordering between each LP pair, which WARPED relied on), and
tracks in-flight messages so GVT can account for transient events.

Delivery scheduling is delegated to whatever owns the wall clock (the
cluster executive) through the ``deliver`` callback, keeping this module
independent of the execution engine.
"""

from __future__ import annotations

from typing import Callable

from ..cluster.costmodel import NetworkModel
from ..kernel.event import VirtualTime
from .message import MessageKind, PhysicalMessage

#: Minimal spacing between two arrivals on the same channel; keeps FIFO
#: strict even for zero-size control messages.
CHANNEL_EPSILON = 1e-6


def _jitter_unit(src: int, dst: int, index: int, seed: int = 0) -> float:
    """Deterministic pseudo-random value in [-1, 1] for background load.

    ``index`` is the per-channel message ordinal (not the global serial),
    so a run's jitter pattern depends only on its own traffic — repeated
    runs in one process see identical "background load".
    """
    h = (src * 1_000_003 + dst * 10_007 + index * 97 + seed * 7919)
    h = (h * 2654435761) % 2**32
    return (h / 2**31) - 1.0


class Network:
    """Shared-segment network connecting all LPs."""

    def __init__(
        self,
        model: NetworkModel,
        deliver: Callable[[int, float, PhysicalMessage], None],
    ) -> None:
        self.model = model
        self._deliver = deliver
        self._last_arrival: dict[tuple[int, int], float] = {}
        self._channel_counts: dict[tuple[int, int], int] = {}
        #: in-flight copies, keyed by message serial.  A duplicated or
        #: retransmitted physical message re-enters the wire under the
        #: *same* serial, so each serial carries a copy count — popping the
        #: whole entry on first delivery would drop the remaining copies
        #: from the GVT floor (unsafe) and a stray extra delivery would
        #: double-decrement.
        self._in_flight: dict[int, PhysicalMessage] = {}
        self._in_flight_counts: dict[int, int] = {}
        self._in_flight_total = 0
        #: optional observer invoked for every DATA message entering the
        #: wire (used by distributed GVT algorithms for message colouring)
        self.on_data_send: Callable[[PhysicalMessage], None] | None = None
        # statistics
        self.messages_sent = 0
        self.bytes_sent = 0
        self.events_carried = 0
        self.delivered_count = 0
        #: messages permanently lost on the wire (only a fault-injecting
        #: subclass without retransmission ever increments this)
        self.lost_count = 0

    def send(self, message: PhysicalMessage, completion_clock: float) -> float:
        """Inject ``message`` at ``completion_clock``; returns arrival time."""
        size = message.size_bytes()
        channel = (message.src_lp, message.dst_lp)
        index = self._channel_counts.get(channel, 0)
        self._channel_counts[channel] = index + 1
        jitter = _jitter_unit(
            message.src_lp, message.dst_lp, index, self.model.seed
        )
        latency = self.model.delivery_latency(size, jitter)
        arrival = completion_clock + latency
        previous = self._last_arrival.get(channel)
        if previous is not None and arrival <= previous:
            arrival = previous + CHANNEL_EPSILON
        self._last_arrival[channel] = arrival
        self._track(message)
        if self.on_data_send is not None and message.kind is MessageKind.DATA:
            self.on_data_send(message)
        self.messages_sent += 1
        self.bytes_sent += size
        self.events_carried += message.event_count()
        self._deliver(message.dst_lp, arrival, message)
        return arrival

    # ------------------------------------------------------------------ #
    # in-flight accounting
    # ------------------------------------------------------------------ #
    def _track(self, message: PhysicalMessage) -> None:
        """Account one copy of ``message`` entering the wire."""
        serial = message.serial
        if serial in self._in_flight_counts:
            self._in_flight_counts[serial] += 1
        else:
            self._in_flight[serial] = message
            self._in_flight_counts[serial] = 1
        self._in_flight_total += 1

    def _untrack(self, message: PhysicalMessage) -> bool:
        """Account one copy leaving the wire; False if none was tracked."""
        serial = message.serial
        count = self._in_flight_counts.get(serial)
        if count is None:
            return False
        if count == 1:
            del self._in_flight_counts[serial]
            del self._in_flight[serial]
        else:
            self._in_flight_counts[serial] = count - 1
        self._in_flight_total -= 1
        return True

    def on_delivered(self, message: PhysicalMessage) -> bool:
        """The executive hands the message to its LP; stop tracking one
        copy.  Returns False (and changes nothing) for an over-delivery —
        a copy that was never tracked, or already fully accounted."""
        if not self._untrack(message):
            return False
        self.delivered_count += 1
        return True

    def in_flight_count(self) -> int:
        """Physical copies currently on the wire."""
        return self._in_flight_total

    def undelivered_data_count(self) -> int:
        """DATA messages accepted for transport but not yet handed to
        their LP.  The perfect wire schedules every delivery immediately,
        so the executive's own pending-delivery counters cover it; a
        fault-injecting wire holds messages back and must override this
        for termination detection."""
        return 0

    def wire_counts(self) -> dict[str, int]:
        """Conservation view: sent = delivered + lost + in-flight copies
        must hold at all times (the invariant oracle checks it)."""
        return {
            "sent": self.messages_sent,
            "delivered": self.delivered_count,
            "lost": self.lost_count,
            "in_flight": self._in_flight_total,
        }

    def min_in_flight_time(self) -> VirtualTime | None:
        """Smallest event receive-time still on the wire (GVT accounting)."""
        best: VirtualTime | None = None
        for message in self._in_flight.values():
            t = message.min_event_time()
            if t is not None and (best is None or t < best):
                best = t
        return best
