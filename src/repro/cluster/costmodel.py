"""Modelled CPU and communication costs for the simulated NOW.

The paper measured wall-clock execution time on SUN SPARC 4/5 workstations
connected by 10 Mb Ethernet.  We reproduce the *shape* of those results by
charging modelled CPU time (in microseconds) for every kernel action; the
executive orders LP execution by the resulting wall clock.  What matters
for reproduction is the **ratios** between costs:

* per-physical-message overhead (~1 ms in 1998 UDP stacks) dwarfs event
  granularity (tens of µs) — this is why message aggregation buys ~30 %;
* state saving cost grows with state size, while coast-forward cost grows
  with the checkpoint interval — their sum is the ``Ec`` index the dynamic
  checkpointing controller minimizes;
* lazy-cancellation comparison cost is small but non-zero — this is why
  the PS/PA variants (which stop monitoring) edge out plain DC by ~1 %.

All costs are plain floats in modelled microseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True, slots=True)
class CostModel:
    """Cost parameters of one modelled workstation class.

    The defaults are calibrated (see DESIGN.md §8 and EXPERIMENTS.md) so
    that the baseline configuration commits events at roughly the rate the
    paper reports (~11 k committed events/s).
    """

    #: CPU time to execute one application event, excluding sends.  The
    #: application may scale this per object class via ``grain_factor``.
    event_cost: float = 50.0

    #: Fixed part of saving one state snapshot.
    state_save_base: float = 12.0

    #: Per-byte part of saving one state snapshot.
    state_save_per_byte: float = 0.04

    #: Fixed dispatch cost of a rollback (queue surgery, bookkeeping).
    rollback_base: float = 40.0

    #: Restoring a snapshot costs like copying it back.
    state_restore_base: float = 8.0
    state_restore_per_byte: float = 0.03

    #: Re-executing one event during coast-forward.  Slightly cheaper than
    #: a regular event because sends are suppressed.
    coast_event_factor: float = 0.9

    #: CPU time to hand one physical message to the network (send system
    #: call + protocol stack).  Charged once per physical message, which
    #: is what aggregation amortizes.
    msg_send_overhead: float = 800.0

    #: Per-byte CPU copy cost on the send side.
    msg_send_per_byte: float = 0.05

    #: CPU time to receive one physical message.
    msg_recv_overhead: float = 400.0

    #: Per-byte CPU copy cost on the receive side.
    msg_recv_per_byte: float = 0.05

    #: Handling one application event out of an arrived physical message
    #: (unbundling, enqueue).
    event_handle_cost: float = 6.0

    #: One lazy / lazy-aggressive output comparison.
    lazy_compare_cost: float = 3.0

    #: Delivering an event between two objects of the *same* LP (shared
    #: memory, no protocol stack).
    intra_send_cost: float = 2.0

    #: Sending one anti-message into the comm layer (the physical-message
    #: costs are charged separately when it leaves the LP).
    anti_send_cost: float = 4.0

    #: One invocation of a feedback-control transfer function.
    control_invocation_cost: float = 25.0

    #: Participating in one GVT round (estimation bookkeeping).
    gvt_participation_cost: float = 60.0

    #: Fossil-collecting one history item (event / state / output record).
    fossil_item_cost: float = 0.15

    # ------------------------------------------------------------------ #
    # derived charges
    # ------------------------------------------------------------------ #
    def event_execution(self, grain_factor: float = 1.0) -> float:
        return self.event_cost * grain_factor

    def coast_forward_event(self, grain_factor: float = 1.0) -> float:
        return self.event_cost * grain_factor * self.coast_event_factor

    def state_save(self, size_bytes: int) -> float:
        return self.state_save_base + self.state_save_per_byte * size_bytes

    def state_restore(self, size_bytes: int) -> float:
        return self.state_restore_base + self.state_restore_per_byte * size_bytes

    def physical_send(self, size_bytes: int) -> float:
        return self.msg_send_overhead + self.msg_send_per_byte * size_bytes

    def physical_recv(self, size_bytes: int) -> float:
        return self.msg_recv_overhead + self.msg_recv_per_byte * size_bytes

    def scaled(self, factor: float) -> "CostModel":
        """A uniformly slower (> 1) or faster (< 1) workstation."""
        return replace(
            self,
            **{
                f.name: getattr(self, f.name) * factor
                for f in self.__dataclass_fields__.values()  # type: ignore[attr-defined]
                if f.name != "coast_event_factor"
            },
        )


# Re-export a conventional default so call sites read well.
DEFAULT_COSTS = CostModel()


@dataclass(frozen=True, slots=True)
class NetworkModel:
    """Latency/bandwidth model of the shared 10 Mb Ethernet segment.

    ``delivery_latency`` returns the wire+stack latency from send
    completion to arrival at the destination LP.  Per-channel FIFO is
    enforced by the transport layer, not here.
    """

    #: Fixed one-way latency (propagation + interrupt + kernel wakeup).
    base_latency: float = 500.0

    #: Transmission time per byte.  10 Mb/s == 1.25 MB/s == 0.8 µs/byte.
    per_byte: float = 0.8

    #: Deterministic "background load" jitter amplitude (fraction of the
    #: message latency).  The paper ran on a non-dedicated NOW; setting
    #: this non-zero reproduces that with a seeded hash, keeping runs
    #: deterministic.
    jitter: float = 0.0

    #: Seed mixed into the jitter hash.  Replicate runs (the paper took
    #: five measurements and averaged) vary only this.
    seed: int = 0

    def delivery_latency(self, size_bytes: int, jitter_unit: float = 0.0) -> float:
        latency = self.base_latency + self.per_byte * size_bytes
        if self.jitter:
            latency *= 1.0 + self.jitter * jitter_unit
        return latency


DEFAULT_NETWORK = NetworkModel()
