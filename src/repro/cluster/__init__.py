"""Modelled network-of-workstations: cost model and co-simulation executive."""

from .costmodel import DEFAULT_COSTS, DEFAULT_NETWORK, CostModel, NetworkModel
from .executive import Executive

__all__ = ["CostModel", "DEFAULT_COSTS", "DEFAULT_NETWORK", "Executive", "NetworkModel"]
