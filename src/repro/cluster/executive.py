"""The cluster executive: co-simulation of LPs on a modelled NOW.

The executive owns the wall clock.  It interleaves the logical processes
of a Time Warp simulation exactly as a network of workstations would:
each LP advances its own wall clock as it burns modelled CPU, physical
messages arrive at network-determined wall-clock times, aggregation
windows expire by wall clock, and GVT rounds fire periodically.  The
priority queue over wall-clock times makes the interleaving — and hence
every rollback — deterministic for a given configuration.

This is the substitution for the paper's physical testbed (DESIGN.md §2):
the Time Warp mechanics are executed for real; only the *passage of time*
is modelled.
"""

from __future__ import annotations

import heapq
import itertools
from typing import TYPE_CHECKING

from ..comm.message import MessageKind, PhysicalMessage
from ..comm.network import Network
from ..gvt.manager import GVTAlgorithm
from ..kernel.errors import SchedulingError, TerminationError
from ..kernel.lp import LogicalProcess
from ..kernel.migration import detach_object, restore_object
from ..oracle.invariants import NULL_ORACLE
from ..trace.tracer import NULL_TRACER

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.config import SimulationConfig

_DELIVER = 0
_TURN = 1
_FLUSH = 2
_GVT_TICK = 3
_EXTERNAL = 4
_CALLBACK = 5


class Executive:
    """Wall-clock scheduler for a set of LPs, a network and a GVT manager."""

    def __init__(self, lps: list[LogicalProcess], config: "SimulationConfig") -> None:
        self.lps = lps
        self.config = config
        self._heap: list[tuple[float, int, int, object]] = []
        self._seq = itertools.count()
        if config.faults is not None:
            from ..faults.network import FaultyNetwork

            self.network: Network = FaultyNetwork(
                config.network,
                self._schedule_delivery,
                plan=config.faults,
                schedule_callback=self.schedule_callback,
            )
        else:
            self.network = Network(config.network, self._schedule_delivery)
        self.gvt_algorithm: GVTAlgorithm = None  # type: ignore[assignment]
        self.gvt_history: list[tuple[float, float]] = []
        self._pending_deliveries = 0
        self._pending_data = 0
        self._pending_callbacks = 0
        self._executed_events = 0
        # optional optimism throttling (bounded time windows)
        self.window_policy = (
            config.time_window() if config.time_window is not None else None
        )
        self._window_width = (
            self.window_policy.initial_window() if self.window_policy else None
        )
        self._last_window_executed = 0
        self._last_window_rolled = 0
        self._turn_scheduled = [False] * len(lps)
        self._gvt_tick_scheduled = False
        #: the GVT round period in force; starts at the configured value
        #: and is resized on line by the meta-controller when one is
        #: attached (docs/control.md)
        self.gvt_period = config.gvt_period
        #: optional :class:`repro.control.MetaController`; set by the
        #: kernel when ``config.meta_control`` is given
        self.meta = None
        #: the oid -> LP routing map, set by the kernel.  It is the SAME
        #: dict every CommModule and LP resolver holds, so mutating it in
        #: place retargets all future sends at once (live migration)
        self.routing: dict[int, int] | None = None
        #: objects moved between LPs by :meth:`migrate_object`
        self.migrations = 0
        self.wallclock = 0.0
        self.terminated = False
        #: structured observability tracer (repro.trace); set by the kernel
        self.tracer = NULL_TRACER
        #: runtime invariant oracle (repro.oracle); set by the kernel
        self.oracle = NULL_ORACLE

        for lp in lps:
            lp.schedule_flush = self._make_flush_scheduler(lp)  # type: ignore[method-assign]

    # ------------------------------------------------------------------ #
    # scheduling primitives
    # ------------------------------------------------------------------ #
    def _push(self, when: float, kind: int, data: object) -> None:
        heapq.heappush(self._heap, (when, next(self._seq), kind, data))

    def _schedule_delivery(
        self, dst_lp: int, arrival: float, message: PhysicalMessage
    ) -> None:
        self._pending_deliveries += 1
        if message.kind is MessageKind.DATA:
            self._pending_data += 1
        self._push(arrival, _DELIVER, message)

    def _make_flush_scheduler(self, lp: LogicalProcess):
        def schedule_flush(dst_lp: int, at: float, generation: int) -> None:
            self._push(at, _FLUSH, (lp.lp_id, dst_lp, generation))

        return schedule_flush

    def _schedule_turn(self, lp: LogicalProcess, at: float) -> None:
        if not self._turn_scheduled[lp.lp_id]:
            self._turn_scheduled[lp.lp_id] = True
            self._push(max(at, lp.clock), _TURN, lp.lp_id)

    def _schedule_gvt_tick(self, at: float) -> None:
        if not self._gvt_tick_scheduled:
            self._gvt_tick_scheduled = True
            self._push(at, _GVT_TICK, None)

    def schedule_callback(self, at: float, fn) -> None:
        """Run ``fn(when)`` at wall-clock ``at`` (the fault-injecting
        transport uses this for wire arrivals, acks and retransmit
        timers)."""
        self._pending_callbacks += 1
        self._push(at, _CALLBACK, fn)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Initialize LPs and prime the schedule."""
        for lp in self.lps:
            lp.initialize()
        if self._window_width is not None:
            for lp in self.lps:
                lp.optimism_bound = self._window_width  # anchored at GVT 0
        for lp in self.lps:
            self._schedule_turn(lp, lp.clock)
        self._schedule_gvt_tick(self.gvt_period)
        for when, adjustment in self.config.external_script:
            self._push(when, _EXTERNAL, adjustment)

    def resume(self) -> None:
        """Re-arm the schedule after a quiescent pause (phased execution):
        wake every LP that has work under the (possibly raised) horizon
        and restart the GVT heartbeat."""
        self.terminated = False
        for lp in self.lps:
            if lp.has_work():
                self._schedule_turn(lp, lp.clock)
        self._schedule_gvt_tick(self.wallclock + self.gvt_period)

    def on_new_gvt(self, estimate: float) -> None:
        self.gvt_history.append((self.wallclock, estimate))
        oracle = self.oracle
        if oracle.enabled:
            oracle.on_wire_check(self.wallclock, self.network)
        if self.window_policy is not None:
            self._run_window_control(estimate)
        if self.meta is not None:
            self.meta.on_gvt(self, estimate)
        if self.config.timeline is not None:
            self.config.timeline.record(self)

    def _run_window_control(self, gvt: float) -> None:
        """Extension: adapt and re-anchor the optimism window at each GVT."""
        from ..core.window_controller import WindowObservation

        executed = self._executed_events
        rolled = sum(
            ctx.stats.events_rolled_back
            for lp in self.lps for ctx in lp.members.values()
        )
        observation = WindowObservation(
            executed=executed - self._last_window_executed,
            rolled_back=rolled - self._last_window_rolled,
        )
        self._last_window_executed = executed
        self._last_window_rolled = rolled
        old_width = self._window_width
        self._window_width = self.window_policy.control(observation)
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(
                "ctrl.window", self.wallclock,
                o=observation.waste,
                old=old_width if old_width is not None else float("inf"),
                new=self._window_width,
                verdict=getattr(self.window_policy, "last_verdict", ""),
                executed=observation.executed,
                rolled_back=observation.rolled_back,
                gvt=gvt,
            )
        bound = gvt + self._window_width
        for lp in self.lps:
            lp.charge(lp.costs.control_invocation_cost)
            lp.optimism_bound = bound
            # a wider (or re-anchored) window can unblock an idle LP
            if lp.has_work():
                self._schedule_turn(lp, lp.clock)

    @property
    def gvt(self) -> float:
        return self.gvt_algorithm.gvt if self.gvt_algorithm else 0.0

    # ------------------------------------------------------------------ #
    # live migration (docs/control.md, the placement knob)
    # ------------------------------------------------------------------ #
    def migrate_object(self, oid: int, dst_lp: int) -> None:
        """Move one object between modelled LPs, mid-run.

        The object's full Time Warp context travels as a canonical
        checkpoint (:mod:`repro.kernel.migration`), the shared routing
        map is rewritten in place so every subsequent send targets the
        new host, and deliveries already in flight toward the old host
        are rescued by the LP's ``forward`` hook.
        """
        if self.routing is None:
            raise SchedulingError(
                "executive has no routing map; migration is only "
                "available through TimeWarpSimulation"
            )
        src_lp = self.routing[oid]
        if src_lp == dst_lp:
            return
        if not 0 <= dst_lp < len(self.lps):
            raise SchedulingError(f"no LP {dst_lp} to migrate object {oid} to")
        source = self.lps[src_lp]
        target = self.lps[dst_lp]
        checkpoint = detach_object(source, oid)
        self.routing[oid] = dst_lp
        restore_object(target, checkpoint)
        self.migrations += 1
        if self.tracer.enabled:
            self.tracer.emit(
                "lp.migrate", self.wallclock,
                oid=oid, src_lp=src_lp, dst_lp=dst_lp,
            )
        # the moved events are new work for the target host
        if target.has_work():
            self._schedule_turn(target, target.clock)

    # ------------------------------------------------------------------ #
    # main loop
    # ------------------------------------------------------------------ #
    def run(self) -> None:
        """Run to quiescence: no work, no in-flight messages, no buffers."""
        limit = self.config.max_executed_events
        heap = self._heap
        while heap:
            when, _, kind, data = heapq.heappop(heap)
            self.wallclock = max(self.wallclock, when)

            if kind == _DELIVER:
                self._handle_delivery(when, data)  # type: ignore[arg-type]
            elif kind == _TURN:
                self._handle_turn(when, data)  # type: ignore[arg-type]
            elif kind == _FLUSH:
                self._handle_flush(when, data)  # type: ignore[arg-type]
            elif kind == _EXTERNAL:
                # external runtime adjustment (paper reference [26])
                data(self)  # type: ignore[operator]
                for lp in self.lps:
                    if lp.has_work():
                        self._schedule_turn(lp, lp.clock)
            elif kind == _CALLBACK:
                self._pending_callbacks -= 1
                data(when)  # type: ignore[operator]
            else:  # _GVT_TICK
                self._gvt_tick_scheduled = False
                if self._app_quiescent():
                    # No application work left: stop initiating rounds (a
                    # round's own control traffic must not keep GVT alive
                    # forever); any in-progress round drains on its own.
                    continue
                self.gvt_algorithm.start_round()
                self._schedule_gvt_tick(when + self.gvt_period)

            if limit is not None and self._executed_events > limit:
                raise TerminationError(
                    f"executed more than {limit} events without terminating"
                )
            if self._quiescent():
                break
        self.terminated = True

    def _handle_delivery(self, when: float, message: PhysicalMessage) -> None:
        self._pending_deliveries -= 1
        if message.kind is MessageKind.DATA:
            self._pending_data -= 1
        self.network.on_delivered(message)
        lp = self.lps[message.dst_lp]
        lp.advance_clock_to(when)
        if message.kind is MessageKind.DATA:
            self.gvt_algorithm.observe_receive(message)
            lp.receive_physical(message.size_bytes(), message.events)
        else:
            self.gvt_algorithm.handle_control(message)
        if lp.has_work():
            self._schedule_turn(lp, lp.clock)
        else:
            # A delivery can consume the LP's last work (e.g. an
            # anti-message annihilating everything a rollback re-queued):
            # run the idle hook so dangling lazy comparisons are resolved
            # and aggregates flushed, exactly as an idle turn would.
            lp.on_idle()
            if lp.has_work():
                self._schedule_turn(lp, lp.clock)

    def _handle_turn(self, when: float, lp_id: int) -> None:
        self._turn_scheduled[lp_id] = False
        lp = self.lps[lp_id]
        lp.advance_clock_to(when)
        executed = 0
        while executed < self.config.events_per_turn:
            if not lp.execute_one():
                break
            executed += 1
        self._executed_events += executed
        if lp.has_work():
            self._schedule_turn(lp, lp.clock)
        else:
            lp.on_idle()
            # Expiring comparisons on idle can create new local work
            # (intra-LP anti-messages); re-check before sleeping.
            if lp.has_work():
                self._schedule_turn(lp, lp.clock)

    def _handle_flush(self, when: float, data: tuple[int, int, int]) -> None:
        lp_id, dst_lp, generation = data
        lp = self.lps[lp_id]
        lp.advance_clock_to(when)
        lp.comm.flush_due(dst_lp, generation)

    # ------------------------------------------------------------------ #
    # quiescence
    # ------------------------------------------------------------------ #
    def _app_quiescent(self) -> bool:
        """No application activity: no data on the wire, no runnable
        events, no buffered aggregates, no anti-messages still owed.

        Window-blocked events count as activity (``ignore_window=True``):
        a throttled LP is waiting for GVT, not done — and it is exactly
        the GVT tick this predicate gates that will unblock it."""
        if self._pending_data:
            return False
        if self.network.undelivered_data_count():
            # A fault-injecting wire may hold DATA back (awaiting
            # retransmission) with no delivery scheduled yet.
            return False
        for lp in self.lps:
            if lp.has_work(ignore_window=True):
                return False
            if lp.comm is not None and lp.comm.buffered_event_count():
                return False
            for ctx in lp.members.values():
                if ctx.cmp_buffer.min_live_time() is not None:
                    return False  # an anti-message may still be owed
        return True

    def _quiescent(self) -> bool:
        """Full termination condition: the application is quiescent and
        all control traffic (GVT tokens/broadcasts, transport callbacks)
        has drained too."""
        if self._pending_deliveries:
            return False
        if self._pending_callbacks:
            # Transport work outstanding: a held-back wire copy, an ack,
            # or a (possibly stale) retransmit timer.  Stale timers just
            # pop as no-ops, so waiting on them always terminates.
            return False
        if self.gvt_algorithm.round_active:
            return False
        return self._app_quiescent()

    # ------------------------------------------------------------------ #
    # results
    # ------------------------------------------------------------------ #
    @property
    def execution_time(self) -> float:
        """Modelled makespan: the latest LP wall clock."""
        return max((lp.clock for lp in self.lps), default=0.0)

    @property
    def executed_events(self) -> int:
        return self._executed_events
