"""Execute one :class:`Scenario` and check it against every oracle.

Checks applied to each run (docs/testing.md):

* **Differential** — the committed-state digest (per-object committed
  event counts + canonicalized final states) must equal the sequential
  golden's digest for the same app/topology/horizon.  Because the golden
  is knob-independent, this simultaneously enforces the metamorphic
  claims: config-invariance across every modelled-only knob,
  fault-invariance under reliable transport, and partition/worker-count
  invariance for the parallel backend.
* **Trace equality** — in-process backends (modelled, conservative)
  additionally compare the full committed-event trace, which also checks
  payloads and send times, not just counts and final states.
* **Invariants** — the :class:`~repro.oracle.InvariantOracle` is armed
  in every run (in every worker, for the parallel backend) and must
  report zero violations.

The digest deliberately uses only quantities every backend can produce
deterministically: a process-sharded run is not tick-for-tick stable
(the OS schedule decides the rollback count) but its *committed result*
is, so the digest replays byte-identically across runs and machines.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import time
from collections import Counter
from dataclasses import dataclass, fields as dc_fields, is_dataclass
from typing import Any

from ..conservative import ConservativeSimulation
from ..kernel.kernel import TimeWarpSimulation
from ..oracle.invariants import InvariantOracle
from ..sequential import SequentialSimulation
from ..trace.tracer import Tracer
from .scenario import Scenario

#: Safety valve: a livelocked run aborts instead of hanging the harness.
MAX_EXECUTED_EVENTS = 300_000

#: Wall-clock stall limit handed to the parallel backend.
PARALLEL_TIMEOUT_S = 120.0


def fork_available() -> bool:
    """Whether the process-sharded backend can run on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


# --------------------------------------------------------------------- #
# canonical digesting
# --------------------------------------------------------------------- #
def canonical_value(value: Any) -> Any:
    """JSON-able, cross-process-stable form of an application state."""
    if is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: canonical_value(getattr(value, f.name))
            for f in dc_fields(value)
        }
    if isinstance(value, (list, tuple)):
        return [canonical_value(item) for item in value]
    if isinstance(value, dict):
        return {
            repr(key): canonical_value(val)
            for key, val in sorted(value.items(), key=lambda kv: repr(kv[0]))
        }
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return repr(value)


def committed_digest(records: dict[str, tuple[int, Any]]) -> str:
    """SHA-256 over ``object name -> (committed count, final state)``."""
    doc = [
        [name, committed, canonical_value(state)]
        for name, (committed, state) in sorted(records.items())
    ]
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":")).encode()
    return hashlib.sha256(blob).hexdigest()


# --------------------------------------------------------------------- #
# sequential golden
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class GoldenRef:
    """The sequential kernel's committed result for one workload."""

    digest: str
    committed: int
    per_object: dict[str, int]
    trace: list
    states: dict[str, Any]


_golden_cache: dict[str, GoldenRef] = {}


def _golden_key(scenario: Scenario) -> str:
    return json.dumps(
        [scenario.app, scenario.merged_params(),
         repr(scenario.effective_end_time())],
        sort_keys=True,
    )


def sequential_golden(scenario: Scenario) -> GoldenRef:
    """Golden reference for the scenario's workload (cached per topology)."""
    key = _golden_key(scenario)
    golden = _golden_cache.get(key)
    if golden is None:
        objects = [
            obj for group in scenario.build_partition() for obj in group
        ]
        seq = SequentialSimulation(
            objects,
            record_trace=True,
            end_time=scenario.effective_end_time(),
            max_events=MAX_EXECUTED_EVENTS,
        )
        seq.run()
        per_object = Counter(entry[1] for entry in seq.trace)
        records = {
            obj.name: (per_object.get(obj.name, 0), obj.state)
            for obj in objects
        }
        golden = GoldenRef(
            digest=committed_digest(records),
            committed=seq.events_executed,
            per_object=dict(per_object),
            trace=seq.sorted_trace(),
            states={obj.name: obj.state for obj in objects},
        )
        _golden_cache[key] = golden
    return golden


# --------------------------------------------------------------------- #
# the result of one run
# --------------------------------------------------------------------- #
@dataclass
class ScenarioResult:
    """Everything the checks and the coverage map need from one run."""

    scenario: Scenario
    digest: str = ""
    committed: int = 0
    expected: int = 0
    digest_match: bool = False
    #: full-trace comparison; ``None`` when the backend records no trace
    trace_match: bool | None = None
    violations: tuple[str, ...] = ()
    oracle_checks: int = 0
    features: frozenset = frozenset()
    wall_s: float = 0.0
    error: str = ""

    @property
    def failure_kind(self) -> str:
        """Stable classification driving the shrinker; '' when ok."""
        if self.error:
            return f"error:{self.error.split(':', 1)[0]}"
        if self.violations:
            return f"violation:{self.violations[0]}"
        if not self.digest_match:
            return "digest"
        if self.trace_match is False:
            return "trace"
        return ""

    @property
    def ok(self) -> bool:
        return not self.failure_kind

    def describe(self) -> str:
        s = self.scenario
        knobs = (
            f"{s.app} backend={s.backend}"
            + (f":{s.workers}w" if s.backend == "parallel" else "")
            + f" cancel={s.cancellation} chi={s.checkpoint}"
            f" agg={s.aggregation} snap={s.snapshot} gvt={s.gvt_algorithm}"
            + (" faults" if s.faults else "")
        )
        if self.ok:
            return f"PASS {knobs} ({self.committed} events, {self.wall_s:.2f}s)"
        detail = self.error or (
            f"committed {self.committed}/{self.expected}, "
            f"digest_match={self.digest_match}, "
            f"trace_match={self.trace_match}, "
            f"violations={list(self.violations)}"
        )
        return f"FAIL[{self.failure_kind}] {knobs}: {detail}"


# --------------------------------------------------------------------- #
# execution
# --------------------------------------------------------------------- #
def run_scenario(
    scenario: Scenario,
    *,
    collect_trace_features: bool = True,
    timeout_s: float = PARALLEL_TIMEOUT_S,
) -> ScenarioResult:
    """Run one scenario on its backend and apply every check.

    A crash inside the run is a *finding* (``error:<Type>``), not a
    harness abort — the fuzzer shrinks crashes exactly like divergences.
    """
    from .coverage import features_for  # cycle: coverage imports runner types

    scenario.validate()
    golden = sequential_golden(scenario)
    result = ScenarioResult(scenario=scenario, expected=golden.committed)
    started = time.perf_counter()
    raw: dict[str, Any] = {}
    try:
        if scenario.backend == "modelled":
            raw = _run_modelled(scenario, golden, result, collect_trace_features)
        elif scenario.backend == "conservative":
            raw = _run_conservative(scenario, golden, result)
        else:
            raw = _run_parallel(scenario, golden, result, timeout_s)
    except Exception as exc:
        result.error = f"{type(exc).__name__}: {exc}"
    result.wall_s = time.perf_counter() - started
    result.features = frozenset(features_for(scenario, result, raw))
    return result


def _finish(
    result: ScenarioResult,
    golden: GoldenRef,
    records: dict[str, tuple[int, Any]],
) -> None:
    result.digest = committed_digest(records)
    result.committed = sum(count for count, _ in records.values())
    result.digest_match = result.digest == golden.digest


def _run_modelled(
    scenario: Scenario,
    golden: GoldenRef,
    result: ScenarioResult,
    collect_trace_features: bool,
) -> dict[str, Any]:
    oracle = InvariantOracle()
    tracer = Tracer(capacity=4096) if collect_trace_features else None
    config = scenario.build_config(
        record_trace=True,
        oracle=oracle,
        tracer=tracer,
        max_executed_events=MAX_EXECUTED_EVENTS,
    )
    sim = TimeWarpSimulation(scenario.build_partition(), config)
    stats = sim.run()
    records = {
        name: (
            stats.per_object[name].events_committed
            if name in stats.per_object
            else 0,
            sim.object_named(name).state,
        )
        for name in golden.states
    }
    _finish(result, golden, records)
    result.trace_match = sim.sorted_trace() == golden.trace
    result.violations = tuple(v.invariant for v in oracle.violations)
    result.oracle_checks = oracle.checks
    return {
        "stats": stats,
        "oracle": oracle,
        "trace_types": (
            {r["type"] for r in tracer.records} if tracer is not None else set()
        ),
    }


def _run_conservative(
    scenario: Scenario, golden: GoldenRef, result: ScenarioResult
) -> dict[str, Any]:
    sim = ConservativeSimulation(
        scenario.build_partition(),
        lookahead=scenario.spec.lookahead(scenario.merged_params()),
        end_time=scenario.effective_end_time(),
        lp_speed_factors=scenario.speed_factors(),
        record_trace=True,
    )
    stats = sim.run()
    per_object = Counter(entry[1] for entry in sim.trace or ())
    records = {
        obj.name: (per_object.get(obj.name, 0), obj.state)
        for obj in sim.objects
    }
    _finish(result, golden, records)
    result.trace_match = sim.sorted_trace() == golden.trace
    return {"stats": stats}


def _run_parallel(
    scenario: Scenario,
    golden: GoldenRef,
    result: ScenarioResult,
    timeout_s: float,
) -> dict[str, Any]:
    if not fork_available():  # pragma: no cover - platform dependent
        result.error = (
            "SkipBackend: parallel backend needs the fork start method"
        )
        return {}
    from ..parallel.backend import ParallelSimulation

    config = scenario.build_config(
        oracle=InvariantOracle(),
        max_executed_events=MAX_EXECUTED_EVENTS,
    )
    sim = ParallelSimulation.from_builder(
        scenario.build_partition, config, timeout_s=timeout_s
    )
    stats = sim.run()
    records = {
        name: (
            stats.per_object[name].events_committed
            if name in stats.per_object
            else 0,
            sim.final_states[name],
        )
        for name in golden.states
    }
    _finish(result, golden, records)
    result.violations = tuple(
        f"{violation.invariant}" for _shard, violation in sim.violations
    )
    result.oracle_checks = sim.oracle_checks
    return {
        "stats": stats,
        "gvt_rounds": sim.gvt_rounds_run,
        "migrations": sim.migrations_in,
        "worker_timeline": tuple(sim.worker_timeline),
    }
