"""Greedy scenario shrinking: minimize a failing spec, keep the failure.

Classic delta-debugging over the scenario's own fields, in decreasing
order of how much complexity each strips: drop the fault plan, collapse
the backend to in-process modelled, reset exotic knobs, homogenize the
platform, then pull every topology parameter toward its floor and halve
the horizon.  A candidate is adopted only if re-running it reproduces
the *same* failure kind (``digest`` / ``trace`` / ``violation:x`` /
``error:Type``), so a shrink can never wander onto a different bug.

The shrinker is budgeted: at most ``max_runs`` re-executions, each of
which is a full deterministic scenario run, so a pathological failure
still shrinks in bounded time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from .scenario import Scenario


@dataclass
class ShrinkResult:
    """The minimized scenario plus shrink provenance."""

    scenario: Scenario
    failure_kind: str
    runs: int
    steps: int  # adopted simplifications


def _knob_resets(s: Scenario) -> Iterator[Scenario]:
    if s.faults is not None:
        yield s.with_(faults=None)
    if s.churn is not None:
        yield s.with_(churn=None)
        steps = s.churn.get("steps", [])
        if len(steps) > 1:
            yield s.with_(churn={**s.churn, "steps": steps[:1]})
    if s.wire is not None:
        yield s.with_(wire=None)
    if s.fastpath is not None:
        yield s.with_(fastpath=None)
    if s.backend != "modelled":
        yield s.with_(backend="modelled", workers=1, churn=None, wire=None)
    if s.backend == "parallel" and s.workers > 1:
        yield s.with_(workers=1)
    defaults = Scenario()
    for name in (
        "time_window", "gvt_algorithm", "gvt_period", "snapshot",
        "aggregation", "cancellation", "checkpoint",
    ):
        if getattr(s, name) != getattr(defaults, name):
            yield s.with_(**{name: getattr(defaults, name)})
    if s.lp_speed_factors:
        yield s.with_(lp_speed_factors={})


def _topology_shrinks(s: Scenario) -> Iterator[Scenario]:
    spec = s.spec
    merged = s.merged_params()
    for name, values in spec.fuzz_values.items():
        floor = values[0]
        current = merged[name]
        if current == floor:
            continue
        yield s.with_(app_params={**s.app_params, name: floor})
        if isinstance(current, int) and isinstance(floor, int):
            mid = (current + floor) // 2
            if floor < mid < current:
                yield s.with_(app_params={**s.app_params, name: mid})
    end_time = s.effective_end_time()
    if end_time != float("inf"):
        for candidate in (60.0, end_time / 2.0):
            if candidate < end_time:
                yield s.with_(end_time=candidate)


def _candidates(s: Scenario) -> Iterator[Scenario]:
    yield from _knob_resets(s)
    yield from _topology_shrinks(s)


def shrink(
    scenario: Scenario,
    failure_kind: str,
    run: Callable[[Scenario], "object"],
    *,
    max_runs: int = 60,
) -> ShrinkResult:
    """Greedily minimize ``scenario`` while ``run`` keeps failing the same.

    ``run`` is any callable returning an object with a ``failure_kind``
    attribute (normally :func:`repro.verify.runner.run_scenario`).
    """
    current = scenario
    runs = steps = 0
    progress = True
    while progress and runs < max_runs:
        progress = False
        for candidate in _candidates(current):
            if runs >= max_runs:
                break
            try:
                candidate.validate()
            except Exception:
                continue  # e.g. conservative backend with exotic knobs
            runs += 1
            try:
                result = run(candidate)
            except Exception:
                continue  # harness crash on the candidate: not a shrink
            if result.failure_kind == failure_kind:
                current = candidate
                steps += 1
                progress = True
                break  # restart the pass from the simpler scenario
    return ShrinkResult(
        scenario=current, failure_kind=failure_kind, runs=runs, steps=steps
    )
