"""The seeded :class:`Scenario` spec and its stable JSON form.

A scenario pins *everything* that selects one verification run: the
application and its topology parameters, every configuration knob the
paper treats as tunable (cancellation variant, checkpoint interval,
aggregation policy, snapshot strategy, GVT algorithm/period, optimism
window), the execution backend (modelled Time Warp, conservative,
process-sharded parallel), modelled heterogeneity, and an optional fault
plan.  Serialization is canonical (sorted keys, all fields explicit) so
a scenario file replays byte-identically and diffs cleanly.

The knob fields mirror the paper's configuration space:

* ``cancellation`` — ``aggressive`` / ``lazy`` / ``dynamic`` (DC) /
  ``st`` / ``ps32`` (PS-n) / ``pa10`` (PA-n);
* ``checkpoint`` — a static chi in [1, 256] or ``"dynamic"``;
* ``aggregation`` — ``none`` / ``fixed`` (FAW) / ``saaw``, with
  ``aggregation_window`` as the initial window;
* ``snapshot`` — ``copy`` / ``pickle`` / ``deepcopy`` / ``array``;
* ``fastpath`` — ``python`` / ``numpy`` hot-core selection (unset =
  config default, i.e. numpy when available);
* ``gvt_algorithm`` — ``omniscient`` / ``mattern``;
* ``time_window`` — ``none`` / ``adaptive``;
* ``meta_control`` — ``off`` / ``on``: the unified MetaController over
  the meta-managed global knobs (docs/control.md).

All of these are **modelled-only** with respect to the committed result:
whatever the knobs, a run must commit exactly the events the sequential
kernel executes.  That metamorphic claim is what the verify harness
checks across the lattice.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, replace
from typing import Any, Callable

from ..apps.phold import PHOLDParams, build_phold
from ..apps.pingpong import build_pingpong
from ..apps.raid import RAIDParams, build_raid
from ..apps.smmp import SMMPParams, build_smmp
from ..comm.aggregation import FixedWindow, NoAggregation
from ..core.aggregation_controller import SAAWPolicy
from ..core.cancellation_controller import (
    DynamicCancellation,
    PermanentAggressive,
    PermanentSet,
    single_threshold,
)
from ..core.checkpoint_controller import DynamicCheckpoint
from ..core.window_controller import AdaptiveTimeWindow
from ..faults.plan import FaultPlan
from ..kernel.arena import FASTPATHS
from ..kernel.cancellation import Mode, StaticCancellation
from ..kernel.checkpointing import MAX_INTERVAL, StaticCheckpoint
from ..kernel.config import SimulationConfig, validate_churn_plan
from ..kernel.errors import ConfigurationError

SCHEMA_SCENARIO = "repro-verify-scenario-1"

#: cancellation variants, in the paper's vocabulary
CANCELLATION_VARIANTS = ("aggressive", "lazy", "dynamic", "st", "ps32", "pa10")
AGGREGATION_VARIANTS = ("none", "fixed", "saaw")
SNAPSHOT_VARIANTS = ("copy", "pickle", "deepcopy", "array")
GVT_VARIANTS = ("omniscient", "mattern")
TIME_WINDOW_VARIANTS = ("none", "adaptive")
METACONTROL_VARIANTS = ("off", "on")
BACKENDS = ("modelled", "conservative", "parallel")


# --------------------------------------------------------------------- #
# application registry
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class AppSpec:
    """One verifiable application: builder, sizing, shrink floors."""

    name: str
    #: verify-sized parameter baseline (small: scenarios run in ~ms)
    base_params: dict
    #: partition builder given the merged parameter dict
    build: Callable[[dict], list]
    #: default virtual-time horizon (PHOLD is unbounded and needs one)
    default_end_time: float
    #: safe conservative lookahead as a function of the merged params
    lookahead: Callable[[dict], float]
    #: fuzzable topology knobs: name -> candidate values (first = floor,
    #: used by the shrinker)
    fuzz_values: dict[str, tuple]

    def merged(self, overrides: dict) -> dict:
        unknown = set(overrides) - set(self.base_params)
        if unknown:
            raise ConfigurationError(
                f"{self.name}: unknown app param(s) {sorted(unknown)} "
                f"(fuzzable: {sorted(self.base_params)})"
            )
        return {**self.base_params, **overrides}


def _build_phold_app(params: dict) -> list:
    return build_phold(PHOLDParams(**params))


def _build_smmp_app(params: dict) -> list:
    return build_smmp(SMMPParams(**params))


def _build_raid_app(params: dict) -> list:
    return build_raid(RAIDParams(**params))


def _build_pingpong_app(params: dict) -> list:
    return build_pingpong(rounds=params["rounds"], delay=params["delay"])


APP_SPECS: dict[str, AppSpec] = {
    "phold": AppSpec(
        name="phold",
        base_params={
            "n_objects": 8, "n_lps": 3, "jobs_per_object": 2,
            "state_size_ints": 4, "deterministic_fraction": 1.0,
            "locality": 0.0, "seed": 11,
        },
        build=_build_phold_app,
        default_end_time=200.0,
        lookahead=lambda p: 5.0,  # PHOLDParams.min_delay default
        fuzz_values={
            "n_objects": (4, 6, 8, 12),
            "n_lps": (1, 2, 3, 4),
            "jobs_per_object": (1, 2, 3),
            "state_size_ints": (0, 4, 8),
            "deterministic_fraction": (0.0, 0.5, 1.0),
            "locality": (0.0, 0.5, 0.9),
            "seed": (2, 11, 23),
        },
    ),
    "smmp": AppSpec(
        name="smmp",
        base_params={
            "n_processors": 4, "n_lps": 2, "n_banks": 4,
            "requests_per_processor": 5, "pipeline_depth": 2,
        },
        build=_build_smmp_app,
        default_end_time=float("inf"),
        lookahead=lambda p: 1.0,  # < bus_time, the smallest SMMP delay
        # value sets are closed under combination: every n_lps divides
        # every n_processors and n_banks choice (SMMPParams.validate)
        fuzz_values={
            "n_processors": (4, 8),
            "n_lps": (1, 2, 4),
            "n_banks": (4, 8),
            "requests_per_processor": (2, 5, 8),
            "pipeline_depth": (1, 2, 3),
        },
    ),
    "raid": AppSpec(
        name="raid",
        base_params={
            "n_sources": 4, "n_forks": 2, "n_disks": 4, "n_lps": 2,
            "requests_per_source": 6, "pipeline_depth": 2, "seed": 7,
        },
        build=_build_raid_app,
        default_end_time=float("inf"),
        lookahead=lambda p: 5.0,  # RAIDParams.fork_time default
        # closed under combination: n_forks | n_sources, n_lps | n_forks,
        # n_lps | n_disks for every choice (RAIDParams.validate)
        fuzz_values={
            "n_sources": (4, 8),
            "n_forks": (2, 4),
            "n_disks": (4, 8),
            "n_lps": (1, 2),
            "requests_per_source": (2, 6, 10),
            "pipeline_depth": (1, 2, 3),
            "seed": (3, 7, 13),
        },
    ),
    "pingpong": AppSpec(
        name="pingpong",
        base_params={"rounds": 60, "delay": 10.0},
        build=_build_pingpong_app,
        default_end_time=float("inf"),
        lookahead=lambda p: p["delay"],
        fuzz_values={
            "rounds": (5, 20, 60, 120),
            "delay": (5.0, 10.0),
        },
    ),
}


# --------------------------------------------------------------------- #
# the scenario itself
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class Scenario:
    """A complete, replayable description of one verification run."""

    app: str = "phold"
    #: overrides over the app's verify-sized baseline (see APP_SPECS)
    app_params: dict = field(default_factory=dict)
    #: virtual-time horizon; ``None`` = the app's default
    end_time: float | None = None

    backend: str = "modelled"
    #: worker-process count (parallel backend only)
    workers: int = 1
    #: inter-shard data wire ("shm" / "queue"; parallel backend only).
    #: ``None`` means the config default, and is omitted from the JSON
    #: form so pre-wire corpus entries keep their scenario ids.
    wire: str | None = None
    #: hot-core selection ("python" / "numpy"; Time Warp backends only).
    #: ``None`` means the config default (numpy when available, silently
    #: degrading to python), and is omitted from the JSON form so
    #: pre-fastpath corpus entries keep their scenario ids.
    fastpath: str | None = None

    cancellation: str = "aggressive"
    #: static chi in [1, MAX_INTERVAL] or "dynamic"
    checkpoint: int | str = 1
    aggregation: str = "none"
    #: FAW window / SAAW initial window, wall-clock microseconds
    aggregation_window: float = 100.0
    snapshot: str = "copy"
    gvt_algorithm: str = "omniscient"
    gvt_period: float = 50_000.0
    time_window: str = "none"
    #: "off" | "on": put the meta-managed global knobs (GVT period,
    #: snapshot strategy) under the unified MetaController loop
    #: (docs/control.md); modelled backend only
    meta_control: str = "off"

    #: modelled per-LP slowdown factors, keyed by LP id (JSON: str keys)
    lp_speed_factors: dict = field(default_factory=dict)
    #: :meth:`FaultPlan.to_dict` form, or ``None`` for a perfect wire
    faults: dict | None = None
    #: seeded elasticity plan — scripted live migrations and worker
    #: join/leave keyed by GVT-commit index (parallel backend only;
    #: :func:`repro.kernel.config.validate_churn_plan` pins the shape).
    #: ``None`` means a fixed worker set, and is omitted from the JSON
    #: form so pre-churn corpus entries keep their scenario ids.
    churn: dict | None = None

    #: generator provenance (which fuzz seed produced this scenario);
    #: does not influence execution
    seed: int = 0

    # -- validation ---------------------------------------------------- #
    def validate(self) -> None:
        spec = APP_SPECS.get(self.app)
        if spec is None:
            raise ConfigurationError(
                f"unknown app {self.app!r} (known: {sorted(APP_SPECS)})"
            )
        spec.merged(self.app_params)  # raises on unknown params
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown backend {self.backend!r} (known: {BACKENDS})"
            )
        if self.workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if self.wire is not None:
            if self.wire not in ("shm", "queue"):
                raise ConfigurationError(
                    f"unknown wire {self.wire!r} (known: 'shm', 'queue')"
                )
            if self.backend != "parallel":
                raise ConfigurationError(
                    "wire selects the inter-shard data path, which only "
                    "the parallel backend has; leave it unset"
                )
        if self.fastpath is not None:
            if self.fastpath not in FASTPATHS:
                raise ConfigurationError(
                    f"unknown fastpath {self.fastpath!r} "
                    f"(known: {FASTPATHS})"
                )
            if self.backend == "conservative":
                raise ConfigurationError(
                    "fastpath selects the Time Warp hot core, which the "
                    "conservative kernel does not have; leave it unset"
                )
        if self.cancellation not in CANCELLATION_VARIANTS:
            raise ConfigurationError(
                f"unknown cancellation variant {self.cancellation!r} "
                f"(known: {CANCELLATION_VARIANTS})"
            )
        if isinstance(self.checkpoint, str):
            if self.checkpoint != "dynamic":
                raise ConfigurationError(
                    f"checkpoint must be an interval or 'dynamic', "
                    f"got {self.checkpoint!r}"
                )
        elif not 1 <= self.checkpoint <= MAX_INTERVAL:
            raise ConfigurationError(
                f"checkpoint interval must be in [1, {MAX_INTERVAL}], "
                f"got {self.checkpoint!r}"
            )
        if self.aggregation not in AGGREGATION_VARIANTS:
            raise ConfigurationError(
                f"unknown aggregation variant {self.aggregation!r}"
            )
        if self.aggregation_window <= 0:
            raise ConfigurationError("aggregation_window must be positive")
        if self.snapshot not in SNAPSHOT_VARIANTS:
            raise ConfigurationError(f"unknown snapshot {self.snapshot!r}")
        if self.gvt_algorithm not in GVT_VARIANTS:
            raise ConfigurationError(
                f"unknown GVT algorithm {self.gvt_algorithm!r}"
            )
        if self.gvt_period <= 0:
            raise ConfigurationError("gvt_period must be positive")
        if self.time_window not in TIME_WINDOW_VARIANTS:
            raise ConfigurationError(
                f"unknown time_window {self.time_window!r}"
            )
        if self.meta_control not in METACONTROL_VARIANTS:
            raise ConfigurationError(
                f"unknown meta_control {self.meta_control!r} "
                f"(known: {METACONTROL_VARIANTS})"
            )
        for lp_id, factor in self.lp_speed_factors.items():
            if int(lp_id) < 0 or float(factor) <= 0:
                raise ConfigurationError(
                    f"bad speed factor {factor!r} for LP {lp_id!r}"
                )
        if self.faults is not None:
            FaultPlan.from_dict(self.faults)  # validates
        if self.backend == "conservative":
            # The conservative kernel has no Time Warp machinery: every
            # rollback-related knob must be at its default so the scenario
            # does not claim coverage it cannot exercise.
            defaults = Scenario()
            for name in (
                "cancellation", "checkpoint", "aggregation", "snapshot",
                "gvt_algorithm", "time_window", "meta_control",
            ):
                if getattr(self, name) != getattr(defaults, name):
                    raise ConfigurationError(
                        f"backend='conservative' ignores {name}; leave it "
                        "at the default"
                    )
            if self.faults is not None:
                raise ConfigurationError(
                    "backend='conservative' does not model network faults"
                )
            if self.workers != 1:
                raise ConfigurationError(
                    "backend='conservative' runs in-process (workers=1)"
                )
        if self.churn is not None:
            if self.backend != "parallel":
                raise ConfigurationError(
                    "churn plans script live migration and worker "
                    "join/leave, which only the parallel backend executes"
                )
            validate_churn_plan(self.churn)
        if self.backend == "parallel":
            if self.faults is not None:
                raise ConfigurationError(
                    "backend='parallel' does not support fault injection "
                    "(docs/parallel.md)"
                )
            if self.lp_speed_factors:
                raise ConfigurationError(
                    "backend='parallel' runs on real CPUs; modelled "
                    "lp_speed_factors do not apply"
                )
            if self.time_window != "none":
                raise ConfigurationError(
                    "backend='parallel' does not support time windows"
                )
            if self.gvt_algorithm != "omniscient":
                raise ConfigurationError(
                    "backend='parallel' always uses its own distributed "
                    "GVT coordinator; leave gvt_algorithm at the default"
                )
            if self.meta_control != "off":
                raise ConfigurationError(
                    "backend='parallel' does not support meta_control "
                    "(docs/control.md)"
                )

    # -- derived ------------------------------------------------------- #
    @property
    def spec(self) -> AppSpec:
        return APP_SPECS[self.app]

    def merged_params(self) -> dict:
        return self.spec.merged(self.app_params)

    def effective_end_time(self) -> float:
        return (
            self.end_time
            if self.end_time is not None
            else self.spec.default_end_time
        )

    def build_partition(self) -> list:
        return self.spec.build(self.merged_params())

    def fault_plan(self) -> FaultPlan | None:
        return None if self.faults is None else FaultPlan.from_dict(self.faults)

    def speed_factors(self) -> dict[int, float]:
        return {int(k): float(v) for k, v in self.lp_speed_factors.items()}

    def build_config(self, **extra: Any) -> SimulationConfig:
        """The :class:`SimulationConfig` this scenario describes.

        ``extra`` lets the runner attach run-local plumbing (oracle,
        tracer, record_trace, max_executed_events) without those living
        in the serialized spec.
        """
        kwargs: dict[str, Any] = dict(
            cancellation=_cancellation_factory(self.cancellation),
            checkpoint=_checkpoint_factory(self.checkpoint),
            aggregation=_aggregation_factory(
                self.aggregation, self.aggregation_window
            ),
            snapshot=self.snapshot,
            gvt_algorithm=self.gvt_algorithm,
            gvt_period=self.gvt_period,
            end_time=self.effective_end_time(),
            backend="parallel" if self.backend == "parallel" else "modelled",
            workers=self.workers if self.backend == "parallel" else 1,
            faults=self.fault_plan(),
            lp_speed_factors=self.speed_factors(),
            churn=self.churn,
        )
        if self.wire is not None:
            kwargs["wire"] = self.wire
        if self.fastpath is not None:
            kwargs["fastpath"] = self.fastpath
        if self.time_window == "adaptive":
            kwargs["time_window"] = lambda: AdaptiveTimeWindow()
        if self.meta_control == "on":
            from ..control.meta import MetaController

            kwargs["meta_control"] = lambda: MetaController()
        kwargs.update(extra)
        return SimulationConfig(**kwargs)

    # -- canonical JSON ------------------------------------------------ #
    def to_dict(self) -> dict:
        doc: dict[str, Any] = {"schema": SCHEMA_SCENARIO}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "end_time" and value == float("inf"):
                value = None  # JSON has no Infinity; None means app default
            if f.name in ("churn", "wire", "fastpath") and value is None:
                # keep pre-churn/pre-wire/pre-fastpath corpus ids stable
                continue
            doc[f.name] = value
        return doc

    def to_json(self) -> str:
        """Canonical serialization: sorted keys, two-space indent."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        data = dict(data)
        schema = data.pop("schema", SCHEMA_SCENARIO)
        if schema != SCHEMA_SCENARIO:
            raise ConfigurationError(
                f"unsupported scenario schema {schema!r} "
                f"(expected {SCHEMA_SCENARIO!r})"
            )
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown scenario field(s): {sorted(unknown)}"
            )
        scenario = cls(**data)
        scenario.validate()
        return scenario

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))

    def scenario_id(self) -> str:
        """Short content hash naming repro/corpus files."""
        doc = self.to_dict()
        doc.pop("seed", None)  # provenance, not behaviour
        blob = json.dumps(doc, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()[:12]

    def with_(self, **changes: Any) -> "Scenario":
        """`dataclasses.replace` spelled for shrinker/fuzzer call sites."""
        return replace(self, **changes)


# --------------------------------------------------------------------- #
# knob -> factory resolution
# --------------------------------------------------------------------- #
def _cancellation_factory(variant: str):
    makers = {
        "aggressive": lambda: StaticCancellation(Mode.AGGRESSIVE),
        "lazy": lambda: StaticCancellation(Mode.LAZY),
        "dynamic": lambda: DynamicCancellation(),
        "st": lambda: single_threshold(),
        "ps32": lambda: PermanentSet(lock_after=32),
        "pa10": lambda: PermanentAggressive(miss_streak=10),
    }
    make = makers[variant]
    return lambda _obj: make()


def _checkpoint_factory(checkpoint: int | str):
    if checkpoint == "dynamic":
        return lambda _obj: DynamicCheckpoint()
    return lambda _obj: StaticCheckpoint(int(checkpoint))


def _aggregation_factory(variant: str, window: float):
    if variant == "none":
        return lambda _lp: NoAggregation()
    if variant == "fixed":
        return lambda _lp: FixedWindow(window)
    return lambda _lp: SAAWPolicy(initial_window_us=window)
