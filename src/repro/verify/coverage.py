"""Lightweight coverage feedback for the configuration-lattice fuzzer.

Coverage is a set of small string *features* extracted from each run:
the lattice point it sat on (backend, cancellation variant, checkpoint
bucket, aggregation, snapshot, GVT, faults on/off) and the behaviour it
actually exercised (rollback count and depth buckets, anti-messages,
lazy hits, controller transitions, which invariant-oracle check kinds
fired, which trace record types were emitted).  The fuzzer biases knob
selection toward values whose features have been seen least, the way a
grey-box fuzzer biases toward rare branch counters — cheap, and enough
to push runs into unexplored lattice regions.
"""

from __future__ import annotations

from .scenario import Scenario


def bucket(n: int) -> str:
    """Logarithmic count bucket: 0 / 1-9 / 10-99 / 100+."""
    if n <= 0:
        return "0"
    if n < 10:
        return "1-9"
    if n < 100:
        return "10-99"
    return "100+"


def _checkpoint_feature(checkpoint: int | str) -> str:
    if checkpoint == "dynamic":
        return "ckpt:dynamic"
    chi = int(checkpoint)
    if chi == 1:
        return "ckpt:1"
    if chi <= 4:
        return "ckpt:2-4"
    if chi <= 16:
        return "ckpt:5-16"
    return "ckpt:17+"


def features_for(scenario: Scenario, result, raw: dict) -> set[str]:
    """The feature set one finished run contributes to the map.

    ``result`` is the :class:`~repro.verify.runner.ScenarioResult` under
    construction; ``raw`` is the runner's backend-specific bag (stats,
    oracle, trace record types).
    """
    s = scenario
    features = {
        f"app:{s.app}",
        f"backend:{s.backend}"
        + (f":{s.workers}" if s.backend == "parallel" else ""),
        f"cancel:{s.cancellation}",
        _checkpoint_feature(s.checkpoint),
        f"agg:{s.aggregation}",
        f"snapshot:{s.snapshot}",
        f"gvt:{s.gvt_algorithm}",
        f"window:{s.time_window}",
        f"meta:{s.meta_control}",
        f"faults:{'on' if s.faults else 'off'}",
        f"speed:{'hetero' if s.lp_speed_factors else 'uniform'}",
        f"churn:{'on' if s.churn else 'off'}",
    }
    if s.backend == "parallel":
        # the wire only exists on the parallel backend; "default" marks a
        # scenario that trusts the config default rather than pinning one
        features.add(f"wire:{s.wire or 'default'}")
    if s.backend != "conservative":
        # hot-core selection only exists on the Time Warp backends
        features.add(f"fastpath:{s.fastpath or 'default'}")
    if "migrations" in raw:
        features.add(f"migrations:{bucket(raw['migrations'])}")
    stats = raw.get("stats")
    if stats is not None:
        features.add(f"rollbacks:{bucket(stats.rollbacks)}")
        features.add(f"antis:{bucket(stats.antis_sent)}")
        features.add(f"gvt_rounds:{bucket(stats.gvt_rounds)}")
        features.add(f"lazy:{'hit' if stats.lazy_hits else 'none'}")
        if stats.rollbacks:
            depth = stats.rolled_back_events / stats.rollbacks
            if depth < 2.0:
                features.add("rb_depth:shallow")
            elif depth < 4.0:
                features.add("rb_depth:medium")
            else:
                features.add("rb_depth:deep")
        switches = sum(
            ostats.mode_switches for ostats in stats.per_object.values()
        )
        features.add(f"switches:{bucket(switches)}")
    oracle = raw.get("oracle")
    if oracle is not None:
        for kind in oracle.checks_by_kind:
            features.add(f"oracle:{kind}")
    for rtype in raw.get("trace_types", ()):
        features.add(f"trace:{rtype}")
    return features


class CoverageMap:
    """Feature -> times-seen counts, plus the novelty test."""

    def __init__(self) -> None:
        self.counts: dict[str, int] = {}
        self.runs = 0

    def add(self, features: frozenset | set) -> set[str]:
        """Record one run's features; returns the never-seen-before ones."""
        self.runs += 1
        fresh = set()
        for feature in features:
            seen = self.counts.get(feature, 0)
            if not seen:
                fresh.add(feature)
            self.counts[feature] = seen + 1
        return fresh

    def seen(self, feature: str) -> int:
        return self.counts.get(feature, 0)

    def covered(self, prefix: str) -> list[str]:
        """Covered features under a prefix, e.g. ``backend:``."""
        return sorted(f for f in self.counts if f.startswith(prefix))

    def render(self) -> str:
        groups: dict[str, list[str]] = {}
        for feature in sorted(self.counts):
            prefix = feature.split(":", 1)[0]
            groups.setdefault(prefix, []).append(feature)
        lines = [f"coverage: {len(self.counts)} feature(s) over {self.runs} run(s)"]
        for prefix, members in sorted(groups.items()):
            values = ", ".join(
                f"{m.split(':', 1)[1]}x{self.counts[m]}" for m in members
            )
            lines.append(f"  {prefix}: {values}")
        return "\n".join(lines)
