"""Replayable scenario files: the corpus and shrunk repro captures.

Two document kinds share one envelope (``scenario`` + metadata):

* **corpus** files (``tests/corpus/*.json``) pin a scenario together
  with its expected committed-state digest; CI replays each twice and
  the digests must match the recorded one byte-identically both times;
* **repro** files (``repro_<id>.json``) are written by the fuzzer for a
  shrunk divergence and carry the observed failure instead of an
  expectation; ``repro-verify replay`` re-executes them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from ..kernel.errors import ConfigurationError
from .runner import ScenarioResult, run_scenario
from .scenario import Scenario

SCHEMA_CORPUS = "repro-verify-corpus-1"
SCHEMA_REPRO = "repro-verify-repro-1"


# --------------------------------------------------------------------- #
# writing
# --------------------------------------------------------------------- #
def _dump(path: Path, doc: dict) -> Path:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, sort_keys=True, indent=2) + "\n",
                    encoding="utf-8")
    return path


def write_corpus_entry(
    dir_path: str | Path,
    scenario: Scenario,
    result: ScenarioResult,
    *,
    note: str = "",
) -> Path:
    """Pin a passing scenario with its digest as a corpus file."""
    if not result.ok:
        raise ConfigurationError(
            f"refusing to pin a failing scenario ({result.failure_kind}) "
            "as a corpus entry; capture it with write_repro instead"
        )
    doc = {
        "schema": SCHEMA_CORPUS,
        "scenario": scenario.to_dict(),
        "expect": {"digest": result.digest, "committed": result.committed},
        "note": note,
    }
    name = f"scenario_{scenario.app}_{scenario.scenario_id()}.json"
    return _dump(Path(dir_path) / name, doc)


def write_repro(
    dir_path: str | Path,
    shrunk: Scenario,
    original_result: ScenarioResult,
    original: Scenario,
) -> Path:
    """Capture a shrunk divergence as a replayable repro file."""
    doc = {
        "schema": SCHEMA_REPRO,
        "scenario": shrunk.to_dict(),
        "failure": {
            "kind": original_result.failure_kind,
            "detail": original_result.describe(),
        },
        "shrunk_from": original.to_dict(),
    }
    return _dump(Path(dir_path) / f"repro_{shrunk.scenario_id()}.json", doc)


# --------------------------------------------------------------------- #
# loading and replaying
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ReplayOutcome:
    """One file's replay verdict."""

    path: str
    scenario: Scenario
    results: tuple[ScenarioResult, ...]
    expected_digest: str | None

    @property
    def deterministic(self) -> bool:
        digests = {r.digest for r in self.results}
        return len(digests) == 1

    @property
    def ok(self) -> bool:
        if not all(r.ok for r in self.results):
            return False
        if not self.deterministic:
            return False
        if self.expected_digest is not None:
            return self.results[0].digest == self.expected_digest
        return True

    def render(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        first = self.results[0]
        parts = [
            f"{status} {self.path}: digest {first.digest[:16]}..."
            f" ({first.committed} events, {len(self.results)} run(s))"
        ]
        if not self.deterministic:
            parts.append("  NON-DETERMINISTIC: runs produced different digests")
        if (
            self.expected_digest is not None
            and first.digest != self.expected_digest
        ):
            parts.append(
                f"  digest drifted from recorded {self.expected_digest[:16]}..."
            )
        for result in self.results:
            if not result.ok:
                parts.append("  " + result.describe())
                break
        return "\n".join(parts)


def load_scenario_file(path: str | Path) -> tuple[Scenario, str | None]:
    """Load any envelope (corpus / repro / bare scenario) from ``path``."""
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    schema = doc.get("schema", "")
    if schema in (SCHEMA_CORPUS, SCHEMA_REPRO):
        scenario = Scenario.from_dict(doc["scenario"])
        expect = doc.get("expect") or {}
        return scenario, expect.get("digest")
    # bare scenario document
    return Scenario.from_dict(doc), None


def replay_file(path: str | Path, *, runs: int = 2) -> ReplayOutcome:
    """Re-execute a scenario file ``runs`` times and compare digests."""
    scenario, expected = load_scenario_file(path)
    results = tuple(run_scenario(scenario) for _ in range(runs))
    return ReplayOutcome(
        path=str(path),
        scenario=scenario,
        results=results,
        expected_digest=expected,
    )


def corpus_files(dir_path: str | Path) -> list[Path]:
    return sorted(Path(dir_path).glob("*.json"))
