"""Deterministic enumeration of the configuration lattice.

The full cross product (6 cancellation variants x 8 checkpoint settings
x 3 aggregation policies x 3 snapshot strategies x 2 GVT algorithms x 2
optimism windows x backends) is ~5000 points per app — too many for a
gate.  ``sweep_scenarios`` instead walks the paper-shaped slices that
matter: every value of every axis, one axis at a time, from a default
pivot per app, plus every backend variant of the pivot.  The fuzzer
(:mod:`repro.verify.fuzzer`) explores the interior of the lattice; the
sweep guarantees the axes themselves are always covered.
"""

from __future__ import annotations

from typing import Iterator

from .runner import fork_available
from .scenario import (
    AGGREGATION_VARIANTS,
    CANCELLATION_VARIANTS,
    GVT_VARIANTS,
    SNAPSHOT_VARIANTS,
    TIME_WINDOW_VARIANTS,
    Scenario,
)

#: checkpoint chi values swept along the checkpoint axis
CHECKPOINT_SWEEP = (1, 2, 4, 8, 16, 32, 64, "dynamic")

#: one-axis sweeps: scenario field -> values
AXES: dict[str, tuple] = {
    "cancellation": CANCELLATION_VARIANTS,
    "checkpoint": CHECKPOINT_SWEEP,
    "aggregation": AGGREGATION_VARIANTS,
    "snapshot": SNAPSHOT_VARIANTS,
    "gvt_algorithm": GVT_VARIANTS,
    "time_window": TIME_WINDOW_VARIANTS,
}

DEFAULT_APPS = ("phold", "smmp", "raid")


def sweep_scenarios(
    apps: tuple[str, ...] = DEFAULT_APPS,
    axes: tuple[str, ...] | None = None,
    *,
    include_backends: bool = True,
) -> Iterator[Scenario]:
    """Yield the axis sweep, deduplicated, in a deterministic order."""
    chosen = axes or tuple(AXES)
    unknown = set(chosen) - set(AXES)
    if unknown:
        raise ValueError(f"unknown sweep axis/axes: {sorted(unknown)}")
    seen: set[str] = set()

    def emit(scenario: Scenario) -> Iterator[Scenario]:
        key = scenario.scenario_id()
        if key not in seen:
            seen.add(key)
            yield scenario

    for app in apps:
        pivot = Scenario(app=app)
        yield from emit(pivot)
        for axis in chosen:
            for value in AXES[axis]:
                yield from emit(pivot.with_(**{axis: value}))
        if include_backends:
            yield from emit(pivot.with_(backend="conservative"))
            if fork_available():
                for workers in (1, 2):
                    yield from emit(
                        pivot.with_(backend="parallel", workers=workers)
                    )
