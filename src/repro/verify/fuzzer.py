"""Coverage-guided configuration-lattice fuzzing with repro capture.

Generation is seeded: scenario ``i`` of a ``run_fuzz(budget, seed)``
sweep depends only on ``(seed, i)`` and on the results of scenarios
``0..i-1`` through the coverage map.  With ``allow_parallel=False`` the
whole sweep is bit-for-bit deterministic; process-sharded runs commit a
deterministic *result* but their rollback/anti-message counts depend on
the OS schedule, so their coverage features — and hence the generation
sequence after them — can differ between sweeps.  Knob values are drawn with weights inversely proportional
to how often their coverage feature has been seen, so generation drifts
toward unexplored lattice regions the way a grey-box fuzzer chases rare
branches.

Every run goes through :func:`repro.verify.runner.run_scenario` and its
full check battery.  A failing scenario is greedily shrunk
(:mod:`repro.verify.shrink`) and written as a replayable
``repro_<id>.json``; scenarios that discovered new coverage are reported
so interesting corners can be promoted into ``tests/corpus/``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from pathlib import Path

from .corpus import write_repro
from .coverage import CoverageMap, _checkpoint_feature
from .lattice import CHECKPOINT_SWEEP
from .runner import ScenarioResult, fork_available, run_scenario
from .scenario import (
    AGGREGATION_VARIANTS,
    APP_SPECS,
    CANCELLATION_VARIANTS,
    GVT_VARIANTS,
    METACONTROL_VARIANTS,
    SNAPSHOT_VARIANTS,
    TIME_WINDOW_VARIANTS,
    Scenario,
)
from .shrink import ShrinkResult, shrink

#: apps the generator draws from, with weights (PHOLD is the rollback
#: workhorse; pingpong keeps a cheap smoke lane in every sweep)
APP_WEIGHTS = (("phold", 8), ("smmp", 5), ("raid", 4), ("pingpong", 3))

#: fault rates the generator mixes (reliable transport stays on: an
#: unreliable wire diverges *by design* and is covered by directed tests)
FAULT_RATE_VALUES = (0.0, 0.02, 0.05, 0.10)

GVT_PERIODS = (5_000.0, 20_000.0, 50_000.0, 200_000.0)
PHOLD_END_TIMES = (120.0, 200.0, 300.0)


@dataclass
class FuzzFailure:
    """One divergence: the original, its shrink, and the repro file."""

    result: ScenarioResult
    shrunk: ShrinkResult
    repro_path: str


@dataclass
class FuzzReport:
    """Outcome of one fuzz sweep."""

    seed: int
    budget: int
    coverage: CoverageMap
    results: list[ScenarioResult] = field(default_factory=list)
    failures: list[FuzzFailure] = field(default_factory=list)
    #: scenarios that contributed never-seen features (corpus candidates)
    novel: list[tuple[Scenario, tuple[str, ...]]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def backends_explored(self) -> list[str]:
        return self.coverage.covered("backend:")

    def render(self) -> str:
        wall = sum(r.wall_s for r in self.results)
        lines = [
            f"fuzzed {len(self.results)} scenario(s) "
            f"(seed={self.seed}, {wall:.1f}s simulated wall)",
            self.coverage.render(),
        ]
        lines.append(
            "explored backends/variants: "
            + ", ".join(self.backends_explored())
        )
        for failure in self.failures:
            lines.append(f"  {failure.result.describe()}")
            lines.append(
                f"    shrunk in {failure.shrunk.runs} run(s) -> "
                f"{failure.repro_path}"
            )
        lines.append(
            "PASS (zero divergences)"
            if self.ok
            else f"FAIL ({len(self.failures)} divergence(s))"
        )
        return "\n".join(lines)


# --------------------------------------------------------------------- #
# biased drawing
# --------------------------------------------------------------------- #
def _draw(rng: random.Random, coverage: CoverageMap, pairs: list) -> object:
    """Pick a (value, feature) pair, weighted toward unseen features."""
    weights = [1.0 / (1.0 + coverage.seen(feature)) for _value, feature in pairs]
    return rng.choices([value for value, _ in pairs], weights=weights)[0]


def generate_scenario(
    rng: random.Random,
    coverage: CoverageMap,
    seed: int,
    *,
    allow_parallel: bool = True,
) -> Scenario:
    """One seeded scenario, biased toward unexplored lattice features."""
    app = rng.choices(
        [name for name, _ in APP_WEIGHTS],
        weights=[
            weight / (1.0 + coverage.seen(f"app:{name}"))
            for name, weight in APP_WEIGHTS
        ],
    )[0]
    backends = [("modelled", "backend:modelled", 10),
                ("conservative", "backend:conservative", 2)]
    if allow_parallel and fork_available():
        backends += [("parallel-1", "backend:parallel:1", 1),
                     ("parallel-2", "backend:parallel:2", 2)]
    backend_pick = rng.choices(
        [b for b, _, _ in backends],
        weights=[w / (1.0 + coverage.seen(f)) for _, f, w in backends],
    )[0]
    backend, workers = (
        ("parallel", int(backend_pick[-1]))
        if backend_pick.startswith("parallel")
        else (backend_pick, 1)
    )

    kwargs: dict = {"app": app, "backend": backend, "workers": workers,
                    "seed": seed}

    # topology: leave the baseline alone ~60% of the time
    spec = APP_SPECS[app]
    app_params: dict = {}
    for name, values in spec.fuzz_values.items():
        if rng.random() < 0.2:
            app_params[name] = rng.choice(values)
    kwargs["app_params"] = app_params
    if app == "phold":
        kwargs["end_time"] = rng.choice(PHOLD_END_TIMES)

    if backend != "conservative":
        kwargs["cancellation"] = _draw(
            rng, coverage,
            [(v, f"cancel:{v}") for v in CANCELLATION_VARIANTS],
        )
        kwargs["checkpoint"] = _draw(
            rng, coverage,
            [(v, _checkpoint_feature(v)) for v in CHECKPOINT_SWEEP],
        )
        kwargs["aggregation"] = _draw(
            rng, coverage,
            [(v, f"agg:{v}") for v in AGGREGATION_VARIANTS],
        )
        if kwargs["aggregation"] != "none":
            kwargs["aggregation_window"] = rng.choice((30.0, 100.0, 400.0))
        kwargs["snapshot"] = _draw(
            rng, coverage,
            [(v, f"snapshot:{v}") for v in SNAPSHOT_VARIANTS],
        )
        kwargs["gvt_period"] = rng.choice(GVT_PERIODS)
        # the hot core: pin python, pin numpy, or trust the config
        # default — pinned paths must commit identical results (the
        # numpy pin silently degrades where numpy is absent)
        kwargs["fastpath"] = _draw(
            rng, coverage,
            [(None, "fastpath:default"), ("python", "fastpath:python"),
             ("numpy", "fastpath:numpy")],
        )
    if backend == "modelled":
        kwargs["gvt_algorithm"] = _draw(
            rng, coverage, [(v, f"gvt:{v}") for v in GVT_VARIANTS]
        )
        kwargs["time_window"] = _draw(
            rng, coverage, [(v, f"window:{v}") for v in TIME_WINDOW_VARIANTS]
        )
        kwargs["meta_control"] = _draw(
            rng, coverage, [(v, f"meta:{v}") for v in METACONTROL_VARIANTS]
        )
        if rng.random() < 0.35:
            drop, dup, delay, reorder = (
                rng.choice(FAULT_RATE_VALUES) for _ in range(4)
            )
            if drop or dup or delay or reorder:
                rates: dict = {}
                if drop:
                    rates["drop"] = drop
                if dup:
                    rates["duplicate"] = dup
                if delay:
                    rates["delay"] = delay
                if reorder:
                    rates["reorder"] = reorder
                kwargs["faults"] = {"seed": rng.randrange(10_000),
                                    "rates": rates}
    if backend == "parallel":
        # the inter-shard wire: pin shm, pin queue, or trust the config
        # default — both pinned paths must commit identical results, and
        # the coverage bias keeps the sweep visiting all three
        kwargs["wire"] = _draw(
            rng, coverage,
            [(None, "wire:default"), ("shm", "wire:shm"),
             ("queue", "wire:queue")],
        )
    if backend == "parallel" and workers > 1:
        # elasticity plans: mostly migrations, the occasional worker
        # join/leave; biased on like any other unexplored lattice axis
        churn_on = _draw(
            rng, coverage, [(True, "churn:on"), (False, "churn:off")]
        )
        if churn_on:
            kinds = ("migrate", "migrate", "migrate", "join", "leave")
            steps = [
                {
                    "at": rng.randrange(1, 6),
                    "kind": rng.choice(kinds),
                    "count": rng.randrange(1, 3),
                }
                for _ in range(rng.randrange(1, 4))
            ]
            kwargs["churn"] = {"seed": rng.randrange(10_000), "steps": steps}
    if backend in ("modelled", "conservative") and rng.random() < 0.25:
        n_lps = kwargs["app_params"].get(
            "n_lps", spec.base_params.get("n_lps", 2)
        )
        lp = rng.randrange(max(1, int(n_lps)))
        kwargs["lp_speed_factors"] = {str(lp): rng.choice((1.5, 2.0, 3.0))}

    scenario = Scenario(**kwargs)
    scenario.validate()
    return scenario


# --------------------------------------------------------------------- #
# the sweep
# --------------------------------------------------------------------- #
def run_fuzz(
    budget: int = 200,
    *,
    seed: int = 0,
    out_dir: str | Path = ".",
    allow_parallel: bool = True,
    shrink_budget: int = 60,
    progress=None,
) -> FuzzReport:
    """Fuzz ``budget`` scenarios; shrink + capture every divergence."""
    rng = random.Random(seed)
    coverage = CoverageMap()
    report = FuzzReport(seed=seed, budget=budget, coverage=coverage)
    for index in range(budget):
        scenario = generate_scenario(
            rng, coverage, seed, allow_parallel=allow_parallel
        )
        result = run_scenario(scenario)
        report.results.append(result)
        fresh = coverage.add(result.features)
        if fresh:
            report.novel.append((scenario, tuple(sorted(fresh))))
        if progress is not None:
            progress(index, result)
        if not result.ok:
            shrunk = shrink(
                scenario, result.failure_kind, run_scenario,
                max_runs=shrink_budget,
            )
            path = write_repro(out_dir, shrunk.scenario, result, scenario)
            report.failures.append(
                FuzzFailure(result=result, shrunk=shrunk, repro_path=str(path))
            )
    return report
