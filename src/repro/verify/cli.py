"""``repro-verify`` — drive the deterministic simulation-testing harness.

Subcommands:

* ``sweep``  — enumerate the configuration-lattice axis sweep and run
  every point through the full check battery;
* ``fuzz``   — coverage-guided random exploration of the lattice
  interior, with shrinking and ``repro_*.json`` capture on failure;
* ``replay`` — re-execute scenario / corpus / repro files, twice by
  default, and demand byte-identical committed-state digests;
* ``corpus`` — replay every file in the checked-in corpus directory.

Exit status is 0 only when every run passed every check.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .corpus import corpus_files, replay_file
from .fuzzer import run_fuzz
from .lattice import AXES, DEFAULT_APPS, sweep_scenarios
from .runner import run_scenario
from .scenario import APP_SPECS

DEFAULT_CORPUS_DIR = "tests/corpus"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-verify",
        description="deterministic simulation testing for the Time Warp "
        "reproduction (docs/testing.md)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sweep = sub.add_parser(
        "sweep", help="run the one-axis-at-a-time lattice sweep"
    )
    sweep.add_argument(
        "--app", action="append", choices=sorted(APP_SPECS), default=None,
        help="app(s) to sweep (default: phold, smmp, raid)",
    )
    sweep.add_argument(
        "--axis", action="append", choices=sorted(AXES), default=None,
        help="restrict to these axes (default: all)",
    )
    sweep.add_argument(
        "--no-backends", action="store_true",
        help="skip the conservative/parallel backend variants",
    )
    sweep.add_argument("-v", "--verbose", action="store_true")

    fuzz = sub.add_parser(
        "fuzz", help="coverage-guided lattice fuzzing with shrink + capture"
    )
    fuzz.add_argument("--budget", type=int, default=200,
                      help="number of scenarios to generate (default 200)")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="generation seed (default 0)")
    fuzz.add_argument("--out", default=".",
                      help="directory for repro_*.json captures (default .)")
    fuzz.add_argument("--no-parallel", action="store_true",
                      help="never generate process-sharded scenarios")
    fuzz.add_argument("--shrink-budget", type=int, default=60,
                      help="max re-runs per shrink (default 60)")
    fuzz.add_argument("-v", "--verbose", action="store_true")

    replay = sub.add_parser(
        "replay", help="re-execute scenario/corpus/repro file(s)"
    )
    replay.add_argument("files", nargs="+", metavar="FILE")
    replay.add_argument(
        "--runs", type=int, default=2,
        help="times to execute each file; digests must agree (default 2)",
    )

    corpus = sub.add_parser(
        "corpus", help="replay every file in the corpus directory"
    )
    corpus.add_argument(
        "--dir", default=DEFAULT_CORPUS_DIR,
        help=f"corpus directory (default {DEFAULT_CORPUS_DIR})",
    )
    corpus.add_argument(
        "--runs", type=int, default=2,
        help="times to execute each entry (default 2)",
    )
    return parser


# --------------------------------------------------------------------- #
# subcommand drivers
# --------------------------------------------------------------------- #
def _cmd_sweep(args: argparse.Namespace) -> int:
    apps = tuple(args.app) if args.app else DEFAULT_APPS
    axes = tuple(args.axis) if args.axis else None
    failures = 0
    total = 0
    for scenario in sweep_scenarios(
        apps, axes, include_backends=not args.no_backends
    ):
        result = run_scenario(scenario)
        total += 1
        if not result.ok:
            failures += 1
            print(result.describe())
        elif args.verbose:
            print(result.describe())
    print(f"sweep: {total} scenario(s), {failures} failure(s)")
    return 1 if failures else 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    def progress(index: int, result) -> None:
        if args.verbose:
            print(f"[{index + 1}/{args.budget}] {result.describe()}")
        elif not result.ok:
            print(result.describe())

    report = run_fuzz(
        args.budget,
        seed=args.seed,
        out_dir=args.out,
        allow_parallel=not args.no_parallel,
        shrink_budget=args.shrink_budget,
        progress=progress,
    )
    print(report.render())
    return 0 if report.ok else 1


def _replay_paths(paths: list[Path], runs: int) -> int:
    failures = 0
    for path in paths:
        outcome = replay_file(path, runs=runs)
        print(outcome.render())
        if not outcome.ok:
            failures += 1
    print(f"replay: {len(paths)} file(s), {failures} failure(s)")
    return 1 if failures else 0


def _cmd_replay(args: argparse.Namespace) -> int:
    return _replay_paths([Path(p) for p in args.files], args.runs)


def _cmd_corpus(args: argparse.Namespace) -> int:
    paths = corpus_files(args.dir)
    if not paths:
        print(f"corpus: no *.json files under {args.dir}", file=sys.stderr)
        return 1
    return _replay_paths(paths, args.runs)


_DRIVERS = {
    "sweep": _cmd_sweep,
    "fuzz": _cmd_fuzz,
    "replay": _cmd_replay,
    "corpus": _cmd_corpus,
}


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    return _DRIVERS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
