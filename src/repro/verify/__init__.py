"""Deterministic simulation-testing harness (docs/testing.md).

FoundationDB-style verification for the Time Warp reproduction: a seeded
:class:`Scenario` spec covers the whole configuration lattice (app x
topology x knobs x faults x backend), every run is checked differentially
against the sequential golden plus the invariant oracle, failures shrink
to a minimal replayable ``repro_*.json``, and a checked-in corpus under
``tests/corpus/`` replays byte-identically in CI.

Entry points: the ``repro-verify`` CLI (``sweep`` / ``fuzz`` / ``replay``
/ ``corpus``) and, programmatically, :func:`run_scenario` /
:func:`run_fuzz`.
"""

from .coverage import CoverageMap, features_for
from .fuzzer import FuzzReport, run_fuzz
from .lattice import sweep_scenarios
from .runner import ScenarioResult, run_scenario, sequential_golden
from .scenario import SCHEMA_SCENARIO, Scenario
from .shrink import shrink

__all__ = [
    "CoverageMap",
    "FuzzReport",
    "SCHEMA_SCENARIO",
    "Scenario",
    "ScenarioResult",
    "features_for",
    "run_fuzz",
    "run_scenario",
    "sequential_golden",
    "shrink",
    "sweep_scenarios",
]
