"""Ablation A2 — dynamic-cancellation parameter sensitivity.

Section 5's anti-thrashing trio: deep filters, infrequent control, and
the dead zone between A2L and L2A.  This ablation verifies that the DC
controller is robust across those knobs on RAID — every parameterization
must stay within a few percent of the best, and mode switching must not
thrash (bounded switches per object).
"""

from conftest import REPLICATES, scale_or

from repro.bench.figures import raid_builder
from repro.bench.harness import RAID_PROFILE, run_cell, scaled
from repro.bench.tables import render_results
from repro.core.cancellation_controller import DynamicCancellation
from repro.kernel.kernel import TimeWarpSimulation


def _sweep(scale, replicates):
    build = raid_builder(scaled(1000, scale))
    cases = {
        "fd=4": dict(filter_depth=4, period=2),
        "fd=16 (paper)": dict(filter_depth=16, period=8),
        "fd=64": dict(filter_depth=64, period=16),
        "no dead zone": dict(filter_depth=16, a2l_threshold=0.4,
                             l2a_threshold=0.4, period=8),
        "wide dead zone": dict(filter_depth=16, a2l_threshold=0.6,
                               l2a_threshold=0.1, period=8),
    }
    results = []
    for name, kwargs in cases.items():
        def hook(sim: TimeWarpSimulation, stats):
            switches = sum(
                o.mode_switches for o in stats.per_object.values()
            )
            return {"switches": switches}

        results.append(
            run_cell(name, 0, build, RAID_PROFILE, replicates=replicates,
                     stat_hook=hook,
                     cancellation=lambda o, kw=kwargs: DynamicCancellation(**kw))
        )
    return results


def test_abl_cancellation_parameters(benchmark, show):
    results = benchmark.pedantic(
        lambda: _sweep(scale_or(0.15), REPLICATES), rounds=1, iterations=1
    )
    show(render_results(results, "A2 — DC parameter sensitivity (RAID)"))

    times = {r.label: r.execution_time_us for r in results}
    best = min(times.values())
    # robustness: no parameterization collapses
    for label, t in times.items():
        assert t < best * 1.10, f"{label} fell off the cliff"

    # hysteresis works: the paper configuration does not thrash (few mode
    # switches per object over the whole run)
    paper = next(r for r in results if r.label == "fd=16 (paper)")
    n_objects = 32
    assert paper.extra["switches"] / n_objects < 4
