"""Section 8 text — baseline committed-event rates.

Paper result: with no dynamic optimizations, SMMP processed 11,300
committed events per second and RAID 10,917.  Our modelled SMMP baseline
lands in the same band; RAID is lower because our RAID routes nearly all
of its traffic across LPs (see EXPERIMENTS.md).  The benchmark asserts
the order of magnitude and that the harness is deterministic.
"""

from conftest import REPLICATES, scale_or

from repro.bench.figures import baseline_rates
from repro.bench.tables import render_results


def test_baseline_committed_event_rates(benchmark, show):
    results = benchmark.pedantic(
        lambda: baseline_rates(scale=scale_or(0.15), replicates=REPLICATES),
        rounds=1, iterations=1,
    )
    show(render_results(results, "Section 8 — baseline committed events/s"))

    rates = {r.label: r.committed_per_second for r in results}
    # same order of magnitude as the paper's 11,300 / 10,917
    assert 5_000 < rates["SMMP baseline"] < 25_000
    assert 1_500 < rates["RAID baseline"] < 25_000

    # replicate variation (background load) stays modest
    for r in results:
        assert r.stddev_us < 0.1 * r.execution_time_us
