"""Figure 7 — SMMP: execution time vs number of test vectors per strategy.

Paper result: all SMMP objects strictly favor lazy cancellation, giving
lazy a 15 % speedup over aggressive; all dynamic variants (DC, PS64, PA)
perform on par with lazy, PS64 slightly best among them because it stops
monitoring after locking in.
"""

from conftest import REPLICATES, scale_or

from repro.bench.figures import fig7
from repro.bench.tables import render_series


def test_fig7_smmp_cancellation(benchmark, show):
    results = benchmark.pedantic(
        lambda: fig7(scale=scale_or(0.05), replicates=REPLICATES),
        rounds=1, iterations=1,
    )
    show(render_series(results, "vectors",
                       "Figure 7 — SMMP: execution time vs test vectors"))

    xs = sorted({r.x for r in results})
    times = {(r.label, r.x): r.execution_time_us for r in results}

    for label in ("AC", "LC", "DC", "PS64", "PA10"):
        assert times[(label, xs[-1])] > times[(label, xs[0])]

    big = xs[-1]
    # lazy clearly beats aggressive (paper: ~15 %; shape: > 3 %)
    assert times[("LC", big)] < times[("AC", big)] * 0.97
    # the adaptive variants land between AC and LC, much closer to LC
    for label in ("DC", "PS64", "PA10"):
        assert times[(label, big)] < times[("AC", big)]
        gap_to_lc = times[(label, big)] / times[("LC", big)]
        assert gap_to_lc < 1.08
