"""Ablation A5 — bounded time windows (optimism throttling, extension).

Reference [20] of the paper bounds how far an LP may run ahead of GVT.
On a heavily skewed NOW, pure Time Warp wastes a large share of its work
on rollbacks; a well-chosen static window prunes that waste, but the
right width is workload-dependent — so the window is the fourth facet
configured on line with the same <O,I,S,T,P> machinery.  The adaptive
controller must beat pure Time Warp *and* land within range of the best
static window, without being told it.
"""

from conftest import REPLICATES, scale_or

from repro.apps.phold import PHOLDParams, build_phold
from repro.bench.harness import ExperimentProfile, run_cell
from repro.bench.tables import render_results
from repro.core.window_controller import AdaptiveTimeWindow, StaticTimeWindow

PROFILE = ExperimentProfile(
    "phold-skewed", speed_factors={1: 1.4, 2: 1.8, 3: 2.4}, jitter=0.4,
    gvt_period=20_000.0,
)
WINDOWS = (50.0, 200.0, 1_000.0, 5_000.0)


def _sweep(scale, replicates):
    params = PHOLDParams(n_objects=16, n_lps=4, jobs_per_object=4)
    build = lambda: build_phold(params)
    horizon = 6_000.0 * scale / 0.1
    results = [
        run_cell("unbounded", 0, build, PROFILE, replicates=replicates,
                 end_time=horizon)
    ]
    for window in WINDOWS:
        results.append(
            run_cell(f"static W={window:g}", window, build, PROFILE,
                     replicates=replicates, end_time=horizon,
                     time_window=lambda w=window: StaticTimeWindow(w))
        )
    results.append(
        run_cell("adaptive", 0, build, PROFILE, replicates=replicates,
                 end_time=horizon,
                 time_window=lambda: AdaptiveTimeWindow(min_window=20.0))
    )
    return results


def test_abl_time_window(benchmark, show):
    results = benchmark.pedantic(
        lambda: _sweep(scale_or(0.1), REPLICATES), rounds=1, iterations=1
    )
    show(render_results(results, "A5 — bounded time windows (PHOLD, skewed NOW)"))

    pure = next(r for r in results if r.label == "unbounded")
    adaptive = next(r for r in results if r.label == "adaptive")
    statics = {r.x: r for r in results if r.label.startswith("static")}

    # throttling prunes wasted work on this workload
    best_static = min(r.execution_time_us for r in statics.values())
    assert best_static < pure.execution_time_us
    # the adaptive controller beats pure Time Warp...
    assert adaptive.execution_time_us < pure.execution_time_us
    assert adaptive.rollbacks < pure.rollbacks
    # ...and is competitive with the best static window (within 25 %)
    assert adaptive.execution_time_us < best_static * 1.25
