"""Figure 8 — SMMP: DyMA execution time vs aggregate age.

Paper result: aggregation yields considerable speedup (30 % best case) on
a network of workstations; FAW traces a U over the window sweep with an
interior optimum (too-small windows aggregate too little, too-large
windows delay messages excessively and nullify the benefit); SAAW is
flatter than FAW because it re-converges from a bad initial window — its
statically fixed window is only the *initial* one.
"""

from conftest import REPLICATES, scale_or

from repro.bench.figures import fig8
from repro.bench.tables import render_series


def test_fig8_smmp_dyma(benchmark, show):
    results = benchmark.pedantic(
        lambda: fig8(scale=scale_or(0.1), replicates=REPLICATES),
        rounds=1, iterations=1,
    )
    show(render_series(results, "agg age (us)",
                       "Figure 8 — SMMP: DyMA execution time vs aggregate age"))

    base = next(r for r in results if r.label == "Unaggregated")
    faw = sorted((r for r in results if r.label == "FAW"), key=lambda r: r.x)
    saaw = sorted((r for r in results if r.label == "SAAW"), key=lambda r: r.x)

    faw_times = [r.execution_time_us for r in faw]
    best = min(faw_times)

    # aggregation pays off substantially at the optimum (paper: ~30 %)
    assert best < base.execution_time_us * 0.8
    # the FAW curve is a U: the optimum is interior, and the largest
    # window is worse than the optimum (excessive delay)
    assert faw_times.index(best) not in (0,)
    assert faw_times[-1] > best * 1.2
    # SAAW recovers from the oversized initial window: at the largest
    # age it clearly beats FAW with the same (fixed) window...
    assert saaw[-1].execution_time_us < faw[-1].execution_time_us * 0.95
    # ...and never falls meaningfully below the unaggregated floor of
    # usefulness anywhere in the sweep
    for r in saaw:
        assert r.execution_time_us < base.execution_time_us * 1.05
