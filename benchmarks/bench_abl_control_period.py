"""Ablation A3 — control invocation period P.

Section 3: "control should not be adapted at a high frequency, or the
overhead for tuning the simulator will outweigh the benefits from the
better configuration."  Sweeping the checkpoint controller's P on SMMP
must show both failure modes bounded: very small P pays control overhead
and jitter, very large P adapts too slowly; a broad middle band works.
"""

from conftest import REPLICATES, scale_or

from repro.bench.figures import LC, smmp_builder
from repro.bench.harness import SMMP_PROFILE, run_cell, scaled
from repro.bench.tables import render_results
from repro.core.checkpoint_controller import DynamicCheckpoint
from repro.kernel.checkpointing import StaticCheckpoint

PERIODS = (2, 8, 16, 64, 256)


def _sweep(scale, replicates):
    build = smmp_builder(scaled(1000, scale))
    results = [
        run_cell("static chi=1", 0, build, SMMP_PROFILE,
                 replicates=replicates, cancellation=LC,
                 checkpoint=lambda o: StaticCheckpoint(1))
    ]
    for period in PERIODS:
        results.append(
            run_cell(f"P={period}", period, build, SMMP_PROFILE,
                     replicates=replicates, cancellation=LC,
                     checkpoint=lambda o, p=period: DynamicCheckpoint(period=p))
        )
    return results


def test_abl_control_period(benchmark, show):
    results = benchmark.pedantic(
        lambda: _sweep(scale_or(0.1), REPLICATES), rounds=1, iterations=1
    )
    show(render_results(results, "A3 — control invocation period (SMMP)"))

    static = next(r for r in results if r.label == "static chi=1")
    periods = {r.x: r.execution_time_us for r in results if r.x > 0}

    # the middle band beats no-control
    mid = [periods[p] for p in (8, 16, 64)]
    assert min(mid) < static.execution_time_us
    # an extreme period adapts too slowly to fully close the gap
    assert periods[256] > min(mid)
