"""Ablation A6 — partitioning strategy and its interaction with
cancellation.

Two of the paper's observations hinge on the partition:

* the models are hand-partitioned "to take advantage of the fast
  intra-LP communication" — this ablation quantifies how much that is
  worth by comparing round-robin, greedy-growth, Kernighan-Lin and the
  hand-crafted partition on SMMP;
* "the optimal [cancellation] strategy is sensitive to the partitioning
  scheme" — measured here as the AC-vs-LC gap under two partitions.
"""

from conftest import REPLICATES, scale_or

from repro.apps.smmp import SMMPParams, build_smmp
from repro.bench.harness import SMMP_PROFILE, run_cell, scaled
from repro.bench.tables import render_results
from repro.kernel.cancellation import Mode, StaticCancellation
from repro.partition import (
    apply_assignment,
    greedy_growth,
    kernighan_lin,
    partition_quality,
    profile_model,
    round_robin,
)
from tests.helpers import flatten


def _sweep(scale, replicates):
    params = SMMPParams(requests_per_processor=scaled(1000, scale))
    profile_params = SMMPParams(requests_per_processor=30)
    graph = profile_model(flatten(build_smmp(profile_params)))

    def builder_for(strategy):
        assignment = strategy(graph, 4)
        quality = partition_quality(graph, assignment)
        return (
            lambda: apply_assignment(flatten(build_smmp(params)),
                                     assignment, 4),
            quality["cut_fraction"],
        )

    results = []
    cases = [("hand-crafted", None), ("round-robin", round_robin),
             ("greedy", greedy_growth), ("kernighan-lin", kernighan_lin)]
    for name, strategy in cases:
        if strategy is None:
            build, cut = (lambda: build_smmp(params)), -1.0
        else:
            build, cut = builder_for(strategy)
        for mode_name, mode in (("AC", Mode.AGGRESSIVE), ("LC", Mode.LAZY)):
            result = run_cell(
                f"{name}/{mode_name}", max(cut, 0.0), build, SMMP_PROFILE,
                replicates=replicates,
                cancellation=lambda o, m=mode: StaticCancellation(m),
            )
            result.extra["cut_fraction"] = cut
            results.append(result)
    return results


def test_abl_partitioning(benchmark, show):
    results = benchmark.pedantic(
        lambda: _sweep(scale_or(0.1), REPLICATES), rounds=1, iterations=1
    )
    show(render_results(results,
                        "A6 — partitioning strategies x cancellation (SMMP)"))

    times = {r.label: r.execution_time_us for r in results}
    # locality-aware partitions massively beat round-robin
    assert times["greedy/AC"] < times["round-robin/AC"] / 2
    assert times["kernighan-lin/AC"] < times["round-robin/AC"] / 2
    # and are at least competitive with the hand-crafted one
    assert times["greedy/AC"] < times["hand-crafted/AC"] * 1.15

    # the paper: the optimal cancellation strategy is sensitive to the
    # partitioning scheme — the AC-vs-LC gap differs across partitions
    def gap(name):
        return (times[f"{name}/AC"] - times[f"{name}/LC"]) / times[f"{name}/AC"]

    gaps = {name: gap(name) for name in
            ("hand-crafted", "round-robin", "greedy", "kernighan-lin")}
    assert max(gaps.values()) - min(gaps.values()) > 0.01
