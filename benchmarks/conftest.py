"""Shared configuration for the figure benchmarks.

Every ``bench_*`` module regenerates one table/figure of the paper at a
reduced scale (so ``pytest benchmarks/ --benchmark-only`` finishes in
minutes), asserts the figure's qualitative *shape* — who wins, roughly by
how much, where crossovers fall — and prints the regenerated rows.

Scale can be raised for paper-sized runs::

    REPRO_BENCH_SCALE=1.0 pytest benchmarks/ --benchmark-only
"""

import os

import pytest

#: default scales keep the full benchmark suite around a few minutes
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0"))
REPLICATES = int(os.environ.get("REPRO_BENCH_REPLICATES", "2"))


def scale_or(default: float) -> float:
    return SCALE if SCALE > 0 else default


@pytest.fixture
def show(capsys):
    """Print through pytest's capture so tables appear with -s or on fail."""

    def _show(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _show


def by_label(results):
    out = {}
    for r in results:
        out.setdefault(r.label, []).append(r)
    return out


def mean_time(results, label):
    cells = [r for r in results if r.label == label]
    return sum(r.execution_time_us for r in cells) / len(cells)
