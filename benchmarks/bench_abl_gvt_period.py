"""Ablation A4 — GVT period and algorithm.

GVT estimation reclaims history memory but costs CPU (and, for Mattern's
algorithm, control messages through the same network as application
traffic).  Sweeping the period on RAID shows the trade: very frequent
GVT pays overhead; very infrequent GVT lets history queues grow.  The
distributed Mattern algorithm must track the omniscient estimator's
results at a visible but bounded extra cost.
"""

from conftest import REPLICATES, scale_or

from repro.bench.figures import raid_builder
from repro.bench.harness import RAID_PROFILE, run_cell, scaled
from repro.bench.tables import render_results

PERIODS = (2_000.0, 10_000.0, 50_000.0, 400_000.0)


def _sweep(scale, replicates):
    build = raid_builder(scaled(1000, scale))
    results = []
    for period in PERIODS:
        for algorithm in ("omniscient", "mattern"):
            results.append(
                run_cell(algorithm, period, build, RAID_PROFILE,
                         replicates=replicates,
                         stat_hook=lambda sim, stats: {
                             "peak_state_queue": stats.peak_state_entries
                         },
                         gvt_algorithm=algorithm, gvt_period=period)
            )
    return results


def test_abl_gvt_period(benchmark, show):
    results = benchmark.pedantic(
        lambda: _sweep(scale_or(0.1), REPLICATES), rounds=1, iterations=1
    )
    show(render_results(results, "A4 — GVT period and algorithm (RAID)"))

    omni = {r.x: r for r in results if r.label == "omniscient"}
    matt = {r.x: r for r in results if r.label == "mattern"}

    # infrequent GVT leaves much more history un-reclaimed
    assert omni[PERIODS[-1]].extra["peak_state_queue"] > (
        2 * omni[PERIODS[0]].extra["peak_state_queue"]
    )
    # Mattern's control traffic costs something but stays bounded
    for period in PERIODS:
        ratio = matt[period].execution_time_us / omni[period].execution_time_us
        assert ratio < 1.5
    # at the most aggressive period, the distributed algorithm's message
    # cost is actually visible
    assert matt[PERIODS[0]].physical_messages > omni[PERIODS[0]].physical_messages
