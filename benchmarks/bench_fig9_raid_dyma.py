"""Figure 9 — RAID: DyMA execution time vs aggregate age.

Same layout as Figure 8 on the RAID model: an interior FAW optimum, a
penalty for excessive windows, and SAAW recovering from bad initial
windows.  RAID is even more communication-bound than SMMP (every request
crosses LPs twice), so aggregation gains are at least as large.
"""

from conftest import REPLICATES, scale_or

from repro.bench.figures import fig9
from repro.bench.tables import render_series


def test_fig9_raid_dyma(benchmark, show):
    results = benchmark.pedantic(
        lambda: fig9(scale=scale_or(0.15), replicates=REPLICATES),
        rounds=1, iterations=1,
    )
    show(render_series(results, "agg age (us)",
                       "Figure 9 — RAID: DyMA execution time vs aggregate age"))

    base = next(r for r in results if r.label == "Unaggregated")
    faw = sorted((r for r in results if r.label == "FAW"), key=lambda r: r.x)
    saaw = sorted((r for r in results if r.label == "SAAW"), key=lambda r: r.x)

    faw_times = [r.execution_time_us for r in faw]
    best = min(faw_times)

    assert best < base.execution_time_us * 0.8
    assert faw_times[-1] > best * 1.1
    assert saaw[-1].execution_time_us < faw[-1].execution_time_us
    saaw_times = [r.execution_time_us for r in saaw]
    assert (max(saaw_times) - min(saaw_times)) < (max(faw_times) - min(faw_times))
