"""Figure 5 — dynamic check-pointing, normalized performance.

Paper result: bars for {periodic chi=1 + aggressive, periodic chi=1 +
lazy, dynamic chi + lazy} on RAID and SMMP, normalized to the all-static
case; dynamic check-pointing improved performance by 30 % in the best
case, with SMMP gaining more than RAID.
"""

from conftest import REPLICATES, scale_or

from repro.bench.figures import fig5
from repro.bench.tables import render_fig5


def test_fig5_dynamic_checkpointing(benchmark, show):
    results = benchmark.pedantic(
        lambda: fig5(scale=scale_or(0.15), replicates=REPLICATES),
        rounds=1, iterations=1,
    )
    show(render_fig5(results))

    norm = {r.label: r.extra["normalized"] for r in results}
    # bars are normalized to each app's PC+AC
    assert norm["RAID/PC+AC"] == 1.0
    assert norm["SMMP/PC+AC"] == 1.0
    # lazy cancellation alone helps both apps
    assert norm["RAID/PC+LC"] > 1.0
    assert norm["SMMP/PC+LC"] > 1.0
    # dynamic check-pointing beats static-every-event on both apps...
    assert norm["RAID/DYN+LC"] > norm["RAID/PC+LC"]
    assert norm["SMMP/DYN+LC"] > norm["SMMP/PC+LC"]
    # ...with SMMP the bigger winner (large cache states), and a best-case
    # gain in the double-digit percent range the paper reports
    assert norm["SMMP/DYN+LC"] > norm["RAID/DYN+LC"]
    assert norm["SMMP/DYN+LC"] > 1.10
