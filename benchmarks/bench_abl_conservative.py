"""Ablation A7 — optimistic vs conservative synchronization.

The paper's opening claim (via Fujimoto [9]): Time Warp "has the
potential to outperform" conservative approaches.  With both kernels
implementing the same WARPED interface over the same cost model, the
comparison is apples-to-apples:

SMMP's lookahead is tiny (1 ns — the source-to-cache delay) relative to
its virtual horizon, so the conservative kernel needs thousands of
barrier rounds; Time Warp wins by a factor of ~2 in both regimes, paying
instead with rollbacks (zero for conservative, by construction).  This
is Fujimoto's classic observation in miniature: conservative performance
is hostage to the model's lookahead, optimistic performance to its
rollback behavior.
"""

from conftest import REPLICATES, scale_or

from repro.apps.smmp import SMMPParams, build_smmp
from repro.bench.harness import ExperimentProfile, RunResult, run_cell, scaled
from repro.bench.tables import render_results
from repro.conservative import ConservativeSimulation
from repro.kernel.cancellation import Mode, StaticCancellation

BALANCED = ExperimentProfile("balanced", speed_factors={}, jitter=0.4)
SKEWED = ExperimentProfile("skewed", speed_factors={1: 1.2, 2: 1.4, 3: 1.7},
                           jitter=0.4)


def _conservative_cell(label, params, profile, replicates) -> RunResult:
    import math
    import time as _time

    times = []
    committed = 0
    msgs = 0.0
    start = _time.perf_counter()
    for seed in range(replicates):
        sim = ConservativeSimulation(
            build_smmp(params), lookahead=1.0,
            lp_speed_factors=dict(profile.speed_factors),
            network=profile.config(seed=seed).network,
        )
        stats = sim.run()
        times.append(stats.execution_time)
        committed = stats.committed_events
        msgs += stats.physical_messages
    mean = sum(times) / len(times)
    var = sum((t - mean) ** 2 for t in times) / len(times)
    return RunResult(
        label=label, x=0.0, execution_time_us=mean, stddev_us=math.sqrt(var),
        replicates=replicates, committed_events=committed,
        committed_per_second=committed * replicates / (sum(times) / 1e6),
        rollbacks=0.0, physical_messages=msgs / replicates,
        wall_seconds=_time.perf_counter() - start,
    )


def _sweep(scale, replicates):
    params = SMMPParams(requests_per_processor=scaled(1000, scale))
    results = []
    for profile, tag in ((BALANCED, "balanced"), (SKEWED, "skewed NOW")):
        results.append(
            run_cell(f"TW lazy / {tag}", 0.0, lambda: build_smmp(params),
                     profile, replicates=replicates,
                     cancellation=lambda o: StaticCancellation(Mode.LAZY))
        )
        results.append(
            _conservative_cell(f"conservative / {tag}", params, profile,
                               replicates)
        )
    return results


def test_abl_conservative_vs_optimistic(benchmark, show):
    results = benchmark.pedantic(
        lambda: _sweep(scale_or(0.1), REPLICATES), rounds=1, iterations=1
    )
    show(render_results(results,
                        "A7 — Time Warp vs conservative (SMMP, lookahead 1 ns)"))

    times = {r.label: r.execution_time_us for r in results}
    rollbacks = {r.label: r.rollbacks for r in results}
    # Time Warp wins in both regimes on this low-lookahead model
    assert times["TW lazy / balanced"] < times["conservative / balanced"]
    assert times["TW lazy / skewed NOW"] < times["conservative / skewed NOW"]
    # the trade is real on both sides: conservative never rolls back,
    # Time Warp does (and still wins)
    assert rollbacks["conservative / balanced"] == 0
    assert rollbacks["conservative / skewed NOW"] == 0
    assert rollbacks["TW lazy / skewed NOW"] > 0
