"""Figure 6 — RAID: execution time vs number of requests per strategy.

Paper result: execution time grows with request count for all six
strategies (AC, LC, DC, ST0.4, PS32, PA10); lazy beats aggressive because
disks (which favor lazy) outnumber forks (which favor aggressive), and
the dynamic-cancellation family performs at least on par with lazy (DC /
ST0.4 about 1.5 % and PS32 / PA10 about 2.5 % faster in the paper).
"""

from conftest import REPLICATES, scale_or

from repro.bench.figures import fig6
from repro.bench.tables import render_series


def test_fig6_raid_cancellation(benchmark, show):
    results = benchmark.pedantic(
        lambda: fig6(scale=scale_or(0.15), replicates=REPLICATES),
        rounds=1, iterations=1,
    )
    show(render_series(results, "requests",
                       "Figure 6 — RAID: execution time vs requests"))

    xs = sorted({r.x for r in results})
    times = {(r.label, r.x): r.execution_time_us for r in results}

    # execution time grows with the number of requests, for every strategy
    for label in ("AC", "LC", "DC", "ST0.4", "PS32", "PA10"):
        assert times[(label, xs[-1])] > times[(label, xs[0])]

    # at the largest size: aggressive is the slowest static strategy and
    # the adaptive family is competitive with lazy (within 2 %)
    big = xs[-1]
    assert times[("LC", big)] < times[("AC", big)]
    for label in ("DC", "ST0.4", "PS32", "PA10"):
        assert times[(label, big)] < times[("AC", big)] * 1.005
        assert times[(label, big)] < times[("LC", big)] * 1.02
