"""Ablation A1 — the static checkpoint-interval U-curve.

The paper motivates dynamic check-pointing with the observation that
"some applications operate best with a fairly small value; while others
require much larger values" and that no static analysis exists.  This
sweep regenerates the underlying U on a rollback-heavy, large-state
PHOLD: save-every-event pays maximal state saving (left arm); huge
intervals pay long coast-forwards on every rollback (right arm); the
optimum is interior.  The dynamic controllers must land near the static
optimum without being told where it is.
"""

from conftest import REPLICATES, scale_or

from repro.apps.phold import PHOLDParams, build_phold
from repro.bench.harness import ExperimentProfile, run_cell
from repro.bench.tables import render_results
from repro.core.checkpoint_controller import DynamicCheckpoint, HillClimbCheckpoint
from repro.kernel.cancellation import Mode, StaticCancellation
from repro.kernel.checkpointing import StaticCheckpoint

CHIS = (1, 4, 16, 32, 64, 128, 256)

#: heavily skewed cluster: PHOLD rolls back 10-20 % of events here, which
#: is what makes long coast-forwards expensive
PROFILE = ExperimentProfile(
    "phold-stress", speed_factors={1: 1.3, 2: 1.6, 3: 2.0}, jitter=0.4
)


def _sweep(scale, replicates):
    params = PHOLDParams(n_objects=16, n_lps=4, jobs_per_object=4,
                         state_size_ints=256)
    build = lambda: build_phold(params)
    horizon = 8_000.0 * scale / 0.1
    lazy = lambda o: StaticCancellation(Mode.LAZY)
    results = []
    for chi in CHIS:
        results.append(
            run_cell(f"chi={chi}", chi, build, PROFILE,
                     replicates=replicates, cancellation=lazy,
                     end_time=horizon,
                     checkpoint=lambda o, c=chi: StaticCheckpoint(c))
        )
    results.append(
        run_cell("dynamic", 0, build, PROFILE, replicates=replicates,
                 cancellation=lazy, end_time=horizon,
                 checkpoint=lambda o: DynamicCheckpoint(period=16))
    )
    results.append(
        run_cell("hillclimb", 0, build, PROFILE, replicates=replicates,
                 cancellation=lazy, end_time=horizon,
                 checkpoint=lambda o: HillClimbCheckpoint(period=16, step=2))
    )
    return results


def test_abl_checkpoint_interval_ucurve(benchmark, show):
    results = benchmark.pedantic(
        lambda: _sweep(scale_or(0.1), REPLICATES), rounds=1, iterations=1
    )
    show(render_results(results, "A1 — static chi U-curve vs dynamic (PHOLD)"))

    static = {r.x: r.execution_time_us for r in results if r.label.startswith("chi=")}
    dynamic = next(r for r in results if r.label == "dynamic").execution_time_us
    hill = next(r for r in results if r.label == "hillclimb").execution_time_us

    best_chi = min(static, key=static.get)
    # interior optimum: both arms of the U are visible
    assert 1 < best_chi < max(CHIS)
    assert static[1] > static[best_chi] * 1.03
    assert static[max(CHIS)] > static[best_chi] * 1.05
    # both dynamic controllers close most of the chi=1 -> optimum gap
    for t in (dynamic, hill):
        assert t < static[1]
        closed = (static[1] - t) / (static[1] - static[best_chi])
        assert closed > 0.5
