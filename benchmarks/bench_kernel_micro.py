"""Micro-benchmarks of the kernel's hot paths (pytest-benchmark proper).

These track the *real* (wall-clock) cost of the reproduction's inner
loops — event execution, state checkpointing, rollback, queue operations
— so performance regressions in the kernel itself are visible
independently of the modelled results.
"""

from repro import SequentialSimulation, SimulationConfig, TimeWarpSimulation
from repro.apps.phold import PHOLDParams, build_phold
from repro.apps.pingpong import build_pingpong
from repro.apps.smmp import SMMPParams, build_smmp
from repro.kernel.event import Event
from repro.kernel.queues import InputQueue
from tests.helpers import flatten, make_event


def test_micro_sequential_event_loop(benchmark):
    """Sequential kernel throughput (events/second of real time)."""

    def run():
        seq = SequentialSimulation(
            flatten(build_smmp(SMMPParams(requests_per_processor=20)))
        )
        seq.run()
        return seq.events_executed

    events = benchmark(run)
    assert events > 1000


def test_micro_timewarp_no_rollback(benchmark):
    """Time Warp overhead on a rollback-free workload (pingpong)."""

    def run():
        sim = TimeWarpSimulation(build_pingpong(400), SimulationConfig())
        return sim.run().committed_events

    committed = benchmark(run)
    assert committed == 400


def test_micro_timewarp_with_rollbacks(benchmark):
    """Time Warp throughput under real rollback pressure (PHOLD, skewed)."""

    params = PHOLDParams(n_objects=12, n_lps=4, jobs_per_object=2)

    def run():
        config = SimulationConfig(
            end_time=2_000.0, lp_speed_factors={1: 1.3, 2: 1.6, 3: 2.0}
        )
        stats = TimeWarpSimulation(build_phold(params), config).run()
        assert stats.rollbacks > 0
        return stats.executed_events

    executed = benchmark(run)
    assert executed > 1000


def test_micro_input_queue_ops(benchmark):
    """Insert + pop throughput of the event heap."""

    events = [make_event(recv_time=float((i * 7919) % 1000), serial=i)
              for i in range(2000)]

    def run():
        q = InputQueue()
        for e in events:
            q.insert_positive(e)
        n = 0
        while q.peek_next() is not None:
            q.pop_next()
            n += 1
        return n

    assert benchmark(run) == 2000


def test_micro_rollback_storm(benchmark):
    """Rollback machinery cost: repeated deep rollbacks on one object."""

    from repro.cluster.costmodel import CostModel
    from repro.kernel.cancellation import Mode, StaticCancellation
    from repro.kernel.checkpointing import StaticCheckpoint
    from repro.kernel.lp import LogicalProcess
    from repro.kernel.simobject import SimulationObject
    from repro.kernel.state import RecordState
    from dataclasses import dataclass, field

    @dataclass
    class S(RecordState):
        log: list = field(default_factory=list)

    class Obj(SimulationObject):
        def initial_state(self):
            return S()

        def execute_process(self, payload):
            self.state.log.append(payload)

    def run():
        lp = LogicalProcess(0, CostModel(), resolve_name=lambda n: 0,
                            lp_of=lambda o: 0)
        lp.attach(Obj("o"), 0,
                  cancel_policy=StaticCancellation(Mode.AGGRESSIVE),
                  ckpt_policy=StaticCheckpoint(4))
        lp.initialize()
        serial = 0
        for wave in range(10):
            base = 1000.0 - wave * 100.0  # each wave is a deep straggler
            for i in range(30):
                lp.deliver_event(Event(
                    sender=99, receiver=0, send_time=base + i,
                    recv_time=base + i + 1, payload=i, serial=serial,
                ))
                serial += 1
            while lp.execute_one():
                pass
        return lp.members[0].stats.rollbacks

    rollbacks = benchmark(run)
    assert rollbacks == 9


def _numpy_or_skip():
    import pytest

    from repro.kernel.arena import HAVE_NUMPY

    if not HAVE_NUMPY:
        pytest.skip("numpy fast path unavailable in this environment")


def test_micro_queue_insert_batch(benchmark):
    """Bulk column-fill insert into the array queue (numpy fast path)."""

    _numpy_or_skip()
    from repro.kernel.arena import ArrayInputQueue, EventArena

    events = [make_event(recv_time=float((i * 7919) % 1000), serial=i)
              for i in range(2000)]

    def run():
        q = ArrayInputQueue(EventArena())
        q.insert_batch(events)
        n = 0
        while q.peek_next() is not None:
            q.pop_next()
            n += 1
        return n

    assert benchmark(run) == 2000


def test_micro_annihilate_scan(benchmark):
    """Vectorized anti-message matching over the arena columns."""

    _numpy_or_skip()
    from repro.kernel.arena import ArrayInputQueue, EventArena

    events = [make_event(recv_time=float((i * 7919) % 1000), serial=i)
              for i in range(2000)]
    antis = [e.anti_message() for e in events[::2]]

    def run():
        q = ArrayInputQueue(EventArena())
        q.insert_batch(events)
        leftovers = q.annihilate_batch(antis)
        assert not leftovers
        return q.future_count()

    assert benchmark(run) == 1000


def test_micro_gvt_local_min(benchmark):
    """The GVT local lower bound as one reduction over the time column."""

    _numpy_or_skip()
    from repro.kernel.arena import EventArena

    arena = EventArena()
    arena.insert_batch([
        make_event(recv_time=float(1 + (i * 7919) % 1000), serial=i)
        for i in range(4000)
    ])

    def run():
        total = 0.0
        for _ in range(100):
            total += arena.min_alive_time()
        return total

    assert benchmark(run) > 0.0


def test_micro_snapshot_array(benchmark):
    """Block ndarray.copy() checkpointing of an array-backed state."""

    _numpy_or_skip()
    import numpy as np

    from dataclasses import dataclass, field
    from repro.kernel.state import RecordState, resolve_snapshot_strategy

    @dataclass
    class S(RecordState):
        counter: int = 0
        table: object = None
        shards: list = field(default_factory=list)

    strategy = resolve_snapshot_strategy("array")
    state = S(counter=7, table=np.arange(4096, dtype=np.float64),
              shards=[np.arange(512, dtype=np.int64) for _ in range(4)])

    def run():
        total = 0
        for _ in range(50):
            clone = strategy.snapshot(state)
            total += clone.counter
        return total

    assert benchmark(run) == 350
