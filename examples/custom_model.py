#!/usr/bin/env python
"""Writing your own model: a car-wash queueing network.

Demonstrates the full application API a downstream user touches:

* :class:`~repro.SimulationObject` subclasses with dataclass states
  (built on :class:`~repro.RecordState` so checkpoint/rollback work
  automatically);
* the determinism contract — all randomness derives from payloads via
  :func:`repro.apps.token_hash`, never from global RNGs;
* custom partitioning across modelled workstations;
* verifying a Time Warp run against the sequential kernel.

The model: car sources feed an arrival gate that dispatches to wash
bays; each bay works through its queue and reports to a cashier.
(The gate is arrival-order sensitive — like the paper's RAID forks — so
dynamic cancellation keeps it aggressive while the bays go lazy.)

Run:  python examples/custom_model.py
"""

from dataclasses import dataclass, field

from repro import (
    DynamicCancellation,
    RecordState,
    SequentialSimulation,
    SimulationConfig,
    SimulationObject,
    TimeWarpSimulation,
)
from repro.apps import token_hash, uniform

N_SOURCES = 6
N_BAYS = 4
CARS_PER_SOURCE = 100


@dataclass
class SourceState(RecordState):
    generated: int = 0


class CarSource(SimulationObject):
    """Generates cars on a pre-determined schedule (open loop)."""

    def __init__(self, index: int) -> None:
        super().__init__(f"source-{index}")
        self.index = index

    def initial_state(self) -> SourceState:
        return SourceState()

    def initialize(self) -> None:
        self.send_event(self.name, 1.0, ("tick",))

    def execute_process(self, payload) -> None:
        state: SourceState = self.state
        car_id = self.index * CARS_PER_SOURCE + state.generated
        state.generated += 1
        self.send_event("gate", 1.0, ("car", car_id))
        if state.generated < CARS_PER_SOURCE:
            gap = uniform(token_hash(13, car_id), 3.0, 15.0)
            self.send_event(self.name, gap, ("tick",))


@dataclass
class GateState(RecordState):
    dispatched: int = 0


class ArrivalGate(SimulationObject):
    """Round-robin dispatcher — arrival-order sensitive, like a RAID fork."""

    def initial_state(self) -> GateState:
        return GateState()

    def execute_process(self, payload) -> None:
        state: GateState = self.state
        bay = state.dispatched % N_BAYS
        state.dispatched += 1
        self.send_event(f"bay-{bay}", 2.0, payload)


@dataclass
class BayState(RecordState):
    washed: int = 0
    revenue: float = 0.0


class WashBay(SimulationObject):
    """Washes each car for a duration determined by the car itself."""

    grain_factor = 1.5

    def initial_state(self) -> BayState:
        return BayState()

    def execute_process(self, payload) -> None:
        _, car_id = payload
        state: BayState = self.state
        state.washed += 1
        duration = uniform(token_hash(17, car_id), 20.0, 60.0)
        price = 8.0 + (car_id % 3) * 2.0
        state.revenue += price
        self.send_event("cashier", duration, ("paid", car_id, price))


@dataclass
class CashierState(RecordState):
    cars: int = 0
    till: float = 0.0


class Cashier(SimulationObject):
    def initial_state(self) -> CashierState:
        return CashierState()

    def execute_process(self, payload) -> None:
        _, _car_id, price = payload
        self.state.cars += 1
        self.state.till += price


def build_carwash():
    """Partition: sources+gate on one workstation, bays split over two,
    cashier on the fourth."""
    sources = [CarSource(i) for i in range(N_SOURCES)]
    gate = ArrivalGate("gate")
    bays = [WashBay(f"bay-{i}") for i in range(N_BAYS)]
    cashier = Cashier("cashier")
    return [
        sources + [gate],
        bays[: N_BAYS // 2],
        bays[N_BAYS // 2 :],
        [cashier],
    ]


def main() -> None:
    # Golden reference
    seq = SequentialSimulation([o for g in build_carwash() for o in g],
                               record_trace=True)
    seq.run()

    # Time Warp on a skewed cluster, with dynamic cancellation
    config = SimulationConfig(
        record_trace=True,
        cancellation=lambda obj: DynamicCancellation(),
        lp_speed_factors={1: 1.3, 2: 1.1, 3: 1.5},
    )
    sim = TimeWarpSimulation(build_carwash(), config)
    stats = sim.run()

    assert sim.sorted_trace() == seq.sorted_trace(), "kernel diverged!"

    cashier = sim.object_named("cashier")
    print(stats.summary())
    print(f"cars washed: {cashier.state.cars}, till: ${cashier.state.till:,.0f}")
    print(f"rollbacks: {stats.rollbacks}, of which the Time Warp kernel "
          f"recovered every single one (trace verified against sequential)")


if __name__ == "__main__":
    main()
