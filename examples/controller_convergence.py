#!/usr/bin/env python
"""Watching the on-line controllers converge.

Runs SMMP with all four control systems active — dynamic check-pointing,
dynamic cancellation, SAAW aggregation and the adaptive optimism window —
and prints one row per GVT round showing every knob's trajectory: the
mean checkpoint interval climbing away from save-every-event, objects
flipping from the aggressive initial strategy to lazy, the aggregation
windows drifting, and the optimism window clamping when rollback waste
spikes.

The same run also dumps a controller-decision trace (JSONL, schema in
docs/observability.md) and cross-checks it against the kernel: the last
``ctrl.checkpoint`` record per object must land exactly on the checkpoint
interval the object finished the run with — the trace *is* the
controller's trajectory, not a parallel account of it.

This is the paper's thesis as a time series: the configuration is not a
setting, it is a *signal*.

Run:  python examples/controller_convergence.py [requests-per-processor] [trace-path]
"""

import sys
import tempfile
from pathlib import Path

from repro import (
    AdaptiveTimeWindow,
    DynamicCancellation,
    DynamicCheckpoint,
    NetworkModel,
    SAAWPolicy,
    SimulationConfig,
    TimeWarpSimulation,
)
from repro.apps.smmp import SMMPParams, build_smmp
from repro.stats.timeline import Timeline
from repro.trace import Tracer, load_trace, validate_trace


def main() -> None:
    requests = int(sys.argv[1]) if len(sys.argv) > 1 else 200
    if len(sys.argv) > 2:
        trace_path = Path(sys.argv[2])
    else:
        fd, name = tempfile.mkstemp(prefix="controller_convergence_",
                                    suffix=".jsonl")
        import os
        os.close(fd)
        trace_path = Path(name)

    timeline = Timeline()
    with Tracer.to_path(trace_path) as tracer:
        config = SimulationConfig(
            checkpoint=lambda obj: DynamicCheckpoint(period=16),
            cancellation=lambda obj: DynamicCancellation(period=8),
            aggregation=lambda lp: SAAWPolicy(initial_window_us=8_000.0),
            time_window=lambda: AdaptiveTimeWindow(min_window=50.0),
            lp_speed_factors={1: 1.2, 2: 1.4, 3: 1.7},
            network=NetworkModel(jitter=0.4),
            gvt_period=25_000.0,
            timeline=timeline,
            tracer=tracer,
        )
        params = SMMPParams(requests_per_processor=requests)
        sim = TimeWarpSimulation(build_smmp(params), config)
        stats = sim.run()

    print(f"SMMP, {requests} requests/processor, all four controllers live\n")
    print(timeline.render())
    print()
    print(stats.summary())

    # -- the trace agrees with the kernel -------------------------------- #
    errors = validate_trace(trace_path)
    assert not errors, errors[:5]
    moves = load_trace(trace_path, types=("ctrl.checkpoint",))
    final_chi = {ctx.obj.name: ctx.chi
                 for lp in sim.lps for ctx in lp.members.values()}
    last_move = {r["obj"]: r["new"] for r in moves}
    mismatched = {name for name, chi in last_move.items()
                  if final_chi[name] != chi}
    assert not mismatched, f"trace diverged from kernel for {sorted(mismatched)}"
    n_records = sum(1 for _ in open(trace_path))
    print(f"\ntrace: {n_records} records -> {trace_path}")
    print(f"trace chi trajectory matches final intervals for "
          f"{len(last_move)} controlled objects")
    print("inspect with: repro-trace summarize", trace_path)


if __name__ == "__main__":
    main()
