#!/usr/bin/env python
"""Watching the on-line controllers converge.

Runs SMMP with all four control systems active — dynamic check-pointing,
dynamic cancellation, SAAW aggregation and the adaptive optimism window —
and prints one row per GVT round showing every knob's trajectory: the
mean checkpoint interval climbing away from save-every-event, objects
flipping from the aggressive initial strategy to lazy, the aggregation
windows drifting, and the optimism window clamping when rollback waste
spikes.

This is the paper's thesis as a time series: the configuration is not a
setting, it is a *signal*.

Run:  python examples/controller_convergence.py [requests-per-processor]
"""

import sys

from repro import (
    AdaptiveTimeWindow,
    DynamicCancellation,
    DynamicCheckpoint,
    NetworkModel,
    SAAWPolicy,
    SimulationConfig,
    TimeWarpSimulation,
)
from repro.apps.smmp import SMMPParams, build_smmp
from repro.stats.timeline import Timeline


def main() -> None:
    requests = int(sys.argv[1]) if len(sys.argv) > 1 else 200
    timeline = Timeline()
    config = SimulationConfig(
        checkpoint=lambda obj: DynamicCheckpoint(period=16),
        cancellation=lambda obj: DynamicCancellation(period=8),
        aggregation=lambda lp: SAAWPolicy(initial_window_us=8_000.0),
        time_window=lambda: AdaptiveTimeWindow(min_window=50.0),
        lp_speed_factors={1: 1.2, 2: 1.4, 3: 1.7},
        network=NetworkModel(jitter=0.4),
        gvt_period=25_000.0,
        timeline=timeline,
    )
    params = SMMPParams(requests_per_processor=requests)
    stats = TimeWarpSimulation(build_smmp(params), config).run()

    print(f"SMMP, {requests} requests/processor, all four controllers live\n")
    print(timeline.render())
    print()
    print(stats.summary())


if __name__ == "__main__":
    main()
