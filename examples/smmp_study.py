#!/usr/bin/env python
"""SMMP study: how each on-line controller affects the paper's
shared-memory-multiprocessor model.

Reproduces, at reduced scale, the SMMP observations of Section 8:
every SMMP object favors lazy cancellation, dynamic check-pointing grows
the interval away from save-every-event, and message aggregation pays
off heavily on the modelled 10 Mb Ethernet.

Run:  python examples/smmp_study.py [requests-per-processor]
"""

import sys

from repro import (
    DynamicCancellation,
    DynamicCheckpoint,
    FixedWindow,
    Mode,
    NetworkModel,
    SimulationConfig,
    StaticCancellation,
    TimeWarpSimulation,
)
from repro.apps.smmp import SMMPParams, build_smmp

#: SPARC 4/5 mix with background load (see DESIGN.md §2)
CLUSTER = {1: 1.2, 2: 1.4, 3: 1.7}


def run(params: SMMPParams, label: str, **kwargs) -> None:
    config = SimulationConfig(
        lp_speed_factors=CLUSTER, network=NetworkModel(jitter=0.4), **kwargs
    )
    sim = TimeWarpSimulation(build_smmp(params), config)
    stats = sim.run()
    print(f"{label:<28} {stats.summary()}")
    return sim, stats


def main() -> None:
    requests = int(sys.argv[1]) if len(sys.argv) > 1 else 120
    params = SMMPParams(requests_per_processor=requests)
    print(f"SMMP: {params.n_processors} processors, {params.n_objects} "
          f"simulation objects, {params.n_lps} LPs, "
          f"{requests} requests/processor\n")

    run(params, "baseline (AC, chi=1)")
    run(params, "lazy cancellation",
        cancellation=lambda o: StaticCancellation(Mode.LAZY))
    sim, _ = run(params, "dynamic cancellation",
                 cancellation=lambda o: DynamicCancellation())

    # Show what the controller decided, per object class.
    from collections import Counter
    modes = Counter()
    for lp in sim.lps:
        for ctx in lp.members.values():
            modes[(ctx.obj.name.split("-")[0], ctx.mode.value)] += 1
    print("  -> final strategies:",
          ", ".join(f"{cls}:{mode} x{n}" for (cls, mode), n in sorted(modes.items())))

    run(params, "dynamic checkpointing",
        cancellation=lambda o: StaticCancellation(Mode.LAZY),
        checkpoint=lambda o: DynamicCheckpoint(period=16))
    run(params, "aggregation (FAW 32ms)",
        cancellation=lambda o: StaticCancellation(Mode.LAZY),
        aggregation=lambda lp: FixedWindow(32_000.0))
    run(params, "all three controllers",
        cancellation=lambda o: DynamicCancellation(),
        checkpoint=lambda o: DynamicCheckpoint(period=16),
        aggregation=lambda lp: FixedWindow(32_000.0))


if __name__ == "__main__":
    main()
