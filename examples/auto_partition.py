#!/usr/bin/env python
"""Automatic model partitioning: profile, cut, run.

The paper's models were hand-partitioned "to take advantage of the fast
intra-LP communication".  For your own models you don't have to: profile
the model sequentially, partition its communication graph, and run.

This script does that for SMMP and compares three strategies against the
hand-crafted partition — including how the choice changes which
*cancellation* strategy wins, one of the paper's Section 5 observations.

Run:  python examples/auto_partition.py [requests-per-processor]
"""

import sys

from repro import (
    Mode,
    NetworkModel,
    SimulationConfig,
    StaticCancellation,
    TimeWarpSimulation,
)
from repro.apps.smmp import SMMPParams, build_smmp
from repro.partition import (
    apply_assignment,
    greedy_growth,
    kernighan_lin,
    partition_quality,
    profile_model,
    round_robin,
)


def flatten(partition):
    return [obj for group in partition for obj in group]


def run(partition, mode):
    config = SimulationConfig(
        cancellation=lambda o: StaticCancellation(mode),
        lp_speed_factors={1: 1.2, 2: 1.4, 3: 1.7},
        network=NetworkModel(jitter=0.4),
    )
    return TimeWarpSimulation(partition, config).run()


def main() -> None:
    requests = int(sys.argv[1]) if len(sys.argv) > 1 else 100
    params = SMMPParams(requests_per_processor=requests)

    print("profiling the model sequentially (30 requests/processor)...")
    graph = profile_model(
        flatten(build_smmp(SMMPParams(requests_per_processor=30)))
    )
    print(f"  {len(graph.objects)} objects, {len(graph.weights)} comm edges, "
          f"{graph.total_weight()} events measured\n")

    print(f"{'partition':<15} {'cut':>5} {'AC time':>9} {'LC time':>9} "
          f"{'LC gain':>8} {'msgs':>7}")
    print("-" * 58)
    strategies = [("hand-crafted", None), ("round-robin", round_robin),
                  ("greedy", greedy_growth), ("kernighan-lin", kernighan_lin)]
    for name, strategy in strategies:
        if strategy is None:
            build = lambda: build_smmp(params)
            cut = float("nan")
        else:
            assignment = strategy(graph, 4)
            cut = partition_quality(graph, assignment)["cut_fraction"]
            build = lambda a=assignment: apply_assignment(
                flatten(build_smmp(params)), a, 4
            )
        ac = run(build(), Mode.AGGRESSIVE)
        lc = run(build(), Mode.LAZY)
        gain = (ac.execution_time - lc.execution_time) / ac.execution_time
        print(f"{name:<15} {cut:>5.2f} {ac.execution_time_seconds:>8.3f}s "
              f"{lc.execution_time_seconds:>8.3f}s {gain:>7.1%} "
              f"{ac.physical_messages:>7}")

    print("\nNote how the partition changes not just the runtime but how "
          "much the\ncancellation strategy matters — the paper's point that "
          "the optimal\nconfiguration is sensitive to the partitioning scheme.")


if __name__ == "__main__":
    main()
