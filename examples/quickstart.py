#!/usr/bin/env python
"""Quickstart: build a model, run it under Time Warp, read the stats.

This example builds the PHOLD synthetic workload, runs it three ways —
sequentially, under plain Time Warp, and under the paper's fully
on-line-configured Time Warp — and prints what changed.

Run:  python examples/quickstart.py
"""

from repro import (
    DynamicCancellation,
    DynamicCheckpoint,
    SAAWPolicy,
    SequentialSimulation,
    SimulationConfig,
    TimeWarpSimulation,
)
from repro.apps.phold import PHOLDParams, build_phold


def main() -> None:
    params = PHOLDParams(n_objects=16, n_lps=4, jobs_per_object=3)
    horizon = 5_000.0  # virtual-time horizon (PHOLD never ends on its own)

    # 1. The golden reference: the same objects, one event at a time.
    objects = [obj for group in build_phold(params) for obj in group]
    seq = SequentialSimulation(objects, end_time=horizon)
    seq.run()
    print(f"sequential:        {seq.events_executed} events")

    # 2. Plain Time Warp on a modelled 4-workstation cluster.  The speed
    #    factors model a non-dedicated NOW (one fast machine, three
    #    increasingly loaded ones) — that skew is what causes rollbacks.
    static = SimulationConfig(
        end_time=horizon,
        lp_speed_factors={1: 1.2, 2: 1.4, 3: 1.6},
    )
    stats = TimeWarpSimulation(build_phold(params), static).run()
    print(f"time warp static:  {stats.summary()}")

    # 3. The paper's three on-line configuration controllers together:
    #    dynamic checkpoint interval, dynamic cancellation, SAAW DyMA.
    adaptive = SimulationConfig(
        end_time=horizon,
        lp_speed_factors={1: 1.2, 2: 1.4, 3: 1.6},
        checkpoint=lambda obj: DynamicCheckpoint(period=16),
        cancellation=lambda obj: DynamicCancellation(),
        aggregation=lambda lp_id: SAAWPolicy(initial_window_us=2_000.0),
    )
    tuned = TimeWarpSimulation(build_phold(params), adaptive).run()
    print(f"time warp tuned:   {tuned.summary()}")

    speedup = stats.execution_time / tuned.execution_time
    print(f"\non-line configuration speedup: {speedup:.2f}x "
          f"(modelled execution time {stats.execution_time_seconds:.3f}s "
          f"-> {tuned.execution_time_seconds:.3f}s)")


if __name__ == "__main__":
    main()
