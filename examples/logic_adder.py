#!/usr/bin/env python
"""Digital logic under Time Warp: a ripple-carry adder that really adds.

The paper's cancellation observations came from VHDL digital-system
models; this example runs the same class of workload.  An n-bit
ripple-carry adder is partitioned across the modelled workstations by
slicing its carry chain, so fast LPs speculatively compute sum bits with
stale carries and get rolled back when the true carry ripples across the
LP boundary.  Despite hundreds of rollbacks, every sum is exact — which
you can check, because the expected answers are just ``a + b``.

Run:  python examples/logic_adder.py [bits] [vectors]
"""

import sys

from repro import NetworkModel, SimulationConfig, TimeWarpSimulation
from repro.apps.logic import (
    AdderParams,
    adder_vectors,
    build_ripple_adder,
    read_adder_outputs,
)
from repro.stats.report import class_report


def main() -> None:
    bits = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    vectors = int(sys.argv[2]) if len(sys.argv) > 2 else 24
    params = AdderParams(bits=bits, n_vectors=vectors, n_lps=4,
                         vector_period=max(400.0, 25.0 * bits))
    partition, probes = build_ripple_adder(params)
    n_objects = sum(len(group) for group in partition)
    print(f"{bits}-bit ripple-carry adder: {n_objects} simulation objects "
          f"({5 * bits} gates) on 4 modelled workstations, "
          f"{vectors} test vectors\n")

    config = SimulationConfig(
        lp_speed_factors={1: 1.4, 2: 1.8, 3: 2.2},
        network=NetworkModel(jitter=0.4),
    )
    stats = TimeWarpSimulation(partition, config).run()

    sums = read_adder_outputs(params, probes)
    expected = [a + b for a, b in adder_vectors(params)]
    correct = sum(s == e for s, e in zip(sums, expected))
    for (a, b), s in list(zip(adder_vectors(params), sums))[:5]:
        print(f"  {a:>5} + {b:>5} = {s:>6}  "
              f"{'ok' if s == a + b else 'WRONG'}")
    print(f"  ... {correct}/{len(sums)} sums exact\n")

    print(stats.summary())
    print()
    print(class_report(stats))

    assert sums == expected, "Time Warp produced a wrong sum!"


if __name__ == "__main__":
    main()
