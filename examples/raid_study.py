#!/usr/bin/env python
"""RAID study: per-object dynamic cancellation on the disk-array model.

The paper's central cancellation observation (Section 8): in RAID, the
disk objects favor lazy cancellation (their responses are pure functions
of each request's geometry) while the fork objects favor aggressive
cancellation (their routing and queueing delays are arrival-order
sensitive).  A static, global strategy cannot satisfy both — per-object
dynamic cancellation can, and this script shows it discovering the split
from the Hit Ratio alone.

Run:  python examples/raid_study.py [requests-per-source]
"""

import sys
from collections import defaultdict

from repro import (
    DynamicCancellation,
    Mode,
    NetworkModel,
    SimulationConfig,
    StaticCancellation,
    TimeWarpSimulation,
)
from repro.apps.raid import RAIDParams, build_raid

#: lightly loaded NOW (see DESIGN.md §2 / EXPERIMENTS.md)
CLUSTER = {1: 1.05, 2: 1.1, 3: 1.15}


def run(params, label, cancellation):
    config = SimulationConfig(
        cancellation=cancellation,
        lp_speed_factors=CLUSTER,
        network=NetworkModel(jitter=0.4),
    )
    sim = TimeWarpSimulation(build_raid(params), config)
    stats = sim.run()
    print(f"{label:<24} {stats.summary()}")
    return sim, stats


def main() -> None:
    requests = int(sys.argv[1]) if len(sys.argv) > 1 else 200
    params = RAIDParams(requests_per_source=requests)
    print(f"RAID: {params.n_sources} sources -> {params.n_forks} forks -> "
          f"{params.n_disks} disks, {params.n_lps} LPs, "
          f"{requests} requests/source\n")

    _, ac = run(params, "aggressive (AC)",
                lambda o: StaticCancellation(Mode.AGGRESSIVE))
    _, lc = run(params, "lazy (LC)",
                lambda o: StaticCancellation(Mode.LAZY))
    sim, dc = run(params, "dynamic (DC)", lambda o: DynamicCancellation())

    print("\nper-class behaviour under DC:")
    agg = defaultdict(lambda: defaultdict(float))
    for lp in sim.lps:
        for ctx in lp.members.values():
            cls = ctx.obj.name.split("-")[0]
            s = ctx.stats
            agg[cls]["n"] += 1
            agg[cls]["lazy"] += ctx.mode is Mode.LAZY
            agg[cls]["cmp"] += s.comparisons
            agg[cls]["hits"] += s.lazy_hits + s.lazy_aggressive_hits
            agg[cls]["rollbacks"] += s.rollbacks
    for cls, a in sorted(agg.items()):
        hr = a["hits"] / a["cmp"] if a["cmp"] else float("nan")
        print(f"  {cls:<6} objects={int(a['n']):2d}  ended lazy={int(a['lazy']):2d}  "
              f"hit ratio={hr:5.2f}  rollbacks={int(a['rollbacks'])}")

    print(f"\nDC vs AC: {100 * (ac.execution_time - dc.execution_time) / ac.execution_time:+.1f}%")
    print(f"DC vs LC: {100 * (lc.execution_time - dc.execution_time) / lc.execution_time:+.1f}%")


if __name__ == "__main__":
    main()
