"""Differential tests for elastic churn (docs/parallel.md).

A run that migrates objects mid-flight, forks new workers, and retires
others must still commit exactly the sequential golden — same per-object
counts, same final states, zero oracle violations.  Everything here runs
under the directory-wide SIGALRM hang guard (conftest.py), so a stuck
elastic epoch fails the test instead of hanging the suite.
"""

import multiprocessing

import pytest

from repro import SimulationConfig, make_simulation
from repro.faults.fuzz import APPS
from repro.kernel.errors import ConfigurationError
from repro.parallel import run_differential, sequential_golden

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="parallel backend requires the fork start method",
)

#: 2 -> 3 -> 1 workers with a migration burst in between: every elastic
#: epoch kind (scripted move, join, leave) in one run
FULL_TRAJECTORY = {
    "seed": 11,
    "steps": [
        {"at": 1, "kind": "join", "count": 1},
        {"at": 2, "kind": "migrate", "count": 2},
        {"at": 3, "kind": "leave", "count": 2},
    ],
}


@pytest.fixture(scope="module")
def phold_churn():
    # a short GVT period keeps the run fast; steps the fleet quiesces
    # past fire on the quiet fleet, so the full trajectory is
    # guaranteed regardless of how quickly the shm wire finishes
    return run_differential(
        "phold", 2, churn=FULL_TRAJECTORY, gvt_period=1_000.0
    )


@needs_fork
class TestChurnDifferential:
    def test_full_trajectory_matches_golden(self, phold_churn):
        result = phold_churn
        assert result.ok, result.render()
        assert result.committed == result.expected > 0
        assert result.count_mismatches == ()
        assert result.state_mismatches == ()

    def test_oracle_armed_and_clean(self, phold_churn):
        assert phold_churn.oracle_checks > 0
        assert phold_churn.violations == ()

    def test_worker_timeline_records_the_churn(self, phold_churn):
        timeline = phold_churn.worker_timeline
        assert timeline[0] == (0, 2)
        counts = [n for _at, n in timeline]
        assert 3 in counts     # the join took effect
        assert counts[-1] == 1  # both leavers retired
        # commit indices are non-decreasing
        ats = [at for at, _n in timeline]
        assert ats == sorted(ats)

    def test_migrations_happened_and_balanced(self, phold_churn):
        assert phold_churn.migrations > 0
        assert phold_churn.elastic
        assert "elastic:" in phold_churn.render()

    def test_scripted_migrations_only(self):
        result = run_differential(
            "smmp", 2,
            churn={"seed": 3, "steps": [
                {"at": 1, "kind": "migrate", "count": 1},
                {"at": 2, "kind": "migrate", "count": 2},
            ]},
            gvt_period=5_000.0,
        )
        assert result.ok, result.render()
        # no joins or leaves: the worker set never changes
        assert result.worker_timeline == ((0, 2),)

    def test_steps_past_quiescence_still_fire(self):
        # commit index 50 is never reached — the run quiesces in a
        # handful of rounds — so the leave fires on the quiet fleet
        # instead of being silently dropped (docs/parallel.md)
        result = run_differential(
            "phold", 2,
            churn={"seed": 5, "steps": [
                {"at": 50, "kind": "leave", "count": 1},
            ]},
            gvt_period=1_000.0,
        )
        assert result.ok, result.render()
        assert result.worker_timeline[-1][1] == 1

    def test_impossible_steps_are_skipped_not_fatal(self):
        # migrating with one worker and leaving below one worker are
        # both impossible; the run must complete and match regardless
        result = run_differential(
            "phold", 1,
            churn={"seed": 1, "steps": [
                {"at": 1, "kind": "migrate", "count": 1},
                {"at": 2, "kind": "leave", "count": 1},
            ]},
            gvt_period=5_000.0,
        )
        assert result.ok, result.render()
        assert result.migrations == 0
        assert result.worker_timeline == ((0, 1),)


@needs_fork
class TestDynamicPlacementBackend:
    def test_balancer_matches_golden(self):
        build, end_time = APPS["phold"]
        config = SimulationConfig(
            backend="parallel", workers=2, end_time=end_time,
            placement="dynamic", gvt_period=5_000.0,
        )
        sim = make_simulation(build(), config)
        stats = sim.run()
        _counts, _states, expected = sequential_golden("phold")
        assert stats.committed_events == expected


class TestChurnValidation:
    def test_churn_requires_parallel_backend(self):
        config = SimulationConfig(
            churn={"seed": 0, "steps": [{"at": 1, "kind": "migrate",
                                         "count": 1}]}
        )
        with pytest.raises(ConfigurationError, match="parallel"):
            config.validate()

    @pytest.mark.parametrize("plan,detail", [
        ({"steps": "nope"}, "steps"),
        ({"seed": "x", "steps": []}, "seed"),
        ({"steps": [{"at": 0, "kind": "migrate", "count": 1}]}, "at"),
        ({"steps": [{"at": 1, "kind": "shuffle", "count": 1}]}, "kind"),
        ({"steps": [{"at": 1, "kind": "join", "count": 0}]}, "count"),
        ({"steps": [{"at": 1, "kind": "join", "count": 1,
                     "extra": 1}]}, "extra"),
    ])
    def test_malformed_plans_rejected(self, plan, detail):
        config = SimulationConfig(
            backend="parallel", workers=2, churn=plan
        )
        with pytest.raises(ConfigurationError, match=detail):
            config.validate()
