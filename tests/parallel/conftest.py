"""Hang guard for the process-sharded backend tests.

A fork()ed worker that deadlocks (e.g. a pipe both sides are waiting
on) would otherwise hang the whole suite until the CI-level timeout
with no hint of where it stuck.  Every test in this directory runs
under a SIGALRM watchdog that turns a hang into an ordinary failure
naming the test, so the rest of the suite still runs.
"""

import signal

import pytest

#: generous per-test ceiling; the parallel suite normally finishes in
#: a few seconds, and ParallelSimulation's own stall timeout is 120 s
GUARD_SECONDS = 300


@pytest.fixture(autouse=True)
def parallel_hang_guard(request):
    if not hasattr(signal, "SIGALRM"):  # pragma: no cover - non-POSIX
        yield
        return

    def on_alarm(_signum, _frame):
        pytest.fail(
            f"{request.node.nodeid} exceeded {GUARD_SECONDS}s — a fork()ed "
            "worker process is likely hung (deadlocked pipe or dead "
            "coordinator); inspect leftover child processes before rerunning",
            pytrace=False,
        )

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(GUARD_SECONDS)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)
