"""Packed wire codec and shm ring-buffer tests (docs/parallel.md).

The codec's contract is exact round-trip: ``decode_batch(encode_batch())``
must reproduce every event field bit-identically, because the parallel
backend's differential validation compares committed results against the
sequential golden byte-for-byte.  The ring's contract is FIFO byte-exact
delivery across wraparound with honest backpressure (``try_push`` ->
``False`` on full, never a corrupted frame).
"""

import multiprocessing

import pytest

from repro.comm.message import MessageKind, PhysicalMessage
from repro.kernel.config import SimulationConfig
from repro.kernel.errors import ConfigurationError
from repro.kernel.event import Event
from repro.parallel.shm import (
    RING_CAPACITY,
    RingRecordTooLarge,
    ShmRing,
    shm_wire_supported,
)
from repro.parallel.wire import (
    WIRE_VERSION,
    WireEncodeError,
    WireFormatError,
    decode_batch,
    encode_batch,
)

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="parallel backend requires the fork start method",
)

needs_tso = pytest.mark.skipif(
    not shm_wire_supported(),
    reason="shm wire requires x86-TSO store ordering",
)


def _event(serial=0, payload=None, sign=1, sender=3, receiver=7,
           send_time=1.5, recv_time=2.5):
    return Event(sender=sender, receiver=receiver, send_time=send_time,
                 recv_time=recv_time, payload=payload, serial=serial,
                 sign=sign)


def _batch(events, *, stamp=0, src_lp=3, dst_lp=7, src_shard=0):
    message = PhysicalMessage(src_lp=src_lp, dst_lp=dst_lp,
                              kind=MessageKind.DATA, events=tuple(events))
    return src_shard, ((stamp, message),)


def _roundtrip(events, **kwargs):
    src_shard, envelopes = _batch(events, **kwargs)
    batch = decode_batch(encode_batch(src_shard, envelopes))
    assert batch.src_shard == src_shard
    return batch


class TestCodecRoundTrip:
    @pytest.mark.parametrize("payload", [
        None, False, True, 0, -1, 2**62, -(2**62), 0.0, -0.25, 1e300,
        "", "hello", "uniçøde \U0001f600", b"", b"\x00\xff" * 9,
        (), (1, "two", 3.0, None, (True, b"x"))
    ])
    def test_payload_types(self, payload):
        batch = _roundtrip([_event(payload=payload)])
        (_stamp, message), = batch.envelopes
        assert message.events[0].payload == payload
        assert type(message.events[0].payload) is type(payload)

    @pytest.mark.parametrize("payload", [
        2**70, -(2**70),          # outside i64: pickle escape hatch
        {"a": 1},                 # dict: not inline-encodable
        frozenset({1, 2}),
    ])
    def test_escape_hatch_payloads(self, payload):
        batch = _roundtrip([_event(payload=payload)])
        (_stamp, message), = batch.envelopes
        assert message.events[0].payload == payload

    def test_event_fields_exact(self):
        events = [
            _event(serial=s, sign=-1 if s % 3 == 0 else 1,
                   send_time=s * 0.1, recv_time=s * 0.1 + 0.7,
                   payload=s)
            for s in range(40)  # > _NP_MIN_EVENTS: numpy block path
        ]
        batch = _roundtrip(events, stamp=5, src_lp=2, dst_lp=9, src_shard=1)
        (stamp, message), = batch.envelopes
        assert stamp == 5
        assert (message.src_lp, message.dst_lp) == (2, 9)
        assert message.kind is MessageKind.DATA
        for original, decoded in zip(events, message.events):
            assert decoded == original  # dataclass eq over every field
            assert decoded.serial == original.serial
            assert decoded.sign == original.sign

    def test_small_batch_struct_path_matches_large_numpy_path(self):
        # the two _pack_block paths must produce interchangeable bytes
        small = [_event(serial=s) for s in range(4)]
        large = [_event(serial=s) for s in range(64)]
        for events in (small, large):
            batch = _roundtrip(events)
            (_stamp, message), = batch.envelopes
            assert [e.serial for e in message.events] == \
                [e.serial for e in events]

    def test_multiple_envelopes(self):
        messages = tuple(
            (stamp, PhysicalMessage(
                src_lp=stamp, dst_lp=stamp + 1, kind=MessageKind.DATA,
                events=(_event(serial=stamp, payload=f"e{stamp}"),),
            ))
            for stamp in range(5)
        )
        batch = decode_batch(encode_batch(2, messages))
        assert len(batch.envelopes) == 5
        for stamp, message in batch.envelopes:
            assert message.src_lp == stamp
            assert message.events[0].payload == f"e{stamp}"

    def test_decode_accepts_memoryview(self):
        src_shard, envelopes = _batch([_event(payload="mv")])
        frame = memoryview(encode_batch(src_shard, envelopes))
        (_stamp, message), = decode_batch(frame).envelopes
        assert message.events[0].payload == "mv"


class TestCodecRejections:
    def test_control_message_is_not_encodable(self):
        message = PhysicalMessage(src_lp=0, dst_lp=1, kind=MessageKind.DATA,
                                  events=(), control={"x": 1})
        with pytest.raises(WireEncodeError):
            encode_batch(0, ((0, message),))

    def test_non_data_kind_is_not_encodable(self):
        message = PhysicalMessage(src_lp=0, dst_lp=1,
                                  kind=MessageKind.GVT_TOKEN)
        with pytest.raises(WireEncodeError):
            encode_batch(0, ((0, message),))

    def test_oversized_lp_id_falls_back(self):
        message = PhysicalMessage(src_lp=2**40, dst_lp=1,
                                  kind=MessageKind.DATA,
                                  events=(_event(),))
        with pytest.raises(WireEncodeError):
            encode_batch(0, ((0, message),))

    def test_bad_magic_rejected(self):
        src_shard, envelopes = _batch([_event()])
        frame = bytearray(encode_batch(src_shard, envelopes))
        frame[0] ^= 0xFF
        with pytest.raises(WireFormatError, match="magic"):
            decode_batch(bytes(frame))

    def test_future_version_rejected_not_misread(self):
        # the versioning rule: unknown versions refuse loudly
        src_shard, envelopes = _batch([_event()])
        frame = bytearray(encode_batch(src_shard, envelopes))
        frame[2] = WIRE_VERSION + 1
        with pytest.raises(WireFormatError, match="version"):
            decode_batch(bytes(frame))

    def test_unknown_frame_kind_rejected(self):
        src_shard, envelopes = _batch([_event()])
        frame = bytearray(encode_batch(src_shard, envelopes))
        frame[3] = 99
        with pytest.raises(WireFormatError, match="kind"):
            decode_batch(bytes(frame))


@pytest.fixture()
def ring():
    r = ShmRing.create(1 << 12)
    yield r
    r.destroy()


class TestShmRing:
    def test_fifo_byte_exact(self, ring):
        records = [bytes([i]) * (i + 1) for i in range(50)]
        for record in records:
            assert ring.try_push(record)
        popped = []
        while (record := ring.try_pop()) is not None:
            popped.append(record)
        assert popped == records
        assert ring.empty

    def test_wraparound_preserves_order(self, ring):
        # records sized so the write offset crosses the physical end
        # many times; every byte must still come out in order
        record = bytes(range(256)) * 3  # 768 B in a 4 KiB ring
        for round_no in range(40):
            payload = bytes([round_no]) + record
            assert ring.try_push(payload)
            assert ring.try_pop() == payload

    def test_interleaved_wraparound(self, ring):
        pushed = []
        popped = []
        sizes = [700, 13, 421, 999, 64, 1, 333]
        seq = 0
        for _ in range(30):
            for size in sizes:
                payload = seq.to_bytes(4, "little") * (size // 4 + 1)
                if ring.try_push(payload):
                    pushed.append(payload)
                    seq += 1
                else:
                    record = ring.try_pop()
                    assert record is not None
                    popped.append(record)
        while (record := ring.try_pop()) is not None:
            popped.append(record)
        assert popped == pushed

    def test_full_ring_backpressure(self, ring):
        record = b"x" * 1000
        accepted = 0
        while ring.try_push(record):
            accepted += 1
        assert accepted >= 3  # 4 KiB ring, ~1 KiB records
        assert not ring.try_push(record)  # still full, still honest
        assert ring.try_pop() == record
        assert ring.try_push(record)  # space reclaimed after a pop

    def test_record_too_large_raises(self, ring):
        with pytest.raises(RingRecordTooLarge):
            ring.try_push(b"y" * (ring.max_record + 1))

    def test_max_record_pushable_at_any_offset(self):
        # Regression: with max_record > capacity//2 a large record could
        # land at an offset where neither the straight run nor the wrap
        # path ever fits — permanently unpushable on an *empty* ring
        # (e.g. a 700-byte record at offset 600 of a 1024-byte ring).
        ring = ShmRing.create(1024)
        try:
            big = b"m" * ring.max_record
            # walk the write offset all around the ring
            for size in range(1, ring.max_record + 1, 7):
                filler = b"f" * size
                assert ring.try_push(filler)
                assert ring.try_pop() == filler
                assert ring.empty
                assert ring.try_push(big), f"wedged after {size}B filler"
                assert ring.try_pop() == big
        finally:
            ring.destroy()

    def test_pop_empty_returns_none(self, ring):
        assert ring.try_pop() is None
        assert ring.empty

    def test_waiting_flag_handshake(self, ring):
        assert not ring.take_waiting()  # nothing armed
        ring.set_waiting()
        assert ring.take_waiting()      # producer test-and-clears
        assert not ring.take_waiting()  # exactly once
        ring.set_waiting()
        ring.clear_waiting()
        assert not ring.take_waiting()

    def test_default_capacity_ring(self):
        ring = ShmRing.create()
        try:
            assert ring.capacity == RING_CAPACITY
            assert ring.try_push(b"z" * ring.max_record)
            assert ring.try_pop() == b"z" * ring.max_record
        finally:
            ring.destroy()

    def test_unusably_small_capacity_rejected(self):
        with pytest.raises(ValueError):
            ShmRing.create(16)


class TestShmWireSupported:
    @pytest.mark.parametrize("machine", ["x86_64", "AMD64", "amd64", "i686"])
    def test_tso_machines(self, machine):
        assert shm_wire_supported(machine)

    @pytest.mark.parametrize("machine", ["aarch64", "arm64", "ppc64le",
                                         "riscv64", "s390x", ""])
    def test_weakly_ordered_machines(self, machine):
        assert not shm_wire_supported(machine)


class TestBackpressureFallback:
    """A full ring that never drains must not wedge the producer."""

    def test_send_batch_gives_up_on_stuck_ring(self, monkeypatch):
        from repro.parallel import worker as worker_mod
        from repro.parallel.ipc import DataBatch

        monkeypatch.setattr(worker_mod, "_BACKPRESSURE_YIELDS", 2)
        monkeypatch.setattr(worker_mod, "_BACKPRESSURE_MAX_WAITS", 3)
        monkeypatch.setattr(worker_mod, "BACKPRESSURE_WAIT_S", 0.0)

        ring = ShmRing.create(1 << 12)
        try:
            while ring.try_push(b"j" * 1000):
                pass
            while ring.try_push(b"j"):
                pass  # dead-consumer ring: brim-full, never drained

            class _Sink:
                def __init__(self):
                    self.items = []

                def put(self, item):
                    self.items.append(item)

            sink = _Sink()
            stub = type("StubRuntime", (), {})()
            stub.shard_id = 0
            stub._rings_out = {1: ring}
            stub._absorb_rings = lambda: 0
            stub.out_queues = {1: sink}
            stub._frames_sent = 0
            stub._ring_bytes_sent = 0
            stub._wire_fallbacks = 0

            _src, envelopes = _batch([_event(payload="stuck")])
            worker_mod._ShardRuntime._send_batch(stub, 1, envelopes)

            assert stub._wire_fallbacks == 1
            assert stub._frames_sent == 0
            (fallback,) = sink.items
            assert isinstance(fallback, DataBatch)
            assert fallback.envelopes == envelopes
        finally:
            ring.destroy()


class TestWireConfig:
    def test_default_is_shm(self):
        assert SimulationConfig().wire == "shm"

    def test_unknown_wire_rejected(self):
        config = SimulationConfig(wire="carrier-pigeon")
        with pytest.raises(ConfigurationError, match="wire"):
            config.validate()

    @pytest.mark.parametrize("wire", ["shm", "queue"])
    def test_known_wires_validate(self, wire):
        SimulationConfig(wire=wire).validate()


@needs_fork
class TestWireParity:
    """Both wires must commit the identical sequential-golden result."""

    @pytest.mark.parametrize("wire", [
        pytest.param("shm", marks=needs_tso), "queue",
    ])
    def test_differential_matches_golden(self, wire):
        from repro.parallel import run_differential

        result = run_differential("phold", 2, wire=wire)
        assert result.ok, result.render()
        assert result.wire == wire

    @needs_tso
    def test_shm_run_reports_ring_traffic(self):
        from repro.faults.fuzz import APPS
        from repro.parallel.backend import ParallelSimulation

        build, end_time = APPS["phold"]
        config = SimulationConfig(backend="parallel", workers=2,
                                  end_time=end_time, wire="shm")
        sim = ParallelSimulation.from_builder(build, config)
        sim.run()
        assert sim.wire == "shm"
        assert sim.wire_stats["frames_sent"] > 0
        assert sim.wire_stats["ring_bytes_sent"] > 0

    def test_single_worker_degrades_to_queue(self):
        from repro.faults.fuzz import APPS
        from repro.parallel.backend import ParallelSimulation

        build, end_time = APPS["phold"]
        config = SimulationConfig(backend="parallel", workers=1,
                                  end_time=end_time, wire="shm")
        sim = ParallelSimulation.from_builder(build, config)
        sim.run()
        assert sim.wire == "queue"  # no shard pairs, no rings

    def test_non_tso_machine_degrades_to_queue(self, monkeypatch):
        from repro.faults.fuzz import APPS
        from repro.parallel import backend as backend_mod

        monkeypatch.setattr(backend_mod, "shm_wire_supported", lambda: False)
        build, end_time = APPS["phold"]
        config = SimulationConfig(backend="parallel", workers=2,
                                  end_time=end_time, wire="shm")
        sim = backend_mod.ParallelSimulation.from_builder(build, config)
        sim.run()
        assert sim.wire == "queue"
        assert sim.wire_stats["frames_sent"] == 0
