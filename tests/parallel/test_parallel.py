"""Tests for the process-sharded parallel backend (docs/parallel.md).

The expensive pieces — real worker processes, real pipes — run once per
app/worker-count through module-scoped fixtures; everything else
exercises construction, validation and dispatch without forking.
"""

import multiprocessing

import pytest

from repro import SimulationConfig, TimeWarpSimulation, make_simulation
from repro.faults.fuzz import APPS
from repro.kernel.errors import ConfigurationError
from repro.parallel import (
    ParallelSimulation,
    resolve_strategy,
    run_differential,
    sequential_golden,
)

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="parallel backend requires the fork start method",
)


@pytest.fixture(scope="module")
def phold_2w():
    return run_differential("phold", 2)


@pytest.fixture(scope="module")
def smmp_2w():
    return run_differential("smmp", 2)


@needs_fork
class TestDifferential:
    def test_phold_two_workers_matches_golden(self, phold_2w):
        assert phold_2w.ok, phold_2w.render()
        assert phold_2w.committed == phold_2w.expected > 0
        assert phold_2w.count_mismatches == ()
        assert phold_2w.state_mismatches == ()

    def test_phold_oracle_armed_and_clean(self, phold_2w):
        assert phold_2w.oracle_checks > 0
        assert phold_2w.violations == ()

    def test_smmp_two_workers_matches_golden(self, smmp_2w):
        assert smmp_2w.ok, smmp_2w.render()
        assert smmp_2w.committed == smmp_2w.expected > 0

    def test_single_worker_matches_golden(self):
        result = run_differential("phold", 1)
        assert result.ok, result.render()
        # one shard: nothing crosses a process boundary, nothing rolls back
        assert result.rollbacks == 0

    def test_render_mentions_outcome(self, phold_2w):
        text = phold_2w.render()
        assert text.startswith("PASS phold workers=2")
        assert "oracle check(s)" in text

    def test_golden_is_cached_and_stable(self):
        first = sequential_golden("phold")
        assert sequential_golden("phold") is first
        counts, states, total = first
        assert sum(counts.values()) == total > 0
        assert set(states) >= set(counts)


@needs_fork
class TestDirectConstruction:
    def test_make_simulation_run_and_run_once(self):
        build, end_time = APPS["phold"]
        config = SimulationConfig(
            backend="parallel", workers=2, end_time=end_time
        )
        sim = make_simulation(build(), config)
        assert isinstance(sim, ParallelSimulation)
        stats = sim.run()
        _, _, expected = sequential_golden("phold")
        assert stats.committed_events == expected
        with pytest.raises(ConfigurationError, match="only run once"):
            sim.run()


class TestConfigValidation:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            SimulationConfig(backend="distributed").validate()

    def test_workers_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="workers"):
            SimulationConfig(backend="parallel", workers=0).validate()

    @pytest.mark.parametrize("kwargs,name", [
        ({"record_trace": True}, "record_trace"),
        ({"time_window": 100.0}, "time_window"),
        ({"external_script": [(0.0, "gvt_period", 1.0)]}, "external_script"),
    ])
    def test_modelled_only_features_rejected(self, kwargs, name):
        config = SimulationConfig(backend="parallel", workers=2, **kwargs)
        with pytest.raises(ConfigurationError, match=name):
            config.validate()

    def test_modelled_backend_unchanged(self):
        build, _ = APPS["phold"]
        sim = make_simulation(build(), SimulationConfig())
        assert isinstance(sim, TimeWarpSimulation)


class TestSharding:
    def _partition(self):
        build, _ = APPS["phold"]
        return build()

    def _names(self, partition):
        return [obj.name for group in partition for obj in group]

    def test_shard_map_places_objects(self):
        partition = self._partition()
        names = self._names(partition)
        shard_map = {name: i % 2 for i, name in enumerate(names)}
        sim = ParallelSimulation(
            partition, SimulationConfig(backend="parallel", workers=2),
            shard_map=shard_map,
        )
        for name, shard in shard_map.items():
            assert sim.shard_of(name) == shard

    def test_shard_map_missing_object_rejected(self):
        partition = self._partition()
        with pytest.raises(ConfigurationError, match="missing object"):
            ParallelSimulation(
                partition, SimulationConfig(backend="parallel", workers=2),
                shard_map={},
            )

    def test_shard_map_out_of_range_rejected(self):
        partition = self._partition()
        shard_map = dict.fromkeys(self._names(partition), 5)
        with pytest.raises(ConfigurationError, match="workers=2"):
            ParallelSimulation(
                partition, SimulationConfig(backend="parallel", workers=2),
                shard_map=shard_map,
            )

    def test_empty_shard_rejected(self):
        partition = self._partition()
        shard_map = dict.fromkeys(self._names(partition), 0)
        with pytest.raises(ConfigurationError, match="no objects"):
            ParallelSimulation(
                partition, SimulationConfig(backend="parallel", workers=2),
                shard_map=shard_map,
            )

    def test_empty_partition_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            ParallelSimulation(
                [[]], SimulationConfig(backend="parallel", workers=1)
            )

    def test_groups_fold_round_robin_when_counts_differ(self):
        # 3 modelled-LP groups onto 2 workers: groups 0,2 -> shard 0
        partition = self._partition()
        assert len(partition) == 3
        sim = ParallelSimulation(
            partition, SimulationConfig(backend="parallel", workers=2)
        )
        for group_index, group in enumerate(partition):
            for obj in group:
                assert sim.shard_of(obj.name) == group_index % 2


class TestResolveStrategy:
    def test_names_resolve(self):
        for name in ("round_robin", "greedy_growth", "kernighan_lin"):
            assert callable(resolve_strategy(name))

    def test_callable_passes_through(self):
        def custom(graph, n_lps):
            return {}

        assert resolve_strategy(custom) is custom

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown partition"):
            resolve_strategy("metis")
