"""Tests for the pluggable snapshot strategies and their config wiring."""

from dataclasses import dataclass, field

import pytest

from repro.apps.pingpong import build_pingpong
from repro.kernel.config import SimulationConfig
from repro.kernel.errors import ConfigurationError
from repro.kernel.kernel import TimeWarpSimulation
from repro.kernel.state import (
    COPY_SNAPSHOT,
    SNAPSHOT_STRATEGIES,
    CopySnapshot,
    DeepcopySnapshot,
    PickleSnapshot,
    RecordState,
    resolve_snapshot_strategy,
)


@dataclass
class _State(RecordState):
    counter: int = 0
    table: list = field(default_factory=list)
    index: dict = field(default_factory=dict)


def _sample() -> _State:
    return _State(counter=3, table=[1, 2, [3, 4]], index={"a": 1.0, "b": 2.0})


class TestStrategies:
    @pytest.mark.parametrize("name", sorted(SNAPSHOT_STRATEGIES))
    def test_roundtrip_equal_and_independent(self, name):
        strategy = resolve_snapshot_strategy(name)
        original = _sample()
        snap = strategy.snapshot(original)
        assert snap == original
        assert snap is not original
        snap.table.append(99)
        snap.index["c"] = 3.0
        assert snap != original  # the snapshot is a deep, private copy

    def test_names_match_registry(self):
        for name, cls in SNAPSHOT_STRATEGIES.items():
            assert cls.name == name

    def test_registry_contents(self):
        assert set(SNAPSHOT_STRATEGIES) == {"copy", "pickle", "deepcopy", "array"}
        assert isinstance(COPY_SNAPSHOT, CopySnapshot)

    def test_array_strategy_block_copies_ndarrays(self):
        numpy = pytest.importorskip("numpy")

        @dataclass
        class _SoA(RecordState):
            values: object = None
            blocks: list = field(default_factory=list)
            scalar: int = 0

        original = _SoA(
            values=numpy.arange(16, dtype="<f8"),
            blocks=[numpy.zeros(4, dtype="<u4"), numpy.ones(4, dtype="<u4")],
            scalar=7,
        )
        snap = resolve_snapshot_strategy("array").snapshot(original)
        assert snap is not original
        assert numpy.array_equal(snap.values, original.values)
        snap.values[0] = 99.0
        snap.blocks[0][0] = 42
        assert original.values[0] == 0.0  # deep, private copies
        assert original.blocks[0][0] == 0


class TestResolve:
    def test_resolves_names(self):
        assert isinstance(resolve_snapshot_strategy("pickle"), PickleSnapshot)
        assert isinstance(resolve_snapshot_strategy("deepcopy"), DeepcopySnapshot)

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ConfigurationError, match="deepcopy"):
            resolve_snapshot_strategy("zstd")

    def test_instances_pass_through(self):
        strategy = PickleSnapshot()
        assert resolve_snapshot_strategy(strategy) is strategy

    def test_non_strategy_rejected(self):
        with pytest.raises(ConfigurationError, match="snapshot"):
            resolve_snapshot_strategy(object())


class TestConfigWiring:
    def test_default_is_copy(self):
        config = SimulationConfig(end_time=100.0)
        config.validate()
        assert config.snapshot == "copy"

    def test_validate_rejects_bad_spec(self):
        config = SimulationConfig(end_time=100.0, snapshot="nope")
        with pytest.raises(ConfigurationError):
            config.validate()

    def test_kernel_applies_strategy_to_every_lp(self):
        sim = TimeWarpSimulation(
            build_pingpong(10),
            SimulationConfig(end_time=500.0, snapshot="pickle"),
        )
        for lp in sim.lps:
            assert lp.snapshot_strategy.name == "pickle"

    @pytest.mark.parametrize("name", sorted(SNAPSHOT_STRATEGIES))
    def test_run_identical_under_every_strategy(self, name):
        """Snapshots are behaviour-neutral: the committed history must not
        depend on how the kernel copies state."""
        stats = TimeWarpSimulation(
            build_pingpong(30),
            SimulationConfig(end_time=10_000.0, snapshot=name),
        ).run()
        assert stats.committed_events == 30
