"""Unit tests for the event layer: total order, anti-messages, sizes."""

import pytest

from repro.kernel.event import (
    EVENT_HEADER_BYTES,
    Event,
    EventId,
    EventKey,
    payload_size_bytes,
)
from tests.helpers import make_event


class TestEventKey:
    def test_orders_by_recv_time_first(self):
        early = make_event(recv_time=5.0, sender=9, serial=9)
        late = make_event(recv_time=6.0, sender=0, serial=0)
        assert early.key() < late.key()

    def test_ties_broken_by_receiver_then_sender(self):
        a = make_event(recv_time=5.0, receiver=1, sender=2)
        b = make_event(recv_time=5.0, receiver=2, sender=1)
        assert a.key() < b.key()
        c = make_event(recv_time=5.0, receiver=1, sender=1)
        assert c.key() < a.key()

    def test_ties_broken_by_send_time_then_serial(self):
        a = make_event(recv_time=5.0, send_time=1.0, serial=7)
        b = make_event(recv_time=5.0, send_time=2.0, serial=0)
        assert a.key() < b.key()
        c = make_event(recv_time=5.0, send_time=1.0, serial=8)
        assert a.key() < c.key()

    def test_distinct_events_have_distinct_keys(self):
        a = make_event(serial=0)
        b = make_event(serial=1)
        assert a.key() != b.key()

    def test_key_is_a_namedtuple_of_the_event_fields(self):
        event = make_event(sender=3, receiver=4, send_time=1.5, recv_time=2.5,
                           serial=11)
        assert event.key() == EventKey(2.5, 4, 3, 1.5, 11)


class TestAntiMessages:
    def test_anti_shares_identity(self):
        event = make_event(serial=42)
        anti = event.anti_message()
        assert anti.event_id() == event.event_id() == EventId(0, 42)
        assert anti.sign == -1
        assert anti.is_anti and not event.is_anti

    def test_anti_carries_no_payload(self):
        anti = make_event(payload=("big", "payload")).anti_message()
        assert anti.payload is None

    def test_anti_has_same_key_coordinates(self):
        event = make_event(recv_time=9.0, send_time=4.0)
        anti = event.anti_message()
        assert anti.recv_time == event.recv_time
        assert anti.send_time == event.send_time

    def test_cannot_negate_an_anti_message(self):
        anti = make_event().anti_message()
        with pytest.raises(ValueError):
            anti.anti_message()


class TestContent:
    def test_content_ignores_serial_only(self):
        a = make_event(send_time=1.0, serial=1, payload=(1, 2))
        b = make_event(send_time=1.0, serial=9, payload=(1, 2))
        assert a.content() == b.content()

    def test_content_distinguishes_send_time(self):
        # Send time participates in the total order among simultaneous
        # events, so lazy matching must treat a shifted send as a miss.
        a = make_event(send_time=1.0, payload=(1, 2))
        b = make_event(send_time=2.0, payload=(1, 2))
        assert a.content() != b.content()

    def test_content_distinguishes_receiver_time_payload(self):
        base = make_event(payload=(1,))
        assert base.content() != make_event(receiver=5, payload=(1,)).content()
        assert base.content() != make_event(recv_time=99.0, payload=(1,)).content()
        assert base.content() != make_event(payload=(2,)).content()


class TestSizes:
    @pytest.mark.parametrize(
        "payload,expected",
        [
            (None, 0),
            (True, 1),
            (7, 8),
            (3.14, 8),
            ("abcd", 4),
            (b"abc", 3),
            ((1, 2.0, "xy"), 18),
        ],
    )
    def test_payload_sizes(self, payload, expected):
        assert payload_size_bytes(payload) == expected

    def test_nested_tuples(self):
        assert payload_size_bytes(((1, 2), (3,))) == 24

    def test_unknown_type_gets_flat_charge(self):
        class Weird:
            pass

        assert payload_size_bytes(Weird()) == 32

    def test_object_with_size_bytes_hook(self):
        class Sized:
            def size_bytes(self):
                return 100

        assert payload_size_bytes(Sized()) == 100

    def test_event_size_includes_header(self):
        event = make_event(payload=(1, 2))
        assert event.size_bytes() == EVENT_HEADER_BYTES + 16
