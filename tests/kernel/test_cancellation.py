"""Unit tests for cancellation strategies and the comparison buffer."""

from repro.kernel.cancellation import (
    ComparisonBuffer,
    Mode,
    StaticCancellation,
    aggressive,
    lazy,
)
from repro.kernel.event import SentRecord
from tests.helpers import make_event


def record_for(recv_time=10.0, payload="p", cause_time=1.0, serial=0):
    event = make_event(recv_time=recv_time, payload=payload, serial=serial)
    cause = make_event(recv_time=cause_time, serial=1000 + serial)
    return SentRecord(event=event, cause_key=cause.key())


class TestComparisonBuffer:
    def test_match_consumes_equal_content(self):
        buf = ComparisonBuffer()
        rec = record_for(payload=("a", 1))
        buf.park(rec, lazy=True)
        regenerated = make_event(recv_time=10.0, payload=("a", 1), serial=77)
        entry = buf.match(regenerated)
        assert entry is not None and entry.record is rec
        assert not buf.pending()

    def test_match_requires_equal_recv_time(self):
        buf = ComparisonBuffer()
        buf.park(record_for(recv_time=10.0), lazy=True)
        assert buf.match(make_event(recv_time=11.0, payload="p")) is None
        assert buf.pending()

    def test_match_is_fifo_among_equal_content(self):
        buf = ComparisonBuffer()
        first = record_for(serial=1)
        second = record_for(serial=2)
        buf.park(first, lazy=True)
        buf.park(second, lazy=True)
        assert buf.match(make_event(payload="p")).record is first
        assert buf.match(make_event(payload="p")).record is second

    def test_expire_through_resolves_older_causes(self):
        buf = ComparisonBuffer()
        early = record_for(cause_time=1.0, serial=1)
        late = record_for(cause_time=5.0, serial=2)
        buf.park(early, lazy=True)
        buf.park(late, lazy=False)
        expired = buf.expire_through(make_event(recv_time=3.0, serial=9).key())
        assert [e.record for e in expired] == [early]
        assert len(buf) == 1

    def test_expired_entries_cannot_match(self):
        buf = ComparisonBuffer()
        buf.park(record_for(cause_time=1.0), lazy=True)
        buf.expire_all()
        assert buf.match(make_event(payload="p")) is None

    def test_matched_entries_not_reported_by_expire(self):
        buf = ComparisonBuffer()
        buf.park(record_for(), lazy=True)
        buf.match(make_event(payload="p"))
        assert buf.expire_all() == []

    def test_min_live_time_counts_only_lazy(self):
        buf = ComparisonBuffer()
        buf.park(record_for(recv_time=50.0), lazy=False)
        assert buf.min_live_time() is None
        buf.park(record_for(recv_time=30.0, serial=1), lazy=True)
        buf.park(record_for(recv_time=20.0, serial=2), lazy=True)
        assert buf.min_live_time() == 20.0

    def test_min_live_time_drops_after_resolution(self):
        buf = ComparisonBuffer()
        buf.park(record_for(recv_time=20.0), lazy=True)
        buf.match(make_event(recv_time=20.0, payload="p"))
        assert buf.min_live_time() is None

    def test_len_counts_unresolved(self):
        buf = ComparisonBuffer()
        buf.park(record_for(serial=1), lazy=True)
        buf.park(record_for(serial=2, payload="q"), lazy=True)
        assert len(buf) == 2
        buf.match(make_event(payload="q"))
        assert len(buf) == 1


class TestStaticCancellation:
    def test_factories(self):
        assert aggressive().initial_mode() is Mode.AGGRESSIVE
        assert lazy().initial_mode() is Mode.LAZY

    def test_no_control_period(self):
        assert aggressive().period is None

    def test_monitoring_defaults_off(self):
        assert not aggressive().monitoring
        assert StaticCancellation(Mode.AGGRESSIVE, monitor=True).monitoring

    def test_record_tallies(self):
        policy = StaticCancellation(Mode.LAZY)
        policy.record(True)
        policy.record(True)
        policy.record(False)
        assert (policy.hits, policy.misses) == (2, 1)
