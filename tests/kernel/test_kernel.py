"""Tests for the TimeWarpSimulation facade."""

import pytest

from repro import SimulationConfig, TimeWarpSimulation
from repro.kernel.errors import ConfigurationError
from repro.apps.pingpong import Player, build_pingpong


class TestConstruction:
    def test_rejects_empty_partition(self):
        with pytest.raises(ConfigurationError):
            TimeWarpSimulation([[]])

    def test_rejects_duplicate_names(self):
        a = Player("same", "same", 1)
        b = Player("same", "same", 1)
        with pytest.raises(ConfigurationError, match="duplicate"):
            TimeWarpSimulation([[a], [b]])

    def test_object_named_resolves(self):
        sim = TimeWarpSimulation(build_pingpong(5))
        assert sim.object_named("ping").name == "ping"
        with pytest.raises(ConfigurationError):
            sim.object_named("nope")

    def test_unknown_send_target_raises_at_runtime(self):
        bad = Player("solo", "ghost", 3, serve=True)
        sim = TimeWarpSimulation([[bad]])
        with pytest.raises(ConfigurationError, match="ghost"):
            sim.run()


class TestRun:
    def test_run_once_only(self):
        sim = TimeWarpSimulation(build_pingpong(5))
        sim.run()
        with pytest.raises(ConfigurationError):
            sim.run()

    def test_stats_are_assembled(self):
        sim = TimeWarpSimulation(build_pingpong(20))
        stats = sim.run()
        assert stats.committed_events == 20
        assert stats.executed_events >= 20
        assert stats.execution_time > 0
        assert set(stats.per_object) == {"ping", "pong"}
        assert stats.per_object["ping"].events_committed == 10
        assert len(stats.per_lp) == 2
        assert stats.physical_messages >= 20

    def test_trace_requires_flag(self):
        sim = TimeWarpSimulation(build_pingpong(5))
        sim.run()
        with pytest.raises(ConfigurationError):
            sim.sorted_trace()

    def test_trace_records_commits(self):
        sim = TimeWarpSimulation(
            build_pingpong(6), SimulationConfig(record_trace=True)
        )
        sim.run()
        trace = sim.sorted_trace()
        assert len(trace) == 6
        recv_times, receivers, senders, send_times, payloads = zip(*trace)
        assert list(payloads) == [0, 1, 2, 3, 4, 5]
        assert set(receivers) == {"ping", "pong"}

    def test_end_time_horizon(self):
        sim = TimeWarpSimulation(
            build_pingpong(100, delay=10.0), SimulationConfig(end_time=55.0)
        )
        stats = sim.run()
        # events at t=10..50 execute; later ones never do
        assert stats.committed_events == 5

    def test_single_lp_partition_runs(self):
        sim = TimeWarpSimulation(build_pingpong(10, split=False))
        stats = sim.run()
        assert stats.committed_events == 10
        assert stats.physical_messages == 0

    def test_summary_is_a_string(self):
        stats = TimeWarpSimulation(build_pingpong(5)).run()
        text = stats.summary()
        assert "committed=5" in text
        assert "ev/s" in text


class TestDerivedStats:
    def test_rates_and_efficiency(self):
        stats = TimeWarpSimulation(build_pingpong(10)).run()
        assert stats.efficiency == pytest.approx(
            stats.committed_events / stats.executed_events
        )
        assert stats.committed_events_per_second == pytest.approx(
            stats.committed_events / (stats.execution_time / 1e6)
        )
        assert 0 <= stats.rollback_frequency <= 1
