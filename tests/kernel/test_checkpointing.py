"""Unit tests for checkpoint policies and the accounting window."""

import pytest

from repro.kernel.checkpointing import (
    MAX_INTERVAL,
    CheckpointWindow,
    StaticCheckpoint,
    every_event,
)
from repro.kernel.errors import ConfigurationError


class TestCheckpointWindow:
    def test_ec_is_save_plus_coast(self):
        window = CheckpointWindow(save_cost=10.0, coast_cost=5.0)
        assert window.ec == 15.0

    def test_reset_zeroes_everything(self):
        window = CheckpointWindow(
            events=5, saves=2, save_cost=10.0, coast_events=3,
            coast_cost=4.0, rollbacks=1,
        )
        window.reset()
        assert window.ec == 0.0
        assert window.events == window.saves == window.rollbacks == 0
        assert window.coast_events == 0

    def test_snapshot_is_independent(self):
        window = CheckpointWindow(events=5, save_cost=1.0)
        frozen = window.snapshot()
        window.reset()
        assert frozen.events == 5
        assert frozen.save_cost == 1.0


class TestStaticCheckpoint:
    def test_default_saves_every_event(self):
        assert every_event().initial_interval() == 1

    def test_interval_bounds_enforced(self):
        with pytest.raises(ConfigurationError):
            StaticCheckpoint(0)
        with pytest.raises(ConfigurationError):
            StaticCheckpoint(MAX_INTERVAL + 1)
        assert StaticCheckpoint(MAX_INTERVAL).initial_interval() == MAX_INTERVAL

    def test_no_control_period(self):
        assert StaticCheckpoint(4).period is None
