"""Unit tests for the three history queues."""

import pytest

from repro.kernel.errors import StateHistoryError, TimeWarpError
from repro.kernel.queues import InputQueue, OutputQueue, StateQueue
from repro.kernel.state import SavedState
from tests.helpers import make_event


class _State:
    def __init__(self, tag=0):
        self.tag = tag

    def copy(self):
        return _State(self.tag)

    def size_bytes(self):
        return 8


def snap(last_event=None, lvt=0.0, count=0):
    return SavedState(
        last_key=None if last_event is None else last_event.key(),
        lvt=lvt,
        event_count=count,
        state=_State(),
    )


class TestInputQueueScheduling:
    def test_pop_in_key_order(self):
        q = InputQueue()
        events = [make_event(recv_time=t, serial=i) for i, t in enumerate([5, 1, 3])]
        for e in events:
            q.insert_positive(e)
        assert [q.pop_next().recv_time for _ in range(3)] == [1, 3, 5]

    def test_peek_does_not_consume(self):
        q = InputQueue()
        q.insert_positive(make_event(recv_time=2.0))
        assert q.peek_next().recv_time == 2.0
        assert q.peek_next().recv_time == 2.0
        assert q.future_count() == 1

    def test_pop_empty_raises(self):
        with pytest.raises(TimeWarpError):
            InputQueue().pop_next()

    def test_last_processed_key_tracks_pops(self):
        q = InputQueue()
        assert q.last_processed_key() is None
        q.insert_positive(make_event(recv_time=1.0))
        event = q.pop_next()
        assert q.last_processed_key() == event.key()


class TestAnnihilation:
    def test_anti_then_positive(self):
        q = InputQueue()
        event = make_event(serial=3)
        assert q.insert_anti(event.anti_message()) is None
        assert q.pending_anti_count() == 1
        assert q.insert_positive(event) is False  # annihilated on arrival
        assert q.pending_anti_count() == 0
        assert not q.has_future()

    def test_positive_then_anti_unprocessed(self):
        q = InputQueue()
        event = make_event(serial=3)
        q.insert_positive(event)
        assert q.insert_anti(event.anti_message()) is None
        assert not q.has_future()
        assert q.future_count() == 0

    def test_anti_for_processed_event_returns_it(self):
        q = InputQueue()
        event = make_event(serial=3)
        q.insert_positive(event)
        q.pop_next()
        assert q.insert_anti(event.anti_message()) == event

    def test_anti_only_hits_matching_serial(self):
        q = InputQueue()
        a, b = make_event(serial=1), make_event(serial=2, recv_time=11.0)
        q.insert_positive(a)
        q.insert_positive(b)
        q.insert_anti(a.anti_message())
        assert q.peek_next() == b
        assert q.future_count() == 1

    def test_tombstoned_event_skipped_by_peek(self):
        q = InputQueue()
        first = make_event(recv_time=1.0, serial=1)
        second = make_event(recv_time=2.0, serial=2)
        q.insert_positive(first)
        q.insert_positive(second)
        q.insert_anti(first.anti_message())
        assert q.peek_next() == second

    def test_heap_stays_bounded_under_annihilation_churn(self):
        # Regression: tombstoned heap entries used to linger until a pop
        # walked past them, so a workload that annihilates far-future
        # events it never schedules grew the heap without bound.  The
        # compaction pass must keep the heap proportional to live events.
        q = InputQueue()
        keeper = make_event(recv_time=0.5, serial=10**6)
        q.insert_positive(keeper)
        for i in range(2_000):
            event = make_event(recv_time=1000.0 + i, serial=i)
            q.insert_positive(event)
            q.insert_anti(event.anti_message())
        assert q.future_count() == 1
        assert len(q._future) < 200  # bounded, not ~2000 tombstones
        assert len(q._tombstones) < 200
        assert q.pop_next() == keeper

    def test_compaction_keeps_tombstones_for_unpopped_entries(self):
        # a tombstone whose heap entry survives compaction must survive
        # with it, or the stale entry would later pop as a live event
        q = InputQueue()
        events = [make_event(recv_time=float(i), serial=i) for i in range(70)]
        for e in events:
            q.insert_positive(e)
        for e in events[:65]:  # tombstone most, crossing the threshold
            q.insert_anti(e.anti_message())
        assert q.future_count() == 5
        assert [q.pop_next() for _ in range(5)] == events[65:]
        assert not q.has_future()


class TestInputQueueRollback:
    def test_rollback_moves_events_back(self):
        q = InputQueue()
        events = [make_event(recv_time=t, serial=t) for t in (1, 2, 3, 4)]
        for e in events:
            q.insert_positive(e)
        for _ in range(4):
            q.pop_next()
        straggler_key = make_event(recv_time=2.5, serial=99).key()
        rolled = q.rollback(straggler_key)
        assert [e.recv_time for e in rolled] == [3, 4]
        assert len(q.processed) == 2
        assert q.peek_next().recv_time == 3

    def test_rollback_to_beginning(self):
        q = InputQueue()
        q.insert_positive(make_event(recv_time=1.0))
        q.pop_next()
        rolled = q.rollback(make_event(recv_time=0.5, serial=9).key())
        assert len(rolled) == 1
        assert q.processed == []

    def test_rollback_then_reprocess_same_order(self):
        q = InputQueue()
        for t in (1, 2, 3):
            q.insert_positive(make_event(recv_time=t, serial=t))
        popped = [q.pop_next() for _ in range(3)]
        q.rollback(popped[0].key())
        replayed = [q.pop_next() for _ in range(3)]
        assert replayed == popped


class TestInputQueueFossil:
    def test_commits_strictly_below_gvt(self):
        q = InputQueue()
        for t in (1, 2, 3):
            q.insert_positive(make_event(recv_time=t, serial=t))
            q.pop_next()
        committed = q.fossil_collect(2.0, None)
        assert [e.recv_time for e in committed] == [1]
        assert [e.recv_time for e in q.processed] == [2, 3]

    def test_limit_key_retains_coast_forward_events(self):
        q = InputQueue()
        events = [make_event(recv_time=t, serial=t) for t in (1, 2, 3)]
        for e in events:
            q.insert_positive(e)
            q.pop_next()
        # Snapshot was taken after event 1: events 2, 3 must survive even
        # though GVT has passed them.
        committed = q.fossil_collect(10.0, events[0].key())
        assert [e.recv_time for e in committed] == [1]
        assert len(q.processed) == 2

    def test_unbounded_final_collect(self):
        q = InputQueue()
        for t in (1, 2):
            q.insert_positive(make_event(recv_time=t, serial=t))
            q.pop_next()
        assert len(q.fossil_collect(float("inf"), None)) == 2
        assert q.processed == []


class TestOutputQueue:
    def _record(self, q, recv_time, cause_time):
        event = make_event(recv_time=recv_time, serial=int(recv_time))
        cause = make_event(recv_time=cause_time, serial=100 + int(cause_time))
        q.record_send(event, cause.key())
        return event

    def test_rollback_slices_by_cause_key(self):
        q = OutputQueue()
        self._record(q, 10, 1)
        self._record(q, 20, 2)
        self._record(q, 30, 3)
        undone = q.rollback(make_event(recv_time=1.5, serial=999).key())
        assert [r.event.recv_time for r in undone] == [20, 30]
        assert len(q) == 1

    def test_fossil_collect_by_cause_recv_time(self):
        q = OutputQueue()
        self._record(q, 10, 1)
        self._record(q, 20, 2)
        assert q.fossil_collect(2.0) == 1
        assert len(q) == 1


class TestStateQueue:
    def test_restore_discards_newer_snapshots(self):
        q = StateQueue()
        e1, e2, e3 = (make_event(recv_time=t, serial=t) for t in (1, 2, 3))
        q.save(snap())
        q.save(snap(e1, lvt=1))
        q.save(snap(e2, lvt=2))
        q.save(snap(e3, lvt=3))
        restored = q.restore_for(make_event(recv_time=2.5, serial=9).key())
        assert restored.lvt == 2
        assert len(q) == 3  # initial, e1, e2

    def test_restore_without_history_raises(self):
        q = StateQueue()
        e1 = make_event(recv_time=5.0)
        q.save(snap(e1, lvt=5))
        with pytest.raises(StateHistoryError):
            q.restore_for(make_event(recv_time=1.0, serial=9).key())

    def test_out_of_order_save_rejected(self):
        q = StateQueue()
        e2 = make_event(recv_time=2.0, serial=2)
        e1 = make_event(recv_time=1.0, serial=1)
        q.save(snap(e2, lvt=2))
        with pytest.raises(TimeWarpError):
            q.save(snap(e1, lvt=1))

    def test_fossil_keeps_newest_below_gvt(self):
        q = StateQueue()
        events = [make_event(recv_time=t, serial=t) for t in (1, 2, 3, 4)]
        q.save(snap())
        for t, e in zip((1, 2, 3, 4), events):
            q.save(snap(e, lvt=t))
        dropped = q.fossil_collect(3.5)
        # snapshots at lvt 3 (newest < gvt) and 4 must survive
        assert dropped == 3
        assert [entry.lvt for entry in q.entries] == [3, 4]

    def test_fossil_with_gvt_below_everything_is_noop(self):
        q = StateQueue()
        q.save(snap())
        assert q.fossil_collect(0.0) == 0
        assert len(q) == 1
