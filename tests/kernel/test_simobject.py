"""Unit tests for the application-facing SimulationObject API."""

import pytest

from repro.kernel.errors import ConfigurationError
from repro.kernel.simobject import SimulationObject
from repro.kernel.state import RecordState
from dataclasses import dataclass


@dataclass
class S(RecordState):
    n: int = 0


class Obj(SimulationObject):
    def initial_state(self):
        return S()

    def execute_process(self, payload):
        pass


class FakeServices:
    def __init__(self):
        self.sent = []
        self.now = 5.0

    def send(self, dest, delay, payload):
        self.sent.append((dest, delay, payload))


class TestSimulationObject:
    def test_needs_a_name(self):
        with pytest.raises(ConfigurationError):
            Obj("")

    def test_unbound_services_raise(self):
        obj = Obj("x")
        with pytest.raises(ConfigurationError, match="not attached"):
            obj.send_event("y", 1.0, None)
        with pytest.raises(ConfigurationError):
            _ = obj.now

    def test_send_requires_positive_delay(self):
        obj = Obj("x")
        obj.bind(FakeServices())
        with pytest.raises(ConfigurationError, match="delay must be > 0"):
            obj.send_event("y", 0.0, None)
        with pytest.raises(ConfigurationError):
            obj.send_event("y", -1.0, None)

    def test_send_delegates_to_services(self):
        obj = Obj("x")
        services = FakeServices()
        obj.bind(services)
        obj.send_event("y", 2.0, ("p",))
        assert services.sent == [("y", 2.0, ("p",))]

    def test_now_reads_services(self):
        obj = Obj("x")
        obj.bind(FakeServices())
        assert obj.now == 5.0

    def test_default_hooks_are_noops(self):
        obj = Obj("x")
        obj.initialize()
        obj.finalize()

    def test_base_class_requires_overrides(self):
        class Bare(SimulationObject):
            pass

        bare = Bare("b")
        with pytest.raises(NotImplementedError):
            bare.initial_state()
        with pytest.raises(NotImplementedError):
            bare.execute_process(None)

    def test_default_grain_factor(self):
        assert Obj("x").grain_factor == 1.0
