"""Unit tests for SimulationConfig validation and defaults."""

import pytest

from repro.comm.aggregation import NoAggregation
from repro.kernel.cancellation import Mode
from repro.kernel.config import (
    SimulationConfig,
    default_aggregation,
    default_cancellation,
    default_checkpoint,
)
from repro.kernel.errors import ConfigurationError


class TestDefaults:
    def test_default_cancellation_is_aggressive_unmonitored(self):
        policy = default_cancellation(None)
        assert policy.initial_mode() is Mode.AGGRESSIVE
        assert not policy.monitoring

    def test_default_checkpoint_saves_every_event(self):
        assert default_checkpoint(None).initial_interval() == 1

    def test_default_aggregation_is_off(self):
        assert isinstance(default_aggregation(0), NoAggregation)

    def test_default_config_validates(self):
        SimulationConfig().validate()


class TestValidation:
    def test_unknown_gvt_algorithm(self):
        with pytest.raises(ConfigurationError, match="GVT"):
            SimulationConfig(gvt_algorithm="magic").validate()

    def test_gvt_period_positive(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(gvt_period=0).validate()

    def test_events_per_turn_positive(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(events_per_turn=0).validate()

    def test_speed_factors_positive(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(lp_speed_factors={1: -1.0}).validate()


class TestCostScaling:
    def test_unlisted_lp_gets_base_costs(self):
        config = SimulationConfig(lp_speed_factors={1: 2.0})
        assert config.costs_for_lp(0) is config.costs

    def test_listed_lp_gets_scaled_costs(self):
        config = SimulationConfig(lp_speed_factors={1: 2.0})
        scaled = config.costs_for_lp(1)
        assert scaled.event_cost == pytest.approx(config.costs.event_cost * 2)
        assert scaled.msg_send_overhead == pytest.approx(
            config.costs.msg_send_overhead * 2
        )
        # ratio parameters are not scaled
        assert scaled.coast_event_factor == config.costs.coast_event_factor

    def test_factor_one_shares_object(self):
        config = SimulationConfig(lp_speed_factors={2: 1.0})
        assert config.costs_for_lp(2) is config.costs
