"""Unit tests for application state: copy semantics, sizes, snapshots."""

from dataclasses import dataclass, field

import pytest

from repro.kernel.state import RecordState, SavedState
from tests.helpers import make_event


@dataclass
class DemoState(RecordState):
    count: int = 0
    name: str = "x"
    values: list = field(default_factory=list)
    table: dict = field(default_factory=dict)
    tags: set = field(default_factory=set)


@dataclass
class NestedState(RecordState):
    inner: DemoState = field(default_factory=DemoState)
    flag: bool = False


class TestRecordStateCopy:
    def test_copy_is_deep_for_containers(self):
        state = DemoState(count=1, values=[1, [2]], table={"a": [3]}, tags={4})
        clone = state.copy()
        clone.values.append(9)
        clone.table["a"].append(9)
        clone.tags.add(9)
        assert state.values == [1, [2]]
        assert state.table == {"a": [3]}
        assert state.tags == {4}

    def test_copy_preserves_values(self):
        state = DemoState(count=3, name="abc", values=[1, 2], table={"k": 1})
        assert state.copy() == state

    def test_nested_record_states_are_copied(self):
        state = NestedState(inner=DemoState(count=5))
        clone = state.copy()
        clone.inner.count = 99
        assert state.inner.count == 5

    def test_equality_is_by_value_and_type(self):
        assert DemoState(count=1) == DemoState(count=1)
        assert DemoState(count=1) != DemoState(count=2)

        @dataclass
        class OtherState(RecordState):
            count: int = 1

        assert DemoState(count=1).__eq__(OtherState(count=1)) is NotImplemented

    def test_uncopyable_field_raises(self):
        @dataclass
        class Bad(RecordState):
            gen: object = None

        bad = Bad(gen=(i for i in range(3)))
        with pytest.raises(TypeError, match="not copyable"):
            bad.copy()


class TestRecordStateSize:
    def test_size_counts_fields(self):
        empty = DemoState()
        assert empty.size_bytes() > 0
        bigger = DemoState(values=[0] * 100)
        assert bigger.size_bytes() > empty.size_bytes() + 700

    def test_size_grows_with_dict(self):
        assert (
            DemoState(table={i: i for i in range(10)}).size_bytes()
            > DemoState().size_bytes()
        )


class TestSavedState:
    def test_initial_snapshot_precedes_everything(self):
        snap = SavedState(last_key=None, lvt=0.0, event_count=0, state=DemoState())
        assert snap.precedes(make_event(recv_time=0.0).key())

    def test_precedes_is_strict(self):
        key = make_event(recv_time=5.0).key()
        snap = SavedState(last_key=key, lvt=5.0, event_count=1, state=DemoState())
        assert not snap.precedes(key)
        assert snap.precedes(make_event(recv_time=5.5).key())
        assert not snap.precedes(make_event(recv_time=4.5).key())
