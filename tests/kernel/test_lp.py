"""LP-level tests: rollback, coast-forward, cancellation mechanics.

These tests drive a :class:`LogicalProcess` directly, injecting crafted
events so the exact rollback behaviour can be asserted — no executive, no
network, deterministic by construction.
"""

from dataclasses import dataclass, field

import pytest

from repro.cluster.costmodel import CostModel
from repro.kernel.cancellation import Mode, StaticCancellation
from repro.kernel.checkpointing import StaticCheckpoint
from repro.kernel.event import Event
from repro.kernel.lp import LogicalProcess
from repro.kernel.simobject import SimulationObject
from repro.kernel.state import RecordState


@dataclass
class LogState(RecordState):
    seen: list = field(default_factory=list)
    counter: int = 0


class Recorder(SimulationObject):
    """Processes (tag, value) payloads; optionally forwards to a peer.

    Payload forms:
      ("note", v)        -- record v
      ("fwd", v, dest)   -- record v and send ("note", v) to dest at +10
      ("ctr", v)         -- record (v, counter) and bump counter
                            (order-sensitive output for lazy-miss tests)
      ("ctrfwd", v, dst) -- order-sensitive forward: payload includes the
                            counter, so regenerated sends differ after a
                            straggler reorders execution
    """

    def initial_state(self) -> LogState:
        return LogState()

    def execute_process(self, payload):
        state: LogState = self.state
        tag = payload[0]
        if tag == "note":
            state.seen.append(payload[1])
        elif tag == "fwd":
            state.seen.append(payload[1])
            self.send_event(payload[2], 10.0, ("note", payload[1]))
        elif tag == "ctr":
            state.seen.append((payload[1], state.counter))
            state.counter += 1
        elif tag == "ctrfwd":
            state.seen.append(payload[1])
            self.send_event(payload[2], 10.0, ("note", (payload[1], state.counter)))
            state.counter += 1
        else:  # pragma: no cover - defensive
            raise AssertionError(f"unknown payload {payload!r}")


def build_lp(names=("a", "b"), chi=1, mode=Mode.AGGRESSIVE, monitor=False):
    name_to_oid = {name: i for i, name in enumerate(names)}
    lp = LogicalProcess(
        0,
        CostModel(),
        resolve_name=name_to_oid.__getitem__,
        lp_of=lambda oid: 0,
    )
    objs = {}
    for name, oid in name_to_oid.items():
        obj = Recorder(name)
        lp.attach(
            obj,
            oid,
            cancel_policy=StaticCancellation(mode, monitor=monitor),
            ckpt_policy=StaticCheckpoint(chi),
        )
        objs[name] = obj
    lp.initialize()
    return lp, objs, name_to_oid


EXTERNAL = 99  # a sender id for injected events (never resolved locally)
_serial = iter(range(10_000, 99_999))


def inject(lp, receiver_oid, recv_time, payload, send_time=None):
    event = Event(
        sender=EXTERNAL,
        receiver=receiver_oid,
        send_time=recv_time - 1.0 if send_time is None else send_time,
        recv_time=recv_time,
        payload=payload,
        serial=next(_serial),
    )
    lp.deliver_event(event)
    return event


def drain(lp):
    while lp.execute_one():
        pass


class TestForwardExecution:
    def test_events_execute_in_key_order_across_objects(self):
        lp, objs, ids = build_lp()
        inject(lp, ids["b"], 3.0, ("note", "b3"))
        inject(lp, ids["a"], 1.0, ("note", "a1"))
        inject(lp, ids["a"], 2.0, ("note", "a2"))
        drain(lp)
        assert objs["a"].state.seen == ["a1", "a2"]
        assert objs["b"].state.seen == ["b3"]

    def test_clock_advances_with_work(self):
        lp, _, ids = build_lp()
        inject(lp, ids["a"], 1.0, ("note", 1))
        before = lp.clock
        drain(lp)
        assert lp.clock > before

    def test_intra_lp_send_delivered(self):
        lp, objs, ids = build_lp()
        inject(lp, ids["a"], 1.0, ("fwd", "x", "b"))
        drain(lp)
        assert objs["b"].state.seen == ["x"]


class TestRollback:
    def test_straggler_restores_order(self):
        lp, objs, ids = build_lp()
        inject(lp, ids["a"], 10.0, ("note", "late"))
        drain(lp)
        inject(lp, ids["a"], 5.0, ("note", "early"))
        drain(lp)
        assert objs["a"].state.seen == ["early", "late"]
        ctx = lp.members[ids["a"]]
        assert ctx.stats.rollbacks == 1
        assert ctx.stats.primary_rollbacks == 1

    def test_order_sensitive_state_is_repaired(self):
        lp, objs, ids = build_lp()
        for t in (10.0, 20.0, 30.0):
            inject(lp, ids["a"], t, ("ctr", t))
        drain(lp)
        inject(lp, ids["a"], 15.0, ("ctr", 15.0))
        drain(lp)
        assert objs["a"].state.seen == [
            (10.0, 0), (15.0, 1), (20.0, 2), (30.0, 3)
        ]

    def test_rollback_counts_rolled_events(self):
        lp, objs, ids = build_lp()
        for t in (10.0, 20.0, 30.0):
            inject(lp, ids["a"], t, ("note", t))
        drain(lp)
        inject(lp, ids["a"], 5.0, ("note", 5.0))
        drain(lp)
        assert lp.members[ids["a"]].stats.events_rolled_back == 3

    def test_coast_forward_with_sparse_checkpoints(self):
        lp, objs, ids = build_lp(chi=3)
        for t in (10.0, 20.0, 30.0, 40.0, 50.0):
            inject(lp, ids["a"], t, ("ctr", t))
        drain(lp)
        # Straggler at 45: restore must go back to the chi=3 snapshot
        # (after event at 30) and coast through 40.
        inject(lp, ids["a"], 45.0, ("ctr", 45.0))
        drain(lp)
        ctx = lp.members[ids["a"]]
        assert ctx.stats.coast_forward_events == 1
        assert objs["a"].state.seen == [
            (10.0, 0), (20.0, 1), (30.0, 2), (40.0, 3), (45.0, 4), (50.0, 5)
        ]

    def test_coast_forward_does_not_resend(self):
        lp, objs, ids = build_lp(chi=4)
        for t in (10.0, 20.0, 30.0):
            inject(lp, ids["a"], t, ("fwd", t, "b"))
        drain(lp)
        assert objs["b"].state.seen == [10.0, 20.0, 30.0]
        # Straggler before 30 forces a coast through 10 and 20; their
        # sends must not be duplicated at b.
        inject(lp, ids["a"], 25.0, ("note", "x"))
        drain(lp)
        assert sorted(objs["b"].state.seen) == [10.0, 20.0, 30.0]


class TestAggressiveCancellation:
    def test_undone_sends_are_cancelled(self):
        lp, objs, ids = build_lp(mode=Mode.AGGRESSIVE)
        inject(lp, ids["a"], 10.0, ("fwd", "v1", "b"))
        drain(lp)
        assert objs["b"].state.seen == ["v1"]
        # Straggler at a before 10 -> a re-executes fwd and resends; the
        # anti cancels the first copy, so b must see v1 exactly once (the
        # resent copy) plus nothing else.
        inject(lp, ids["a"], 5.0, ("note", "s"))
        drain(lp)
        assert objs["b"].state.seen == ["v1"]
        assert lp.members[ids["a"]].stats.antis_sent == 1

    def test_anti_cascades_roll_back_receiver(self):
        lp, objs, ids = build_lp(mode=Mode.AGGRESSIVE)
        inject(lp, ids["a"], 10.0, ("ctrfwd", "v", "b"))
        drain(lp)
        assert objs["b"].state.seen == [("v", 0)]
        inject(lp, ids["a"], 5.0, ("ctrfwd", "u", "b"))
        drain(lp)
        # Order-sensitive payload: after repair b sees u with counter 0
        # and v with counter 1.
        assert objs["b"].state.seen == [("u", 0), ("v", 1)]
        assert lp.members[ids["b"]].stats.secondary_rollbacks >= 1


class TestLazyCancellation:
    def test_identical_regeneration_is_suppressed(self):
        lp, objs, ids = build_lp(mode=Mode.LAZY)
        inject(lp, ids["a"], 10.0, ("fwd", "v1", "b"))
        drain(lp)
        inject(lp, ids["a"], 5.0, ("note", "s"))
        drain(lp)
        ctx = lp.members[ids["a"]]
        assert ctx.stats.lazy_hits == 1
        assert ctx.stats.antis_sent == 0
        assert ctx.stats.sends_suppressed == 1
        assert objs["b"].state.seen == ["v1"]

    def test_divergent_regeneration_cancels_original(self):
        lp, objs, ids = build_lp(mode=Mode.LAZY)
        inject(lp, ids["a"], 10.0, ("ctrfwd", "v", "b"))
        drain(lp)
        inject(lp, ids["a"], 5.0, ("ctrfwd", "u", "b"))
        drain(lp)
        ctx = lp.members[ids["a"]]
        assert ctx.stats.lazy_misses >= 1
        assert ctx.stats.antis_sent >= 1
        assert objs["b"].state.seen == [("u", 0), ("v", 1)]

    def test_idle_expiry_resolves_dangling_entries(self):
        lp, objs, ids = build_lp(mode=Mode.LAZY)
        event = inject(lp, ids["a"], 10.0, ("fwd", "v1", "b"))
        drain(lp)
        # Annihilate the cause event: a rolls back, parks the send, and
        # the cause will never re-execute.
        lp.deliver_event(event.anti_message())
        drain(lp)
        lp.on_idle()
        ctx = lp.members[ids["a"]]
        assert ctx.stats.lazy_misses == 1
        assert ctx.stats.antis_sent == 1
        assert objs["b"].state.seen == []


class TestAntiMessageHandling:
    def test_anti_for_unprocessed_annihilates_silently(self):
        lp, objs, ids = build_lp()
        event = inject(lp, ids["a"], 50.0, ("note", "x"))
        lp.deliver_event(event.anti_message())
        drain(lp)
        assert objs["a"].state.seen == []
        assert lp.members[ids["a"]].stats.rollbacks == 0

    def test_anti_before_positive_annihilates_on_arrival(self):
        lp, objs, ids = build_lp()
        event = Event(sender=EXTERNAL, receiver=ids["a"], send_time=1.0,
                      recv_time=2.0, payload=("note", "x"), serial=424242)
        lp.deliver_event(event.anti_message())
        lp.deliver_event(event)
        drain(lp)
        assert objs["a"].state.seen == []

    def test_anti_for_processed_causes_secondary_rollback(self):
        lp, objs, ids = build_lp()
        event = inject(lp, ids["a"], 10.0, ("ctr", "x"))
        inject(lp, ids["a"], 20.0, ("ctr", "y"))
        drain(lp)
        lp.deliver_event(event.anti_message())
        drain(lp)
        assert objs["a"].state.seen == [("y", 0)]
        assert lp.members[ids["a"]].stats.secondary_rollbacks == 1


class TestFossilCollection:
    def test_commits_and_prunes(self):
        lp, objs, ids = build_lp(chi=2)
        for t in (10.0, 20.0, 30.0, 40.0):
            inject(lp, ids["a"], t, ("note", t))
        drain(lp)
        committed = lp.fossil_collect(35.0)
        ctx = lp.members[ids["a"]]
        assert committed >= 1
        assert ctx.stats.events_committed == committed
        # a snapshot at or below GVT must survive for future rollbacks
        assert ctx.sq.entries[0].lvt < 35.0 or ctx.sq.entries[0].last_key is None

    def test_rollback_still_possible_after_fossil(self):
        lp, objs, ids = build_lp(chi=2)
        for t in (10.0, 20.0, 30.0, 40.0):
            inject(lp, ids["a"], t, ("ctr", t))
        drain(lp)
        lp.fossil_collect(25.0)
        inject(lp, ids["a"], 27.0, ("ctr", 27.0))
        drain(lp)
        seen = objs["a"].state.seen
        assert seen[-3:] == [(27.0, 2), (30.0, 3), (40.0, 4)]

    def test_final_commit_flushes_everything(self):
        lp, objs, ids = build_lp()
        for t in (10.0, 20.0):
            inject(lp, ids["a"], t, ("note", t))
        drain(lp)
        committed = lp.fossil_collect(float("inf"), final=True)
        assert committed == 2
        assert lp.members[ids["a"]].iq.processed == []


class TestLocalMin:
    def test_reflects_unprocessed_events(self):
        lp, _, ids = build_lp()
        assert lp.local_min() == float("inf")
        inject(lp, ids["a"], 42.0, ("note", "x"))
        assert lp.local_min() == 42.0

    def test_reflects_pending_lazy_antis(self):
        lp, _, ids = build_lp(mode=Mode.LAZY)
        inject(lp, ids["a"], 10.0, ("fwd", "v", "b"))
        drain(lp)
        # b's event at 20 is unprocessed; roll a back so the send parks.
        inject(lp, ids["a"], 5.0, ("note", "s"))
        # before draining, a's pending lazy entry (recv 20) and the
        # unprocessed events bound local_min
        assert lp.local_min() <= 20.0


class TestOptimismBound:
    def test_next_work_respects_bound(self):
        lp, objs, ids = build_lp()
        inject(lp, ids["a"], 10.0, ("note", "x"))
        inject(lp, ids["a"], 100.0, ("note", "y"))
        lp.optimism_bound = 50.0
        drain(lp)
        assert objs["a"].state.seen == ["x"]
        # the blocked event is still pending work for termination purposes
        assert not lp.has_work()
        assert lp.has_work(ignore_window=True)

    def test_raising_bound_unblocks(self):
        lp, objs, ids = build_lp()
        inject(lp, ids["a"], 100.0, ("note", "y"))
        lp.optimism_bound = 50.0
        drain(lp)
        assert objs["a"].state.seen == []
        lp.optimism_bound = 200.0
        drain(lp)
        assert objs["a"].state.seen == ["y"]

    def test_end_time_still_wins(self):
        lp, objs, ids = build_lp()
        lp.end_time = 50.0
        lp.optimism_bound = 1_000.0
        inject(lp, ids["a"], 100.0, ("note", "beyond"))
        drain(lp)
        assert objs["a"].state.seen == []
        assert not lp.has_work(ignore_window=True)


class TestReceivePath:
    def test_receive_physical_charges_and_delivers(self):
        lp, objs, ids = build_lp()
        from repro.kernel.event import Event

        events = tuple(
            Event(sender=EXTERNAL, receiver=ids["a"], send_time=0.0,
                  recv_time=float(t), payload=("note", t), serial=5000 + t)
            for t in (1, 2, 3)
        )
        before = lp.clock
        lp.receive_physical(500, events)
        assert lp.clock > before
        assert lp.stats.physical_messages_received == 1
        assert lp.stats.remote_events_received == 3
        drain(lp)
        assert objs["a"].state.seen == [1, 2, 3]

    def test_unknown_receiver_rejected(self):
        lp, _, _ = build_lp()
        from repro.kernel.errors import SchedulingError
        from repro.kernel.event import Event

        stray = Event(sender=EXTERNAL, receiver=999, send_time=0.0,
                      recv_time=1.0, payload=None, serial=1)
        import pytest

        with pytest.raises(SchedulingError):
            lp.deliver_event(stray)
