"""Tests for error wrapping: application failures carry simulation context."""

import pytest

from repro import SequentialSimulation, TimeWarpSimulation
from repro.kernel.errors import ApplicationError, TimeWarpError
from repro.kernel.simobject import SimulationObject
from repro.kernel.state import RecordState
from dataclasses import dataclass


@dataclass
class S(RecordState):
    n: int = 0


class Exploder(SimulationObject):
    """Processes a few events fine, then raises."""

    def __init__(self, name="boom", fuse=3):
        super().__init__(name)
        self.fuse = fuse

    def initial_state(self):
        return S()

    def initialize(self):
        self.send_event(self.name, 1.0, 0)

    def execute_process(self, payload):
        if payload >= self.fuse:
            raise ValueError("kaboom")
        self.send_event(self.name, 1.0, payload + 1)


class TestApplicationErrorWrapping:
    def test_timewarp_wraps_with_context(self):
        sim = TimeWarpSimulation([[Exploder()]])
        with pytest.raises(ApplicationError) as excinfo:
            sim.run()
        err = excinfo.value
        assert err.obj_name == "boom"
        assert err.virtual_time == 4.0
        assert err.payload == 3
        assert not err.coasting
        assert isinstance(err.__cause__, ValueError)
        assert "boom" in str(err) and "t=4.0" in str(err)

    def test_sequential_wraps_identically(self):
        seq = SequentialSimulation([Exploder()])
        with pytest.raises(ApplicationError) as excinfo:
            seq.run()
        assert excinfo.value.payload == 3

    def test_kernel_errors_pass_through_unwrapped(self):
        class BadSender(Exploder):
            def execute_process(self, payload):
                self.send_event("nobody", 1.0, None)

        sim = TimeWarpSimulation([[BadSender()]])
        with pytest.raises(TimeWarpError) as excinfo:
            sim.run()
        assert not isinstance(excinfo.value, ApplicationError)

    def test_is_a_timewarp_error(self):
        assert issubclass(ApplicationError, TimeWarpError)
