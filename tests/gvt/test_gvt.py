"""GVT tests: omniscient exactness, Mattern safety and progress.

GVT safety is *the* correctness keystone of Time Warp memory management:
an unsafe estimate fossil-collects state that a later rollback needs.
The omniscient estimator is checked for exactness against hand-computed
bounds; Mattern's distributed algorithm is checked for safety (never
exceeds the true bound at commit time, validated by instrumenting the
commit path) and for liveness/equivalence at quiescence.
"""

from repro import SimulationConfig, TimeWarpSimulation
from repro.apps.phold import PHOLDParams, build_phold
from repro.apps.pingpong import build_pingpong
from repro.gvt.manager import true_global_minimum
from repro.gvt.mattern import MatternGVT, _Agent


class TestTrueGlobalMinimum:
    def test_matches_initial_events(self):
        sim = TimeWarpSimulation(build_pingpong(10, delay=7.0))
        sim.executive.start()
        # Only the serve (recv_time = 7.0) exists before any execution.
        assert true_global_minimum(sim.executive) == 7.0

    def test_infinite_when_empty(self):
        sim = TimeWarpSimulation(build_pingpong(0))
        sim.executive.start()
        sim.executive.run()
        assert true_global_minimum(sim.executive) == float("inf")


class TestOmniscient:
    def test_final_gvt_reaches_horizon(self):
        config = SimulationConfig(gvt_period=5_000.0)
        sim = TimeWarpSimulation(build_pingpong(50), config)
        stats = sim.run()
        assert stats.final_gvt > 0
        assert stats.gvt_rounds > 0

    def test_estimates_are_monotone(self):
        config = SimulationConfig(gvt_period=2_000.0)
        sim = TimeWarpSimulation(build_pingpong(200), config)
        sim.run()
        history = [gvt for _, gvt in sim.executive.gvt_history]
        assert history == sorted(history)
        assert len(history) >= 2

    def test_fossil_collection_frees_history(self):
        config = SimulationConfig(gvt_period=2_000.0)
        sim = TimeWarpSimulation(build_pingpong(400), config)
        sim.run()
        for lp in sim.lps:
            for ctx in lp.members.values():
                # history must have been pruned well below the run length
                assert len(ctx.sq.entries) < 400
                assert len(ctx.iq.processed) < 400


class TestMatternAgent:
    def test_colouring_by_round(self):
        agent = _Agent()
        assert agent.note_send(5.0) == 0       # stamped round 0
        agent.enter_round(1)
        assert agent.white_sent() == 1         # pre-round send is white
        assert agent.note_send(9.0) == 1       # new sends are red
        assert agent.white_sent() == 1

    def test_receive_counting_by_stamp(self):
        agent = _Agent()
        agent.enter_round(1)
        agent.note_receive(0)  # white for round 1
        agent.note_receive(1)  # red for round 1
        assert agent.white_received() == 1

    def test_red_min_resets_per_round(self):
        agent = _Agent()
        agent.note_send(5.0)
        agent.enter_round(1)
        assert agent.red_min == float("inf")
        agent.note_send(9.0)
        assert agent.red_min == 9.0

    def test_entering_same_round_twice_is_idempotent(self):
        agent = _Agent()
        agent.enter_round(1)
        agent.note_send(3.0)
        agent.enter_round(1)
        assert agent.red_min == 3.0


class TestMatternEndToEnd:
    def _run(self, build, **kwargs):
        config = SimulationConfig(
            gvt_algorithm="mattern", gvt_period=3_000.0, record_trace=True, **kwargs
        )
        sim = TimeWarpSimulation(build(), config)
        stats = sim.run()
        return sim, stats

    def test_rounds_complete_and_commit(self):
        sim, stats = self._run(lambda: build_pingpong(300))
        gvt = sim.executive.gvt_algorithm
        assert isinstance(gvt, MatternGVT)
        assert gvt.rounds_completed >= 1
        assert stats.final_gvt > 0

    def test_estimates_are_safe_lower_bounds(self):
        """Every committed Mattern estimate must be <= the true bound at
        the moment of commit (checked by wrapping the commit path)."""
        config = SimulationConfig(gvt_algorithm="mattern", gvt_period=2_000.0)
        params = PHOLDParams(n_objects=8, n_lps=4, jobs_per_object=2)
        sim = TimeWarpSimulation(build_phold(params), config)
        sim.config.end_time = 800.0
        for lp in sim.lps:
            lp.end_time = 800.0
        gvt = sim.executive.gvt_algorithm
        original = gvt._commit
        checked = []

        def commit(estimate):
            checked.append((estimate, true_global_minimum(sim.executive)))
            original(estimate)

        gvt._commit = commit
        sim.run()
        assert checked, "no GVT rounds completed"
        for estimate, truth in checked:
            assert estimate <= truth + 1e-9

    def test_mattern_matches_omniscient_at_quiescence(self):
        sim_m, stats_m = self._run(lambda: build_pingpong(100))
        config = SimulationConfig(gvt_period=3_000.0, record_trace=True)
        sim_o = TimeWarpSimulation(build_pingpong(100), config)
        stats_o = sim_o.run()
        assert stats_m.committed_events == stats_o.committed_events
        assert sim_m.sorted_trace() == sim_o.sorted_trace()

    def test_token_passes_counted(self):
        sim, _ = self._run(lambda: build_pingpong(300))
        gvt = sim.executive.gvt_algorithm
        assert gvt.token_passes >= gvt.rounds_completed * 2
