"""Tests for the conservative (bounded-window) kernel."""

import pytest

from repro import SequentialSimulation, SimulationConfig, TimeWarpSimulation
from repro.apps.phold import PHOLDParams, build_phold
from repro.apps.pingpong import build_pingpong
from repro.apps.raid import RAIDParams, build_raid
from repro.apps.smmp import SMMPParams, build_smmp
from repro.conservative import ConservativeSimulation
from repro.kernel.errors import ConfigurationError
from tests.helpers import flatten


class TestConstruction:
    def test_needs_positive_lookahead(self):
        with pytest.raises(ConfigurationError):
            ConservativeSimulation(build_pingpong(5), lookahead=0.0)

    def test_needs_objects(self):
        with pytest.raises(ConfigurationError):
            ConservativeSimulation([[]], lookahead=1.0)

    def test_run_once(self):
        sim = ConservativeSimulation(build_pingpong(5), lookahead=10.0)
        sim.run()
        with pytest.raises(ConfigurationError):
            sim.run()


class TestLookaheadContract:
    def test_violating_send_raises(self):
        # pingpong's delay is 10; declaring lookahead 20 must blow up
        sim = ConservativeSimulation(build_pingpong(5, delay=10.0),
                                     lookahead=20.0)
        with pytest.raises(ConfigurationError, match="lookahead"):
            sim.run()

    def test_exact_lookahead_is_allowed(self):
        sim = ConservativeSimulation(build_pingpong(10, delay=10.0),
                                     lookahead=10.0)
        stats = sim.run()
        assert stats.committed_events == 10


class TestEquivalence:
    @pytest.mark.parametrize("app,builder,lookahead,kwargs", [
        ("smmp", lambda: build_smmp(SMMPParams(requests_per_processor=25)),
         1.0, {}),
        ("raid", lambda: build_raid(RAIDParams(requests_per_source=20)),
         5.0, {}),
        ("phold", lambda: build_phold(PHOLDParams(n_objects=10, n_lps=4)),
         5.0, {"end_time": 800.0}),
    ])
    def test_matches_sequential(self, app, builder, lookahead, kwargs):
        seq = SequentialSimulation(flatten(builder()), record_trace=True,
                                   **kwargs)
        seq.run()
        cons = ConservativeSimulation(builder(), lookahead=lookahead,
                                      record_trace=True, **kwargs)
        cons.run()
        assert cons.sorted_trace() == seq.sorted_trace()

    @pytest.mark.parametrize("name,builder,lookahead,kwargs", [
        ("raid",
         lambda: build_raid(RAIDParams(requests_per_source=20)),
         5.0, {}),
        ("phold-local",
         lambda: build_phold(PHOLDParams(n_objects=10, n_lps=4,
                                         locality=0.9)),
         5.0, {"end_time": 800.0}),
        ("phold-mixed-locality",
         lambda: build_phold(PHOLDParams(n_objects=8, n_lps=2, locality=0.5,
                                         jobs_per_object=2)),
         5.0, {"end_time": 500.0}),
    ])
    def test_matches_time_warp(self, name, builder, lookahead, kwargs):
        """Both synchronization protocols commit the identical trace."""
        tw = TimeWarpSimulation(
            builder(),
            SimulationConfig(record_trace=True,
                             end_time=kwargs.get("end_time", float("inf"))),
        )
        tw.run()
        cons = ConservativeSimulation(builder(), lookahead=lookahead,
                                      record_trace=True, **kwargs)
        cons.run()
        assert cons.sorted_trace() == tw.sorted_trace()

    def test_never_rolls_back(self):
        cons = ConservativeSimulation(
            build_raid(RAIDParams(requests_per_source=20)), lookahead=5.0,
            lp_speed_factors={1: 1.5, 2: 2.0, 3: 2.5},
        )
        stats = cons.run()
        assert stats.rollbacks == 0
        assert stats.efficiency == 1.0


class TestBarrierCosts:
    def test_skew_inflates_idle_time(self):
        balanced = ConservativeSimulation(
            build_smmp(SMMPParams(requests_per_processor=20)), lookahead=1.0
        ).run()
        skewed = ConservativeSimulation(
            build_smmp(SMMPParams(requests_per_processor=20)), lookahead=1.0,
            lp_speed_factors={1: 2.0, 2: 2.0, 3: 2.0},
        ).run()
        idle_balanced = sum(s.idle_time for s in balanced.per_lp.values())
        idle_skewed = sum(s.idle_time for s in skewed.per_lp.values())
        assert idle_skewed > idle_balanced
        assert skewed.execution_time > balanced.execution_time

    def test_larger_lookahead_means_fewer_rounds(self):
        few = ConservativeSimulation(
            build_phold(PHOLDParams(n_objects=8, n_lps=2, min_delay=20.0)),
            lookahead=20.0, end_time=2_000.0,
        )
        few.run()
        many = ConservativeSimulation(
            build_phold(PHOLDParams(n_objects=8, n_lps=2, min_delay=20.0)),
            lookahead=5.0, end_time=2_000.0,
        )
        many.run()
        assert few.rounds < many.rounds

    def test_round_guard(self):
        from repro.kernel.errors import TimeWarpError

        sim = ConservativeSimulation(
            build_phold(PHOLDParams(n_objects=6, n_lps=2)),
            lookahead=5.0, end_time=5_000.0, max_rounds=10,
        )
        with pytest.raises(TimeWarpError, match="rounds"):
            sim.run()
