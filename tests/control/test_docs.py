"""Drift guards: docs/control.md vs the registry, and the CLI."""

from pathlib import Path

import pytest

from repro.control.cli import embedded_table, main as control_cli
from repro.control.registry import KNOBS, render_knob_table

DOC = Path(__file__).resolve().parents[2] / "docs" / "control.md"


class TestKnobTableDrift:
    def test_committed_table_matches_registry(self):
        committed = embedded_table(DOC.read_text(encoding="utf-8"))
        assert committed is not None, "docs/control.md lost its markers"
        assert committed == render_knob_table(), (
            "docs/control.md knob table drifted from the registry; "
            "regenerate with `repro-control docs` and paste between the "
            "markers"
        )

    def test_every_knob_documented_by_name(self):
        text = DOC.read_text(encoding="utf-8")
        for name in KNOBS:
            assert f"`{name}`" in text

    def test_embedded_table_none_without_markers(self):
        assert embedded_table("no markers here") is None


class TestControlCLI:
    def test_list(self, capsys):
        assert control_cli(["list"]) == 0
        out = capsys.readouterr().out
        for name in KNOBS:
            assert name in out

    @pytest.mark.parametrize("name", sorted(KNOBS))
    def test_show(self, name, capsys):
        assert control_cli(["show", name]) == 0
        out = capsys.readouterr().out
        assert KNOBS[name].record_type in out
        assert "tuple" in out

    def test_docs_prints_table(self, capsys):
        assert control_cli(["docs"]) == 0
        assert capsys.readouterr().out.strip() == render_knob_table()

    def test_docs_check_passes_on_committed_doc(self, capsys):
        assert control_cli(["docs", "--check", str(DOC)]) == 0

    def test_docs_check_fails_on_drift(self, tmp_path, capsys):
        drifted = tmp_path / "control.md"
        text = DOC.read_text(encoding="utf-8").replace("`checkpoint`", "`chi`")
        drifted.write_text(text, encoding="utf-8")
        assert control_cli(["docs", "--check", str(drifted)]) == 1

    def test_docs_check_fails_without_markers(self, tmp_path, capsys):
        bare = tmp_path / "bare.md"
        bare.write_text("# nothing\n", encoding="utf-8")
        assert control_cli(["docs", "--check", str(bare)]) == 1
