"""The per-knob static-vs-dynamic ablation harness (repro-bench ablate)."""

import json

import pytest

from repro.bench.ablate import (
    ABLATE_APPS,
    KNOB_APPS,
    SCHEMA_ABLATE,
    ablate_knob,
    run_ablate,
    write_ablate_document,
)
from repro.control.registry import KNOBS
from repro.kernel.errors import ConfigurationError


@pytest.fixture(scope="module")
def tiny_sweep():
    # one fast knob x app cell set; everything structural hangs off it
    return ablate_knob("cancellation", "smmp", scale=0.01, replicates=1)


class TestAblateStructure:
    def test_every_knob_has_apps(self):
        assert set(KNOB_APPS) == set(KNOBS)
        for apps in KNOB_APPS.values():
            assert apps and set(apps) <= set(ABLATE_APPS)

    def test_static_cells_match_declared_values(self, tiny_sweep):
        labels = [r.label for r in tiny_sweep.statics]
        assert labels == [
            label for label, _ in KNOBS["cancellation"].static_values
        ]
        assert tiny_sweep.dynamic.label == "dynamic"

    def test_best_static_and_verdict(self, tiny_sweep):
        best = tiny_sweep.best_static
        assert best in tiny_sweep.statics
        floor = best.committed_per_second * (1 - tiny_sweep.tolerance)
        assert tiny_sweep.ok == (
            tiny_sweep.dynamic.committed_per_second >= floor
        )

    def test_render_mentions_verdict(self, tiny_sweep):
        text = tiny_sweep.render()
        assert "cancellation x smmp" in text
        assert ("PASS" in text) or ("FAIL" in text)

    def test_unknown_knob_raises(self):
        with pytest.raises(ConfigurationError):
            run_ablate(("nope",))

    def test_app_filter_respects_knob_apps(self):
        # time_window is PHOLD-only: asking for it on smmp yields nothing
        assert run_ablate(("time_window",), ("smmp",), scale=0.01,
                          replicates=1) == []


class TestAblateDocument:
    def test_json_document_round_trip(self, tiny_sweep, tmp_path):
        path = write_ablate_document(
            [tiny_sweep], tmp_path / "ablate.json", scale=0.01, replicates=1
        )
        doc = json.loads(path.read_text(encoding="utf-8"))
        assert doc["schema"] == SCHEMA_ABLATE
        assert doc["ok"] == tiny_sweep.ok
        (entry,) = doc["results"]
        assert entry["knob"] == "cancellation"
        assert entry["app"] == "smmp"
        assert entry["best_static"] == tiny_sweep.best_static.label
        assert len(entry["statics"]) == len(tiny_sweep.statics)
        for cell in [*entry["statics"], entry["dynamic"]]:
            assert cell["committed_per_second"] > 0

    def test_meta_knob_sweep_runs(self):
        # a meta-managed knob goes through the MetaController path
        result = ablate_knob("gvt_period", "smmp", scale=0.01, replicates=1)
        assert result.dynamic.committed_per_second > 0
        assert len(result.statics) == len(KNOBS["gvt_period"].static_values)
