"""The declarative knob registry: specs, checks, config assembly."""

import pytest

from repro import (
    DynamicCancellation,
    DynamicCheckpoint,
    Mode,
    SAAWPolicy,
    SimulationConfig,
    StaticCheckpoint,
)
from repro.control import (
    KNOBS,
    META_KNOBS,
    MetaController,
    dynamic_config_kwargs,
    get_knob,
    static_config_kwargs,
)
from repro.control.registry import register
from repro.core.control import ControlSpec
from repro.kernel.errors import ConfigurationError

EXPECTED_KNOBS = (
    "checkpoint",
    "cancellation",
    "aggregation",
    "time_window",
    "gvt_period",
    "snapshot",
    "placement",
)


class TestRegistry:
    def test_every_knob_is_registered_in_order(self):
        assert tuple(KNOBS) == EXPECTED_KNOBS

    def test_get_knob_unknown_name(self):
        with pytest.raises(ConfigurationError, match="checkpoint"):
            get_knob("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            register(KNOBS["checkpoint"])

    def test_meta_managed_split_matches_meta_knobs(self):
        meta = tuple(n for n, s in KNOBS.items() if s.meta_managed)
        assert meta == META_KNOBS


class TestSpecIntegrity:
    @pytest.mark.parametrize("name", EXPECTED_KNOBS)
    def test_control_spec_tuple(self, name):
        spec = KNOBS[name].control_spec()
        assert isinstance(spec, ControlSpec)
        assert spec.sampled_output and spec.transfer_function

    @pytest.mark.parametrize("name", EXPECTED_KNOBS)
    def test_static_values_pass_their_own_check(self, name):
        spec = KNOBS[name]
        assert spec.static_values
        for _label, value in spec.static_values:
            spec.validate_value(value)

    @pytest.mark.parametrize("name", EXPECTED_KNOBS)
    def test_config_field_exists(self, name):
        assert hasattr(SimulationConfig(), KNOBS[name].config_field)

    @pytest.mark.parametrize(
        ("name", "bad"),
        [
            ("checkpoint", 0),
            ("checkpoint", 10_000),
            ("cancellation", "lazy"),  # must be a kernel Mode, not a str
            ("aggregation", -5.0),
            ("time_window", 0.0),
            ("gvt_period", -1.0),
            ("snapshot", "xml"),
            ("placement", "sticky"),
        ],
    )
    def test_out_of_domain_values_raise(self, name, bad):
        with pytest.raises(ConfigurationError):
            KNOBS[name].validate_value(bad)


class TestStaticConfig:
    def test_checkpoint_static_factory(self):
        factory = KNOBS["checkpoint"].static_config_value(8)
        policy = factory(None)
        assert isinstance(policy, StaticCheckpoint)

    def test_cancellation_static_is_mode(self):
        for _label, value in KNOBS["cancellation"].static_values:
            assert isinstance(value, Mode)

    def test_time_window_unbounded_maps_to_no_kwargs(self):
        assert static_config_kwargs("time_window", None) == {}

    def test_gvt_period_static_kwargs(self):
        assert static_config_kwargs("gvt_period", 5_000.0) == {
            "gvt_period": 5_000.0
        }

    def test_snapshot_static_kwargs(self):
        assert static_config_kwargs("snapshot", "pickle") == {
            "snapshot": "pickle"
        }

    def test_invalid_static_value_raises(self):
        with pytest.raises(ConfigurationError):
            static_config_kwargs("checkpoint", 0)


class TestDynamicConfig:
    def test_all_knobs_dynamic(self):
        kwargs = dynamic_config_kwargs()
        assert set(kwargs) == {
            "checkpoint", "cancellation", "aggregation", "time_window",
            "meta_control",
        }
        assert isinstance(kwargs["checkpoint"](None), DynamicCheckpoint)
        assert isinstance(kwargs["cancellation"](None), DynamicCancellation)
        assert isinstance(kwargs["aggregation"](None), SAAWPolicy)
        meta = kwargs["meta_control"]()
        assert isinstance(meta, MetaController)
        assert meta.knobs == META_KNOBS
        # the assembled kwargs build a valid config
        SimulationConfig(**kwargs).validate()

    def test_single_meta_knob(self):
        kwargs = dynamic_config_kwargs(("gvt_period",))
        assert set(kwargs) == {"meta_control"}
        assert kwargs["meta_control"]().knobs == ("gvt_period",)

    def test_single_kernel_knob(self):
        kwargs = dynamic_config_kwargs(("checkpoint",))
        assert set(kwargs) == {"checkpoint"}

    def test_meta_managed_knob_has_no_direct_dynamic_value(self):
        with pytest.raises(ConfigurationError, match="MetaController"):
            KNOBS["gvt_period"].dynamic_config_value()
