"""MetaController: transfer functions, cadence, records, determinism."""

from types import SimpleNamespace

import pytest

from repro import (
    MetaController,
    NetworkModel,
    SimulationConfig,
    TimeWarpSimulation,
)
from repro.apps.smmp import SMMPParams, build_smmp
from repro.control.meta import GvtPeriodController, SnapshotController
from repro.kernel.errors import ConfigurationError
from repro.trace import Tracer, read_trace, validate_record


class TestGvtPeriodTransfer:
    def test_high_backlog_shrinks(self):
        ctl = GvtPeriodController()
        assert ctl.control(600.0, 10_000.0) == 5_000.0
        assert ctl.last_verdict == "backlog_high"

    def test_low_backlog_grows(self):
        ctl = GvtPeriodController()
        assert ctl.control(10.0, 10_000.0) == 15_000.0
        assert ctl.last_verdict == "backlog_low"

    def test_dead_zone_holds(self):
        ctl = GvtPeriodController()
        assert ctl.control(100.0, 10_000.0) == 10_000.0
        assert ctl.last_verdict == "dead_zone"

    def test_clamped_to_safe_range(self):
        ctl = GvtPeriodController()
        assert ctl.control(600.0, 1_500.0) == 1_000.0
        assert ctl.control(10.0, 900_000.0) == 1_000_000.0

    def test_history_records_every_invocation(self):
        ctl = GvtPeriodController()
        ctl.control(100.0, 10_000.0)
        ctl.control(600.0, 10_000.0)
        assert len(ctl.history) == 2


class TestSnapshotTransfer:
    def test_large_state_switches_to_pickle(self):
        ctl = SnapshotController()
        assert ctl.control(5_000.0, "copy") == "pickle"
        assert ctl.last_verdict == "state_large"

    def test_large_state_already_pickle_is_noop(self):
        ctl = SnapshotController()
        assert ctl.control(5_000.0, "pickle") == "pickle"
        assert ctl.last_verdict == "dead_zone"

    def test_small_state_switches_back(self):
        ctl = SnapshotController()
        assert ctl.control(1_000.0, "pickle") == "copy"
        assert ctl.last_verdict == "state_small"

    def test_hysteresis_band_holds_pickle(self):
        # between half and the full threshold: no thrash back to copy
        ctl = SnapshotController()
        assert ctl.control(3_000.0, "pickle") == "pickle"
        assert ctl.last_verdict == "dead_zone"

    def test_small_state_on_copy_is_noop(self):
        ctl = SnapshotController()
        assert ctl.control(1_000.0, "copy") == "copy"
        assert ctl.last_verdict == "dead_zone"


class TestMetaControllerWiring:
    def test_unknown_knob_rejected(self):
        with pytest.raises(ConfigurationError, match="meta-managed"):
            MetaController(knobs=("gvt_period", "partition"))

    def test_attach_requires_named_snapshot_when_managed(self):
        meta = MetaController()
        with pytest.raises(ConfigurationError, match="named strategy"):
            meta.attach(SimpleNamespace(), object())

    def test_attach_instance_snapshot_ok_when_not_managed(self):
        meta = MetaController(knobs=("gvt_period",))
        executive = SimpleNamespace()
        meta.attach(executive, object())
        assert executive.meta is meta

    def test_parallel_backend_rejects_meta_control(self):
        config = SimulationConfig(
            backend="parallel", workers=2,
            meta_control=lambda: MetaController(),
        )
        with pytest.raises(ConfigurationError, match="meta_control"):
            config.validate()


def traced_meta_run(path, *, gvt_period=2_000.0):
    """A small SMMP run with the meta loop live, traced to ``path``."""
    with Tracer.to_path(path) as tracer:
        config = SimulationConfig(
            meta_control=lambda: MetaController(),
            lp_speed_factors={1: 1.2, 2: 1.4, 3: 1.7},
            network=NetworkModel(jitter=0.4, seed=0),
            gvt_period=gvt_period,
            tracer=tracer,
        )
        sim = TimeWarpSimulation(
            build_smmp(SMMPParams(requests_per_processor=40)), config
        )
        stats = sim.run()
    return sim, stats


@pytest.fixture(scope="module")
def meta_trace(tmp_path_factory):
    path = tmp_path_factory.mktemp("meta") / "run.jsonl"
    sim, _stats = traced_meta_run(path)
    return sim, list(read_trace(path))


class TestMetaRecords:
    def test_records_are_emitted_and_schema_valid(self, meta_trace):
        _sim, records = meta_trace
        ctrl = [r for r in records if r["type"] in ("ctrl.gvt", "ctrl.snapshot")]
        assert ctrl
        for record in ctrl:
            assert validate_record(record) == []

    def test_cadence_matches_declared_period(self, meta_trace):
        # the meta loop runs at advancing GVT rounds; each knob fires
        # every `period` of them — the record cadence IS the declared P
        sim, records = meta_trace
        advancing = sum(
            1 for r in records if r["type"] == "gvt.round" and r["advanced"]
        )
        meta = sim.meta
        n_gvt = sum(1 for r in records if r["type"] == "ctrl.gvt")
        n_snap = sum(1 for r in records if r["type"] == "ctrl.snapshot")
        assert n_gvt == advancing // meta.gvt_period.period
        assert n_snap == advancing // meta.snapshot.period
        assert n_gvt > 0

    def test_noop_invocations_still_emit(self, meta_trace):
        # dead-zone verdicts must appear as records with old == new
        _sim, records = meta_trace
        for record in records:
            if record["type"] == "ctrl.gvt" and record["verdict"] == "dead_zone":
                assert record["old"] == record["new"]
            if record["type"] == "ctrl.snapshot":
                if record["verdict"] == "dead_zone":
                    assert record["old"] == record["new"]

    def test_history_mirrors_records(self, meta_trace):
        sim, records = meta_trace
        moves = [h for h in sim.meta.history if h[1] == "gvt_period"]
        ctrl = [r for r in records if r["type"] == "ctrl.gvt"]
        assert len(moves) == len(ctrl)
        for (_round, _knob, old, new, verdict), record in zip(moves, ctrl):
            assert record["old"] == old
            assert record["new"] == new
            assert record["verdict"] == verdict


class TestMetaDeterminism:
    def test_byte_identical_traces_with_meta_enabled(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        traced_meta_run(a)
        traced_meta_run(b)
        bytes_a, bytes_b = a.read_bytes(), b.read_bytes()
        assert len(bytes_a) > 0
        assert bytes_a == bytes_b

    def test_default_config_has_no_meta(self, tmp_path):
        # meta off (the default) leaves the trace byte-identical to the
        # pre-registry kernel: no ctrl.gvt/ctrl.snapshot, no extra cost
        path = tmp_path / "plain.jsonl"
        with Tracer.to_path(path) as tracer:
            config = SimulationConfig(
                network=NetworkModel(jitter=0.4, seed=0),
                gvt_period=2_000.0,
                tracer=tracer,
            )
            sim = TimeWarpSimulation(
                build_smmp(SMMPParams(requests_per_processor=40)), config
            )
            sim.run()
        assert sim.meta is None
        types = {r["type"] for r in read_trace(path)}
        assert "ctrl.gvt" not in types
        assert "ctrl.snapshot" not in types
