"""The placement knob: move selection, the control loop, live migration.

``placement="dynamic"`` turns on the seventh registry knob: the
MetaController samples per-LP cost-weighted committed-event loads and
migrates whole Time Warp objects between modelled LPs mid-run.  These
tests pin the pure move-selection policy, the controller's windowing,
and — the part that matters — that a run which really migrates objects
still commits exactly the sequential trace and emits well-formed
``ctrl.placement``/``lp.migrate`` records.
"""

import pytest

from repro import (
    MetaController,
    NetworkModel,
    SimulationConfig,
    TimeWarpSimulation,
)
from repro.apps.phold import PHOLDParams, build_phold
from repro.cluster.executive import Executive
from repro.control.meta import PlacementController
from repro.kernel.errors import SchedulingError
from repro.partition import choose_moves
from repro.trace import Tracer, read_trace, validate_trace
from tests.helpers import assert_equivalent

#: the ablation NOW: spread wide enough that the controller must act
SKEW = {1: 1.4, 2: 1.8, 3: 2.4}


def phold():
    return build_phold(
        PHOLDParams(n_objects=12, n_lps=4, jobs_per_object=2,
                    deterministic_fraction=0.5)
    )


DYNAMIC = dict(
    placement="dynamic",
    lp_speed_factors=SKEW,
    network=NetworkModel(jitter=0.4, seed=0),
    gvt_period=2_000.0,
)


class TestChooseMoves:
    def test_balanced_hosts_hold(self):
        loads = {0: {0: 10, 1: 10}, 1: {2: 10, 3: 10}}
        assert choose_moves(loads) == ()

    def test_single_host_cannot_rebalance(self):
        assert choose_moves({0: {0: 100, 1: 1}}) == ()

    def test_hot_host_donates_peak_lowering_object(self):
        # moving the 30-weight object would just swap which host is hot;
        # the 4-weight one lowers the peak from 34 to 30
        loads = {0: {0: 30, 1: 4}, 1: {2: 4, 3: 4}}
        assert choose_moves(loads) == ((1, 0, 1),)

    def test_never_empties_a_host(self):
        loads = {0: {0: 100}, 1: {1: 1, 2: 1}}
        assert choose_moves(loads) == ()

    def test_factors_weight_host_load(self):
        # equal event counts, but host 1 pays 3x per event: it is the
        # hot host and must donate, not receive
        loads = {0: {0: 10, 1: 10}, 1: {2: 10, 3: 10}}
        moves = choose_moves(loads, factors={1: 3.0})
        assert moves and all(src == 1 for _oid, src, _dst in moves)

    def test_move_must_lower_the_peak(self):
        # the only candidate object carries the entire hot load; moving
        # it just swaps which host is hot, so the policy refuses
        loads = {0: {0: 90, 1: 0}, 1: {2: 10}}
        assert choose_moves(loads) == ()

    def test_max_moves_bounds_the_plan(self):
        loads = {0: {i: 20 for i in range(6)}, 1: {9: 1}}
        assert len(choose_moves(loads, max_moves=3)) == 3

    def test_input_not_mutated(self):
        loads = {0: {0: 30, 1: 4}, 1: {2: 4, 3: 4}}
        frozen = {h: dict(p) for h, p in loads.items()}
        choose_moves(loads)
        assert loads == frozen

    def test_deterministic(self):
        loads = {0: {0: 12, 1: 12, 2: 12}, 1: {3: 2}, 2: {4: 2}}
        assert choose_moves(loads, max_moves=2) == choose_moves(
            loads, max_moves=2
        )


class TestPlacementController:
    def test_windows_are_deltas_not_lifetime_totals(self):
        ctl = PlacementController(imbalance=1.25)
        # first window: host 0 is hot
        moves = ctl.control({0: {0: 100, 1: 100}, 1: {2: 10, 3: 10}})
        assert moves and ctl.last_verdict == "migrate"
        # same lifetime totals again: the window is all zeros -> hold
        moves = ctl.control({0: {0: 100, 1: 100}, 1: {2: 10, 3: 10}})
        assert moves == () and ctl.last_verdict == "hold"

    def test_factors_flip_the_hot_host(self):
        ctl = PlacementController()
        moves = ctl.control(
            {0: {0: 10, 1: 10}, 1: {2: 10, 3: 10}}, {0: 1.0, 1: 3.0}
        )
        assert moves and all(src == 1 for _oid, src, _dst in moves)

    def test_history_records_observed_imbalance(self):
        ctl = PlacementController()
        ctl.control({0: {0: 30, 1: 10}, 1: {2: 10, 3: 10}})
        (observed, moves), = ctl.history
        assert observed == pytest.approx(40 / 30)
        assert moves == ctl.history[-1][1]


class TestMigrateObject:
    def test_bare_executive_has_no_routing(self):
        executive = Executive([], SimulationConfig())
        with pytest.raises(SchedulingError, match="routing"):
            executive.migrate_object(0, 1)

    def test_unknown_destination_rejected(self):
        sim = TimeWarpSimulation(phold(), SimulationConfig(end_time=50.0))
        with pytest.raises(SchedulingError, match="no LP"):
            sim.executive.migrate_object(0, 99)

    def test_same_host_is_a_noop(self):
        sim = TimeWarpSimulation(phold(), SimulationConfig(end_time=50.0))
        src = sim.executive.routing[0]
        sim.executive.migrate_object(0, src)
        assert sim.executive.migrations == 0
        assert sim.executive.routing[0] == src


class TestLiveMigration:
    def test_dynamic_placement_commits_the_sequential_trace(self):
        sim = assert_equivalent(phold, end_time=600.0, **DYNAMIC)
        assert sim.executive.migrations > 0
        # the routing map agrees with where the objects actually live
        for lp in sim.lps:
            for oid in lp.members:
                assert sim.executive.routing[oid] == lp.lp_id

    def test_kernel_attaches_a_placement_only_meta_controller(self):
        config = SimulationConfig(end_time=50.0, **DYNAMIC)
        sim = TimeWarpSimulation(phold(), config)
        assert isinstance(sim.executive.meta, MetaController)
        assert sim.executive.meta.knobs == ("placement",)

    def test_explicit_meta_controller_wins(self):
        config = SimulationConfig(
            end_time=50.0, meta_control=lambda: MetaController(), **DYNAMIC
        )
        sim = TimeWarpSimulation(phold(), config)
        assert sim.executive.meta.knobs == ("gvt_period", "snapshot",
                                            "placement")

    def test_migration_traces_validate(self, tmp_path):
        path = tmp_path / "placement.jsonl"
        with Tracer.to_path(path) as tracer:
            config = SimulationConfig(end_time=600.0, tracer=tracer,
                                      **DYNAMIC)
            sim = TimeWarpSimulation(phold(), config)
            sim.run()
        assert sim.executive.migrations > 0
        assert validate_trace(path) == []
        records = list(read_trace(path))
        decisions = [r for r in records if r["type"] == "ctrl.placement"]
        migrations = [r for r in records if r["type"] == "lp.migrate"]
        assert len(migrations) == sim.executive.migrations
        moved = sum(r["moves"] for r in decisions)
        assert moved == len(migrations)
        for record in migrations:
            assert record["src_lp"] != record["dst_lp"]
        # every applied move shows up in a decision's placement delta
        applied = {f"{r['oid']}@{r['dst_lp']}" for r in migrations}
        announced = set()
        for record in decisions:
            if record["new"]:
                announced.update(record["new"].split(","))
        assert applied == announced
