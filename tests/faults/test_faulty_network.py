"""Unit tests for the fault-injecting wire and its reliable transport."""

import heapq

import pytest

from repro.cluster.costmodel import NetworkModel
from repro.comm.message import MessageKind, PhysicalMessage
from repro.faults import FaultPlan, FaultRates, FaultyNetwork
from repro.kernel.errors import TransportFailureError
from tests.helpers import make_event


class WireHarness:
    """Drives a FaultyNetwork the way the executive does: a time-ordered
    callback heap, with every delivery handed straight to its 'LP'."""

    def __init__(self, plan, model=None):
        self._heap = []
        self._tiebreak = 0
        self.deliveries = []  # (dst, arrival, message)
        self.net = FaultyNetwork(
            model or NetworkModel(),
            self._deliver,
            plan=plan,
            schedule_callback=self._schedule,
        )

    def _schedule(self, at, fn):
        heapq.heappush(self._heap, (at, self._tiebreak, fn))
        self._tiebreak += 1

    def _deliver(self, dst, arrival, message):
        self.deliveries.append((dst, arrival, message))
        self.net.on_delivered(message)

    def run(self, until=float("inf")):
        while self._heap and self._heap[0][0] <= until:
            at, _, fn = heapq.heappop(self._heap)
            fn(at)

    def delivered_serials(self):
        return [m.serial for (_, _, m) in self.deliveries]


def data_msg(src=0, dst=1, recv_time=10.0):
    return PhysicalMessage(src, dst, MessageKind.DATA,
                           events=(make_event(recv_time=recv_time),))


def conservation_holds(net):
    counts = net.wire_counts()
    return counts["sent"] == (
        counts["delivered"] + counts["lost"] + counts["in_flight"]
    )


class TestCleanReliable:
    def test_delivery_clears_pending_via_acks(self):
        wire = WireHarness(FaultPlan())
        sent = [data_msg() for _ in range(5)]
        for i, msg in enumerate(sent):
            wire.net.send(msg, completion_clock=float(i))
        wire.run()
        assert wire.delivered_serials() == [m.serial for m in sent]
        assert wire.net.unacked_count() == 0
        assert wire.net.in_flight_count() == 0
        assert wire.net.undelivered_data_count() == 0
        assert wire.net.counters.acks_sent > 0
        assert conservation_holds(wire.net)

    def test_stale_retransmit_timers_are_noops(self):
        wire = WireHarness(FaultPlan())
        wire.net.send(data_msg(), 0.0)
        wire.run()  # drains arrivals, acks, and the armed timers
        assert wire.net.counters.retransmissions == 0

    def test_logical_send_counted_once(self):
        wire = WireHarness(FaultPlan(rates=FaultRates(duplicate=1.0)))
        seen = []
        wire.net.on_data_send = seen.append
        msg = data_msg()
        wire.net.send(msg, 0.0)
        wire.run()
        assert len(seen) == 1  # GVT colouring sees the logical message once
        assert wire.net.messages_sent == 1


class TestDropWithRetransmission:
    def test_drops_are_recovered(self):
        # Fresh decisions per attempt mean a 0.6 drop rate cannot starve
        # any message once the timer retransmits it.
        plan = FaultPlan(seed=4, rates=FaultRates(drop=0.6), rto=100.0)
        wire = WireHarness(plan)
        sent = [data_msg() for _ in range(10)]
        for i, msg in enumerate(sent):
            wire.net.send(msg, completion_clock=float(i))
        wire.run()
        assert wire.delivered_serials() == [m.serial for m in sent]
        assert wire.net.counters.drops > 0
        assert wire.net.counters.retransmissions > 0
        assert wire.net.lost_count == 0  # reliable: nothing permanently lost
        assert wire.net.unacked_count() == 0
        assert conservation_holds(wire.net)

    def test_black_hole_raises_after_max_retransmits(self):
        plan = FaultPlan(
            rates=FaultRates(drop=1.0), rto=10.0, max_retransmits=3
        )
        wire = WireHarness(plan)
        wire.net.send(data_msg(), 0.0)
        with pytest.raises(TransportFailureError, match="3 retransmissions"):
            wire.run()
        assert wire.net.counters.retransmissions == 3


class TestDropWithoutRetransmission:
    def test_drops_are_permanent_and_accounted(self):
        plan = FaultPlan(rates=FaultRates(drop=1.0), retransmit=False)
        wire = WireHarness(plan)
        for i in range(4):
            wire.net.send(data_msg(), completion_clock=float(i))
        wire.run()
        assert wire.deliveries == []
        assert wire.net.lost_count == 4
        assert wire.net.in_flight_count() == 0
        assert wire.net.undelivered_data_count() == 0
        assert conservation_holds(wire.net)

    def test_partial_loss_keeps_conservation(self):
        plan = FaultPlan(seed=8, rates=FaultRates(drop=0.5), retransmit=False)
        wire = WireHarness(plan)
        n = 40
        for i in range(n):
            wire.net.send(data_msg(), completion_clock=float(i))
        wire.run()
        assert 0 < wire.net.lost_count < n
        assert len(wire.deliveries) == n - wire.net.lost_count
        assert conservation_holds(wire.net)


class TestDuplicates:
    def test_duplicates_delivered_once(self):
        plan = FaultPlan(rates=FaultRates(duplicate=1.0))
        wire = WireHarness(plan)
        sent = [data_msg() for _ in range(6)]
        for i, msg in enumerate(sent):
            wire.net.send(msg, completion_clock=float(i))
        wire.run()
        assert wire.delivered_serials() == [m.serial for m in sent]
        assert wire.net.counters.duplicates == 6
        assert wire.net.counters.duplicate_deliveries_discarded >= 6
        assert conservation_holds(wire.net)

    def test_duplicates_suppressed_even_without_retransmission(self):
        plan = FaultPlan(rates=FaultRates(duplicate=1.0), retransmit=False)
        wire = WireHarness(plan)
        for i in range(6):
            wire.net.send(data_msg(), completion_clock=float(i))
        wire.run()
        assert len(wire.deliveries) == 6
        assert wire.net.counters.duplicate_deliveries_discarded == 6


def _reordering_seed(rate=0.9):
    """A seed whose plan reorders copy seq 0 but not seq 1 on (0, 1)."""
    for seed in range(200):
        plan = FaultPlan(seed=seed, rates=FaultRates(reorder=rate))
        first = plan.decide((0, 1), "data", 0)
        second = plan.decide((0, 1), "data", 1)
        if first.reorder and not (second.reorder or second.delay):
            return seed
    raise AssertionError("no reordering seed found")


class TestReordering:
    def test_reliable_transport_restores_fifo(self):
        plan = FaultPlan(seed=_reordering_seed(), rates=FaultRates(reorder=0.9))
        wire = WireHarness(plan)
        sent = [data_msg() for _ in range(8)]
        for i, msg in enumerate(sent):
            wire.net.send(msg, completion_clock=float(i))
        wire.run()
        assert wire.delivered_serials() == [m.serial for m in sent]
        arrivals = [a for (_, a, _) in wire.deliveries]
        assert all(b > a for a, b in zip(arrivals, arrivals[1:]))
        assert conservation_holds(wire.net)

    def test_fire_and_forget_delivers_out_of_order(self):
        plan = FaultPlan(
            seed=_reordering_seed(),
            rates=FaultRates(reorder=0.9),
            retransmit=False,
        )
        wire = WireHarness(plan)
        first, second = data_msg(), data_msg()
        wire.net.send(first, 0.0)
        wire.net.send(second, 0.1)
        wire.run()
        # seq 0 is reordered (x5 latency), seq 1 is clean: it overtakes.
        assert wire.delivered_serials() == [second.serial, first.serial]


class TestAckFaults:
    def test_lost_acks_recovered_by_retransmission(self):
        plan = FaultPlan(
            seed=3,
            per_kind={"ack": FaultRates(drop=0.7)},
            rto=100.0,
        )
        wire = WireHarness(plan)
        sent = [data_msg() for _ in range(10)]
        for i, msg in enumerate(sent):
            wire.net.send(msg, completion_clock=float(i))
        wire.run()
        assert wire.delivered_serials() == [m.serial for m in sent]
        assert wire.net.counters.ack_drops > 0
        assert wire.net.unacked_count() == 0
        assert conservation_holds(wire.net)
