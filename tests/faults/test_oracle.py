"""Unit and end-to-end tests for the Time Warp invariant oracle."""

from dataclasses import dataclass, field
from types import SimpleNamespace

import pytest

from repro import (
    FaultPlan,
    FaultRates,
    InvariantOracle,
    SimulationConfig,
    TimeWarpSimulation,
)
from repro.apps.phold import PHOLDParams, build_phold
from repro.faults.fuzz import make_plan, run_case
from repro.kernel.errors import InvariantViolationError
from repro.oracle import NULL_ORACLE
from repro.oracle.invariants import state_digest


@dataclass
class FakeState:
    x: int = 0
    items: list = field(default_factory=list)


def snapshot(state, lvt=10.0):
    return SimpleNamespace(state=state, lvt=lvt)


class TestStateDigest:
    def test_dataclass_digest_reflects_fields(self):
        a, b = FakeState(x=1), FakeState(x=1)
        assert state_digest(a) == state_digest(b)
        b.x = 2
        assert state_digest(a) != state_digest(b)

    def test_plain_object_digest(self):
        a = SimpleNamespace(v=1)
        assert state_digest(a) == state_digest(SimpleNamespace(v=1))
        assert state_digest(a) != state_digest(SimpleNamespace(v=2))

    def test_opaque_fallback(self):
        assert state_digest(42) == state_digest(42)


class TestGVTInvariants:
    def test_advancing_estimates_are_clean(self):
        oracle = InvariantOracle()
        for estimate in (1.0, 5.0, 5.0, 9.0):
            oracle.on_gvt_estimate(0.0, estimate, None)
        assert oracle.violations == []
        assert oracle.checks == 4

    def test_regressing_estimate_is_flagged(self):
        oracle = InvariantOracle()
        oracle.on_gvt_estimate(0.0, 5.0, None)
        oracle.on_gvt_estimate(1.0, 3.0, None)
        assert [v.invariant for v in oracle.violations] == ["gvt_monotonic"]

    def test_rollback_below_committed_gvt_is_flagged(self):
        oracle = InvariantOracle()
        oracle.on_gvt_estimate(0.0, 50.0, None)
        oracle.on_rollback(1.0, 0, "obj0", 60.0)  # above GVT: fine
        oracle.on_rollback(2.0, 0, "obj0", 40.0)  # below: committed undone
        assert [v.invariant for v in oracle.violations] == ["gvt_safety"]

    def test_strict_mode_raises_at_first_violation(self):
        oracle = InvariantOracle(strict=True)
        oracle.on_gvt_estimate(0.0, 5.0, None)
        with pytest.raises(InvariantViolationError, match="gvt_monotonic"):
            oracle.on_gvt_estimate(1.0, 3.0, None)


class TestStateFidelity:
    def test_faithful_restore_is_clean(self):
        oracle = InvariantOracle()
        snap = snapshot(FakeState(x=7))
        oracle.on_state_save(0.0, 0, "obj0", snap)
        oracle.on_state_restore(1.0, 0, "obj0", snap, FakeState(x=7))
        assert oracle.violations == []

    def test_mutated_snapshot_is_flagged(self):
        oracle = InvariantOracle()
        snap = snapshot(FakeState(x=7))
        oracle.on_state_save(0.0, 0, "obj0", snap)
        snap.state.x = 8  # history aliasing
        oracle.on_state_restore(1.0, 0, "obj0", snap, FakeState(x=8))
        assert [v.invariant for v in oracle.violations] == ["state_fidelity"]
        assert "mutated" in oracle.violations[0].detail

    def test_unfaithful_restore_is_flagged(self):
        oracle = InvariantOracle()
        snap = snapshot(FakeState(x=7))
        oracle.on_state_save(0.0, 0, "obj0", snap)
        oracle.on_state_restore(1.0, 0, "obj0", snap, FakeState(x=9))
        assert [v.invariant for v in oracle.violations] == ["state_fidelity"]
        assert "differs" in oracle.violations[0].detail

    def test_unseen_snapshot_is_ignored(self):
        # Saved before the oracle was attached: nothing to compare against.
        oracle = InvariantOracle()
        oracle.on_state_restore(
            1.0, 0, "obj0", snapshot(FakeState()), FakeState(x=99)
        )
        assert oracle.violations == []

    def test_snapshots_pruned_at_gvt_commit(self):
        oracle = InvariantOracle()
        old = snapshot(FakeState(), lvt=5.0)
        new = snapshot(FakeState(), lvt=50.0)
        oracle.on_state_save(0.0, 0, "obj0", old)
        oracle.on_state_save(0.0, 0, "obj0", new)
        oracle.on_gvt_estimate(1.0, 20.0, None)
        assert id(old) not in oracle._snapshots
        assert id(new) in oracle._snapshots


class TestWireConservation:
    def test_balanced_counts_are_clean(self):
        oracle = InvariantOracle()
        net = SimpleNamespace(wire_counts=lambda: {
            "sent": 10, "delivered": 7, "lost": 1, "in_flight": 2,
        })
        oracle.on_wire_check(0.0, net)
        assert oracle.violations == []

    def test_unbalanced_counts_are_flagged(self):
        oracle = InvariantOracle()
        net = SimpleNamespace(wire_counts=lambda: {
            "sent": 10, "delivered": 7, "lost": 0, "in_flight": 2,
        })
        oracle.on_wire_check(0.0, net)
        assert [v.invariant for v in oracle.violations] == ["wire_conservation"]


def phold_partition():
    return build_phold(
        PHOLDParams(n_objects=6, n_lps=3, jobs_per_object=2, seed=7)
    )


class TestEndToEnd:
    def test_oracle_off_by_default(self):
        sim = TimeWarpSimulation(
            phold_partition(), SimulationConfig(end_time=100.0)
        )
        sim.run()
        assert sim.oracle is NULL_ORACLE
        assert sim.executive.oracle is NULL_ORACLE

    def test_clean_run_has_zero_violations(self):
        oracle = InvariantOracle(strict=True)  # raise on any false positive
        sim = TimeWarpSimulation(
            phold_partition(),
            SimulationConfig(end_time=200.0, oracle=oracle,
                             gvt_algorithm="mattern"),
        )
        sim.run()
        assert oracle.violations == []
        assert oracle.checks > 0

    def test_faulted_reliable_run_has_zero_violations(self):
        oracle = InvariantOracle(strict=True)
        plan = FaultPlan(
            seed=6,
            rates=FaultRates(drop=0.1, duplicate=0.1, delay=0.05,
                             reorder=0.1),
        )
        sim = TimeWarpSimulation(
            phold_partition(),
            SimulationConfig(end_time=200.0, oracle=oracle, faults=plan),
        )
        sim.run()
        assert oracle.violations == []

    def test_oracle_detects_unrecovered_drop(self):
        # Retransmission off: an injected drop is permanent and must be
        # *detected* — this is the acceptance criterion that proves the
        # oracle can fail.
        plan = make_plan(1, FaultRates(drop=0.15), retransmit=False)
        case = run_case("phold", plan, gvt_algorithm="omniscient")
        assert not case.ok
        assert "message_loss" in case.violations
