"""Fault determinism: one plan seed, one byte-exact fault schedule.

Fault decisions are pure hashes of (seed, channel, kind, seq, attempt)
and all wire timing flows through the executive's deterministic callback
heap, so two runs of the same plan must produce byte-identical traces —
including every ``fault.inject`` and ``net.retransmit`` record.
"""

from repro import (
    FaultPlan,
    FaultRates,
    InvariantOracle,
    SimulationConfig,
    TimeWarpSimulation,
)
from repro.apps.phold import PHOLDParams, build_phold
from repro.trace import Tracer


def faulted_trace(plan_seed=5, net_seed=0):
    tracer = Tracer.in_memory()
    config = SimulationConfig(
        end_time=250.0,
        record_trace=True,
        faults=FaultPlan(
            seed=plan_seed,
            rates=FaultRates(drop=0.1, duplicate=0.1, delay=0.05,
                             reorder=0.1),
        ),
        oracle=InvariantOracle(strict=True),
        gvt_algorithm="mattern",
        tracer=tracer,
    )
    sim = TimeWarpSimulation(
        build_phold(
            PHOLDParams(n_objects=6, n_lps=3, jobs_per_object=2, seed=7)
        ),
        config,
    )
    sim.run()
    tracer.close()
    return tracer, sim


class TestFaultDeterminism:
    def test_same_plan_gives_byte_identical_traces(self):
        tracer_a, _ = faulted_trace()
        tracer_b, _ = faulted_trace()
        dump = tracer_a.dumps()
        assert len(dump) > 0
        assert dump == tracer_b.dumps()

    def test_trace_contains_fault_activity(self):
        tracer, _ = faulted_trace()
        types = {r["type"] for r in tracer.records}
        assert "fault.inject" in types
        assert "net.retransmit" in types
        faults = {r["fault"] for r in tracer.select("fault.inject")}
        assert "drop" in faults

    def test_plan_seed_changes_the_schedule(self):
        tracer_a, _ = faulted_trace(plan_seed=5)
        tracer_b, _ = faulted_trace(plan_seed=6)
        a = [(r["fault"], r["seq"]) for r in tracer_a.select("fault.inject")]
        b = [(r["fault"], r["seq"]) for r in tracer_b.select("fault.inject")]
        assert a != b

    def test_faults_change_the_path_not_the_result(self):
        _, sim_a = faulted_trace(plan_seed=5)
        _, sim_b = faulted_trace(plan_seed=6)
        assert sim_a.sorted_trace() == sim_b.sorted_trace()
