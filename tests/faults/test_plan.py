"""Unit tests for seeded fault plans."""

import pytest

from repro.faults.plan import (
    CLEAN,
    KIND_CODES,
    FaultPlan,
    FaultRates,
    _unit,
)
from repro.kernel.errors import ConfigurationError


class TestUnitHash:
    def test_range(self):
        for seq in range(500):
            u = _unit(7, 0, 1, 1, seq, 0, 1)
            assert 0.0 <= u < 1.0

    def test_pure_function(self):
        args = (3, 0, 1, 1, 42, 2, 4)
        assert _unit(*args) == _unit(*args)

    def test_inputs_are_independent(self):
        base = _unit(0, 0, 1, 1, 0, 0, 1)
        assert _unit(1, 0, 1, 1, 0, 0, 1) != base  # seed
        assert _unit(0, 2, 1, 1, 0, 0, 1) != base  # src
        assert _unit(0, 0, 1, 1, 1, 0, 1) != base  # seq
        assert _unit(0, 0, 1, 1, 0, 1, 1) != base  # attempt
        assert _unit(0, 0, 1, 1, 0, 0, 2) != base  # salt


class TestFaultRates:
    def test_defaults_inactive(self):
        assert not FaultRates().any_active()

    def test_any_single_rate_activates(self):
        assert FaultRates(drop=0.1).any_active()
        assert FaultRates(duplicate=0.1).any_active()
        assert FaultRates(delay=0.1).any_active()
        assert FaultRates(reorder=0.1).any_active()

    @pytest.mark.parametrize("field", ["drop", "duplicate", "delay", "reorder"])
    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_validate_rejects_out_of_range(self, field, bad):
        with pytest.raises(ConfigurationError, match=field):
            FaultRates(**{field: bad}).validate()


class TestRateResolution:
    def test_default_rates_apply(self):
        plan = FaultPlan(rates=FaultRates(drop=0.5))
        assert plan.rates_for((0, 1), "data").drop == 0.5

    def test_per_kind_beats_default(self):
        plan = FaultPlan(
            rates=FaultRates(drop=0.5),
            per_kind={"ack": FaultRates(drop=0.9)},
        )
        assert plan.rates_for((0, 1), "ack").drop == 0.9
        assert plan.rates_for((0, 1), "data").drop == 0.5

    def test_per_channel_beats_per_kind(self):
        plan = FaultPlan(
            rates=FaultRates(drop=0.5),
            per_kind={"data": FaultRates(drop=0.9)},
            per_channel={(2, 3): FaultRates()},
        )
        assert plan.rates_for((2, 3), "data").drop == 0.0
        assert plan.rates_for((0, 1), "data").drop == 0.9


class TestDecide:
    def test_zero_rates_return_shared_clean(self):
        plan = FaultPlan()
        assert plan.decide((0, 1), "data", 0) is CLEAN

    def test_decisions_are_deterministic(self):
        plan = FaultPlan(
            seed=11,
            rates=FaultRates(drop=0.2, duplicate=0.2, delay=0.2, reorder=0.2),
        )
        twin = FaultPlan(
            seed=11,
            rates=FaultRates(drop=0.2, duplicate=0.2, delay=0.2, reorder=0.2),
        )
        for seq in range(200):
            for attempt in range(3):
                assert plan.decide((0, 1), "data", seq, attempt) == (
                    twin.decide((0, 1), "data", seq, attempt)
                )

    def test_seed_changes_the_schedule(self):
        rates = FaultRates(drop=0.3, duplicate=0.3, delay=0.3, reorder=0.3)
        a = FaultPlan(seed=0, rates=rates)
        b = FaultPlan(seed=1, rates=rates)
        decisions_a = [a.decide((0, 1), "data", s) for s in range(100)]
        decisions_b = [b.decide((0, 1), "data", s) for s in range(100)]
        assert decisions_a != decisions_b

    def test_drop_one_always_drops_and_shortcircuits(self):
        plan = FaultPlan(
            rates=FaultRates(drop=1.0, duplicate=1.0, delay=1.0, reorder=1.0)
        )
        for seq in range(50):
            decision = plan.decide((0, 1), "data", seq)
            assert decision.drop
            assert not (decision.duplicate or decision.delay or decision.reorder)

    def test_attempts_draw_fresh_decisions(self):
        # A 0.5 drop rate must not doom every retransmission of one copy.
        plan = FaultPlan(seed=5, rates=FaultRates(drop=0.5))
        for seq in range(30):
            if any(
                not plan.decide((0, 1), "data", seq, attempt).drop
                for attempt in range(8)
            ):
                break
        else:
            pytest.fail("every attempt of every seq dropped at rate 0.5")

    def test_rates_observed_approximately(self):
        plan = FaultPlan(seed=9, rates=FaultRates(drop=0.25))
        n = 4000
        drops = sum(
            plan.decide((0, 1), "data", seq).drop for seq in range(n)
        )
        assert 0.2 < drops / n < 0.3

    def test_kind_changes_the_schedule(self):
        plan = FaultPlan(seed=2, rates=FaultRates(drop=0.4))
        data = [plan.decide((0, 1), "data", s).drop for s in range(100)]
        token = [plan.decide((0, 1), "gvt-token", s).drop for s in range(100)]
        assert data != token


class TestPlanValidate:
    def test_default_plan_is_valid(self):
        FaultPlan().validate()

    def test_unknown_per_kind_key(self):
        with pytest.raises(ConfigurationError, match="per_kind"):
            FaultPlan(per_kind={"bogus": FaultRates()}).validate()

    def test_nested_rates_are_validated(self):
        with pytest.raises(ConfigurationError, match="per_channel"):
            FaultPlan(
                per_channel={(0, 1): FaultRates(drop=2.0)}
            ).validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rto": 0.0},
            {"backoff": 0.5},
            {"max_retransmits": -1},
            {"delay_factor": 0.9},
            {"reorder_factor": 0.0},
            {"duplicate_lag": -1.0},
        ],
    )
    def test_transport_knobs_are_validated(self, kwargs):
        with pytest.raises(ConfigurationError):
            FaultPlan(**kwargs).validate()

    def test_kind_codes_cover_transport_traffic(self):
        assert set(KIND_CODES) == {"data", "gvt-token", "gvt-broadcast", "ack"}
