"""End-to-end tests for the CLI subcommands, the perf gate and the
schema drift-guard against docs/benchmarking.md."""

import json
import re
from pathlib import Path

import pytest

from repro.bench.cli import main as cli_main
from repro.bench.perf.report import load_document, make_document, write_document
from repro.bench.perf.suite import run_suite

REPO_ROOT = Path(__file__).resolve().parents[2]

#: fast deterministic benchmark used by the CLI round trips
FAST = "queue.insert_pop"


def _quick_doc(only: str = FAST):
    results = run_suite(quick=True, reps=1, warmup=0, only=only)
    return make_document(results, quick=True, reps=1, warmup=0)


class TestSubcommandSpellings:
    def test_perf_subcommand(self, capsys, tmp_path):
        out = tmp_path / "BENCH_3.json"
        rc = cli_main(["perf", "--quick", "--reps", "1", "--warmup", "0",
                       "--only", FAST, "--out", str(out)])
        assert rc == 0
        doc = load_document(out)
        assert FAST in doc["benchmarks"]
        assert "perf suite" in capsys.readouterr().out

    def test_perf_legacy_flag(self, capsys):
        rc = cli_main(["--perf", "--quick", "--reps", "1", "--warmup", "0",
                       "--only", FAST, "--out", "-"])
        assert rc == 0
        assert "perf suite" in capsys.readouterr().out

    def test_figures_subcommand(self, capsys):
        rc = cli_main(["figures", "--fig", "baseline", "--scale", "0.01",
                       "--replicates", "1"])
        assert rc == 0
        assert "SMMP baseline" in capsys.readouterr().out

    def test_figures_subcommand_requires_target(self):
        with pytest.raises(SystemExit):
            cli_main(["figures"])

    def test_faults_subcommand(self, capsys):
        rc = cli_main(["faults", "--plans", "2"])
        assert rc == 0
        assert "fuzzed" in capsys.readouterr().out.lower()

    def test_unknown_subcommand_falls_back_to_legacy_error(self):
        with pytest.raises(SystemExit):
            cli_main(["bogus-subcommand"])


class TestPerfGate:
    def test_fail_on_regress_requires_compare(self):
        with pytest.raises(SystemExit, match="--compare"):
            cli_main(["perf", "--quick", "--only", FAST, "--out", "-",
                      "--fail-on-regress", "25"])

    def test_identical_baseline_passes(self, capsys, tmp_path):
        baseline = tmp_path / "baseline.json"
        write_document(_quick_doc(), baseline)
        rc = cli_main(["perf", "--quick", "--reps", "1", "--warmup", "0",
                       "--only", FAST, "--out", "-",
                       "--compare", str(baseline), "--fail-on-regress", "99"])
        assert rc == 0
        assert "PASS" in capsys.readouterr().out

    def test_injected_regression_exits_nonzero(self, capsys, tmp_path):
        doc = _quick_doc()
        # a baseline this fast is unbeatable: the current run must regress
        doc["benchmarks"][FAST]["rate_per_s"] = 1e15
        baseline = tmp_path / "baseline.json"
        write_document(doc, baseline)
        rc = cli_main(["perf", "--quick", "--reps", "1", "--warmup", "0",
                       "--only", FAST, "--out", "-",
                       "--compare", str(baseline), "--fail-on-regress", "25"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "FAIL" in out

    def test_counter_drift_exits_nonzero(self, capsys, tmp_path):
        doc = _quick_doc()
        doc["benchmarks"][FAST]["counters"]["events"] += 1
        baseline = tmp_path / "baseline.json"
        write_document(doc, baseline)
        rc = cli_main(["perf", "--quick", "--reps", "1", "--warmup", "0",
                       "--only", FAST, "--out", "-",
                       "--compare", str(baseline), "--fail-on-regress", "99"])
        assert rc == 1
        assert "COUNTER DRIFT" in capsys.readouterr().out


class TestDeterminism:
    def test_two_quick_runs_agree_exactly(self):
        """Two separate --perf --quick runs must report identical operation
        counts and model counters (timings are the only run-to-run noise)."""
        first = _quick_doc(only="macro.phold")
        second = _quick_doc(only="macro.phold")
        a = first["benchmarks"]["macro.phold"]
        b = second["benchmarks"]["macro.phold"]
        assert a["ops"] == b["ops"]
        assert a["counters"] == b["counters"]
        assert a["counters"]["committed_events"] == a["ops"]

    def test_committed_baseline_counters_still_reproduce(self):
        """The committed CI baseline's deterministic side must match what
        the code produces today — otherwise the perf-smoke gate is red and
        the baseline needs a refresh (docs/benchmarking.md)."""
        baseline_path = REPO_ROOT / "benchmarks" / "baseline.json"
        baseline = load_document(baseline_path)
        entry = baseline["benchmarks"][FAST]
        current = _quick_doc()["benchmarks"][FAST]
        assert current["counters"] == entry["counters"]
        assert current["ops"] == entry["ops"]


class TestSchemaDriftGuard:
    """docs/benchmarking.md's schema tables and the emitter must agree."""

    @staticmethod
    def _documented_fields() -> set[str]:
        text = (REPO_ROOT / "docs" / "benchmarking.md").read_text()
        # first table cell, backticked: "| `field` | ..."
        fields = set(re.findall(r"^\| `([^`]+)` \|", text, flags=re.M))
        # benchmark names (dotted) live in a different table; drop them
        return {f for f in fields if "." not in f}

    def test_every_emitted_field_is_documented(self):
        doc = _quick_doc()
        emitted = set(doc) | set(doc["benchmarks"][FAST])
        documented = self._documented_fields()
        assert emitted <= documented, (
            f"undocumented fields {sorted(emitted - documented)}: "
            "add them to the schema tables in docs/benchmarking.md"
        )

    def test_every_documented_field_is_emitted(self):
        doc = _quick_doc()
        emitted = set(doc) | set(doc["benchmarks"][FAST])
        documented = self._documented_fields()
        assert documented <= emitted, (
            f"stale documented fields {sorted(documented - emitted)}: "
            "docs/benchmarking.md describes fields the emitter no longer "
            "writes (src/repro/bench/perf/report.py)"
        )

    def test_committed_baseline_is_schema_valid(self):
        baseline = load_document(REPO_ROOT / "benchmarks" / "baseline.json")
        assert baseline["quick"] is True
        for entry in baseline["benchmarks"].values():
            assert {"kind", "unit", "ops", "rate_per_s", "wall_min_s",
                    "wall_median_s", "wall_mean_s", "wall_stddev_s",
                    "counters"} <= set(entry)

    def test_baseline_parses_as_plain_json(self):
        raw = json.loads((REPO_ROOT / "benchmarks" / "baseline.json").read_text())
        assert raw["schema_version"] == 3
