"""Tests for the benchmark harness, tables and CLI."""

import pytest

from repro.bench.cli import main as cli_main
from repro.bench.figures import FIGURES, baseline_rates, fig5
from repro.bench.harness import (
    RAID_PROFILE,
    SMMP_PROFILE,
    ExperimentProfile,
    RunResult,
    run_cell,
    scaled,
)
from repro.bench.tables import render_fig5, render_results, render_series
from repro.apps.pingpong import build_pingpong


class TestScaled:
    def test_scales_and_floors(self):
        assert scaled(1000, 0.15) == 150
        assert scaled(1000, 0.0001) == 1
        assert scaled(10, 1.0) == 10


class TestProfiles:
    def test_profile_builds_config(self):
        config = SMMP_PROFILE.config(seed=3)
        assert config.network.seed == 3
        assert config.network.jitter == SMMP_PROFILE.jitter
        assert config.lp_speed_factors == SMMP_PROFILE.speed_factors

    def test_overrides_win(self):
        config = RAID_PROFILE.config(gvt_period=123.0, events_per_turn=4)
        assert config.gvt_period == 123.0
        assert config.events_per_turn == 4

    def test_profiles_differ(self):
        assert SMMP_PROFILE.speed_factors != RAID_PROFILE.speed_factors


class TestRunCell:
    def test_replicates_average(self):
        profile = ExperimentProfile("t", speed_factors={1: 1.2}, jitter=0.3)
        result = run_cell("pp", 1.0, lambda: build_pingpong(60), profile,
                          replicates=3)
        assert isinstance(result, RunResult)
        assert result.replicates == 3
        assert result.committed_events == 60
        assert result.execution_time_us > 0
        assert result.stddev_us >= 0
        assert result.wall_seconds > 0

    def test_stat_hook_collects_extra(self):
        profile = ExperimentProfile("t", speed_factors={}, jitter=0.0)
        result = run_cell(
            "pp", 0.0, lambda: build_pingpong(10), profile, replicates=1,
            stat_hook=lambda sim, stats: {"lps": len(sim.lps)},
        )
        assert result.extra == {"lps": 2}


class TestTables:
    def _result(self, label, x, t=1.5e6, **extra):
        return RunResult(label=label, x=x, execution_time_us=t, stddev_us=1e4,
                         replicates=2, committed_events=10,
                         committed_per_second=1000.0, rollbacks=3.0,
                         physical_messages=7.0, wall_seconds=0.1, extra=extra)

    def test_render_results(self):
        text = render_results([self._result("a", 1.0)], "Title")
        assert "Title" in text
        assert "1.500" in text

    def test_render_fig5(self):
        rows = [self._result("SMMP/PC+AC", 0, normalized=1.0),
                self._result("SMMP/DYN+LC", 0, t=1.2e6, normalized=1.25)]
        text = render_fig5(rows)
        assert "1.250" in text and "SMMP" in text

    def test_render_series_with_constant(self):
        rows = [
            self._result("Unaggregated", 0.0, t=2.0e6),
            self._result("FAW", 10.0, t=1.5e6),
            self._result("FAW", 20.0, t=1.0e6),
        ]
        text = render_series(rows, "w", "T")
        assert "Unaggregated: 2.000 s (constant)" in text
        lines = text.splitlines()
        assert any(line.strip().startswith("10") for line in lines)


class TestFiguresRegistry:
    def test_all_figures_registered(self):
        assert set(FIGURES) == {"5", "6", "7", "8", "9", "baseline"}

    def test_baseline_tiny_run(self):
        results = baseline_rates(scale=0.01, replicates=1)
        assert {r.label for r in results} == {"SMMP baseline", "RAID baseline"}
        for r in results:
            assert r.committed_events > 0

    def test_fig5_tiny_run_annotates_normalized(self):
        results = fig5(scale=0.01, replicates=1)
        assert all("normalized" in r.extra for r in results)


class TestCLI:
    def test_requires_a_target(self, capsys):
        with pytest.raises(SystemExit):
            cli_main([])

    def test_runs_baseline(self, capsys):
        rc = cli_main(["--fig", "baseline", "--scale", "0.01",
                       "--replicates", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "SMMP baseline" in out
        assert "ev/s" in out

    def test_unknown_fig_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["--fig", "42"])

    def test_json_dump(self, capsys, tmp_path):
        path = tmp_path / "out.json"
        rc = cli_main(["--fig", "baseline", "--scale", "0.01",
                       "--replicates", "1", "--json", str(path)])
        assert rc == 0
        import json

        data = json.loads(path.read_text())
        assert "baseline" in data
        labels = {row["label"] for row in data["baseline"]}
        assert labels == {"SMMP baseline", "RAID baseline"}
        assert all("execution_time_us" in row for row in data["baseline"])

    def test_ablation_entry(self, capsys):
        rc = cli_main(["--ablation", "control-period", "--scale", "0.02",
                       "--replicates", "1"])
        assert rc == 0
        assert "A3" in capsys.readouterr().out
